#!/bin/sh
# Benchmark trajectory: runs the two hot-path bench suites and keeps a
# machine-readable baseline at the repo root so CI can catch
# regressions over time.
#
#   record   run symexec + relang_ops + scan_throughput + daemon_jit,
#            write BENCH_symexec.json, BENCH_relang.json,
#            BENCH_scan.json, and BENCH_daemon.json at the repo root
#            (the new baselines)
#   check    run all suites fresh and fail if any benchmark is more
#            than 30% slower than its checked-in baseline
#
# Usage: scripts/bench_trajectory.sh [record|check]   (default: check)
#
# Output schema (one file per suite):
#   {
#     "schema": "shoal-bench/v1",
#     "suite": "symexec" | "relang_ops",
#     "fast": true | false,            # SHOAL_BENCH_FAST shortening
#     "benchmarks": {
#       "<case name>": <ns/iter: min over runs of the median sample>,
#       ...
#     }
#   }
#
# Wall-clock benches are noisy (shared machines, CPU contention), so
# both record and check keep the per-case MINIMUM over
# SHOAL_BENCH_RUNS executions (default 3): contention only ever slows
# a run down, so the min is the stable estimator. The 1.3x gate is
# deliberately loose on top of that. Set SHOAL_BENCH_FAST=0 for
# full-length samples before recording a baseline you care about.

set -eu

cd "$(dirname "$0")/.."
mode="${1:-check}"

export CARGO_NET_OFFLINE=true
export SHOAL_BENCH_FAST="${SHOAL_BENCH_FAST:-1}"
runs="${SHOAL_BENCH_RUNS:-3}"

# Runs one bench suite $runs times; prints per-case "name min_ns" pairs.
run_suite() {
    n=0
    while [ "$n" -lt "$runs" ]; do
        cargo bench -p shoal-bench --offline --bench "$1" 2>/dev/null \
            | awk '/ns\/iter/ { print $1, $2 }'
        n=$((n + 1))
    done | awk '{ if (!($1 in best) || $2 + 0 < best[$1]) best[$1] = $2 }
                END { for (k in best) print k, best[k] }' | sort
}

# Writes the shoal-bench/v1 JSON for one suite from "name ns" pairs.
write_json() {
    suite="$1"
    out="$2"
    fast_word=false
    [ "$SHOAL_BENCH_FAST" = "1" ] && fast_word=true
    awk -v suite="$suite" -v fast="$fast_word" '
        { names[NR] = $1; vals[NR] = $2 }
        END {
            printf "{\n"
            printf "  \"schema\": \"shoal-bench/v1\",\n"
            printf "  \"suite\": \"%s\",\n", suite
            printf "  \"fast\": %s,\n", fast
            printf "  \"benchmarks\": {\n"
            for (i = 1; i <= NR; i++)
                printf "    \"%s\": %s%s\n", names[i], vals[i], (i < NR ? "," : "")
            printf "  }\n}\n"
        }' > "$out"
    echo "wrote $out"
}

# Prints "name ns" pairs from a shoal-bench/v1 JSON file.
read_json() {
    sed -n 's/^    "\(.*\)": \([0-9.eE+]*\),\{0,1\}$/\1 \2/p' "$1"
}

# Compares fresh "name ns" pairs (file $2) against a baseline JSON
# ($1); fails when any case exceeds 1.3x its baseline. Tail-percentile
# cases (service/..._p95, _p99) get a looser 2.0x gate: a p99 over a
# ~100-request closed loop is a max-like order statistic, so a single
# preempted request moves it on its own — it stays on record for the
# trajectory, but only a gross regression fails the check. `_rate`
# cases (the overload shed/coalesced rates) are not durations at all —
# they count scheduling outcomes per 1000 requests under a
# deliberately starved daemon, so they swing with machine load and are
# kept on record purely as a trajectory; they never fail the gate.
check_suite() {
    baseline="$1"
    fresh="$2"
    if [ ! -f "$baseline" ]; then
        echo "no baseline $baseline; run 'scripts/bench_trajectory.sh record' first" >&2
        return 1
    fi
    read_json "$baseline" | sort > /tmp/bench_base.$$
    sort "$fresh" > /tmp/bench_fresh.$$
    join /tmp/bench_base.$$ /tmp/bench_fresh.$$ | awk -v limit=1.3 -v tail_limit=2.0 '
        $1 ~ /_rate$/ {
            printf "  %-44s %12.1f -> %12.1f per-1000 (info only)\n", $1, $2, $3
            next
        }
        {
            cap = ($1 ~ /_p9[59]$/) ? tail_limit : limit
            ratio = ($2 > 0) ? $3 / $2 : 1
            status = (ratio > cap) ? "REGRESSED" : "ok"
            printf "  %-44s %12.1f -> %12.1f ns/iter (%.2fx) %s\n", $1, $2, $3, ratio, status
            if (ratio > cap) bad++
        }
        END { exit (bad > 0 ? 1 : 0) }'
    rc=$?
    rm -f /tmp/bench_base.$$ /tmp/bench_fresh.$$
    return $rc
}

case "$mode" in
record)
    run_suite symexec > /tmp/bench_symexec.$$
    write_json symexec BENCH_symexec.json < /tmp/bench_symexec.$$
    run_suite relang_ops > /tmp/bench_relang.$$
    write_json relang_ops BENCH_relang.json < /tmp/bench_relang.$$
    run_suite scan_throughput > /tmp/bench_scan.$$
    write_json scan_throughput BENCH_scan.json < /tmp/bench_scan.$$
    run_suite daemon_jit > /tmp/bench_daemon.$$
    write_json daemon_jit BENCH_daemon.json < /tmp/bench_daemon.$$
    rm -f /tmp/bench_symexec.$$ /tmp/bench_relang.$$ /tmp/bench_scan.$$ /tmp/bench_daemon.$$
    ;;
check)
    fail=0
    echo "==> bench check: symexec vs BENCH_symexec.json"
    run_suite symexec > /tmp/bench_run.$$
    check_suite BENCH_symexec.json /tmp/bench_run.$$ || fail=1
    echo "==> bench check: relang_ops vs BENCH_relang.json"
    run_suite relang_ops > /tmp/bench_run.$$
    check_suite BENCH_relang.json /tmp/bench_run.$$ || fail=1
    echo "==> bench check: scan_throughput vs BENCH_scan.json"
    run_suite scan_throughput > /tmp/bench_run.$$
    check_suite BENCH_scan.json /tmp/bench_run.$$ || fail=1
    echo "==> bench check: daemon_jit vs BENCH_daemon.json"
    run_suite daemon_jit > /tmp/bench_run.$$
    check_suite BENCH_daemon.json /tmp/bench_run.$$ || fail=1
    # `join` only compares keys both sides have, so a baseline that
    # silently lost the service percentiles would still pass the gate
    # above — assert their presence explicitly.
    for key in service/analyze_p50 service/analyze_p99 \
               service/overload_shed_rate service/overload_coalesced_rate; do
        grep -q "\"$key\"" BENCH_daemon.json \
            || { echo "  MISSING $key in BENCH_daemon.json" >&2; fail=1; }
    done
    # Same guard for the relang decision-procedure keys: the early-exit
    # containment case and the single-pass quotient are the two
    # perf-critical paths of the lazy engine rebuild.
    for key in decisions/containment_early_exit right_quotient_dirname; do
        grep -q "\"$key\"" BENCH_relang.json \
            || { echo "  MISSING $key in BENCH_relang.json" >&2; fail=1; }
    done
    # And for the incremental engine: the cold/edit pairs are the
    # acceptance evidence for statement-level replay (a trailing edit
    # on a 200-statement script must stay far under a cold run).
    for key in incr/straight_line_200_cold incr/straight_line_200_edit \
               incr/loopy_200_cold incr/loopy_200_edit; do
        grep -q "\"$key\"" BENCH_symexec.json \
            || { echo "  MISSING $key in BENCH_symexec.json" >&2; fail=1; }
    done
    rm -f /tmp/bench_run.$$
    if [ "$fail" = 1 ]; then
        echo "==> bench check FAILED (some case >1.3x its baseline)" >&2
        exit 1
    fi
    echo "==> bench check OK"
    ;;
*)
    echo "usage: scripts/bench_trajectory.sh [record|check]" >&2
    exit 2
    ;;
esac
