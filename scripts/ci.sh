#!/bin/sh
# Offline-safe CI: the workspace has zero external dependencies, so
# everything here must work with no network and no registry cache.
#
#   tier-1   build + test of the root package (the gate every change
#            must keep green)
#   full     the whole workspace, plus clippy with warnings denied
#
# Usage: scripts/ci.sh [tier1|full]   (default: full)
#
# SHOAL_BENCH_GATE=1 additionally runs the benchmark-regression gate
# (scripts/bench_trajectory.sh check) in full mode.

set -eu

cd "$(dirname "$0")/.."
mode="${1:-full}"

export CARGO_NET_OFFLINE=true

echo "==> tier-1: cargo build --release"
cargo build --release --offline
echo "==> tier-1: cargo test -q"
cargo test -q --offline

if [ "$mode" = "tier1" ]; then
    echo "==> tier-1 OK"
    exit 0
fi

echo "==> workspace: cargo build --release --workspace"
cargo build --release --workspace --offline
echo "==> workspace: cargo test -q --workspace"
cargo test -q --workspace --offline

# Robustness gate: batch-scan the repo's own scripts with the hardened
# driver, on the parallel pool. Exit 0/1/3 (clean/findings/partial) are
# all fine; exit 4 means a script panicked the analyzer, which is
# always a bug. The parallel output must be byte-identical to a
# sequential scan (the pool collects results in input order).
echo "==> robustness: shoal scan --jobs 4 examples/ tests/"
scan_code=0
target/release/shoal scan --jobs 4 examples/ tests/ > /tmp/scan_par.$$ || scan_code=$?
if [ "$scan_code" -ge 4 ]; then
    echo "FAIL: shoal scan reported a panicked analysis (exit $scan_code)"
    rm -f /tmp/scan_par.$$
    exit 1
fi
seq_code=0
target/release/shoal scan --jobs 1 examples/ tests/ > /tmp/scan_seq.$$ || seq_code=$?
if [ "$scan_code" != "$seq_code" ] || ! cmp -s /tmp/scan_par.$$ /tmp/scan_seq.$$; then
    echo "FAIL: shoal scan --jobs 4 output/exit differs from --jobs 1"
    rm -f /tmp/scan_par.$$ /tmp/scan_seq.$$
    exit 1
fi
rm -f /tmp/scan_par.$$ /tmp/scan_seq.$$

# Audit gate: the precision/coverage plane must speak shoal-audit/v1,
# be byte-identical at any --jobs level, stay dark when off (no audit
# key, no clock reads in the audit sources), and cost nothing
# measurable when on (recorded baseline: audit-on <= 1.05x audit-off).
echo "==> audit: shoal-audit/v1 schema + jobs parity + dark path + overhead"
audit_fail=0
target/release/shoal audit --format json examples/ > /tmp/audit_rep.$$ \
    || { echo "FAIL: shoal audit exited non-zero (it is a report, not a gate)"; audit_fail=1; }
grep -q '"schema":"shoal-audit/v1"' /tmp/audit_rep.$$ || { echo "FAIL: audit report is not shoal-audit/v1"; audit_fail=1; }
grep -q '"missing_specs"' /tmp/audit_rep.$$ || { echo "FAIL: audit report carries no missing_specs ranking"; audit_fail=1; }
grep -q '"by_cause"' /tmp/audit_rep.$$ || { echo "FAIL: audit report carries no per-cause loss taxonomy"; audit_fail=1; }
par_code=0
target/release/shoal scan --audit --jobs 4 --format json examples/ > /tmp/audit_par.$$ || par_code=$?
seq_code=0
target/release/shoal scan --audit --jobs 1 --format json examples/ > /tmp/audit_seq.$$ || seq_code=$?
if [ "$par_code" != "$seq_code" ] || ! cmp -s /tmp/audit_par.$$ /tmp/audit_seq.$$; then
    echo "FAIL: scan --audit --jobs 4 output/exit differs from --jobs 1"
    audit_fail=1
fi
if target/release/shoal scan --jobs 1 --format json examples/ 2>/dev/null | grep -q '"audit"'; then
    echo "FAIL: scan without --audit emitted an audit key (dark path broken)"
    audit_fail=1
fi
if grep -En 'Instant::now|SystemTime' crates/obs/src/audit.rs crates/core/src/audit.rs; then
    echo "FAIL: audit sources read a clock (the plane must add zero clock reads)"
    audit_fail=1
fi
awk -F'[:,]' '
    /"scan\/audit_off"/ { off = $2 + 0 }
    /"scan\/audit_on"/  { on = $2 + 0 }
    END {
        if (off <= 0 || on <= 0) { print "  MISSING scan/audit_{off,on} in BENCH_scan.json"; exit 1 }
        ratio = on / off
        printf "  audit overhead: %.0f -> %.0f ns/iter (%.3fx, cap 1.05x)\n", off, on, ratio
        exit (ratio > 1.05 ? 1 : 0)
    }' BENCH_scan.json || { echo "FAIL: recorded audit-on overhead exceeds 1.05x audit-off"; audit_fail=1; }
rm -f /tmp/audit_rep.$$ /tmp/audit_par.$$ /tmp/audit_seq.$$
if [ "$audit_fail" = 1 ]; then
    exit 1
fi

# Precision gate: the lazy decision engine must not widen coverage
# loss. Over the figure corpus, the number of dfa-cap losses reported
# by the audit plane is pinned at 0 — a lazy search that charges
# explored pairs too eagerly (or a quotient that caps a product the
# eager pipeline could build) shows up here as a new dfa-cap entry.
echo "==> precision: dfa-cap losses over examples/ tests/ (pinned baseline: 0)"
dfa_cap_losses=$(target/release/shoal scan --audit --format json examples/ tests/ 2>/dev/null \
    | grep -o '"dfa-cap":[0-9]*' | awk -F: '{ sum += $2 } END { print sum + 0 }' || true)
if [ "${dfa_cap_losses:-0}" -gt 0 ]; then
    echo "FAIL: $dfa_cap_losses dfa-cap losses over the figure corpus (baseline 0)"
    exit 1
fi

# JIT daemon smoke gate: start a daemon on a temp socket, serve the
# same script cold then warm, and require both byte-identical to a
# direct `shoal analyze --format json`; validate the telemetry plane
# (trace IDs on the markers, shoal-stats/v1 from `status --format
# json`, a rendering `daemon top`); then stop the daemon and require a
# clean shutdown (socket unlinked, exit 0).
echo "==> daemon: cold/warm serve + byte-equality + telemetry + clean shutdown"
jit_dir=/tmp/shoal-ci-jit.$$
rm -rf "$jit_dir"
mkdir -p "$jit_dir"
jit_sock="$jit_dir/daemon.sock"
cat > "$jit_dir/fig.sh" <<'EOF'
#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
rm -rf "$STEAMROOT/"*
EOF
target/release/shoal daemon --socket "$jit_sock" --cache-dir "$jit_dir/cache" &
jit_pid=$!
n=0
while [ ! -S "$jit_sock" ] && [ "$n" -lt 100 ]; do sleep 0.05; n=$((n + 1)); done
jit_fail=0
target/release/shoal analyze "$jit_dir/fig.sh" --format json > "$jit_dir/direct.json" || true
target/release/shoal jit --socket "$jit_sock" --no-spawn --format json "$jit_dir/fig.sh" \
    > "$jit_dir/cold.json" 2> "$jit_dir/cold.err" || true
target/release/shoal jit --socket "$jit_sock" --no-spawn --format json "$jit_dir/fig.sh" \
    > "$jit_dir/warm.json" 2> "$jit_dir/warm.err" || true
cmp -s "$jit_dir/direct.json" "$jit_dir/cold.json" || { echo "FAIL: cold jit differs from direct analyze"; jit_fail=1; }
cmp -s "$jit_dir/direct.json" "$jit_dir/warm.json" || { echo "FAIL: warm jit differs from direct analyze"; jit_fail=1; }
grep -q "served=daemon cache=miss" "$jit_dir/cold.err" || { echo "FAIL: cold request was not a served miss"; jit_fail=1; }
grep -q "served=daemon cache=hit" "$jit_dir/warm.err" || { echo "FAIL: warm request was not a served hit"; jit_fail=1; }
grep -Eq "served=daemon cache=miss trace=[0-9a-f]{16}" "$jit_dir/cold.err" || { echo "FAIL: cold marker carries no trace id"; jit_fail=1; }
# Telemetry plane: `status --format json` is the shoal-stats/v1
# snapshot, with percentile-bearing latency histograms and the cache
# outcome taxonomy; `daemon top` renders the same snapshot.
target/release/shoal daemon status --format json --socket "$jit_sock" > "$jit_dir/stats.json" || { echo "FAIL: daemon status --format json"; jit_fail=1; }
grep -q '"schema":"shoal-stats/v1"' "$jit_dir/stats.json" || { echo "FAIL: stats snapshot is not shoal-stats/v1"; jit_fail=1; }
grep -q '"analyze.hit"' "$jit_dir/stats.json" || { echo "FAIL: stats carries no analyze.hit counter"; jit_fail=1; }
grep -q '"p99"' "$jit_dir/stats.json" || { echo "FAIL: stats carries no p99 percentile"; jit_fail=1; }
grep -q '"corrupt_misses"' "$jit_dir/stats.json" || { echo "FAIL: stats carries no cache outcome taxonomy"; jit_fail=1; }
grep -q '"analyzed_scripts"' "$jit_dir/stats.json" || { echo "FAIL: stats carries no audit block"; jit_fail=1; }
grep -q '"shield"' "$jit_dir/stats.json" || { echo "FAIL: stats carries no shield block"; jit_fail=1; }
grep -q '"queue_highwater"' "$jit_dir/stats.json" || { echo "FAIL: shield block carries no queue highwater"; jit_fail=1; }
target/release/shoal daemon top --socket "$jit_sock" > "$jit_dir/top.txt" || { echo "FAIL: daemon top"; jit_fail=1; }
grep -q "^requests:" "$jit_dir/top.txt" || { echo "FAIL: daemon top shows no request table"; jit_fail=1; }
grep -q "^cache:" "$jit_dir/top.txt" || { echo "FAIL: daemon top shows no cache line"; jit_fail=1; }
grep -q "^audit:" "$jit_dir/top.txt" || { echo "FAIL: daemon top shows no audit line"; jit_fail=1; }
grep -q "^shield:" "$jit_dir/top.txt" || { echo "FAIL: daemon top shows no shield line"; jit_fail=1; }
target/release/shoal daemon stop --socket "$jit_sock" || { echo "FAIL: daemon stop"; jit_fail=1; }
if ! wait "$jit_pid"; then echo "FAIL: daemon exited non-zero"; jit_fail=1; fi
[ ! -e "$jit_sock" ] || { echo "FAIL: daemon left its socket behind"; jit_fail=1; }
rm -rf "$jit_dir"
if [ "$jit_fail" = 1 ]; then
    exit 1
fi

# Chaos gate: the degradation contract under injected faults, driven
# through the real binaries. Three scenarios — a daemon slower than
# the client's request timeout, a daemon at admission capacity, and a
# corrupted disk-cache entry — must all end with the client printing a
# verdict byte-identical to a direct `shoal analyze`, with the serving
# marker telling the truth about which path produced it.
echo "==> chaos: slow daemon / shed under overload / corrupt cache entry"
chaos_dir=/tmp/shoal-ci-chaos.$$
rm -rf "$chaos_dir"
mkdir -p "$chaos_dir"
chaos_fail=0
printf '%s\n' 'echo chaos | wc -l' > "$chaos_dir/a.sh"
printf '%s\n' 'echo other' > "$chaos_dir/b.sh"
target/release/shoal analyze "$chaos_dir/a.sh" --format json > "$chaos_dir/a.direct.json" || true
target/release/shoal analyze "$chaos_dir/b.sh" --format json > "$chaos_dir/b.direct.json" || true

# (1) Slow daemon: every analysis stalls 400ms; the client is given a
# 150ms budget and one retry, so it must cut losses and answer
# locally — same bytes, marked as a fallback.
slow_sock="$chaos_dir/slow.sock"
SHOAL_FAILPOINTS='daemon::analyze=sleep(400)' \
    target/release/shoal daemon --socket "$slow_sock" --cache-dir "$chaos_dir/slow-cache" &
slow_pid=$!
n=0
while [ ! -S "$slow_sock" ] && [ "$n" -lt 100 ]; do sleep 0.05; n=$((n + 1)); done
target/release/shoal jit --socket "$slow_sock" --no-spawn --request-timeout-ms 150 --retries 1 \
    --format json "$chaos_dir/a.sh" > "$chaos_dir/slow.json" 2> "$chaos_dir/slow.err" || true
cmp -s "$chaos_dir/a.direct.json" "$chaos_dir/slow.json" \
    || { echo "FAIL: verdict under a slow daemon differs from direct analyze"; chaos_fail=1; }
grep -q "served=local-fallback" "$chaos_dir/slow.err" \
    || { echo "FAIL: slow-daemon request was not marked as a local fallback"; chaos_fail=1; }
target/release/shoal daemon stop --socket "$slow_sock" >/dev/null 2>&1 || true
wait "$slow_pid" 2>/dev/null || true

# (2) Shed: one slot, zero queue, analyses stalled — a second request
# with a distinct key must be shed immediately and answered locally,
# and the daemon's stats must count the shed.
shed_sock="$chaos_dir/shed.sock"
SHOAL_FAILPOINTS='daemon::analyze=sleep(2000)' \
    target/release/shoal daemon --socket "$shed_sock" --cache-dir "$chaos_dir/shed-cache" \
    --jobs 1 --queue-depth 0 --queue-wait-ms 50 &
shed_pid=$!
n=0
while [ ! -S "$shed_sock" ] && [ "$n" -lt 100 ]; do sleep 0.05; n=$((n + 1)); done
target/release/shoal jit --socket "$shed_sock" --no-spawn --format json "$chaos_dir/a.sh" \
    > /dev/null 2>&1 &
hog_pid=$!
sleep 0.5
target/release/shoal jit --socket "$shed_sock" --no-spawn --format json "$chaos_dir/b.sh" \
    > "$chaos_dir/shed.json" 2> "$chaos_dir/shed.err" || true
cmp -s "$chaos_dir/b.direct.json" "$chaos_dir/shed.json" \
    || { echo "FAIL: verdict after a shed differs from direct analyze"; chaos_fail=1; }
grep -q "daemon shed" "$chaos_dir/shed.err" \
    || { echo "FAIL: shed fallback marker missing (want 'daemon shed (reason)')"; chaos_fail=1; }
wait "$hog_pid" 2>/dev/null || true
target/release/shoal daemon status --format json --socket "$shed_sock" > "$chaos_dir/shed-stats.json" || true
grep -q '"sheds":1' "$chaos_dir/shed-stats.json" \
    || { echo "FAIL: shield stats did not count the shed"; chaos_fail=1; }
target/release/shoal daemon stop --socket "$shed_sock" >/dev/null 2>&1 || true
wait "$shed_pid" 2>/dev/null || true

# (3) Corrupt cache: persist a verdict, truncate the disk entry,
# restart over the same directory — the daemon must recompute (a
# counted miss), never serve garbage.
cc_sock="$chaos_dir/cc.sock"
target/release/shoal daemon --socket "$cc_sock" --cache-dir "$chaos_dir/cc-cache" &
cc_pid=$!
n=0
while [ ! -S "$cc_sock" ] && [ "$n" -lt 100 ]; do sleep 0.05; n=$((n + 1)); done
target/release/shoal jit --socket "$cc_sock" --no-spawn --format json "$chaos_dir/a.sh" > /dev/null 2>&1 || true
target/release/shoal daemon stop --socket "$cc_sock" >/dev/null 2>&1 || true
wait "$cc_pid" 2>/dev/null || true
find "$chaos_dir/cc-cache" -name '*.json' -exec sh -c 'printf "{torn" > "$1"' _ {} \;
target/release/shoal daemon --socket "$cc_sock" --cache-dir "$chaos_dir/cc-cache" &
cc_pid=$!
n=0
while [ ! -S "$cc_sock" ] && [ "$n" -lt 100 ]; do sleep 0.05; n=$((n + 1)); done
target/release/shoal jit --socket "$cc_sock" --no-spawn --format json "$chaos_dir/a.sh" \
    > "$chaos_dir/cc.json" 2> "$chaos_dir/cc.err" || true
cmp -s "$chaos_dir/a.direct.json" "$chaos_dir/cc.json" \
    || { echo "FAIL: verdict over a corrupt cache differs from direct analyze"; chaos_fail=1; }
grep -q "served=daemon cache=miss" "$chaos_dir/cc.err" \
    || { echo "FAIL: corrupt entry was not recomputed as a served miss"; chaos_fail=1; }
target/release/shoal daemon status --format json --socket "$cc_sock" > "$chaos_dir/cc-stats.json" || true
grep -q '"corrupt_misses":1' "$chaos_dir/cc-stats.json" \
    || { echo "FAIL: corrupt disk entry was not counted"; chaos_fail=1; }
target/release/shoal daemon stop --socket "$cc_sock" >/dev/null 2>&1 || true
wait "$cc_pid" 2>/dev/null || true
rm -rf "$chaos_dir"
if [ "$chaos_fail" = 1 ]; then
    exit 1
fi

# Incremental gate: `--incremental` is a pure strategy switch — the
# statement-replay engine must produce output byte-identical to a cold
# analyze (same exit code, same bytes, text and JSON) over the whole
# example corpus. Any divergence means a summary was replayed when the
# fingerprint should have forced re-execution.
echo "==> incremental: analyze --incremental vs cold byte-equality over examples/"
incr_fail=0
for f in examples/*.sh; do
    for fmt in text json; do
        cold_code=0
        incr_code=0
        target/release/shoal analyze --format "$fmt" "$f" > /tmp/incr_cold.$$ 2>/dev/null || cold_code=$?
        target/release/shoal analyze --incremental --format "$fmt" "$f" > /tmp/incr_warm.$$ 2>/dev/null || incr_code=$?
        if [ "$cold_code" != "$incr_code" ] || ! cmp -s /tmp/incr_cold.$$ /tmp/incr_warm.$$; then
            echo "FAIL: --incremental output/exit differs from cold analyze on $f ($fmt)"
            incr_fail=1
        fi
    done
done
rm -f /tmp/incr_cold.$$ /tmp/incr_warm.$$
if [ "$incr_fail" = 1 ]; then
    exit 1
fi

# LSP smoke gate: drive a complete editor session over stdio —
# initialize, didOpen Fig. 1, a didChange appending a comment, then a
# clean shutdown/exit. The server must publish diagnostics for both
# versions, the Fig. 1 findings must include the dangerous-delete
# error, and at least one diagnostic must carry provenance-backed
# relatedInformation.
echo "==> lsp: smoke session (initialize -> didOpen fig1 -> didChange -> diagnostics)"
lsp_dir=/tmp/shoal-ci-lsp.$$
rm -rf "$lsp_dir"
mkdir -p "$lsp_dir"
fig1_json=$(awk 'BEGIN { ORS="" } { gsub(/\\/, "\\\\"); gsub(/"/, "\\\""); print $0 "\\n" }' examples/fig1.sh)
frame() { printf 'Content-Length: %s\r\n\r\n%s' "${#1}" "$1"; }
{
    frame '{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}'
    frame '{"jsonrpc":"2.0","method":"initialized","params":{}}'
    frame "{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didOpen\",\"params\":{\"textDocument\":{\"uri\":\"file:///fig1.sh\",\"version\":1,\"text\":\"$fig1_json\"}}}"
    frame "{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didChange\",\"params\":{\"textDocument\":{\"uri\":\"file:///fig1.sh\",\"version\":2},\"contentChanges\":[{\"text\":\"$fig1_json#edit\\n\"}]}}"
    frame '{"jsonrpc":"2.0","id":2,"method":"shutdown","params":null}'
    frame '{"jsonrpc":"2.0","method":"exit","params":null}'
} > "$lsp_dir/session.in"
lsp_fail=0
SHOAL_CACHE_DIR="$lsp_dir/cache" target/release/shoal lsp < "$lsp_dir/session.in" > "$lsp_dir/session.out" \
    || { echo "FAIL: shoal lsp exited non-zero after a clean shutdown"; lsp_fail=1; }
publishes=$(grep -c '"method":"textDocument/publishDiagnostics"' "$lsp_dir/session.out" || true)
if [ "${publishes:-0}" -lt 2 ]; then
    echo "FAIL: lsp session published $publishes diagnostic sets (want one per didOpen/didChange)"
    lsp_fail=1
fi
grep -q 'dangerous-delete' "$lsp_dir/session.out" \
    || { echo "FAIL: fig1 diagnostics carry no dangerous-delete finding"; lsp_fail=1; }
grep -q '"relatedInformation"' "$lsp_dir/session.out" \
    || { echo "FAIL: diagnostics carry no provenance-backed relatedInformation"; lsp_fail=1; }
rm -rf "$lsp_dir"
if [ "$lsp_fail" = 1 ]; then
    exit 1
fi

# Service load smoke: a short closed-loop bench-service run against a
# private daemon must complete with zero verdict mismatches (exit 0)
# and emit the percentile keys BENCH_daemon.json records; the overload
# shape must emit its shed/coalesced rate keys the same way.
echo "==> daemon: bench-service smoke (2 clients x 3 requests, + overload shape)"
bench_out=/tmp/shoal-ci-bench.$$
target/release/shoal bench-service --clients 2 --requests 3 --format bench > "$bench_out" \
    || { echo "FAIL: bench-service run (verdict mismatch or daemon failure)"; rm -f "$bench_out"; exit 1; }
for key in service/analyze_p50 service/analyze_p99; do
    grep -q "$key" "$bench_out" || { echo "FAIL: bench-service emitted no $key"; rm -f "$bench_out"; exit 1; }
done
target/release/shoal bench-service --clients 4 --requests 5 --overload --format bench > "$bench_out" \
    || { echo "FAIL: bench-service --overload run (verdict mismatch under overload)"; rm -f "$bench_out"; exit 1; }
for key in service/overload_shed_rate service/overload_coalesced_rate; do
    grep -q "$key" "$bench_out" || { echo "FAIL: bench-service --overload emitted no $key"; rm -f "$bench_out"; exit 1; }
done
rm -f "$bench_out"
for key in service/analyze_p50 service/analyze_p99 service/overload_shed_rate service/overload_coalesced_rate; do
    grep -q "\"$key\"" BENCH_daemon.json \
        || { echo "FAIL: BENCH_daemon.json carries no $key baseline"; exit 1; }
done

# Mutation fuzzing at CI depth (the default in-test depth is 96 cases;
# everything is offline and deterministic).
echo "==> robustness: mutation property tests (SHOAL_PROP_CASES=256)"
SHOAL_PROP_CASES=256 cargo test -q --offline --test robustness

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> workspace: cargo clippy -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> clippy not installed; skipping lint step"
fi

# Opt-in performance gate: compare the bench suites against the
# checked-in BENCH_*.json baselines (fails on >30% regression).
if [ "${SHOAL_BENCH_GATE:-0}" = "1" ]; then
    echo "==> bench gate: scripts/bench_trajectory.sh check"
    scripts/bench_trajectory.sh check
fi

echo "==> CI OK"
