#!/bin/sh
# Offline-safe CI: the workspace has zero external dependencies, so
# everything here must work with no network and no registry cache.
#
#   tier-1   build + test of the root package (the gate every change
#            must keep green)
#   full     the whole workspace, plus clippy with warnings denied
#
# Usage: scripts/ci.sh [tier1|full]   (default: full)

set -eu

cd "$(dirname "$0")/.."
mode="${1:-full}"

export CARGO_NET_OFFLINE=true

echo "==> tier-1: cargo build --release"
cargo build --release --offline
echo "==> tier-1: cargo test -q"
cargo test -q --offline

if [ "$mode" = "tier1" ]; then
    echo "==> tier-1 OK"
    exit 0
fi

echo "==> workspace: cargo build --release --workspace"
cargo build --release --workspace --offline
echo "==> workspace: cargo test -q --workspace"
cargo test -q --workspace --offline

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> workspace: cargo clippy -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> clippy not installed; skipping lint step"
fi

echo "==> CI OK"
