//! # shoal — semantics-driven static analysis for Unix shell programs
//!
//! A from-scratch Rust reproduction of *"From Ahead-of- to Just-in-Time
//! and Back Again: Static Analysis for Unix Shell Programs"* (HotOS
//! 2025). The paper argues the shell can enjoy ahead-of-time,
//! semantics-driven analysis; this workspace builds the system the paper
//! envisions:
//!
//! | Crate | Role |
//! |---|---|
//! | [`relang`] | regular-language engine (regexes, NFA/DFA, decision procedures) |
//! | [`shparse`] | POSIX shell parser with full word structure |
//! | [`symfs`] | symbolic file-system model |
//! | [`spec`] | command specifications (invocation DSL + Hoare cases) |
//! | [`miner`] | Fig. 4 spec mining: docs → probing → compiled specs |
//! | [`streamty`] | regular stream types (incl. polymorphic signatures) |
//! | [`core`] | the symbolic execution engine and checkers |
//! | [`lint`] | the ShellCheck-style syntactic baseline |
//! | [`monitor`] | runtime stream monitoring and `verify` policies |
//! | [`corpus`] | paper figures and evaluation corpora |
//! | [`lsp`] | editor integration: LSP server over the incremental engine |
//!
//! # Quickstart
//!
//! ```
//! use shoal::core::{analyze_source, DiagCode};
//!
//! // The Steam updater bug (the paper's Fig. 1).
//! let report = analyze_source(r#"
//! STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
//! rm -fr "$STEAMROOT"/*
//! "#).unwrap();
//! assert!(report.has(DiagCode::DangerousDelete));
//! ```

pub use shoal_core as core;
pub use shoal_corpus as corpus;
pub use shoal_lint as lint;
pub use shoal_lsp as lsp;
pub use shoal_miner as miner;
pub use shoal_monitor as monitor;
pub use shoal_relang as relang;
pub use shoal_shparse as shparse;
pub use shoal_spec as spec;
pub use shoal_streamty as streamty;
pub use shoal_symfs as symfs;
