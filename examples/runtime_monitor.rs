//! "Better late than sorry": the higher-order stream monitor.
//!
//! When static typing cannot conclude, a monitor guards the typed
//! neighbor at run time. This example wires a monitor between an
//! untrusted producer and a numeric consumer, in both halt and flag
//! modes, and shows guard synthesis from a failed static obligation.
//!
//! ```sh
//! cargo run --example runtime_monitor
//! ```

use shoal::monitor::{synthesize_guard, MonitorReport, OnViolation, StreamMonitor};
use shoal::relang::Regex;

fn run(label: &str, policy: OnViolation, input: &[u8]) -> MonitorReport {
    let hex = Regex::parse("0x[0-9a-f]+").unwrap();
    let mut monitor = StreamMonitor::new(&hex, policy);
    let mut downstream: Vec<u8> = Vec::new();
    monitor.feed(input, &mut downstream).unwrap();
    let report = monitor.finish();
    println!("--- {label} ---");
    println!("input:      {:?}", String::from_utf8_lossy(input));
    println!("downstream: {:?}", String::from_utf8_lossy(&downstream));
    println!(
        "checked {} line(s), {} violation(s){}{}",
        report.lines,
        report.violations,
        report
            .first_violation
            .map(|l| format!(", first at line {l}"))
            .unwrap_or_default(),
        if report.halted {
            " — HALTED before the bad line escaped"
        } else {
            ""
        }
    );
    println!();
    report
}

fn main() {
    println!("=== Monitoring a stream against line type 0x[0-9a-f]+ ===\n");
    let clean = b"0xdead\n0xbeef\n0x42\n";
    let corrupt = b"0xdead\nnot-hex-at-all\n0x42\n";

    run("clean stream, halt mode", OnViolation::Halt, clean);
    let halted = run("corrupt stream, halt mode", OnViolation::Halt, corrupt);
    assert!(halted.halted);
    run(
        "corrupt stream, flag mode (forward but count)",
        OnViolation::Flag,
        corrupt,
    );

    println!("=== Guard synthesis for an untypable stage ===\n");
    // `mystery-gen` has no signature; `sort -g` downstream has a bound.
    let obligation = Regex::parse("0x[0-9a-f]+").unwrap();
    let guarded = synthesize_guard("mystery-gen /data | sort -g", 0, &obligation);
    println!("original: mystery-gen /data | sort -g");
    println!("guarded:  {guarded}");
}
