#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/
case $(lsb_release -a | grep '^desc' | cut -f 2) in
  Debian) SUFFIX=".config/steam" ;;
  *Linux) SUFFIX=".steam" ;;
esac
rm -fr $STEAMROOT$SUFFIX
