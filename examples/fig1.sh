#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
# ... more lines ...
rm -fr "$STEAMROOT"/*
