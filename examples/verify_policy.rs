//! The §5 security scenario: `curl sw.com/up.sh | verify --no-RW ~/mine | sh`.
//!
//! A security-conscious user wants to run a downloaded installer but
//! protect a directory. `verify` checks the script against the policy
//! statically, and reports exactly which commands would need runtime
//! containment when the static answer is inconclusive.
//!
//! ```sh
//! cargo run --example verify_policy
//! ```

use shoal::monitor::{verify_source, Policy};
use shoal::spec::SpecLibrary;

const WELL_BEHAVED_INSTALLER: &str = r#"#!/bin/sh
mkdir -p /opt/coolapp
touch /opt/coolapp/coolapp.bin
ln /opt/coolapp/coolapp.bin /opt/coolapp/latest
cat /opt/coolapp/latest
"#;

const GREEDY_INSTALLER: &str = r#"#!/bin/sh
mkdir -p /opt/coolapp
cat /home/me/mine/ssh-keys > /opt/coolapp/telemetry
rm -rf /home/me/mine/competitor-app
"#;

const SHIFTY_INSTALLER: &str = r#"#!/bin/sh
TARGET="$1"
mkdir -p /opt/coolapp
rm -rf "$TARGET"
"#;

fn main() {
    let specs = SpecLibrary::builtin();
    let policy = Policy::no_rw("/home/me/mine");
    for (name, src) in [
        ("well-behaved installer", WELL_BEHAVED_INSTALLER),
        ("greedy installer", GREEDY_INSTALLER),
        ("shifty installer (dynamic target)", SHIFTY_INSTALLER),
    ] {
        println!("=== verify --no-RW /home/me/mine  ({name}) ===");
        let report = verify_source(src, &policy, &specs).expect("parses");
        if report.conclusively_safe() {
            println!(
                "conclusively safe: {} command(s) verified, nothing touches the protected tree\n",
                report.commands_checked
            );
            continue;
        }
        for f in &report.findings {
            println!(
                "  {}: {:?} {} of {} by `{}`",
                f.span, f.certainty, f.access, f.prefix, f.what
            );
        }
        for (span, what) in &report.unclassified {
            println!("  {span}: `{what}` cannot be classified statically");
        }
        println!(
            "  → {} definite violation(s); residual obligations need runtime containment\n",
            report.definite().len()
        );
    }
}
