//! Regular stream types in action: the paper's Fig. 5 dead pipe and the
//! §4 polymorphic hexadecimal pipeline.
//!
//! ```sh
//! cargo run --example stream_types
//! ```

use shoal::core::{analyze_source, DiagCode};
use shoal::relang::Regex;
use shoal::spec::Invocation;
use shoal::streamty::pipeline::check_pipeline;
use shoal::streamty::sig::Sig;
use shoal::streamty::{sig_for, TypeAliases};

fn main() {
    println!("=== Fig. 5: the dead `grep '^desc'` filter ===\n");
    // Type of `lsb_release -a` output, from its specification.
    let lsb = Regex::parse(r"(Distributor ID|Description|Release|Codename):\t.*").unwrap();
    for pattern in ["^desc", "^Desc"] {
        let grep = Sig::Filter {
            keep: Regex::grep_pattern(pattern).unwrap(),
        };
        let reports = check_pipeline(&lsb, &[(format!("grep '{pattern}'"), grep)]);
        let r = &reports[0];
        println!("grep '{pattern}' :: {} → {}", r.input, r.output);
        match r.output.witness_string() {
            Some(w) => println!("  passes e.g. {w:?}\n"),
            None => println!("  DEAD: no line of lsb_release output can pass\n"),
        }
    }

    println!("=== §4: polymorphic types for the hex pipeline ===\n");
    let stages: Vec<(String, Sig)> = [
        Invocation::new("grep", &['o', 'E'], &["[0-9a-f]+"]),
        Invocation::new("sed", &[], &["s/^/0x/"]),
        Invocation::new("sort", &['g'], &[]),
    ]
    .into_iter()
    .map(|inv| {
        let sig = sig_for(&inv).expect("known filter");
        (inv.to_string(), sig)
    })
    .collect();
    for (name, sig) in &stages {
        println!("  {name} :: {sig}");
    }
    let reports = check_pipeline(&Regex::any_line(), &stages);
    println!();
    for r in &reports {
        println!("  {r}");
    }
    let aliases = TypeAliases::builtin();
    let final_ty = &reports.last().unwrap().output;
    println!(
        "\nfinal type: {final_ty}{}",
        aliases
            .type_of(final_ty)
            .map(|n| format!("  (≤ `{n}`)"))
            .unwrap_or_default()
    );

    println!("\n=== The same checks, end to end through the analyzer ===\n");
    let fig5 = shoal::corpus::figures::FIG5;
    let report = analyze_source(fig5).unwrap();
    for d in report.with_code(DiagCode::DeadPipe) {
        println!("{d}");
    }
}
