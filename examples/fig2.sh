#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"

if [ "$(realpath "$STEAMROOT/")" != "/" ]; then
    rm -fr "$STEAMROOT"/*
else
    echo "Bad script path: $0"; exit 1
fi
