//! The Fig. 4 specification-mining pipeline, end to end: man page →
//! invocation syntax → probing → Hoare cases — including recovery from
//! noisy ("LLM-imprecise") extraction.
//!
//! ```sh
//! cargo run --example spec_mining
//! ```

use shoal::miner::{evaluate_mined, mine_command, mine_command_noisy, NoiseModel};
use shoal::spec::text::render_spec;
use shoal::spec::SpecLibrary;

fn main() {
    println!("=== Mining `rm` from its manual page ===\n");
    let mined = mine_command("rm").expect("rm is documented");
    print!("{}", render_spec(&mined));

    let lib = SpecLibrary::builtin();
    let score = evaluate_mined(&mined, lib.get("rm"));
    println!(
        "\nprobed {} invocations → {} cases; behavioral accuracy {:.1}% (coverage {:.1}%)\n",
        score.invocations,
        score.cases,
        100.0 * score.accuracy,
        100.0 * score.coverage
    );

    println!("=== Trust, but verify: extraction noise is caught by probing ===\n");
    // Phantom-flag probability 1.0: the extractor claims rm has a flag
    // it does not. Probing rejects every invocation carrying it, and the
    // compiler drops it.
    let noisy = NoiseModel::with_rates(0.0, 1.0, 12345);
    let recovered = mine_command_noisy("rm", &noisy).expect("still mines");
    let phantom_survived = recovered
        .syntax
        .flags
        .iter()
        .any(|f| f.description == "(phantom)");
    println!(
        "phantom flag in final syntax: {}",
        if phantom_survived {
            "YES (bug!)"
        } else {
            "no — eliminated by probing"
        }
    );
    let noisy_score = evaluate_mined(&recovered, lib.get("rm"));
    println!(
        "accuracy after recovery: {:.1}%\n",
        100.0 * noisy_score.accuracy
    );

    println!("=== Whole-corpus mining quality (experiment E4's table) ===\n");
    println!(
        "{:<10} {:>12} {:>7} {:>10} {:>10}",
        "command", "invocations", "cases", "accuracy", "coverage"
    );
    for name in shoal::miner::manpages::all_documented() {
        let mined = mine_command(name).unwrap();
        let s = evaluate_mined(&mined, lib.get(name));
        println!(
            "{:<10} {:>12} {:>7} {:>9.1}% {:>9.1}%",
            s.command,
            s.invocations,
            s.cases,
            100.0 * s.accuracy,
            100.0 * s.coverage
        );
    }
}
