//! Quickstart: analyze the paper's Steam-updater bug and its two fixes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use shoal::core::{analyze_source, DiagCode};
use shoal::corpus::figures;

fn main() {
    println!("=== shoal quickstart: the Steam-for-Linux updater bug ===\n");
    for (name, src, expectation) in [
        ("Fig. 1 (the bug)", figures::FIG1, "must be flagged"),
        ("Fig. 2 (safe fix)", figures::FIG2, "must be clean"),
        ("Fig. 3 (unsafe fix)", figures::FIG3, "must be flagged"),
    ] {
        println!("--- {name} — {expectation} ---");
        println!("{src}");
        let report = analyze_source(src).expect("figure parses");
        let dangers = report.with_code(DiagCode::DangerousDelete);
        if dangers.is_empty() {
            println!(
                "verdict: SAFE across all {} explored executions\n",
                report.paths_completed
            );
        } else {
            for d in dangers {
                println!("verdict: {d}");
            }
            println!();
        }
    }
    println!("Compare with the syntactic baseline (fires identically on all three):");
    for (name, src) in [
        ("Fig. 1", figures::FIG1),
        ("Fig. 2", figures::FIG2),
        ("Fig. 3", figures::FIG3),
    ] {
        let lints = shoal::lint::lint_source(src).expect("parses");
        let sc2115 = lints.iter().filter(|l| l.code == "SC2115").count();
        println!("  {name}: {} SC2115 warning(s)", sc2115);
    }
}
