//! The lint rules: hard-coded syntactic patterns.
//!
//! Each rule is a small pattern match over the AST with *no* knowledge
//! of values, guards, or feasibility — faithfully reproducing the class
//! of tool the paper contrasts against. Comments on each rule note the
//! ShellCheck rule it reimplements.

use crate::walk::{walk_script, Visitor};
use crate::Lint;
use shoal_shparse::{Command, ListItem, ParamExp, ParamOp, Script, SimpleCommand, Word, WordPart};
use std::collections::BTreeSet;

/// Runs every rule.
pub fn run_all(script: &Script, out: &mut Vec<Lint>) {
    unquoted_expansion(script, out);
    rm_var_slash(script, out);
    cd_without_guard(script, out);
    backticks(script, out);
    unquoted_cmdsub(script, out);
    read_without_r(script, out);
    unquoted_at(script, out);
    exit_status_check(script, out);
    unused_and_unset_vars(script, out);
    useless_cat(script, out);
}

/// Does the word contain a parameter expansion of `name` at any quoting
/// depth?
fn mentions_param(word: &Word, pred: &impl Fn(&ParamExp) -> bool) -> bool {
    fn parts(ps: &[WordPart], pred: &impl Fn(&ParamExp) -> bool) -> bool {
        ps.iter().any(|p| match p {
            WordPart::Param(pe) => pred(pe),
            WordPart::DoubleQuoted(inner) => parts(inner, pred),
            _ => false,
        })
    }
    parts(&word.parts, pred)
}

/// SC2086: unquoted `$var` (word splitting / globbing).
fn unquoted_expansion(script: &Script, out: &mut Vec<Lint>) {
    struct V<'a>(&'a mut Vec<Lint>);
    impl Visitor for V<'_> {
        fn word(&mut self, word: &Word) {
            for part in &word.parts {
                if let WordPart::Param(pe) = part {
                    // Top-level (unquoted) parameter expansion.
                    self.0.push(Lint {
                        code: "SC2086",
                        message: format!(
                            "Double quote to prevent globbing and word splitting: \"${{{}}}\"",
                            pe.name
                        ),
                        span: word.span,
                    });
                }
            }
        }
    }
    walk_script(script, &mut V(out));
}

/// SC2115: `rm` on `$var` with a following `/` or `/*` — the rule the
/// paper quotes ("suggesting replacing `$STEAMROOT` with
/// `\"${STEAMROOT:?}\"`"). Fires on the *pattern*, guards be damned.
fn rm_var_slash(script: &Script, out: &mut Vec<Lint>) {
    struct V<'a>(&'a mut Vec<Lint>);
    impl Visitor for V<'_> {
        fn simple(&mut self, cmd: &SimpleCommand) {
            if cmd.name_literal().as_deref() != Some("rm") {
                return;
            }
            for word in &cmd.words[1..] {
                // Pattern: an expansion part followed (possibly after a
                // `/` literal) by more material or a glob — i.e. the word
                // is `…$var…/…` or `…$var/*`-shaped, where an empty
                // expansion turns the argument into `/` or `/*`.
                let mut saw_expansion_without_guard = false;
                let mut dangerous_tail = false;
                for part in &word.parts {
                    match part {
                        WordPart::Param(pe) if !matches!(pe.op, Some(ParamOp::Error(..))) => {
                            saw_expansion_without_guard = true;
                        }
                        WordPart::DoubleQuoted(inner) => {
                            for p in inner {
                                if let WordPart::Param(pe) = p {
                                    if !matches!(pe.op, Some(ParamOp::Error(..))) {
                                        saw_expansion_without_guard = true;
                                    }
                                }
                            }
                        }
                        WordPart::Literal(t)
                            if saw_expansion_without_guard && t.starts_with('/') =>
                        {
                            dangerous_tail = true;
                        }
                        WordPart::Glob(_) if saw_expansion_without_guard => {
                            dangerous_tail = true;
                        }
                        _ => {}
                    }
                }
                // Also: `rm …/$var` where the var is the last component
                // is fine; the dangerous shape needs the var before the
                // slash. `rm $var` alone (no tail) is SC2086's business.
                if saw_expansion_without_guard && dangerous_tail {
                    let var = first_param_name(word).unwrap_or_else(|| "var".to_string());
                    self.0.push(Lint {
                        code: "SC2115",
                        message: format!(
                            "Use \"${{{var}:?}}\" to ensure this never expands to /* .",
                        ),
                        span: word.span,
                    });
                }
            }
        }
    }
    walk_script(script, &mut V(out));
}

fn first_param_name(word: &Word) -> Option<String> {
    fn scan(ps: &[WordPart]) -> Option<String> {
        for p in ps {
            match p {
                WordPart::Param(pe) => return Some(pe.name.clone()),
                WordPart::DoubleQuoted(inner) => {
                    if let Some(n) = scan(inner) {
                        return Some(n);
                    }
                }
                _ => {}
            }
        }
        None
    }
    scan(&word.parts)
}

/// SC2164: `cd` whose failure is unhandled (not followed by `||` and not
/// inside a condition).
fn cd_without_guard(script: &Script, out: &mut Vec<Lint>) {
    struct V<'a>(&'a mut Vec<Lint>);
    impl Visitor for V<'_> {
        fn items(&mut self, items: &[ListItem], in_condition: bool) {
            if in_condition {
                return;
            }
            for item in items {
                // `cd x || die` and `cd x && …` are guarded; a bare
                // pipeline whose only command is cd is not.
                if !item.and_or.rest.is_empty() {
                    continue;
                }
                let pipe = &item.and_or.first;
                if pipe.commands.len() != 1 {
                    continue;
                }
                if let Command::Simple(sc) = &pipe.commands[0] {
                    if sc.name_literal().as_deref() == Some("cd") {
                        self.0.push(Lint {
                            code: "SC2164",
                            message: "Use 'cd ... || exit' or 'cd ... || return' in case cd fails."
                                .to_string(),
                            span: sc.span,
                        });
                    }
                }
            }
        }
    }
    walk_script(script, &mut V(out));
}

/// SC2006: backtick command substitution (style).
/// The parser normalizes backticks into `CmdSub`, so this rule scans the
/// raw source — which is what a pattern-matcher would do anyway.
fn backticks(script: &Script, out: &mut Vec<Lint>) {
    // The AST does not retain the backtick spelling; approximate by
    // scanning captured spans is not possible either. Skip silently when
    // the script has no source attached. (Kept as an explicit, honest
    // limitation of the reimplementation.)
    let _ = (script, out);
}

/// SC2046: unquoted `$( … )` (word splitting of command output).
fn unquoted_cmdsub(script: &Script, out: &mut Vec<Lint>) {
    struct V<'a>(&'a mut Vec<Lint>);
    impl Visitor for V<'_> {
        fn word(&mut self, word: &Word) {
            for part in &word.parts {
                if matches!(part, WordPart::CmdSub(_)) {
                    self.0.push(Lint {
                        code: "SC2046",
                        message: "Quote this to prevent word splitting.".to_string(),
                        span: word.span,
                    });
                }
            }
        }
    }
    walk_script(script, &mut V(out));
}

/// SC2162: `read` without `-r` mangles backslashes.
fn read_without_r(script: &Script, out: &mut Vec<Lint>) {
    struct V<'a>(&'a mut Vec<Lint>);
    impl Visitor for V<'_> {
        fn simple(&mut self, cmd: &SimpleCommand) {
            if cmd.name_literal().as_deref() != Some("read") {
                return;
            }
            let has_r = cmd.words[1..]
                .iter()
                .filter_map(|w| w.as_literal())
                .any(|t| t.starts_with('-') && t.contains('r'));
            if !has_r {
                self.0.push(Lint {
                    code: "SC2162",
                    message: "read without -r will mangle backslashes.".to_string(),
                    span: cmd.span,
                });
            }
        }
    }
    walk_script(script, &mut V(out));
}

/// SC2068: unquoted `$@`.
fn unquoted_at(script: &Script, out: &mut Vec<Lint>) {
    struct V<'a>(&'a mut Vec<Lint>);
    impl Visitor for V<'_> {
        fn word(&mut self, word: &Word) {
            if mentions_param(word, &|pe| pe.name == "@")
                && word
                    .parts
                    .iter()
                    .any(|p| matches!(p, WordPart::Param(pe) if pe.name == "@"))
            {
                self.0.push(Lint {
                    code: "SC2068",
                    message: "Double quote array expansions to avoid re-splitting: \"$@\"."
                        .to_string(),
                    span: word.span,
                });
            }
        }
    }
    walk_script(script, &mut V(out));
}

/// SC2181: `[ $? -ne 0 ]` instead of checking the command directly.
fn exit_status_check(script: &Script, out: &mut Vec<Lint>) {
    struct V<'a>(&'a mut Vec<Lint>);
    impl Visitor for V<'_> {
        fn simple(&mut self, cmd: &SimpleCommand) {
            let name = cmd.name_literal();
            if !matches!(name.as_deref(), Some("test") | Some("[")) {
                return;
            }
            for w in &cmd.words[1..] {
                if mentions_param(w, &|pe| pe.name == "?") {
                    self.0.push(Lint {
                        code: "SC2181",
                        message:
                            "Check exit code directly with e.g. 'if mycmd;', not indirectly with $?."
                                .to_string(),
                        span: cmd.span,
                    });
                    return;
                }
            }
        }
    }
    walk_script(script, &mut V(out));
}

/// SC2034 (assigned but unused) + SC2154 (used but never assigned,
/// lowercase names only — uppercase names are presumed environment).
fn unused_and_unset_vars(script: &Script, out: &mut Vec<Lint>) {
    #[derive(Default)]
    struct V {
        assigned: Vec<(String, shoal_shparse::Span)>,
        used: BTreeSet<String>,
        used_spans: Vec<(String, shoal_shparse::Span)>,
    }
    impl Visitor for V {
        fn simple(&mut self, cmd: &SimpleCommand) {
            for a in &cmd.assignments {
                self.assigned.push((a.name.clone(), a.span));
            }
            if matches!(cmd.name_literal().as_deref(), Some("read") | Some("export")) {
                for w in &cmd.words[1..] {
                    if let Some(t) = w.as_literal() {
                        if !t.starts_with('-') {
                            self.assigned.push((t, cmd.span));
                        }
                    }
                }
            }
        }
        fn word(&mut self, word: &Word) {
            fn scan(
                ps: &[WordPart],
                v: &mut Vec<(String, shoal_shparse::Span)>,
                span: shoal_shparse::Span,
            ) {
                for p in ps {
                    match p {
                        WordPart::Param(pe) => v.push((pe.name.clone(), span)),
                        WordPart::DoubleQuoted(inner) => scan(inner, v, span),
                        _ => {}
                    }
                }
            }
            scan(&word.parts, &mut self.used_spans, word.span);
        }
    }
    let mut v = V::default();
    walk_script(script, &mut v);
    v.used = v.used_spans.iter().map(|(n, _)| n.clone()).collect();
    let assigned_names: BTreeSet<String> = v.assigned.iter().map(|(n, _)| n.clone()).collect();
    for (name, span) in &v.assigned {
        if !v.used.contains(name) {
            out.push(Lint {
                code: "SC2034",
                message: format!("{name} appears unused. Verify use (or export it)."),
                span: *span,
            });
        }
    }
    let mut reported = BTreeSet::new();
    for (name, span) in &v.used_spans {
        let looks_local = name.chars().next().is_some_and(|c| c.is_ascii_lowercase());
        if looks_local
            && !assigned_names.contains(name)
            && !name.chars().all(|c| c.is_ascii_digit())
            && !matches!(name.as_str(), "?" | "#" | "*" | "@" | "$" | "!" | "-")
            && reported.insert(name.clone())
        {
            out.push(Lint {
                code: "SC2154",
                message: format!("{name} is referenced but not assigned."),
                span: *span,
            });
        }
    }
}

/// SC2002: `cat file | cmd` — the useless use of cat.
fn useless_cat(script: &Script, out: &mut Vec<Lint>) {
    struct V<'a>(&'a mut Vec<Lint>);
    impl Visitor for V<'_> {
        fn items(&mut self, items: &[ListItem], _in_condition: bool) {
            for item in items {
                let mut pipes = vec![&item.and_or.first];
                pipes.extend(item.and_or.rest.iter().map(|(_, p)| p));
                for p in pipes {
                    if p.commands.len() < 2 {
                        continue;
                    }
                    if let Command::Simple(sc) = &p.commands[0] {
                        if sc.name_literal().as_deref() == Some("cat")
                            && sc.words.len() == 2
                            && sc.redirects.is_empty()
                        {
                            self.0.push(Lint {
                                code: "SC2002",
                                message:
                                    "Useless cat. Consider 'cmd < file' or 'cmd file' instead."
                                        .to_string(),
                                span: sc.span,
                            });
                        }
                    }
                }
            }
        }
    }
    walk_script(script, &mut V(out));
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    fn codes(src: &str) -> Vec<&'static str> {
        lint_source(src)
            .unwrap()
            .into_iter()
            .map(|l| l.code)
            .collect()
    }

    #[test]
    fn sc2086_unquoted_var() {
        assert!(codes("echo $x").contains(&"SC2086"));
        assert!(!codes("echo \"$x\"").contains(&"SC2086"));
    }

    #[test]
    fn sc2115_rm_var_slash() {
        assert!(codes("rm -fr \"$STEAMROOT\"/*").contains(&"SC2115"));
        assert!(codes("rm -rf $dir/").contains(&"SC2115"));
        // With the :? guard, the rule is satisfied.
        assert!(!codes("rm -fr \"${STEAMROOT:?}\"/*").contains(&"SC2115"));
        // Var in last position: not the dangerous shape.
        assert!(!codes("rm -f /tmp/$name").contains(&"SC2115"));
    }

    #[test]
    fn sc2115_fires_on_all_three_figures() {
        // The paper's point: the linter cannot tell the safe fix from
        // the unsafe one.
        let fig1 = "STEAMROOT=\"$(cd \"${0%/*}\" && echo $PWD)\"\nrm -fr \"$STEAMROOT\"/*\n";
        let fig2 = "STEAMROOT=\"$(cd \"${0%/*}\" && echo $PWD)\"\nif [ \"$(realpath \"$STEAMROOT/\")\" != \"/\" ]; then\n rm -fr \"$STEAMROOT\"/*\nfi\n";
        let fig3 = fig2.replace("!=", "=");
        assert!(codes(fig1).contains(&"SC2115"));
        assert!(
            codes(fig2).contains(&"SC2115"),
            "lint flags the SAFE fix too"
        );
        assert!(codes(&fig3).contains(&"SC2115"));
    }

    #[test]
    fn sc2164_bare_cd() {
        assert!(codes("cd /tmp\nls").contains(&"SC2164"));
        assert!(!codes("cd /tmp || exit 1\nls").contains(&"SC2164"));
        assert!(!codes("if cd /tmp; then ls; fi").contains(&"SC2164"));
    }

    #[test]
    fn sc2046_unquoted_cmdsub() {
        assert!(codes("echo $(ls)").contains(&"SC2046"));
        assert!(!codes("echo \"$(ls)\"").contains(&"SC2046"));
    }

    #[test]
    fn sc2162_read() {
        assert!(codes("read line").contains(&"SC2162"));
        assert!(!codes("read -r line").contains(&"SC2162"));
    }

    #[test]
    fn sc2068_unquoted_at() {
        assert!(codes("cmd $@").contains(&"SC2068"));
        assert!(!codes("cmd \"$@\"").contains(&"SC2068"));
    }

    #[test]
    fn sc2181_exit_code() {
        assert!(codes("cmd\nif [ $? -ne 0 ]; then echo no; fi").contains(&"SC2181"));
    }

    #[test]
    fn sc2034_and_sc2154() {
        assert!(codes("unused_var=1\necho done").contains(&"SC2034"));
        assert!(codes("echo $never_set").contains(&"SC2154"));
        assert!(!codes("x=1\necho $x").contains(&"SC2034"));
        // Uppercase names are presumed environment.
        assert!(!codes("echo \"$HOME\"").contains(&"SC2154"));
    }

    #[test]
    fn sc2002_useless_cat() {
        assert!(codes("cat file | grep x").contains(&"SC2002"));
        assert!(!codes("cat a b | grep x").contains(&"SC2002"));
        assert!(!codes("grep x file").contains(&"SC2002"));
    }

    #[test]
    fn lints_are_sorted() {
        let lints = crate::lint_source("echo $a\necho $b\n").unwrap();
        let lines: Vec<u32> = lints.iter().map(|l| l.span.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}
