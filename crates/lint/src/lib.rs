//! `shoal-lint`: a syntactic, ShellCheck-style linter — the baseline.
//!
//! §2 of the paper: "The most widely used tool is ShellCheck, a syntactic
//! linter based on a collection of hard-coded patterns. … Unfortunately,
//! this kind of syntax-matching approach is limited: it fails to
//! recognize an obviously safe fix (Fig. 2) and it fails to identify the
//! unambiguous incorrectness of an obviously unsafe fix (Fig. 3)."
//!
//! To *measure* that claim (experiments E1, E3, E8) the repository needs
//! the baseline itself. This crate reimplements the relevant rule family
//! from scratch: pure pattern matching on the syntax tree, deliberately
//! context-insensitive. Rule codes follow ShellCheck's numbering where a
//! rule is a reimplementation of the same idea (`SC2086`, `SC2115`, …) so
//! readers can cross-reference; the implementations are original.
//!
//! The flagship rule for the paper's story is `rules::rm_var_slash`
//! (SC2115): `rm -r "$VAR"/…` warns *regardless of any guard around it*
//! — which is exactly why it fires identically on Figs. 1, 2, and 3.

pub mod rules;
pub mod walk;

use shoal_shparse::{parse_script, ParseError, Script, Span};
use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Rule code (`SC2115`-style).
    pub code: &'static str,
    /// Human-readable message (includes the suggested fix).
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.span, self.code, self.message)
    }
}

/// Runs every rule over a parsed script.
pub fn lint_script(script: &Script) -> Vec<Lint> {
    let mut lints = Vec::new();
    rules::run_all(script, &mut lints);
    lints.sort_by_key(|l| (l.span.line, l.code));
    lints
}

/// Parses and lints shell source.
///
/// # Errors
///
/// Returns the parse error for invalid source.
pub fn lint_source(src: &str) -> Result<Vec<Lint>, ParseError> {
    Ok(lint_script(&parse_script(src)?))
}
