//! A generic AST walker for lint rules.
//!
//! Rules register callbacks for simple commands and words; the walker
//! handles the recursion through compound commands, command
//! substitutions, and function bodies.

use shoal_shparse::{Command, ListItem, Script, SimpleCommand, Word, WordPart};

/// Visitor callbacks. Implementors override what they need.
pub trait Visitor {
    /// Called for every simple command, anywhere in the tree.
    fn simple(&mut self, _cmd: &SimpleCommand) {}
    /// Called for every word (arguments, patterns, assignment values…).
    fn word(&mut self, _word: &Word) {}
    /// Called for every command list. `in_condition` is true for
    /// `if`/`while`/`until` condition lists, where failure is handled by
    /// the construct itself.
    fn items(&mut self, _items: &[ListItem], _in_condition: bool) {}
}

/// Walks a whole script.
pub fn walk_script<V: Visitor>(script: &Script, v: &mut V) {
    walk_items(&script.items, v);
}

/// Walks a list of items (non-condition context).
pub fn walk_items<V: Visitor>(items: &[ListItem], v: &mut V) {
    walk_items_ctx(items, v, false)
}

/// Walks a list of items with explicit condition context.
pub fn walk_items_ctx<V: Visitor>(items: &[ListItem], v: &mut V, in_condition: bool) {
    v.items(items, in_condition);
    for item in items {
        let mut pipes = vec![&item.and_or.first];
        pipes.extend(item.and_or.rest.iter().map(|(_, p)| p));
        for p in pipes {
            for c in &p.commands {
                walk_command(c, v);
            }
        }
    }
}

fn walk_command<V: Visitor>(cmd: &Command, v: &mut V) {
    match cmd {
        Command::Simple(sc) => {
            v.simple(sc);
            for a in &sc.assignments {
                walk_word(&a.value, v);
            }
            for w in &sc.words {
                walk_word(w, v);
            }
            for r in &sc.redirects {
                walk_word(&r.target, v);
            }
        }
        Command::BraceGroup(items, _, _) | Command::Subshell(items, _, _) => walk_items(items, v),
        Command::If(c, _, _) => {
            walk_items_ctx(&c.cond, v, true);
            walk_items(&c.then_body, v);
            for (cc, bb) in &c.elifs {
                walk_items_ctx(cc, v, true);
                walk_items(bb, v);
            }
            if let Some(e) = &c.else_body {
                walk_items(e, v);
            }
        }
        Command::While(c, _, _) | Command::Until(c, _, _) => {
            walk_items_ctx(&c.cond, v, true);
            walk_items(&c.body, v);
        }
        Command::For(c, _, _) => {
            if let Some(words) = &c.words {
                for w in words {
                    walk_word(w, v);
                }
            }
            walk_items(&c.body, v);
        }
        Command::Case(c, _, _) => {
            walk_word(&c.subject, v);
            for arm in &c.arms {
                for p in &arm.patterns {
                    walk_word(p, v);
                }
                walk_items(&arm.body, v);
            }
        }
        Command::FunctionDef { body, .. } => walk_command(body, v),
    }
}

fn walk_word<V: Visitor>(word: &Word, v: &mut V) {
    v.word(word);
    for part in &word.parts {
        walk_part(part, v);
    }
}

fn walk_part<V: Visitor>(part: &WordPart, v: &mut V) {
    match part {
        WordPart::DoubleQuoted(inner) => {
            for p in inner {
                walk_part(p, v);
            }
        }
        WordPart::CmdSub(script) => walk_script(script, v),
        WordPart::Param(pe) => {
            if let Some(op) = &pe.op {
                use shoal_shparse::ParamOp::*;
                match op {
                    Default(w, _)
                    | Assign(w, _)
                    | Alt(w, _)
                    | RemoveSmallestSuffix(w)
                    | RemoveLargestSuffix(w)
                    | RemoveSmallestPrefix(w)
                    | RemoveLargestPrefix(w) => walk_word(w, v),
                    Error(Some(w), _) => walk_word(w, v),
                    _ => {}
                }
            }
        }
        _ => {}
    }
}
