//! Chaos suite for the JIT daemon: failpoint-driven fault injection
//! proving the PR 5 degradation contract survives overload and
//! infrastructure failure. Every scenario asserts two things at once —
//! the client still produces the *correct* verdict (byte-identical to
//! an in-process `shoal analyze` of the same source), and the serving
//! marker (`Served::Daemon` / `Served::Fallback { reason }`) tells the
//! truth about which path produced it.
//!
//! Failpoint state is process-global, so every test takes `CHAOS_LOCK`
//! and arms its faults through [`Armed`], a guard that disarms on drop
//! even when an assertion panics — a leaked failpoint would wedge the
//! next test's daemon teardown.

use shoal_core::provenance::report_body_fields;
use shoal_core::{analyze_source_with, AnalysisOptions};
use shoal_daemon::client::{self, ClientConfig, Served};
use shoal_daemon::server::{run, ServerConfig};
use shoal_obs::failpoint;
use shoal_obs::json::Json;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes the chaos tests: failpoints are process-global.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Arms a failpoint spec; disarms on drop (panic-safe).
struct Armed;

impl Armed {
    fn new(spec: &str) -> Armed {
        failpoint::configure(spec).expect("valid failpoint spec");
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

/// A daemon in a background thread, with shield knobs exposed.
struct ChaosDaemon {
    socket: PathBuf,
    base: PathBuf,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

struct Shape {
    jobs: usize,
    queue_depth: usize,
    queue_wait: Duration,
}

impl Default for Shape {
    fn default() -> Shape {
        Shape {
            jobs: 2,
            queue_depth: 256,
            queue_wait: Duration::from_secs(2),
        }
    }
}

impl ChaosDaemon {
    fn start(tag: &str, shape: Shape) -> ChaosDaemon {
        let base =
            std::env::temp_dir().join(format!("shoal-chaos-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        ChaosDaemon::start_at(base, shape)
    }

    /// Starts over an existing base dir without wiping it — the
    /// corrupt-cache scenario restarts a daemon over a cache directory
    /// it sabotaged between runs.
    fn start_at(base: PathBuf, shape: Shape) -> ChaosDaemon {
        std::fs::create_dir_all(&base).unwrap();
        let socket = base.join("daemon.sock");
        let _ = std::fs::remove_file(&socket);
        let config = ServerConfig {
            socket: socket.clone(),
            cache_dir: Some(base.join("cache")),
            cache_capacity: 64,
            jobs: shape.jobs,
            queue_depth: shape.queue_depth,
            queue_wait: shape.queue_wait,
            ..ServerConfig::default()
        };
        let thread = std::thread::spawn(move || run(config));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline {
            if std::os::unix::net::UnixStream::connect(&socket).is_ok() {
                return ChaosDaemon {
                    socket,
                    base,
                    thread: Some(thread),
                };
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("daemon did not come up on {}", socket.display());
    }

    fn client(&self) -> ClientConfig {
        ClientConfig {
            socket: self.socket.clone(),
            auto_spawn: false,
            spawn_wait: Duration::from_millis(100),
            ..ClientConfig::default()
        }
    }

    /// Snapshot of the stats verb (must not be called while a
    /// `daemon::serve` panic failpoint is armed — stats frames hit it
    /// too).
    fn stats(&self) -> Json {
        client::stats(&self.socket).expect("stats verb answers")
    }

    /// Polls until the shield reports at least `n` running analyses —
    /// how the overload tests know a slot-holder is actually inside
    /// the engine (parked on its sleep failpoint) before they pile on.
    fn wait_for_running(&self, n: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline {
            let stats = self.stats();
            if num(&stats.get("shield").cloned().unwrap_or(Json::Null), "running") >= n {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("shield never reported {n} running analyses");
    }

    fn stop_and_join(&mut self) {
        let _ = client::stop(&self.socket);
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread").expect("clean shutdown");
        }
    }
}

impl Drop for ChaosDaemon {
    fn drop(&mut self) {
        self.stop_and_join();
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

fn num(json: &Json, field: &str) -> u64 {
    json.get(field).and_then(Json::as_u64).unwrap_or(0)
}

/// The in-process reference verdict: what `shoal analyze` would print.
fn reference(source: &str) -> String {
    let report = analyze_source_with(source, AnalysisOptions::default()).expect("script parses");
    Json::Obj(report_body_fields(&report)).to_text()
}

/// Asserts a response carries the byte-identical reference verdict.
fn assert_verdict(r: &client::JitResponse, source: &str) {
    let entry = r.result.as_ref().expect("script parses");
    assert_eq!(
        entry.body.to_text(),
        reference(source),
        "verdict diverged from in-process analysis"
    );
}

#[test]
fn server_killed_mid_request_falls_back_with_the_correct_verdict() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let daemon = ChaosDaemon::start("kill", Shape::default());
    let mut cfg = daemon.client();
    cfg.retries = 1;
    cfg.retry_backoff = Duration::from_millis(5);
    let opts = AnalysisOptions::default();
    let source = "echo kill\n";

    {
        // Every frame the daemon reads now panics its connection
        // thread: the client sees the connection drop mid-request,
        // retries, exhausts, and must fall back — with the verdict
        // still byte-identical to a local run.
        let _armed = Armed::new("daemon::serve=panic");
        let r = client::analyze(&cfg, source, &opts, false);
        match &r.served {
            Served::Fallback { reason } => {
                assert!(
                    reason.contains("closed connection") || reason.contains("daemon"),
                    "fallback reason should explain the drop: {reason}"
                );
            }
            other => panic!("expected fallback, daemon answered: {other:?}"),
        }
        assert_verdict(&r, source);
    }

    // Connection panics are isolated per thread: with the failpoint
    // disarmed the same daemon serves again, and the stats verb shows
    // it counted the carnage instead of dying from it.
    let r = client::analyze(&cfg, source, &opts, false);
    assert!(
        matches!(r.served, Served::Daemon { .. }),
        "daemon must survive its own connection panics: {:?}",
        r.served
    );
    assert_verdict(&r, source);
}

#[test]
fn corrupt_disk_cache_entry_is_a_counted_miss_not_a_wrong_verdict() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let source = "echo corrupt | wc -l\n";
    let opts = AnalysisOptions::default();

    let mut daemon = ChaosDaemon::start("corrupt", Shape::default());
    let base = daemon.base.clone();
    let cfg = daemon.client();
    let r = client::analyze(&cfg, source, &opts, false);
    assert_eq!(r.served, Served::Daemon { cache_hit: false });
    assert_verdict(&r, source);
    daemon.stop_and_join();

    // Sabotage every persisted entry, then restart a daemon (fresh
    // in-memory cache) over the same directory: the disk tier is now
    // actively lying to it.
    let mut corrupted = 0;
    for shard in std::fs::read_dir(base.join("cache")).expect("cache dir exists") {
        let shard = shard.unwrap().path();
        if !shard.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&shard).unwrap() {
            let path = entry.unwrap().path();
            std::fs::write(&path, b"{\"schema\":\"shoal-cache/v1\",\"body\":tru").unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "the first run must have persisted an entry");

    let daemon = ChaosDaemon::start_at(base, Shape::default());
    let cfg = daemon.client();
    let r = client::analyze(&cfg, source, &opts, false);
    assert_eq!(
        r.served,
        Served::Daemon { cache_hit: false },
        "a corrupt disk entry must degrade to a recomputing miss"
    );
    assert_verdict(&r, source);
    let stats = daemon.stats();
    let cache = stats.get("cache").cloned().expect("stats carries cache");
    assert_eq!(num(&cache, "corrupt_misses"), 1, "{}", cache.to_text());
}

#[test]
fn slow_daemon_past_client_timeout_falls_back_and_the_verdict_is_correct() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let daemon = ChaosDaemon::start("slow", Shape::default());
    let mut cfg = daemon.client();
    cfg.request_timeout = Duration::from_millis(100);
    cfg.retries = 1;
    cfg.retry_backoff = Duration::from_millis(5);
    let opts = AnalysisOptions::default();
    let source = "echo slow\n";

    {
        // The analysis stalls for 400ms against a 100ms client budget:
        // both the first attempt and the retry time out, and the
        // client must answer locally rather than hang.
        let _armed = Armed::new("daemon::analyze=sleep(400)");
        let start = std::time::Instant::now();
        let r = client::analyze(&cfg, source, &opts, false);
        assert!(
            matches!(r.served, Served::Fallback { .. }),
            "a daemon slower than the request timeout must not be waited on: {:?}",
            r.served
        );
        assert_verdict(&r, source);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "client waited out the slow daemon instead of cutting losses: {:?}",
            start.elapsed()
        );
    }

    // The abandoned leader finishes its sleep and still publishes to
    // the cache: once the stall is disarmed the same key is a warm
    // hit, not a recompute.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let r = client::analyze(&cfg, source, &opts, false);
        if r.served == (Served::Daemon { cache_hit: true }) {
            assert_verdict(&r, source);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "abandoned analysis never landed in the cache: {:?}",
            r.served
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn truncated_response_frame_falls_back_then_hits_the_cache_once_healed() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let daemon = ChaosDaemon::start("truncate", Shape::default());
    let mut cfg = daemon.client();
    cfg.request_timeout = Duration::from_millis(250);
    cfg.retries = 1;
    cfg.retry_backoff = Duration::from_millis(5);
    let opts = AnalysisOptions::default();
    let source = "echo torn | tr a-z A-Z\n";

    {
        // The server advertises a full frame, sends half of it, and
        // drops the connection: a torn read must classify as
        // transient, retry, exhaust, and fall back — never parse a
        // partial payload into a verdict.
        let _armed = Armed::new("daemon::truncate-response=panic");
        let r = client::analyze(&cfg, source, &opts, false);
        assert!(
            matches!(r.served, Served::Fallback { .. }),
            "a torn frame must never be served as an answer: {:?}",
            r.served
        );
        assert_verdict(&r, source);
    }

    // The handler ran to completion before the write was sabotaged,
    // so the verdict was cached: the healed daemon serves the same
    // key warm and byte-identical.
    let r = client::analyze(&cfg, source, &opts, false);
    assert_eq!(
        r.served,
        Served::Daemon { cache_hit: true },
        "the truncated run should still have populated the cache"
    );
    assert_verdict(&r, source);
}

#[test]
fn overloaded_daemon_sheds_and_the_client_answers_locally_at_once() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // One slot, zero queue: any request arriving while the slot is
    // held must be shed `queue-full` immediately.
    let daemon = ChaosDaemon::start(
        "shed",
        Shape {
            jobs: 1,
            queue_depth: 0,
            queue_wait: Duration::from_millis(50),
        },
    );
    let cfg = daemon.client();
    let opts = AnalysisOptions::default();
    let hog_source = "echo hog\n";
    let shed_source = "echo shed-me\n";

    let _armed = Armed::new("daemon::analyze=sleep(600)");
    let hog = {
        let cfg = daemon.client();
        let opts = opts.clone();
        std::thread::spawn(move || client::analyze(&cfg, hog_source, &opts, false))
    };
    daemon.wait_for_running(1);

    // A distinct key cannot coalesce onto the hog's flight, so it
    // needs a slot of its own — and there is neither a free slot nor
    // queue room. The shed must be immediate (no 600ms wait) and the
    // local answer correct.
    let start = std::time::Instant::now();
    let r = client::analyze(&cfg, shed_source, &opts, false);
    match &r.served {
        Served::Fallback { reason } => assert!(
            reason.contains("daemon shed (queue-full)"),
            "shed fallback must carry the machine-readable reason: {reason}"
        ),
        other => panic!("expected a shed fallback, got {other:?}"),
    }
    assert_verdict(&r, shed_source);
    assert!(
        start.elapsed() < Duration::from_millis(500),
        "a shed must not wait out the hog: {:?}",
        start.elapsed()
    );

    let hogged = hog.join().expect("hog thread");
    assert_eq!(hogged.served, Served::Daemon { cache_hit: false });
    assert_verdict(&hogged, hog_source);

    let stats = daemon.stats();
    let shield = stats.get("shield").cloned().expect("stats carries shield");
    assert_eq!(num(&shield, "sheds"), 1, "{}", shield.to_text());
    let by_reason = shield.get("sheds_by").cloned().unwrap();
    assert_eq!(num(&by_reason, "queue-full"), 1, "{}", shield.to_text());
    let by = stats.get("requests").and_then(|r| r.get("by")).cloned().unwrap();
    assert_eq!(
        num(&by, "analyze.shed"),
        1,
        "the shed must land in the per-outcome request counters too"
    );
}

#[test]
fn duplicate_keys_coalesce_and_every_request_reconciles_exactly() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let daemon = ChaosDaemon::start(
        "coalesce",
        Shape {
            jobs: 1,
            queue_depth: 0,
            queue_wait: Duration::from_millis(50),
        },
    );
    let opts = AnalysisOptions::default();
    let shared = "echo shared | sort\n";
    let loner = "echo loner\n";

    let _armed = Armed::new("daemon::analyze=sleep(400)");
    // Leader takes the only slot and parks on the sleep failpoint.
    let leader = {
        let cfg = daemon.client();
        let opts = opts.clone();
        std::thread::spawn(move || client::analyze(&cfg, shared, &opts, false))
    };
    daemon.wait_for_running(1);

    // Three more requests for the *same* key board the leader's flight
    // — no slot needed, so the zero-depth queue does not shed them —
    // while a distinct key has nowhere to go and is shed.
    let waiters: Vec<_> = (0..3)
        .map(|_| {
            let cfg = daemon.client();
            let opts = opts.clone();
            std::thread::spawn(move || client::analyze(&cfg, shared, &opts, false))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let shed = client::analyze(&daemon.client(), loner, &opts, false);
    match &shed.served {
        Served::Fallback { reason } => {
            assert!(reason.contains("daemon shed"), "{reason}")
        }
        other => panic!("distinct key under overload must shed, got {other:?}"),
    }
    assert_verdict(&shed, loner);

    let led = leader.join().expect("leader thread");
    assert_eq!(led.served, Served::Daemon { cache_hit: false });
    assert_verdict(&led, shared);
    for w in waiters {
        let r = w.join().expect("waiter thread");
        assert!(
            matches!(r.served, Served::Daemon { .. }),
            "coalesced waiters are served by the daemon: {:?}",
            r.served
        );
        assert_verdict(&r, shared);
    }

    // Exact reconciliation: 1 miss (leader) + 3 coalesced (waiters) +
    // 1 shed (loner) = 5 analyze requests, every one accounted for in
    // exactly one outcome bucket, and the shield's own counters agree
    // with the request plane.
    let stats = daemon.stats();
    let by = stats.get("requests").and_then(|r| r.get("by")).cloned().unwrap();
    let shield = stats.get("shield").cloned().expect("stats carries shield");
    assert_eq!(num(&by, "analyze.miss"), 1, "{}", by.to_text());
    assert_eq!(num(&by, "analyze.coalesced"), 3, "{}", by.to_text());
    assert_eq!(num(&by, "analyze.shed"), 1, "{}", by.to_text());
    assert_eq!(num(&by, "analyze.hit"), 0, "{}", by.to_text());
    assert_eq!(
        num(&by, "analyze.miss") + num(&by, "analyze.coalesced") + num(&by, "analyze.shed"),
        5,
        "requests = served + coalesced + shed, nothing lost"
    );
    assert_eq!(num(&shield, "coalesced"), num(&by, "analyze.coalesced"));
    assert_eq!(num(&shield, "sheds"), num(&by, "analyze.shed"));
}
