//! End-to-end tests for the daemon's telemetry plane: trace-ID
//! round-trips over the real socket, `stats` reconciliation against
//! the requests actually made, counter monotonicity under concurrent
//! load, the shutdown JSONL flush, the pinned slow-request rendering,
//! and the bench-service load generator.

use shoal_core::provenance::report_body_fields;
use shoal_core::{analyze_source_with, AnalysisOptions};
use shoal_daemon::bench_service::{run_bench, BenchConfig};
use shoal_daemon::client::{self, ClientConfig, Served};
use shoal_daemon::protocol::{Request, STATS_SCHEMA};
use shoal_daemon::server::{run, ServerConfig};
use shoal_obs::json::Json;
use shoal_obs::Trace;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A daemon running in a background thread, torn down via `stop`.
struct TestDaemon {
    socket: PathBuf,
    base: PathBuf,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestDaemon {
    fn start(tag: &str, trace_log: Option<&str>) -> TestDaemon {
        let base = std::env::temp_dir().join(format!(
            "shoal-telemetry-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let socket = base.join("daemon.sock");
        let config = ServerConfig {
            socket: socket.clone(),
            cache_dir: Some(base.join("cache")),
            cache_capacity: 64,
            jobs: 2,
            trace_log: trace_log.map(|name| base.join(name)),
            ..ServerConfig::default()
        };
        let thread = std::thread::spawn(move || run(config));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline {
            if std::os::unix::net::UnixStream::connect(&socket).is_ok() {
                return TestDaemon {
                    socket,
                    base,
                    thread: Some(thread),
                };
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("daemon did not come up on {}", socket.display());
    }

    fn client(&self) -> ClientConfig {
        ClientConfig {
            socket: self.socket.clone(),
            auto_spawn: false,
            spawn_wait: Duration::from_millis(100),
            ..ClientConfig::default()
        }
    }

    /// Stops the daemon and waits for the server thread (so post-stop
    /// assertions — socket gone, trace log flushed — are race-free).
    fn stop_and_join(&mut self) {
        let _ = client::stop(&self.socket);
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread").expect("clean shutdown");
        }
    }
}

impl Drop for TestDaemon {
    fn drop(&mut self) {
        self.stop_and_join();
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

fn num(json: &Json, field: &str) -> u64 {
    json.get(field).and_then(Json::as_u64).unwrap_or(0)
}

/// Every latency histogram in a stats snapshot must be well-formed:
/// count > 0 and min ≤ p50 ≤ p95 ≤ p99 ≤ max.
fn assert_latency_well_formed(stats: &Json) {
    let Some(Json::Obj(hists)) = stats.get("latency_us") else {
        panic!("stats carries no latency_us object");
    };
    for (key, h) in hists {
        let (p50, p95, p99) = (num(h, "p50"), num(h, "p95"), num(h, "p99"));
        assert!(num(h, "count") > 0, "{key}: empty histogram was exported");
        assert!(
            num(h, "min") <= p50 && p50 <= p95 && p95 <= p99 && p99 <= num(h, "max"),
            "{key}: percentiles out of order: {}",
            h.to_text()
        );
    }
}

#[test]
fn trace_ids_round_trip_client_to_server_and_back() {
    let daemon = TestDaemon::start("roundtrip", None);
    let cfg = daemon.client();
    let opts = AnalysisOptions::default();

    // Through the high-level client: the minted ID comes back.
    let r = client::analyze(&cfg, "echo hi\n", &opts, false);
    assert!(matches!(r.served, Served::Daemon { .. }));
    let id = r.trace_id.expect("daemon echoes the client-minted ID");
    assert_eq!(id.len(), 16, "trace IDs are 16 hex digits: {id}");
    assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "{id}");

    // Through a raw frame with a chosen ID: echoed verbatim, and the
    // server-side trace in `stats` carries the same ID.
    let chosen = "feedc0de12345678";
    let resp = client::request(
        &daemon.socket,
        &Request::Analyze {
            source: "echo raw\n".into(),
            options: opts.clone(),
            resilient: false,
            trace_id: Some(chosen.into()),
        },
    )
    .expect("daemon answers");
    assert_eq!(
        resp.get("trace_id").and_then(Json::as_str),
        Some(chosen),
        "response must echo the request's trace_id"
    );
    let stats = client::stats(&daemon.socket).expect("stats verb answers");
    let slow = stats.to_text();
    assert!(
        slow.contains(chosen),
        "the server-side trace ring must hold trace {chosen}: {slow}"
    );
}

#[test]
fn stats_reconcile_with_the_requests_made() {
    let daemon = TestDaemon::start("reconcile", None);
    let cfg = daemon.client();
    let opts = AnalysisOptions::default();

    // 3 distinct scripts, each analyzed twice: 3 misses + 3 hits.
    let scripts = ["echo a\n", "echo b\n", "echo c\n"];
    for script in scripts {
        for _ in 0..2 {
            let r = client::analyze(&cfg, script, &opts, false);
            assert!(matches!(r.served, Served::Daemon { .. }));
        }
    }

    let stats = client::stats(&daemon.socket).expect("stats verb answers");
    assert_eq!(
        stats.get("schema").and_then(Json::as_str),
        Some(STATS_SCHEMA)
    );
    let by = stats.get("requests").and_then(|r| r.get("by")).cloned();
    let by = by.expect("stats carries requests.by");
    assert_eq!(num(&by, "analyze.miss"), 3, "{}", by.to_text());
    assert_eq!(num(&by, "analyze.hit"), 3, "{}", by.to_text());

    // The cache taxonomy is total and consistent with the endpoint
    // counters: every analyze request did exactly one lookup.
    let cache = stats.get("cache").cloned().expect("stats carries cache");
    assert_eq!(num(&cache, "lookups"), 6);
    assert_eq!(
        num(&cache, "hot_hits") + num(&cache, "disk_hits") + num(&cache, "misses"),
        num(&cache, "lookups"),
        "cache outcome taxonomy must sum: {}",
        cache.to_text()
    );
    assert_eq!(num(&cache, "misses"), 3);
    assert_eq!(num(&cache, "hot_entries"), 3);

    assert_latency_well_formed(&stats);

    // Workers and slow-request log are present and sane.
    assert!(num(&stats, "workers") >= 1);
    match stats.get("slow_requests") {
        Some(Json::Arr(slow)) => {
            assert!(!slow.is_empty(), "6 requests must leave slow-log entries");
            for t in slow {
                Trace::from_json(t).expect("slow-log entries are traces");
            }
        }
        other => panic!("slow_requests missing or not an array: {other:?}"),
    }
}

#[test]
fn concurrent_clients_and_stats_readers_stay_consistent() {
    let daemon = TestDaemon::start("concurrent", None);
    let opts = AnalysisOptions::default();
    let scripts = ["echo x\n", "echo y\n", "true\n", "echo z | wc -l\n"];

    // Local references, computed up front: served output must stay
    // byte-identical under concurrency.
    let references: Vec<String> = scripts
        .iter()
        .map(|s| {
            let report = analyze_source_with(s, opts.clone()).expect("scripts parse");
            Json::Obj(report_body_fields(&report)).to_text()
        })
        .collect();
    let references = Arc::new(references);

    let done = Arc::new(AtomicBool::new(false));
    // A stats poller races the workers: counters must be monotonic and
    // percentiles well-formed in every snapshot it takes.
    let poller = {
        let socket = daemon.socket.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last_analyze = 0u64;
            let mut polls = 0u32;
            while !done.load(Ordering::Relaxed) {
                let stats = client::stats(&socket).expect("stats answers during load");
                let by = stats
                    .get("requests")
                    .and_then(|r| r.get("by"))
                    .cloned()
                    .unwrap_or(Json::Obj(vec![]));
                let analyze = num(&by, "analyze.hit")
                    + num(&by, "analyze.miss")
                    + num(&by, "analyze.coalesced");
                assert!(
                    analyze >= last_analyze,
                    "analyze counter went backwards: {last_analyze} -> {analyze}"
                );
                last_analyze = analyze;
                assert_latency_well_formed(&stats);
                polls += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            polls
        })
    };

    let workers: Vec<_> = (0..8)
        .map(|w| {
            let cfg = daemon.client();
            let opts = opts.clone();
            let references = Arc::clone(&references);
            std::thread::spawn(move || {
                for i in 0..6 {
                    let idx = (w + i) % scripts.len();
                    let r = client::analyze(&cfg, scripts[idx], &opts, false);
                    assert!(matches!(r.served, Served::Daemon { .. }));
                    let entry = r.result.expect("scripts parse");
                    assert_eq!(
                        entry.body.to_text(),
                        references[idx],
                        "served verdict diverged under concurrency"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker thread");
    }
    done.store(true, Ordering::Relaxed);
    let polls = poller.join().expect("poller thread");
    assert!(polls > 0, "the poller never got a snapshot in");

    // Final reconciliation: 8 workers x 6 requests. Concurrent
    // same-key requests may coalesce onto one in-flight analysis, so
    // every analyze lands in exactly one of three outcome buckets —
    // and the shield's own coalesced counter must agree with the
    // per-outcome request counter, or the dedup plane is lying.
    let stats = client::stats(&daemon.socket).expect("stats answers");
    let by = stats
        .get("requests")
        .and_then(|r| r.get("by"))
        .cloned()
        .unwrap();
    assert_eq!(
        num(&by, "analyze.hit") + num(&by, "analyze.miss") + num(&by, "analyze.coalesced"),
        48
    );
    let shield = stats.get("shield").expect("stats carries shield");
    assert_eq!(num(shield, "coalesced"), num(&by, "analyze.coalesced"));
    assert_eq!(num(shield, "sheds"), num(&by, "analyze.shed"));
    assert_eq!(num(shield, "sheds"), 0, "no overload in this shape");
}

#[test]
fn stats_field_order_is_frozen_and_audit_reconciles_with_misses() {
    let daemon = TestDaemon::start("audit", None);
    let cfg = daemon.client();
    let opts = AnalysisOptions::default();

    // Two distinct scripts, the first analyzed twice: 2 misses + 1
    // hit. Coverage folds on the miss path only (a hit replays a
    // script already folded when first computed), so the audit plane
    // must count exactly 2 scripts.
    for script in ["echo a\n", "frobnicate --all\n", "echo a\n"] {
        let r = client::analyze(&cfg, script, &opts, false);
        assert!(matches!(r.served, Served::Daemon { .. }));
    }

    let stats = client::stats(&daemon.socket).expect("stats verb answers");
    let Json::Obj(fields) = &stats else {
        panic!("stats must be a JSON object: {}", stats.to_text());
    };
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "schema",
            "ok",
            "op",
            "version",
            "pid",
            "uptime_ms",
            "workers",
            "requests",
            "cache",
            "latency_us",
            "slow_requests",
            "audit",
            "shield",
        ],
        "shoal-stats/v1 field order is frozen; new fields append, never insert"
    );

    let audit = stats.get("audit").expect("stats carries audit");
    assert_eq!(
        num(audit, "analyzed_scripts"),
        2,
        "misses only — the cache hit must not refold coverage: {}",
        audit.to_text()
    );
    let by = stats
        .get("requests")
        .and_then(|r| r.get("by"))
        .cloned()
        .unwrap();
    assert_eq!(num(audit, "analyzed_scripts"), num(&by, "analyze.miss"));

    // `frobnicate` has no spec: it must surface in the ranking, and
    // the unspecced call site must be attributed as a no-spec loss.
    assert_eq!(num(audit, "missing_spec_commands"), 1, "{}", audit.to_text());
    let top = audit.get("top_missing_specs").cloned().unwrap();
    assert!(top.to_text().contains("frobnicate"), "{}", top.to_text());
    let losses = audit.get("losses").cloned().unwrap();
    assert_eq!(num(&losses, "no-spec"), 1, "{}", losses.to_text());
    assert_eq!(num(audit, "degraded_scripts"), 1, "{}", audit.to_text());
}

#[test]
fn stop_flushes_the_trace_log_completely() {
    let mut daemon = TestDaemon::start("flush", Some("traces.jsonl"));
    let log_path = daemon.base.join("traces.jsonl");
    let cfg = daemon.client();
    let opts = AnalysisOptions::default();

    for _ in 0..3 {
        let r = client::analyze(&cfg, "echo flush\n", &opts, false);
        assert!(matches!(r.served, Served::Daemon { .. }));
    }
    daemon.stop_and_join();

    // After stop returns and the server thread has joined, the log
    // must be complete: one trace line per request (3 analyze + 1
    // stop), then the final daemon_stats summary — nothing buffered,
    // nothing torn.
    let text = std::fs::read_to_string(&log_path).expect("trace log exists after stop");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 5,
        "expected >= 4 trace lines + 1 summary, got {}: {text}",
        lines.len()
    );
    let (summary, traces) = lines.split_last().unwrap();
    let mut analyzes = 0;
    let mut stops = 0;
    for line in traces {
        let json = Json::parse(line).expect("every trace line parses");
        let trace = Trace::from_json(&json).expect("every line is a trace");
        match trace.endpoint.as_str() {
            "analyze" => analyzes += 1,
            "stop" => stops += 1,
            _ => {}
        }
    }
    assert_eq!(analyzes, 3, "{text}");
    assert_eq!(stops, 1, "{text}");
    let summary = Json::parse(summary).expect("summary line parses");
    assert_eq!(
        summary.get("schema").and_then(Json::as_str),
        Some(STATS_SCHEMA),
        "the last line is the daemon_stats summary"
    );
    // The summary was taken after the pool drained, so it has seen
    // every request the log has.
    let by = summary
        .get("requests")
        .and_then(|r| r.get("by"))
        .cloned()
        .unwrap();
    assert_eq!(num(&by, "analyze.miss") + num(&by, "analyze.hit"), 3);
}

#[test]
fn slow_request_rendering_matches_the_golden_file() {
    // A fixed trace must render byte-identically forever: stable field
    // order, no wall-clock leakage beyond the measured durations.
    let trace = Trace {
        trace_id: "00f1e2d3c4b5a697".into(),
        endpoint: "analyze".into(),
        outcome: "miss".into(),
        total_us: 1480,
        phases: vec![
            ("decode".into(), 12),
            ("cache".into(), 31),
            ("parse".into(), 240),
            ("symexec".into(), 995),
            ("relang".into(), 410),
            ("report".into(), 88),
            ("serialize".into(), 19),
        ],
    };
    let golden = include_str!("golden/trace_render.txt");
    assert_eq!(
        trace.render_text(),
        golden,
        "trace rendering drifted from tests/golden/trace_render.txt"
    );
    // And the JSONL form round-trips to the same rendering.
    let back = Trace::from_json(&Json::parse(&trace.to_json().to_text()).unwrap()).unwrap();
    assert_eq!(back.render_text(), golden);
}

#[test]
fn bench_service_smoke() {
    let report = run_bench(&BenchConfig {
        clients: 2,
        requests: 3,
        socket: None,
        overload: false,
    })
    .expect("bench-service runs against a private daemon");
    assert_eq!(report.total, 6);
    assert_eq!(report.fallbacks, 0, "private daemon must be reachable");
    assert_eq!(
        report.mismatches, 0,
        "served verdicts must match local analysis"
    );
    assert!(report.latency_ns.p50() <= report.latency_ns.p99());
    let lines = report.render_bench_lines();
    for key in [
        "service/analyze_p50",
        "service/analyze_p95",
        "service/analyze_p99",
    ] {
        assert!(lines.contains(key), "bench lines must carry {key}: {lines}");
    }
    assert!(lines.contains("ns/iter"), "{lines}");
}
