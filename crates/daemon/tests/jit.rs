//! End-to-end tests for the JIT daemon: a real server on a real unix
//! socket, exercised by the real client.
//!
//! The two properties the subsystem lives or dies by:
//!
//! 1. **Byte equality** — a daemon-served verdict (cold or warm) is
//!    byte-identical to what `analyze_source_with` + the provenance
//!    serializer produce in-process, across the paper's figure corpus.
//! 2. **Content addressing** — editing the script, the options, the
//!    spec fingerprint, or the version re-addresses the verdict; a
//!    warm hit can never serve a stale one.

use shoal_core::provenance::report_body_fields;
use shoal_core::{analyze_source_with, AnalysisOptions};
use shoal_daemon::cache::{cache_key, KeyParts};
use shoal_daemon::client::{self, ClientConfig, Served};
use shoal_daemon::protocol::Request;
use shoal_daemon::server::{run, ServerConfig};
use shoal_obs::json::Json;
use std::path::PathBuf;
use std::time::Duration;

/// A daemon running in a background thread, torn down via `stop`.
struct TestDaemon {
    socket: PathBuf,
    #[allow(dead_code)]
    cache_dir: PathBuf,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestDaemon {
    fn start(tag: &str) -> TestDaemon {
        let base = std::env::temp_dir().join(format!(
            "shoal-jit-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let socket = base.join("daemon.sock");
        let cache_dir = base.join("cache");
        let config = ServerConfig {
            socket: socket.clone(),
            cache_dir: Some(cache_dir.clone()),
            cache_capacity: 64,
            jobs: 2,
            ..ServerConfig::default()
        };
        let thread = std::thread::spawn(move || run(config));
        // Wait for the socket to answer.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline {
            if std::os::unix::net::UnixStream::connect(&socket).is_ok() {
                return TestDaemon {
                    socket,
                    cache_dir,
                    thread: Some(thread),
                };
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("daemon did not come up on {}", socket.display());
    }

    fn client(&self) -> ClientConfig {
        ClientConfig {
            socket: self.socket.clone(),
            auto_spawn: false,
            spawn_wait: Duration::from_millis(100),
            ..ClientConfig::default()
        }
    }
}

impl Drop for TestDaemon {
    fn drop(&mut self) {
        let _ = client::stop(&self.socket);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn figures() -> Vec<(&'static str, &'static str)> {
    shoal_corpus::figures::all()
}

/// The in-process reference rendering: what `analyze --format json`
/// would embed for this script.
fn reference_body(source: &str, opts: &AnalysisOptions) -> String {
    let report = analyze_source_with(source, opts.clone()).expect("figure scripts parse");
    Json::Obj(report_body_fields(&report)).to_text()
}

#[test]
fn warm_hits_are_byte_identical_to_direct_analysis_across_figures() {
    let daemon = TestDaemon::start("bytes");
    let cfg = daemon.client();
    let opts = AnalysisOptions::default();
    for (name, source) in figures() {
        let reference = reference_body(source, &opts);

        let cold = client::analyze(&cfg, source, &opts, false);
        assert_eq!(
            cold.served,
            Served::Daemon { cache_hit: false },
            "{name}: first request must be a served miss"
        );
        let cold_entry = cold.result.expect("figure scripts parse");
        assert_eq!(
            cold_entry.body.to_text(),
            reference,
            "{name}: cold daemon verdict must match in-process bytes"
        );

        let warm = client::analyze(&cfg, source, &opts, false);
        assert_eq!(
            warm.served,
            Served::Daemon { cache_hit: true },
            "{name}: second request must be a warm hit"
        );
        let warm_entry = warm.result.expect("figure scripts parse");
        assert_eq!(
            warm_entry.body.to_text(),
            reference,
            "{name}: warm verdict must be byte-identical"
        );
        assert_eq!(warm_entry.text, cold_entry.text);
        assert_eq!(warm_entry.findings, cold_entry.findings);
    }
}

#[test]
fn every_key_component_invalidates_independently() {
    let daemon = TestDaemon::start("invalidate");
    let cfg = daemon.client();
    let opts = AnalysisOptions::default();
    let script = shoal_corpus::figures::FIG1;

    // Prime the cache.
    let first = client::analyze(&cfg, script, &opts, false);
    assert_eq!(first.served, Served::Daemon { cache_hit: false });
    let warm = client::analyze(&cfg, script, &opts, false);
    assert_eq!(warm.served, Served::Daemon { cache_hit: true });

    // 1. Script edit: even a trailing comment re-addresses the verdict.
    let edited = format!("{script}# touched\n");
    let r = client::analyze(&cfg, &edited, &opts, false);
    assert_eq!(
        r.served,
        Served::Daemon { cache_hit: false },
        "an edited script must miss"
    );

    // 2. Options change: a different world cap is a different verdict.
    let capped = AnalysisOptions {
        max_worlds: 3,
        ..AnalysisOptions::default()
    };
    let r = client::analyze(&cfg, script, &capped, false);
    assert_eq!(
        r.served,
        Served::Daemon { cache_hit: false },
        "changed options must miss"
    );
    // ...and that narrower request is itself cached under its own key.
    let r = client::analyze(&cfg, script, &capped, false);
    assert_eq!(r.served, Served::Daemon { cache_hit: true });

    // 3. Parse mode: resilient and strict verdicts are distinct.
    let r = client::analyze(&cfg, script, &opts, true);
    assert_eq!(
        r.served,
        Served::Daemon { cache_hit: false },
        "resilient mode must not alias the strict entry"
    );

    // 4/5. Spec fingerprint and version live in the key itself: prove
    // re-addressing at the key level (the daemon pins both per
    // process, so the server-side test is the key function).
    let base = KeyParts {
        source: script,
        options: &opts,
        resilient: false,
        spec_fingerprint: shoal_spec::SpecLibrary::builtin().fingerprint(),
        version: "0.1.0",
    };
    let k0 = cache_key(&base);
    let k_spec = cache_key(&KeyParts {
        spec_fingerprint: base.spec_fingerprint ^ 1,
        ..base
    });
    let k_ver = cache_key(&KeyParts {
        version: "0.1.1",
        ..base
    });
    assert_ne!(k0, k_spec, "a spec-db change must re-address");
    assert_ne!(k0, k_ver, "a version bump must re-address");
}

#[test]
fn unreachable_daemon_falls_back_in_process_with_marker() {
    let cfg = ClientConfig {
        socket: std::env::temp_dir().join(format!(
            "shoal-jit-test-{}-nobody-home.sock",
            std::process::id()
        )),
        auto_spawn: false,
        spawn_wait: Duration::from_millis(50),
        ..ClientConfig::default()
    };
    let opts = AnalysisOptions::default();
    let script = shoal_corpus::figures::FIG3;
    let r = client::analyze(&cfg, script, &opts, false);
    match &r.served {
        Served::Fallback { reason } => {
            assert!(!reason.is_empty(), "fallback must say why");
        }
        other => panic!("expected fallback, got {other:?}"),
    }
    assert_eq!(r.served.marker(), "local-fallback");
    // The verdict itself is never lost — and it is the same bytes the
    // daemon would have served.
    let entry = r.result.expect("figure scripts parse");
    assert_eq!(entry.body.to_text(), reference_body(script, &opts));
}

#[test]
fn profiled_requests_bypass_the_daemon() {
    let daemon = TestDaemon::start("profile");
    let cfg = daemon.client();
    let opts = AnalysisOptions {
        profile: true,
        ..AnalysisOptions::default()
    };
    let r = client::analyze(&cfg, "echo hi\n", &opts, false);
    assert_eq!(
        r.served,
        Served::Fallback {
            reason: "profile-requested".into()
        }
    );
    assert!(r.result.is_ok());
}

#[test]
fn strict_parse_errors_are_verdicts_not_fallbacks() {
    let daemon = TestDaemon::start("parse");
    let cfg = daemon.client();
    let r = client::analyze(&cfg, "if then fi done", &AnalysisOptions::default(), false);
    assert_eq!(r.served, Served::Daemon { cache_hit: false });
    assert!(r.result.is_err(), "an unparsable script is a parse verdict");
    // And it is not cached: asking again re-parses (still a miss).
    let r2 = client::analyze(&cfg, "if then fi done", &AnalysisOptions::default(), false);
    assert_eq!(r2.served, Served::Daemon { cache_hit: false });
}

#[test]
fn status_and_stop_control_path() {
    let daemon = TestDaemon::start("control");
    let cfg = daemon.client();
    let opts = AnalysisOptions::default();
    client::analyze(&cfg, "echo one\n", &opts, false);
    client::analyze(&cfg, "echo one\n", &opts, false);

    let status = client::status(&daemon.socket).expect("status answers");
    assert_eq!(status.get("ok"), Some(&Json::Bool(true)));
    let requests = status.get("requests").and_then(Json::as_u64).unwrap();
    assert!(requests >= 2, "status must count requests, saw {requests}");
    let hits = status.get("hits").and_then(Json::as_u64).unwrap();
    assert!(hits >= 1, "the repeat request must be a hit");
    assert!(status.get("version").and_then(Json::as_str).is_some());
    assert!(status.get("hot_entries").and_then(Json::as_u64).unwrap() >= 1);

    let stop = client::stop(&daemon.socket).expect("stop answers");
    assert_eq!(stop.get("ok"), Some(&Json::Bool(true)));
    // The accept loop exits and removes its socket file.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while daemon.socket.exists() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(!daemon.socket.exists(), "stop must unlink the socket");
}

#[test]
fn concurrent_clients_all_get_correct_verdicts() {
    let daemon = TestDaemon::start("concurrent");
    let opts = AnalysisOptions::default();
    let mut expected = Vec::new();
    for (_, source) in figures() {
        expected.push((source, reference_body(source, &opts)));
    }
    let socket = daemon.socket.clone();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let expected = expected.clone();
            let socket = socket.clone();
            std::thread::spawn(move || {
                let cfg = ClientConfig {
                    socket,
                    auto_spawn: false,
                    spawn_wait: Duration::from_millis(100),
                    ..ClientConfig::default()
                };
                let (source, want) = &expected[i % expected.len()];
                for _ in 0..4 {
                    let r = client::analyze(&cfg, source, &AnalysisOptions::default(), false);
                    assert!(matches!(r.served, Served::Daemon { .. }));
                    assert_eq!(r.result.unwrap().body.to_text(), *want);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn malformed_frames_get_structured_errors() {
    let daemon = TestDaemon::start("badreq");
    // Hand-roll a connection with a junk payload.
    let mut stream = std::os::unix::net::UnixStream::connect(&daemon.socket).unwrap();
    shoal_obs::frame::write_frame(&mut stream, b"{\"op\":\"analyze\"}").unwrap();
    let payload = shoal_obs::frame::read_frame(&mut stream).unwrap().unwrap();
    let json = Json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(json.get("error").and_then(Json::as_str), Some("bad-request"));

    // The connection survives: a well-formed request on the same
    // stream still answers.
    let ok = Request::Status.to_json().to_text();
    shoal_obs::frame::write_frame(&mut stream, ok.as_bytes()).unwrap();
    let payload = shoal_obs::frame::read_frame(&mut stream).unwrap().unwrap();
    let json = Json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
}

#[test]
fn disk_tier_survives_daemon_restart() {
    let base = std::env::temp_dir().join(format!("shoal-jit-test-{}-restart", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let cache_dir = base.join("cache");
    let script = shoal_corpus::figures::FIG2;
    let opts = AnalysisOptions::default();

    let start = |sock: PathBuf| {
        let config = ServerConfig {
            socket: sock.clone(),
            cache_dir: Some(cache_dir.clone()),
            cache_capacity: 64,
            jobs: 1,
            ..ServerConfig::default()
        };
        let t = std::thread::spawn(move || run(config));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline {
            if std::os::unix::net::UnixStream::connect(&sock).is_ok() {
                return t;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("daemon did not come up");
    };
    let cfg_for = |sock: &PathBuf| ClientConfig {
        socket: sock.clone(),
        auto_spawn: false,
        spawn_wait: Duration::from_millis(100),
        ..ClientConfig::default()
    };

    let sock1 = base.join("d1.sock");
    let t1 = start(sock1.clone());
    let first = client::analyze(&cfg_for(&sock1), script, &opts, false);
    assert_eq!(first.served, Served::Daemon { cache_hit: false });
    client::stop(&sock1).unwrap();
    t1.join().unwrap().unwrap();

    // A brand-new daemon process (fresh hot tier) over the same cache
    // dir serves the verdict warm, from disk.
    let sock2 = base.join("d2.sock");
    let t2 = start(sock2.clone());
    let second = client::analyze(&cfg_for(&sock2), script, &opts, false);
    assert_eq!(
        second.served,
        Served::Daemon { cache_hit: true },
        "restart must not lose the disk tier"
    );
    assert_eq!(
        second.result.unwrap().body.to_text(),
        first.result.unwrap().body.to_text()
    );
    client::stop(&sock2).unwrap();
    t2.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&base);
}
