//! `shoal bench-service`: a closed-loop load generator for the daemon.
//!
//! K client threads issue analyze requests over the real unix socket
//! (the same frames, the same client code path `shoal jit` uses), each
//! thread waiting for its response before sending the next — closed
//! loop, so the offered load adapts to what the service sustains
//! instead of overrunning it. The workload is deterministic: every
//! request is drawn from the figure corpus by
//! `(client * requests + i) % corpus`, so two runs of the same shape
//! issue byte-identical request sequences.
//!
//! Per-request wall latency (connect + frame + serve + read) lands in
//! a [`LogHistogram`]; the report carries p50/p95/p99 in nanoseconds,
//! ready for `BENCH_daemon.json` via the `shoal-bench/v1` `ns/iter`
//! line format ([`BenchReport::render_bench_lines`]). Every served
//! verdict is also compared against a locally computed reference, so a
//! load run doubles as a byte-identity check under concurrency.

use crate::cache::Entry;
use crate::client::{self, ClientConfig, Served};
use crate::server::{run, ServerConfig};
use shoal_core::AnalysisOptions;
use shoal_obs::json::Json;
use shoal_obs::LogHistogram;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator shape.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues (closed loop).
    pub requests: usize,
    /// Socket of a running daemon; `None` spawns a private in-process
    /// daemon on a temp socket (cold cache) and stops it afterwards.
    pub socket: Option<PathBuf>,
    /// Overload mode: the private daemon is started deliberately tiny
    /// (one analysis slot, a two-deep queue, a short queue wait) so the
    /// run exercises the shield — sheds and coalesced fan-outs are
    /// counted and reported as rates. Requires a private daemon
    /// (`socket: None`); with an external socket the flag only changes
    /// the report shape.
    pub overload: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            clients: 4,
            requests: 25,
            socket: None,
            overload: false,
        }
    }
}

/// What a load run observed.
pub struct BenchReport {
    pub clients: usize,
    /// Completed requests (clients × per-client requests).
    pub total: u64,
    pub hits: u64,
    pub misses: u64,
    pub fallbacks: u64,
    /// Requests the daemon shed (client fell back locally with a
    /// `daemon shed (…)` reason). A subset of `fallbacks`.
    pub sheds: u64,
    /// Coalesced fan-outs the daemon reported over the run (from its
    /// shield stats; 0 when benching an external socket, whose
    /// lifetime counters are not this run's).
    pub coalesced: u64,
    /// Responses whose verdict differed from the local reference
    /// analysis (must be 0: the byte-identity invariant under load).
    pub mismatches: u64,
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// Per-request latency in **nanoseconds** (bench convention).
    pub latency_ns: LogHistogram,
}

impl BenchReport {
    /// Closed-loop throughput (requests per second).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.total as f64 / secs
        } else {
            0.0
        }
    }

    /// Human summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench-service: {} client(s) x {} request(s) in {:.2}s ({:.0} req/s)",
            self.clients,
            if self.clients > 0 {
                self.total / self.clients as u64
            } else {
                0
            },
            self.elapsed.as_secs_f64(),
            self.throughput(),
        );
        let _ = writeln!(
            out,
            "  served: {} hit(s), {} miss(es), {} fallback(s), {} mismatch(es)",
            self.hits, self.misses, self.fallbacks, self.mismatches
        );
        if self.sheds > 0 || self.coalesced > 0 {
            let _ = writeln!(
                out,
                "  shield: {} shed(s), {} coalesced fan-out(s)",
                self.sheds, self.coalesced
            );
        }
        let _ = writeln!(
            out,
            "  latency: p50 {}µs  p95 {}µs  p99 {}µs  max {}µs",
            self.latency_ns.p50() / 1_000,
            self.latency_ns.p95() / 1_000,
            self.latency_ns.p99() / 1_000,
            self.latency_ns.max / 1_000,
        );
        out
    }

    /// Machine-readable report (`shoal-bench-service/v1`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema".into(),
                Json::Str("shoal-bench-service/v1".into()),
            ),
            ("clients".into(), Json::Num(self.clients as f64)),
            ("total".into(), Json::Num(self.total as f64)),
            ("hits".into(), Json::Num(self.hits as f64)),
            ("misses".into(), Json::Num(self.misses as f64)),
            ("fallbacks".into(), Json::Num(self.fallbacks as f64)),
            ("sheds".into(), Json::Num(self.sheds as f64)),
            ("coalesced".into(), Json::Num(self.coalesced as f64)),
            ("mismatches".into(), Json::Num(self.mismatches as f64)),
            (
                "elapsed_ms".into(),
                Json::Num(self.elapsed.as_millis() as f64),
            ),
            ("throughput_rps".into(), Json::Num(self.throughput())),
            ("latency_ns".into(), self.latency_ns.to_json()),
        ])
    }

    /// `shoal-bench/v1` `ns/iter` lines, named so they land next to the
    /// `jit/*` cases in `BENCH_daemon.json` (same awk-able format as
    /// [`shoal_obs::bench::bench`]).
    pub fn render_bench_lines(&self) -> String {
        [
            ("service/analyze_p50", self.latency_ns.p50()),
            ("service/analyze_p95", self.latency_ns.p95()),
            ("service/analyze_p99", self.latency_ns.p99()),
        ]
        .iter()
        .map(|(name, ns)| format!("{name:<44} {:>12.1} ns/iter (service percentile)\n", *ns as f64))
        .collect()
    }

    /// Overload-mode keys: shed and coalesced counts per 1000 requests.
    /// The literal `ns/iter` token keeps the lines harvestable by the
    /// same awk pass as every other bench case; the keys end in
    /// `_rate`, which the regression gate treats as informational (load
    /// shedding is timing-dependent, not a perf regression signal).
    pub fn render_overload_bench_lines(&self) -> String {
        let per_k = |n: u64| {
            if self.total > 0 {
                (n as f64) * 1000.0 / (self.total as f64)
            } else {
                0.0
            }
        };
        [
            ("service/overload_shed_rate", per_k(self.sheds)),
            ("service/overload_coalesced_rate", per_k(self.coalesced)),
        ]
        .iter()
        .map(|(name, rate)| format!("{name:<44} {rate:>12.1} ns/iter (per 1000 requests)\n"))
        .collect()
    }
}

/// Runs the load. With [`BenchConfig::socket`] unset, a private daemon
/// is spawned in-process (own temp socket and cache dir, removed
/// afterwards), so the numbers include genuinely cold misses.
///
/// # Errors
///
/// Socket/daemon startup failures; the load phase itself never errors
/// (a dead daemon mid-run shows up as `fallbacks`, not a crash).
pub fn run_bench(config: &BenchConfig) -> io::Result<BenchReport> {
    let clients = config.clients.max(1);
    let requests = config.requests.max(1);

    // A private daemon when no socket was given.
    let mut private: Option<(PathBuf, std::thread::JoinHandle<io::Result<()>>, PathBuf)> = None;
    let socket = match &config.socket {
        Some(s) => s.clone(),
        None => {
            let base = std::env::temp_dir().join(format!(
                "shoal-bench-service-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&base);
            std::fs::create_dir_all(&base)?;
            let sock = base.join("daemon.sock");
            let server_config = if config.overload {
                // Deliberately tiny: one engine slot, a two-deep
                // queue, a short wait — so clients >> concurrency
                // actually exercises shed + coalesce paths.
                ServerConfig {
                    socket: sock.clone(),
                    cache_dir: Some(base.join("cache")),
                    cache_capacity: 512,
                    jobs: 1,
                    queue_depth: 2,
                    queue_wait: Duration::from_millis(50),
                    ..ServerConfig::default()
                }
            } else {
                ServerConfig {
                    socket: sock.clone(),
                    cache_dir: Some(base.join("cache")),
                    cache_capacity: 512,
                    ..ServerConfig::default()
                }
            };
            let handle = std::thread::spawn(move || run(server_config));
            let deadline = Instant::now() + Duration::from_secs(5);
            while std::os::unix::net::UnixStream::connect(&sock).is_err() {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "bench-service daemon did not come up",
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            private = Some((sock.clone(), handle, base));
            sock
        }
    };

    // The deterministic workload, with one locally computed reference
    // verdict per distinct script (strict mode, default options —
    // exactly what the service runs).
    let opts = AnalysisOptions::default();
    let corpus: Vec<(&str, Result<Entry, String>)> = shoal_corpus::figures::all()
        .into_iter()
        .map(|(_, source)| {
            let reference = match shoal_core::analyze_source_with(source, opts.clone()) {
                Ok(report) => Ok(crate::entry_from_report(&report)),
                Err(e) => Err(e.to_string()),
            };
            (source, reference)
        })
        .collect();
    let corpus = Arc::new(corpus);

    let hits = Arc::new(AtomicU64::new(0));
    let misses = Arc::new(AtomicU64::new(0));
    let fallbacks = Arc::new(AtomicU64::new(0));
    let sheds = Arc::new(AtomicU64::new(0));
    let mismatches = Arc::new(AtomicU64::new(0));

    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let corpus = Arc::clone(&corpus);
            let (hits, misses) = (Arc::clone(&hits), Arc::clone(&misses));
            let (fallbacks, mismatches) = (Arc::clone(&fallbacks), Arc::clone(&mismatches));
            let sheds = Arc::clone(&sheds);
            let cfg = ClientConfig {
                socket: socket.clone(),
                auto_spawn: false,
                spawn_wait: Duration::from_millis(100),
                ..ClientConfig::default()
            };
            std::thread::spawn(move || {
                let opts = AnalysisOptions::default();
                let mut samples = Vec::with_capacity(requests);
                for i in 0..requests {
                    let (source, reference) = &corpus[(c * requests + i) % corpus.len()];
                    let t0 = Instant::now();
                    let r = client::analyze(&cfg, source, &opts, false);
                    samples.push(t0.elapsed().as_nanos() as u64);
                    match &r.served {
                        Served::Daemon { cache_hit: true } => hits.fetch_add(1, Ordering::Relaxed),
                        Served::Daemon { cache_hit: false } => {
                            misses.fetch_add(1, Ordering::Relaxed)
                        }
                        Served::Fallback { reason } => {
                            if reason.starts_with("daemon shed") {
                                sheds.fetch_add(1, Ordering::Relaxed);
                            }
                            fallbacks.fetch_add(1, Ordering::Relaxed)
                        }
                    };
                    let matches = match (&r.result, reference) {
                        (Ok(got), Ok(want)) => got == want,
                        (Err(got), Err(want)) => got == want,
                        _ => false,
                    };
                    if !matches {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
                samples
            })
        })
        .collect();

    let mut latency_ns = LogHistogram::default();
    for t in threads {
        for ns in t.join().expect("bench client thread") {
            latency_ns.record(ns);
        }
    }
    let elapsed = started.elapsed();

    // The coalesced count lives in the daemon's shield stats; read it
    // before stopping a private daemon (its counters are this run's —
    // an external daemon's lifetime counters are not).
    let coalesced = if private.is_some() {
        client::stats(&socket)
            .ok()
            .and_then(|j| {
                j.get("shield")
                    .and_then(|s| s.get("coalesced"))
                    .and_then(Json::as_u64)
            })
            .unwrap_or(0)
    } else {
        0
    };

    if let Some((sock, handle, base)) = private {
        let _ = client::stop(&sock);
        let _ = handle.join();
        let _ = std::fs::remove_dir_all(&base);
    }

    Ok(BenchReport {
        clients,
        total: (clients * requests) as u64,
        hits: hits.load(Ordering::Relaxed),
        misses: misses.load(Ordering::Relaxed),
        fallbacks: fallbacks.load(Ordering::Relaxed),
        sheds: sheds.load(Ordering::Relaxed),
        coalesced,
        mismatches: mismatches.load(Ordering::Relaxed),
        elapsed,
        latency_ns,
    })
}
