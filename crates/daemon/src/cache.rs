//! The content-addressed result cache.
//!
//! A verdict is addressed by everything that can change it and nothing
//! else:
//!
//! * the script blob (bytes, not path — renaming or copying a script
//!   hits the same entry),
//! * the canonicalized [`shoal_core::AnalysisOptions`]
//!   ([`AnalysisOptions::canonical`]) plus the strict/resilient parse
//!   mode,
//! * the spec-database fingerprint ([`shoal_spec::SpecLibrary::fingerprint`]),
//! * the shoal version.
//!
//! Changing any component changes the key, so invalidation is free:
//! stale entries simply stop being addressed (the disk layer is
//! garbage, not poison). Two tiers:
//!
//! * a bounded in-memory LRU (hot verdicts, zero deserialization),
//! * an on-disk store (`<dir>/<k[0..2]>/<key>.json`, atomic
//!   temp-file + rename writes) that survives daemon restarts.
//!
//! Counters: `daemon.cache_hit` / `daemon.cache_miss` /
//! `daemon.cache_disk_hit` / `daemon.cache_evict`.

use shoal_core::AnalysisOptions;
use shoal_obs::json::Json;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Schema tag of one serialized cache entry.
pub const CACHE_SCHEMA: &str = "shoal-jit-cache/v1";

/// Everything that addresses one cached verdict.
#[derive(Clone, Copy)]
pub struct KeyParts<'a> {
    /// The script source bytes.
    pub source: &'a str,
    /// [`AnalysisOptions::canonical`] of the request options.
    pub options: &'a AnalysisOptions,
    /// Strict (`analyze`) vs. recovering (`scan`) parsing — different
    /// outputs, different entries.
    pub resilient: bool,
    /// [`shoal_spec::SpecLibrary::fingerprint`] of the spec database.
    pub spec_fingerprint: u64,
    /// The shoal version string.
    pub version: &'a str,
}

/// The 32-hex-digit content address of a request.
pub fn cache_key(parts: &KeyParts) -> String {
    shoal_obs::hash::keyed_hash128(&[
        ("blob", parts.source.as_bytes()),
        ("options", parts.options.canonical().as_bytes()),
        (
            "mode",
            if parts.resilient {
                b"resilient"
            } else {
                b"strict"
            },
        ),
        ("specs", parts.spec_fingerprint.to_string().as_bytes()),
        ("version", parts.version.as_bytes()),
    ])
}

/// One cached verdict: the path-free report body plus the pre-rendered
/// diagnostic display lines and the warning-or-worse count (so text
/// clients never re-derive severity).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// `report_body_fields` object (no `path`).
    pub body: Json,
    /// Full `Display` rendering of each diagnostic, in report order.
    pub text: Vec<String>,
    /// Diagnostics at warning severity or above.
    pub findings: usize,
}

impl Entry {
    /// Serializes for the disk tier.
    pub fn to_json(&self, key: &str) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(CACHE_SCHEMA.into())),
            ("key".into(), Json::Str(key.into())),
            ("findings".into(), Json::Num(self.findings as f64)),
            (
                "text".into(),
                Json::Arr(self.text.iter().map(|t| Json::Str(t.clone())).collect()),
            ),
            ("body".into(), self.body.clone()),
        ])
    }

    /// Deserializes a disk entry; `None` on schema/shape mismatch (a
    /// corrupt or foreign file is a miss, never an error).
    pub fn from_json(json: &Json, key: &str) -> Option<Entry> {
        if json.get("schema").and_then(Json::as_str) != Some(CACHE_SCHEMA) {
            return None;
        }
        if json.get("key").and_then(Json::as_str) != Some(key) {
            return None;
        }
        let findings = json.get("findings")?.as_u64()? as usize;
        let text = match json.get("text")? {
            Json::Arr(items) => items
                .iter()
                .map(|t| t.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        let body = json.get("body")?.clone();
        Some(Entry {
            body,
            text,
            findings,
        })
    }
}

/// Bounded in-memory LRU in front of an optional on-disk store.
pub struct ResultCache {
    /// In-memory tier: key → (entry, last-use tick).
    hot: HashMap<String, (Entry, u64)>,
    /// LRU clock (monotonic per cache).
    tick: u64,
    /// In-memory capacity (entries).
    capacity: usize,
    /// Disk tier root; `None` disables persistence.
    dir: Option<PathBuf>,
    /// Lifetime hot-tier evictions.
    evictions: u64,
}

/// Point-in-time cache statistics for `daemon status`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    pub hot_entries: usize,
    pub disk_entries: usize,
    pub evictions: u64,
}

impl ResultCache {
    /// A cache holding up to `capacity` hot entries, persisting to
    /// `dir` when given.
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> ResultCache {
        ResultCache {
            hot: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
            dir,
            evictions: 0,
        }
    }

    fn disk_path(&self, key: &str) -> Option<PathBuf> {
        let shard = key.get(..2).unwrap_or("__");
        self.dir
            .as_ref()
            .map(|d| d.join(shard).join(format!("{key}.json")))
    }

    /// Looks up a key: hot tier first, then disk (promoting to hot).
    pub fn get(&mut self, key: &str) -> Option<Entry> {
        self.tick += 1;
        if let Some((entry, used)) = self.hot.get_mut(key) {
            *used = self.tick;
            shoal_obs::counter_add("daemon.cache_hit", 1);
            return Some(entry.clone());
        }
        if let Some(path) = self.disk_path(key) {
            if let Some(entry) = read_disk_entry(&path, key) {
                shoal_obs::counter_add("daemon.cache_hit", 1);
                shoal_obs::counter_add("daemon.cache_disk_hit", 1);
                self.insert_hot(key.to_string(), entry.clone());
                return Some(entry);
            }
        }
        shoal_obs::counter_add("daemon.cache_miss", 1);
        None
    }

    /// Stores a verdict in both tiers (disk write is best-effort: an
    /// unwritable cache dir degrades to memory-only, never to an
    /// error).
    pub fn put(&mut self, key: String, entry: Entry) {
        if let Some(path) = self.disk_path(&key) {
            write_disk_entry(&path, &entry.to_json(&key).to_text());
        }
        self.insert_hot(key, entry);
    }

    fn insert_hot(&mut self, key: String, entry: Entry) {
        self.tick += 1;
        if self.hot.len() >= self.capacity && !self.hot.contains_key(&key) {
            // Evict the least-recently-used entry. O(n) scan — the hot
            // tier is small (hundreds) and eviction is off the hit
            // path.
            if let Some(lru) = self
                .hot
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.hot.remove(&lru);
                self.evictions += 1;
                shoal_obs::counter_add("daemon.cache_evict", 1);
            }
        }
        self.hot.insert(key, (entry, self.tick));
    }

    /// Entry counts for `daemon status`.
    pub fn stats(&self) -> CacheStats {
        let disk_entries = match &self.dir {
            None => 0,
            Some(dir) => count_disk_entries(dir),
        };
        CacheStats {
            hot_entries: self.hot.len(),
            disk_entries,
            evictions: self.evictions,
        }
    }
}

fn read_disk_entry(path: &Path, key: &str) -> Option<Entry> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = Json::parse(&text).ok()?;
    Entry::from_json(&json, key)
}

fn write_disk_entry(path: &Path, contents: &str) {
    let Some(parent) = path.parent() else { return };
    if std::fs::create_dir_all(parent).is_err() {
        return;
    }
    // Atomic publish: a reader sees the old entry or the new one,
    // never a torn write. The tmp name carries the pid so two daemons
    // sharing a cache dir cannot clobber each other's tmp files.
    let tmp = parent.join(format!(
        ".tmp.{}.{}",
        std::process::id(),
        path.file_name().and_then(|n| n.to_str()).unwrap_or("entry")
    ));
    if std::fs::write(&tmp, contents).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

fn count_disk_entries(dir: &Path) -> usize {
    let Ok(shards) = std::fs::read_dir(dir) else {
        return 0;
    };
    shards
        .filter_map(|s| s.ok())
        .filter(|s| s.path().is_dir())
        .map(|s| {
            std::fs::read_dir(s.path())
                .map(|rd| {
                    rd.filter_map(|e| e.ok())
                        .filter(|e| {
                            e.file_name()
                                .to_str()
                                .map(|n| n.ends_with(".json"))
                                .unwrap_or(false)
                        })
                        .count()
                })
                .unwrap_or(0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: usize) -> Entry {
        Entry {
            body: Json::Obj(vec![("n".into(), Json::Num(n as f64))]),
            text: vec![format!("line {n}")],
            findings: n,
        }
    }

    fn opts() -> AnalysisOptions {
        AnalysisOptions::default()
    }

    #[test]
    fn key_changes_with_every_component() {
        let o = opts();
        let base = cache_key(&KeyParts {
            source: "echo hi\n",
            options: &o,
            resilient: false,
            spec_fingerprint: 1,
            version: "0.1.0",
        });
        let edited_script = cache_key(&KeyParts {
            source: "echo hi # edited\n",
            options: &o,
            resilient: false,
            spec_fingerprint: 1,
            version: "0.1.0",
        });
        let bigger_cap = AnalysisOptions {
            max_worlds: 128,
            ..opts()
        };
        let changed_options = cache_key(&KeyParts {
            source: "echo hi\n",
            options: &bigger_cap,
            resilient: false,
            spec_fingerprint: 1,
            version: "0.1.0",
        });
        let new_specs = cache_key(&KeyParts {
            source: "echo hi\n",
            options: &o,
            resilient: false,
            spec_fingerprint: 2,
            version: "0.1.0",
        });
        let new_version = cache_key(&KeyParts {
            source: "echo hi\n",
            options: &o,
            resilient: false,
            spec_fingerprint: 1,
            version: "0.2.0",
        });
        let resilient = cache_key(&KeyParts {
            source: "echo hi\n",
            options: &o,
            resilient: true,
            spec_fingerprint: 1,
            version: "0.1.0",
        });
        let keys = [
            &base,
            &edited_script,
            &changed_options,
            &new_specs,
            &new_version,
            &resilient,
        ];
        for (i, a) in keys.iter().enumerate() {
            assert_eq!(a.len(), 32);
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b, "every key component must move the address");
            }
        }
        // And the key is a pure function of its parts.
        assert_eq!(
            base,
            cache_key(&KeyParts {
                source: "echo hi\n",
                options: &o,
                resilient: false,
                spec_fingerprint: 1,
                version: "0.1.0",
            })
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2, None);
        c.put("k1".into(), entry(1));
        c.put("k2".into(), entry(2));
        assert!(c.get("k1").is_some()); // k1 now more recent than k2
        c.put("k3".into(), entry(3)); // evicts k2
        assert!(c.get("k2").is_none());
        assert!(c.get("k1").is_some());
        assert!(c.get("k3").is_some());
        assert_eq!(c.stats().hot_entries, 2);
    }

    #[test]
    fn disk_tier_round_trips_and_survives_a_new_cache() {
        let dir = std::env::temp_dir().join(format!("shoal-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = ResultCache::new(8, Some(dir.clone()));
            c.put("aabbccddeeff00112233445566778899".into(), entry(7));
        }
        // Fresh cache, same dir: the entry comes back from disk.
        let mut c2 = ResultCache::new(8, Some(dir.clone()));
        let got = c2
            .get("aabbccddeeff00112233445566778899")
            .expect("disk entry survives restart");
        assert_eq!(got, entry(7));
        assert_eq!(c2.stats().disk_entries, 1);
        // A corrupt file is a miss, not an error.
        std::fs::write(dir.join("aa").join("corrupt.json"), "{not json").unwrap();
        assert!(c2.get("corrupt").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_serialization_rejects_foreign_schemas() {
        let e = entry(3);
        let json = e.to_json("deadbeef");
        assert_eq!(Entry::from_json(&json, "deadbeef"), Some(e));
        assert_eq!(Entry::from_json(&json, "othernope"), None);
        let foreign = Json::Obj(vec![("schema".into(), Json::Str("other/v9".into()))]);
        assert_eq!(Entry::from_json(&foreign, "deadbeef"), None);
    }
}
