//! The content-addressed result cache.
//!
//! A verdict is addressed by everything that can change it and nothing
//! else:
//!
//! * the script blob (bytes, not path — renaming or copying a script
//!   hits the same entry),
//! * the canonicalized [`shoal_core::AnalysisOptions`]
//!   ([`AnalysisOptions::canonical`]) plus the strict/resilient parse
//!   mode,
//! * the spec-database fingerprint ([`shoal_spec::SpecLibrary::fingerprint`]),
//! * the shoal version.
//!
//! Changing any component changes the key, so invalidation is free:
//! stale entries simply stop being addressed (the disk layer is
//! garbage, not poison). Two tiers:
//!
//! * a bounded in-memory LRU (hot verdicts, zero deserialization),
//! * an on-disk store (`<dir>/<k[0..2]>/<key>.json`, atomic
//!   temp-file + rename writes) that survives daemon restarts.
//!
//! Every outcome is counted by name in [`OutcomeCounters`] (hot hit,
//! disk hit, miss, corrupt-entry miss, write failure, eviction) — the
//! taxonomy is total, so `hot_hits + disk_hits + misses == lookups`
//! always holds. The same events also feed the global obs counters
//! (`daemon.cache_hit` etc.) when recording is on, but the stats plane
//! reads the struct fields, which are always live.

use shoal_core::AnalysisOptions;
use shoal_obs::json::Json;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Schema tag of one serialized cache entry.
pub const CACHE_SCHEMA: &str = "shoal-jit-cache/v1";

/// Everything that addresses one cached verdict.
#[derive(Clone, Copy)]
pub struct KeyParts<'a> {
    /// The script source bytes.
    pub source: &'a str,
    /// [`AnalysisOptions::canonical`] of the request options.
    pub options: &'a AnalysisOptions,
    /// Strict (`analyze`) vs. recovering (`scan`) parsing — different
    /// outputs, different entries.
    pub resilient: bool,
    /// [`shoal_spec::SpecLibrary::fingerprint`] of the spec database.
    pub spec_fingerprint: u64,
    /// The shoal version string.
    pub version: &'a str,
}

/// The 32-hex-digit content address of a request.
pub fn cache_key(parts: &KeyParts) -> String {
    shoal_obs::hash::keyed_hash128(&[
        ("blob", parts.source.as_bytes()),
        ("options", parts.options.canonical().as_bytes()),
        (
            "mode",
            if parts.resilient {
                b"resilient"
            } else {
                b"strict"
            },
        ),
        ("specs", parts.spec_fingerprint.to_string().as_bytes()),
        ("version", parts.version.as_bytes()),
    ])
}

/// One cached verdict: the path-free report body plus the pre-rendered
/// diagnostic display lines and the warning-or-worse count (so text
/// clients never re-derive severity).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// `report_body_fields` object (no `path`).
    pub body: Json,
    /// Full `Display` rendering of each diagnostic, in report order.
    pub text: Vec<String>,
    /// Diagnostics at warning severity or above.
    pub findings: usize,
}

impl Entry {
    /// Serializes for the disk tier.
    pub fn to_json(&self, key: &str) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(CACHE_SCHEMA.into())),
            ("key".into(), Json::Str(key.into())),
            ("findings".into(), Json::Num(self.findings as f64)),
            (
                "text".into(),
                Json::Arr(self.text.iter().map(|t| Json::Str(t.clone())).collect()),
            ),
            ("body".into(), self.body.clone()),
        ])
    }

    /// Deserializes a disk entry; `None` on schema/shape mismatch (a
    /// corrupt or foreign file is a miss, never an error).
    pub fn from_json(json: &Json, key: &str) -> Option<Entry> {
        if json.get("schema").and_then(Json::as_str) != Some(CACHE_SCHEMA) {
            return None;
        }
        if json.get("key").and_then(Json::as_str) != Some(key) {
            return None;
        }
        let findings = json.get("findings")?.as_u64()? as usize;
        let text = match json.get("text")? {
            Json::Arr(items) => items
                .iter()
                .map(|t| t.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        let body = json.get("body")?.clone();
        Some(Entry {
            body,
            text,
            findings,
        })
    }
}

/// Bounded in-memory LRU in front of an optional on-disk store.
pub struct ResultCache {
    /// In-memory tier: key → (entry, last-use tick).
    hot: HashMap<String, (Entry, u64)>,
    /// LRU clock (monotonic per cache).
    tick: u64,
    /// In-memory capacity (entries).
    capacity: usize,
    /// Disk tier root; `None` disables persistence.
    dir: Option<PathBuf>,
    /// Disk-tier size cap in bytes; `None` means unbounded. When a put
    /// pushes the tier past the cap, oldest-mtime entries are evicted
    /// until it fits again (a long-lived daemon can't fill the disk).
    disk_cap: Option<u64>,
    /// Running estimate of disk-tier bytes (seeded by one walk at
    /// construction, maintained incrementally, re-measured on GC).
    disk_used: u64,
    /// Lifetime outcome counters (the cache's own telemetry — the
    /// global obs recorder is off by default, so the stats plane reads
    /// these, not `shoal_obs` counters).
    stats: OutcomeCounters,
}

/// Every cache outcome, named. The taxonomy is total:
/// `hot_hits + disk_hits + misses == lookups`, and
/// `corrupt_misses <= misses` (a corrupt or foreign disk entry is one
/// kind of miss, never an error).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounters {
    /// Lifetime `get` calls.
    pub lookups: u64,
    /// Served from the in-memory tier.
    pub hot_hits: u64,
    /// Served from the disk tier (and promoted to hot).
    pub disk_hits: u64,
    /// Nothing addressable (includes `corrupt_misses`).
    pub misses: u64,
    /// Disk file present but unreadable as a `shoal-jit-cache/v1`
    /// entry for this key (corrupt, foreign schema, or key mismatch).
    pub corrupt_misses: u64,
    /// Disk-tier writes that failed (tmp write or rename); the entry
    /// degraded to memory-only.
    pub write_failures: u64,
    /// Hot-tier LRU evictions.
    pub evictions: u64,
    /// Disk-tier files removed by the size-capped GC (oldest mtime
    /// first).
    pub disk_evictions: u64,
}

/// Point-in-time cache statistics for `daemon status` / `stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    pub hot_entries: usize,
    pub disk_entries: usize,
    pub capacity: usize,
    pub outcomes: OutcomeCounters,
    /// Kept for the `shoal-jit/v1` status verb (mirrors
    /// `outcomes.evictions`).
    pub evictions: u64,
}

impl ResultCache {
    /// A cache holding up to `capacity` hot entries, persisting to
    /// `dir` when given, with the disk tier capped at `disk_cap` bytes
    /// (`None` = unbounded).
    pub fn new(capacity: usize, dir: Option<PathBuf>, disk_cap: Option<u64>) -> ResultCache {
        let disk_used = match (&dir, disk_cap) {
            (Some(d), Some(_)) => walk_disk_entries(d).iter().map(|(_, _, len)| len).sum(),
            _ => 0,
        };
        ResultCache {
            hot: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
            dir,
            disk_cap,
            disk_used,
            stats: OutcomeCounters::default(),
        }
    }

    fn disk_path(&self, key: &str) -> Option<PathBuf> {
        let shard = key.get(..2).unwrap_or("__");
        self.dir
            .as_ref()
            .map(|d| d.join(shard).join(format!("{key}.json")))
    }

    /// Looks up a key: hot tier first, then disk (promoting to hot).
    pub fn get(&mut self, key: &str) -> Option<Entry> {
        self.tick += 1;
        self.stats.lookups += 1;
        if let Some((entry, used)) = self.hot.get_mut(key) {
            *used = self.tick;
            self.stats.hot_hits += 1;
            shoal_obs::counter_add("daemon.cache_hit", 1);
            return Some(entry.clone());
        }
        if let Some(path) = self.disk_path(key) {
            match read_disk_entry(&path, key) {
                DiskRead::Hit(entry) => {
                    self.stats.disk_hits += 1;
                    shoal_obs::counter_add("daemon.cache_hit", 1);
                    shoal_obs::counter_add("daemon.cache_disk_hit", 1);
                    self.insert_hot(key.to_string(), entry.clone());
                    return Some(entry);
                }
                DiskRead::Corrupt => {
                    // Counted, but still just a miss: the entry will be
                    // recomputed and rewritten over the bad file.
                    self.stats.corrupt_misses += 1;
                    shoal_obs::counter_add("daemon.cache_corrupt_miss", 1);
                }
                DiskRead::Absent => {}
            }
        }
        self.stats.misses += 1;
        shoal_obs::counter_add("daemon.cache_miss", 1);
        None
    }

    /// Stores a verdict in both tiers (disk write is best-effort: an
    /// unwritable cache dir degrades to memory-only, never to an
    /// error — but the degradation is counted).
    pub fn put(&mut self, key: String, entry: Entry) {
        if let Some(path) = self.disk_path(&key) {
            let contents = entry.to_json(&key).to_text();
            if write_disk_entry(&path, &contents) {
                self.disk_used += contents.len() as u64;
                self.maybe_gc(&key);
            } else {
                self.stats.write_failures += 1;
                shoal_obs::counter_add("daemon.cache_write_failure", 1);
            }
        }
        self.insert_hot(key, entry);
    }

    /// Size-capped disk GC: when the tier exceeds its byte cap, walk
    /// it, sort by (mtime, path) ascending, and delete oldest entries
    /// until it fits — sparing the just-written `fresh` key, which is
    /// by definition the newest verdict. Runs off the hit path (only
    /// after a disk write) and only when a cap is configured.
    fn maybe_gc(&mut self, fresh: &str) {
        let (Some(cap), Some(dir)) = (self.disk_cap, self.dir.clone()) else {
            return;
        };
        if self.disk_used <= cap {
            return;
        }
        let fresh_name = format!("{fresh}.json");
        let mut entries = walk_disk_entries(&dir);
        entries.sort();
        self.disk_used = entries.iter().map(|(_, _, len)| len).sum();
        for (_mtime, path, len) in entries {
            if self.disk_used <= cap {
                break;
            }
            if path.file_name().and_then(|n| n.to_str()) == Some(fresh_name.as_str()) {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                self.disk_used = self.disk_used.saturating_sub(len);
                self.stats.disk_evictions += 1;
                shoal_obs::counter_add("daemon.cache_disk_evict", 1);
            }
        }
    }

    fn insert_hot(&mut self, key: String, entry: Entry) {
        self.tick += 1;
        if self.hot.len() >= self.capacity && !self.hot.contains_key(&key) {
            // Evict the least-recently-used entry. O(n) scan — the hot
            // tier is small (hundreds) and eviction is off the hit
            // path.
            if let Some(lru) = self
                .hot
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.hot.remove(&lru);
                self.stats.evictions += 1;
                shoal_obs::counter_add("daemon.cache_evict", 1);
            }
        }
        self.hot.insert(key, (entry, self.tick));
    }

    /// Lifetime outcome counters (no disk scan; cheap).
    pub fn outcomes(&self) -> OutcomeCounters {
        self.stats
    }

    /// Entry counts for `daemon status` (walks the disk tier).
    pub fn stats(&self) -> CacheStats {
        let disk_entries = match &self.dir {
            None => 0,
            Some(dir) => count_disk_entries(dir),
        };
        CacheStats {
            hot_entries: self.hot.len(),
            disk_entries,
            capacity: self.capacity,
            outcomes: self.stats,
            evictions: self.stats.evictions,
        }
    }
}

/// What a disk-tier lookup found. `Corrupt` and `Absent` both miss,
/// but only one of them means data loss worth counting.
enum DiskRead {
    Hit(Entry),
    Absent,
    Corrupt,
}

fn read_disk_entry(path: &Path, key: &str) -> DiskRead {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        // No file (or unreadable) — the common cold-cache case.
        Err(_) => return DiskRead::Absent,
    };
    match Json::parse(&text).ok().as_ref().and_then(|j| Entry::from_json(j, key)) {
        Some(entry) => DiskRead::Hit(entry),
        None => DiskRead::Corrupt,
    }
}

/// Returns `true` iff the entry was durably published.
fn write_disk_entry(path: &Path, contents: &str) -> bool {
    let Some(parent) = path.parent() else {
        return false;
    };
    if std::fs::create_dir_all(parent).is_err() {
        return false;
    }
    // Atomic publish: a reader sees the old entry or the new one,
    // never a torn write. The tmp name carries the pid so two daemons
    // sharing a cache dir cannot clobber each other's tmp files.
    let tmp = parent.join(format!(
        ".tmp.{}.{}",
        std::process::id(),
        path.file_name().and_then(|n| n.to_str()).unwrap_or("entry")
    ));
    if std::fs::write(&tmp, contents).is_err() {
        return false;
    }
    if std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    true
}

/// Walks the disk tier: every `.json` entry as (mtime, path, bytes).
/// Unstat-able files are skipped (they are being concurrently
/// replaced; the next GC pass sees the final state).
fn walk_disk_entries(dir: &Path) -> Vec<(std::time::SystemTime, PathBuf, u64)> {
    let Ok(shards) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for shard in shards.filter_map(|s| s.ok()) {
        let shard_path = shard.path();
        if !shard_path.is_dir() {
            continue;
        }
        let Ok(entries) = std::fs::read_dir(&shard_path) else {
            continue;
        };
        for e in entries.filter_map(|e| e.ok()) {
            let path = e.path();
            let is_entry = path
                .file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.ends_with(".json"))
                .unwrap_or(false);
            if !is_entry {
                continue;
            }
            let Ok(meta) = e.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            out.push((mtime, path, meta.len()));
        }
    }
    out
}

fn count_disk_entries(dir: &Path) -> usize {
    let Ok(shards) = std::fs::read_dir(dir) else {
        return 0;
    };
    shards
        .filter_map(|s| s.ok())
        .filter(|s| s.path().is_dir())
        .map(|s| {
            std::fs::read_dir(s.path())
                .map(|rd| {
                    rd.filter_map(|e| e.ok())
                        .filter(|e| {
                            e.file_name()
                                .to_str()
                                .map(|n| n.ends_with(".json"))
                                .unwrap_or(false)
                        })
                        .count()
                })
                .unwrap_or(0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: usize) -> Entry {
        Entry {
            body: Json::Obj(vec![("n".into(), Json::Num(n as f64))]),
            text: vec![format!("line {n}")],
            findings: n,
        }
    }

    fn opts() -> AnalysisOptions {
        AnalysisOptions::default()
    }

    #[test]
    fn key_changes_with_every_component() {
        let o = opts();
        let base = cache_key(&KeyParts {
            source: "echo hi\n",
            options: &o,
            resilient: false,
            spec_fingerprint: 1,
            version: "0.1.0",
        });
        let edited_script = cache_key(&KeyParts {
            source: "echo hi # edited\n",
            options: &o,
            resilient: false,
            spec_fingerprint: 1,
            version: "0.1.0",
        });
        let bigger_cap = AnalysisOptions {
            max_worlds: 128,
            ..opts()
        };
        let changed_options = cache_key(&KeyParts {
            source: "echo hi\n",
            options: &bigger_cap,
            resilient: false,
            spec_fingerprint: 1,
            version: "0.1.0",
        });
        let new_specs = cache_key(&KeyParts {
            source: "echo hi\n",
            options: &o,
            resilient: false,
            spec_fingerprint: 2,
            version: "0.1.0",
        });
        let new_version = cache_key(&KeyParts {
            source: "echo hi\n",
            options: &o,
            resilient: false,
            spec_fingerprint: 1,
            version: "0.2.0",
        });
        let resilient = cache_key(&KeyParts {
            source: "echo hi\n",
            options: &o,
            resilient: true,
            spec_fingerprint: 1,
            version: "0.1.0",
        });
        let keys = [
            &base,
            &edited_script,
            &changed_options,
            &new_specs,
            &new_version,
            &resilient,
        ];
        for (i, a) in keys.iter().enumerate() {
            assert_eq!(a.len(), 32);
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b, "every key component must move the address");
            }
        }
        // And the key is a pure function of its parts.
        assert_eq!(
            base,
            cache_key(&KeyParts {
                source: "echo hi\n",
                options: &o,
                resilient: false,
                spec_fingerprint: 1,
                version: "0.1.0",
            })
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2, None, None);
        c.put("k1".into(), entry(1));
        c.put("k2".into(), entry(2));
        assert!(c.get("k1").is_some()); // k1 now more recent than k2
        c.put("k3".into(), entry(3)); // evicts k2
        assert!(c.get("k2").is_none());
        assert!(c.get("k1").is_some());
        assert!(c.get("k3").is_some());
        assert_eq!(c.stats().hot_entries, 2);
    }

    #[test]
    fn disk_tier_round_trips_and_survives_a_new_cache() {
        let dir = std::env::temp_dir().join(format!("shoal-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = ResultCache::new(8, Some(dir.clone()), None);
            c.put("aabbccddeeff00112233445566778899".into(), entry(7));
        }
        // Fresh cache, same dir: the entry comes back from disk.
        let mut c2 = ResultCache::new(8, Some(dir.clone()), None);
        let got = c2
            .get("aabbccddeeff00112233445566778899")
            .expect("disk entry survives restart");
        assert_eq!(got, entry(7));
        assert_eq!(c2.stats().disk_entries, 1);
        // A corrupt file is a miss, not an error.
        std::fs::write(dir.join("aa").join("corrupt.json"), "{not json").unwrap();
        assert!(c2.get("corrupt").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcome_taxonomy_is_total() {
        let dir = std::env::temp_dir().join(format!("shoal-cache-tax-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = ResultCache::new(2, Some(dir.clone()), None);

        assert!(c.get("aa111111111111111111111111111111").is_none()); // cold miss
        c.put("aa111111111111111111111111111111".into(), entry(1));
        assert!(c.get("aa111111111111111111111111111111").is_some()); // hot hit

        // Disk hit: a fresh cache over the same dir misses hot, hits disk.
        let mut c2 = ResultCache::new(2, Some(dir.clone()), None);
        assert!(c2.get("aa111111111111111111111111111111").is_some());
        assert_eq!(c2.outcomes().disk_hits, 1);

        // Corrupt miss: a torn file at the addressed path.
        let torn = "aa222222222222222222222222222222";
        std::fs::create_dir_all(dir.join("aa")).unwrap();
        std::fs::write(dir.join("aa").join(format!("{torn}.json")), "{torn").unwrap();
        assert!(c.get(torn).is_none());
        assert_eq!(c.outcomes().corrupt_misses, 1);

        // Evictions: capacity 2, third insert evicts.
        c.put("bb111111111111111111111111111111".into(), entry(2));
        c.put("cc111111111111111111111111111111".into(), entry(3));
        assert_eq!(c.outcomes().evictions, 1);

        // The taxonomy must sum: every lookup is exactly one of
        // hot hit, disk hit, or miss; corrupt misses are a subset.
        for cache in [&c, &c2] {
            let o = cache.outcomes();
            assert_eq!(o.hot_hits + o.disk_hits + o.misses, o.lookups, "{o:?}");
            assert!(o.corrupt_misses <= o.misses, "{o:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_failures_are_counted_not_fatal() {
        // Point the disk tier at a path that cannot be a directory
        // (a regular file), so create_dir_all fails and every put
        // degrades to memory-only.
        let blocker =
            std::env::temp_dir().join(format!("shoal-cache-blocker-{}", std::process::id()));
        std::fs::write(&blocker, "not a dir").unwrap();
        let mut c = ResultCache::new(4, Some(blocker.clone()), None);
        c.put("dd111111111111111111111111111111".into(), entry(4));
        assert_eq!(c.outcomes().write_failures, 1);
        // The entry still serves from memory.
        assert!(c.get("dd111111111111111111111111111111").is_some());
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn disk_gc_evicts_oldest_mtime_until_under_cap() {
        let dir = std::env::temp_dir().join(format!("shoal-cache-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Measure one entry's on-disk size, then cap the tier at two
        // entries' worth so the third put must evict the oldest.
        let probe = entry(1).to_json("aa111111111111111111111111111111").to_text();
        let cap = (probe.len() as u64) * 2 + 8;
        let mut c = ResultCache::new(8, Some(dir.clone()), Some(cap));
        c.put("aa111111111111111111111111111111".into(), entry(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.put("bb111111111111111111111111111111".into(), entry(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.put("cc111111111111111111111111111111".into(), entry(1));
        assert_eq!(c.outcomes().disk_evictions, 1, "third put must GC one entry");
        assert!(
            !dir.join("aa")
                .join("aa111111111111111111111111111111.json")
                .exists(),
            "the oldest entry must be the one evicted"
        );
        // Survivors still serve from disk through a fresh cache.
        let mut c2 = ResultCache::new(8, Some(dir.clone()), Some(cap));
        assert!(c2.get("bb111111111111111111111111111111").is_some());
        assert!(c2.get("cc111111111111111111111111111111").is_some());
        assert_eq!(c2.outcomes().disk_hits, 2);
        // An uncapped cache over the same dir never GCs.
        let mut c3 = ResultCache::new(8, Some(dir.clone()), None);
        c3.put("dd111111111111111111111111111111".into(), entry(1));
        assert_eq!(c3.outcomes().disk_evictions, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_serialization_rejects_foreign_schemas() {
        let e = entry(3);
        let json = e.to_json("deadbeef");
        assert_eq!(Entry::from_json(&json, "deadbeef"), Some(e));
        assert_eq!(Entry::from_json(&json, "othernope"), None);
        let foreign = Json::Obj(vec![("schema".into(), Json::Str("other/v9".into()))]);
        assert_eq!(Entry::from_json(&foreign, "deadbeef"), None);
    }
}
