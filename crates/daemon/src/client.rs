//! The thin JIT client: connect, auto-spawn, or fall back.
//!
//! The degradation contract (carried over from the resilient-scan
//! work): a client request **never loses a verdict**. If the daemon is
//! reachable the verdict is served; if it is not, the client analyzes
//! in-process through the very same [`crate::entry_from_report`]
//! rendering the server uses, and the result is tagged
//! [`Served::Fallback`] so callers (and machine consumers, via the
//! `served` field in scan JSON and the stderr marker in `shoal jit`)
//! can see which path ran. Stdout stays byte-identical either way —
//! only the marker channel differs.
//!
//! Auto-spawn: on a dead socket the client launches
//! `<current_exe> daemon --socket …` detached (null stdio) and polls
//! the socket briefly; if the daemon still is not answering, it falls
//! back rather than block the caller — JIT latency budgets are the
//! whole point of this subsystem.

use crate::cache::Entry;
use crate::protocol::Request;
use shoal_core::AnalysisOptions;
use shoal_obs::frame::{read_frame, write_frame};
use shoal_obs::json::Json;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// How a verdict reached the caller.
#[derive(Debug, Clone, PartialEq)]
pub enum Served {
    /// The daemon answered; `cache_hit` is true on a warm hit.
    Daemon { cache_hit: bool },
    /// The daemon was unreachable (or the request is daemon-unservable,
    /// e.g. profiled); analysis ran in-process. `reason` says why.
    Fallback { reason: String },
}

impl Served {
    /// The machine-readable path marker (`daemon` / `local-fallback`)
    /// used in scan JSON and the `shoal jit` stderr marker.
    pub fn marker(&self) -> &'static str {
        match self {
            Served::Daemon { .. } => "daemon",
            Served::Fallback { .. } => "local-fallback",
        }
    }
}

/// One JIT analysis outcome.
#[derive(Debug, Clone)]
pub struct JitResponse {
    /// Which path produced the verdict.
    pub served: Served,
    /// The verdict, or the strict-mode parse error message.
    pub result: Result<Entry, String>,
    /// The request's trace ID (client-minted, echoed by the daemon).
    /// `Some` whenever the daemon served and echoed it back; `None` on
    /// fallback (there is no server-side trace to point at).
    pub trace_id: Option<String>,
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon socket path.
    pub socket: PathBuf,
    /// Spawn a daemon when the socket is dead.
    pub auto_spawn: bool,
    /// How long to poll a freshly spawned daemon before falling back.
    pub spawn_wait: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            socket: crate::default_socket_path(),
            auto_spawn: true,
            spawn_wait: Duration::from_secs(2),
        }
    }
}

/// Sends one request and reads one response over a fresh connection.
///
/// # Errors
///
/// Any socket-level failure (connect, framing, a non-JSON reply).
pub fn request(socket: &Path, req: &Request) -> io::Result<Json> {
    let mut stream = UnixStream::connect(socket)?;
    write_frame(&mut stream, req.to_json().to_text().as_bytes())?;
    let payload = read_frame(&mut stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed connection"))?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not utf-8"))?;
    Json::parse(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
}

/// Asks a running daemon for its status.
///
/// # Errors
///
/// Propagates [`request`] failures (typically: no daemon listening).
pub fn status(socket: &Path) -> io::Result<Json> {
    request(socket, &Request::Status)
}

/// Asks a running daemon for its full `shoal-stats/v1` telemetry
/// snapshot (request counts, latency percentiles, cache taxonomy,
/// slow-request log).
///
/// # Errors
///
/// Propagates [`request`] failures (typically: no daemon listening).
pub fn stats(socket: &Path) -> io::Result<Json> {
    request(socket, &Request::Stats)
}

/// Stops a running daemon.
///
/// # Errors
///
/// Propagates [`request`] failures (typically: no daemon listening).
pub fn stop(socket: &Path) -> io::Result<Json> {
    request(socket, &Request::Stop)
}

/// Analyzes `source` just-in-time: daemon first, in-process fallback.
///
/// Profiled requests (`options.profile`) skip the daemon entirely —
/// profiling instruments *this* process, so a served verdict would be
/// meaningless.
pub fn analyze(
    config: &ClientConfig,
    source: &str,
    options: &AnalysisOptions,
    resilient: bool,
) -> JitResponse {
    if options.profile {
        return local(source, options, resilient, "profile-requested");
    }
    // Mint the trace ID here, at the edge: the daemon echoes it back,
    // so the stderr marker, the server-side trace ring, and the JSONL
    // export all name the same request.
    let trace_id = shoal_obs::trace::mint_trace_id();
    let req = Request::Analyze {
        source: source.to_string(),
        options: options.clone(),
        resilient,
        trace_id: Some(trace_id.clone()),
    };
    match connect_or_spawn(config) {
        Ok(()) => {}
        Err(reason) => return local(source, options, resilient, &reason),
    }
    match request(&config.socket, &req) {
        Ok(json) => interpret(json, source, options, resilient, &trace_id),
        Err(err) => local(source, options, resilient, &format!("request failed: {err}")),
    }
}

/// Ensures something is listening on the socket, spawning a daemon if
/// allowed. `Err` carries the fallback reason.
fn connect_or_spawn(config: &ClientConfig) -> Result<(), String> {
    if UnixStream::connect(&config.socket).is_ok() {
        return Ok(());
    }
    if !config.auto_spawn {
        return Err("daemon unreachable (auto-spawn disabled)".into());
    }
    if let Err(e) = spawn_daemon(&config.socket) {
        return Err(format!("daemon unreachable, spawn failed: {e}"));
    }
    shoal_obs::counter_add("jit.daemon_spawned", 1);
    let deadline = Instant::now() + config.spawn_wait;
    while Instant::now() < deadline {
        if UnixStream::connect(&config.socket).is_ok() {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    Err("daemon unreachable (spawned, never answered)".into())
}

/// Launches `<current_exe> daemon --socket …` detached.
fn spawn_daemon(socket: &Path) -> io::Result<()> {
    let exe = std::env::current_exe()?;
    std::process::Command::new(exe)
        .arg("daemon")
        .arg("--socket")
        .arg(socket)
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map(|_| ())
}

/// Turns a daemon response into a [`JitResponse`], falling back on
/// anything that is not a well-formed verdict. `sent_id` is the trace
/// ID this client minted; the response's echo is kept only when it
/// matches (an old daemon echoes nothing; a mismatched echo would mean
/// crossed frames and is discarded rather than trusted).
fn interpret(
    json: Json,
    source: &str,
    options: &AnalysisOptions,
    resilient: bool,
    sent_id: &str,
) -> JitResponse {
    let trace_id = json
        .get("trace_id")
        .and_then(Json::as_str)
        .filter(|echoed| *echoed == sent_id)
        .map(str::to_string);
    if json.get("ok").and_then(|v| match v {
        Json::Bool(b) => Some(*b),
        _ => None,
    }) == Some(true)
    {
        let Some(entry) = entry_from_response(&json) else {
            return local(source, options, resilient, "malformed daemon response");
        };
        let cache_hit = json.get("cache").and_then(Json::as_str) == Some("hit");
        shoal_obs::counter_add(if cache_hit { "jit.hit" } else { "jit.miss" }, 1);
        return JitResponse {
            served: Served::Daemon { cache_hit },
            result: Ok(entry),
            trace_id,
        };
    }
    match json.get("error").and_then(Json::as_str) {
        // A strict-mode parse error is a *verdict* (the script does not
        // parse), not a transport failure — no point re-parsing locally.
        Some("parse") => JitResponse {
            served: Served::Daemon { cache_hit: false },
            result: Err(json
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("parse error")
                .to_string()),
            trace_id,
        },
        other => local(
            source,
            options,
            resilient,
            &format!("daemon error: {}", other.unwrap_or("unknown")),
        ),
    }
}

fn entry_from_response(json: &Json) -> Option<Entry> {
    let findings = json.get("findings")?.as_u64()? as usize;
    let text = match json.get("text")? {
        Json::Arr(items) => items
            .iter()
            .map(|t| t.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    let body = json.get("body")?.clone();
    Some(Entry {
        body,
        text,
        findings,
    })
}

/// The in-process path: same engine, same rendering, marked as
/// fallback.
fn local(source: &str, options: &AnalysisOptions, resilient: bool, reason: &str) -> JitResponse {
    shoal_obs::counter_add("jit.fallback", 1);
    let result = if resilient {
        Ok(crate::entry_from_report(&shoal_core::analyze_source_resilient(
            source,
            options.clone(),
        )))
    } else {
        match shoal_core::analyze_source_with(source, options.clone()) {
            Ok(report) => Ok(crate::entry_from_report(&report)),
            Err(e) => Err(e.to_string()),
        }
    };
    JitResponse {
        served: Served::Fallback {
            reason: reason.to_string(),
        },
        result,
        trace_id: None,
    }
}
