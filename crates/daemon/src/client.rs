//! The thin JIT client: connect, auto-spawn, retry, or fall back.
//!
//! The degradation contract (carried over from the resilient-scan
//! work): a client request **never loses a verdict**. If the daemon is
//! reachable the verdict is served; if it is not, the client analyzes
//! in-process through the very same [`crate::entry_from_report`]
//! rendering the server uses, and the result is tagged
//! [`Served::Fallback`] so callers (and machine consumers, via the
//! `served` field in scan JSON and the stderr marker in `shoal jit`)
//! can see which path ran. Stdout stays byte-identical either way —
//! only the marker channel differs.
//!
//! Failures are classified, not lumped: a **dead** socket (connection
//! refused, no socket file) triggers reclaim-and-respawn at most once;
//! a **busy** daemon (connect/read timeout, a connection torn mid-
//! frame) is transient, so the request retries a bounded number of
//! times with jittered exponential backoff. A structured `shed`
//! response is *authoritative* — the daemon has said it cannot afford
//! this request — so the client falls back locally at once instead of
//! retrying into the same overload.
//!
//! Auto-spawn: on a dead socket the client launches
//! `<current_exe> daemon --socket …` detached (null stdio) and polls
//! the socket briefly; if the daemon still is not answering, it falls
//! back rather than block the caller — JIT latency budgets are the
//! whole point of this subsystem.

use crate::cache::Entry;
use crate::protocol::Request;
use shoal_core::AnalysisOptions;
use shoal_obs::frame::{read_frame, write_frame};
use shoal_obs::json::Json;
use shoal_obs::rng::XorShift64;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

/// How a verdict reached the caller.
#[derive(Debug, Clone, PartialEq)]
pub enum Served {
    /// The daemon answered; `cache_hit` is true on a warm hit.
    Daemon { cache_hit: bool },
    /// The daemon was unreachable (or the request is daemon-unservable,
    /// e.g. profiled); analysis ran in-process. `reason` says why.
    Fallback { reason: String },
}

impl Served {
    /// The machine-readable path marker (`daemon` / `local-fallback`)
    /// used in scan JSON and the `shoal jit` stderr marker.
    pub fn marker(&self) -> &'static str {
        match self {
            Served::Daemon { .. } => "daemon",
            Served::Fallback { .. } => "local-fallback",
        }
    }
}

/// One JIT analysis outcome.
#[derive(Debug, Clone)]
pub struct JitResponse {
    /// Which path produced the verdict.
    pub served: Served,
    /// The verdict, or the strict-mode parse error message.
    pub result: Result<Entry, String>,
    /// The request's trace ID (client-minted, echoed by the daemon).
    /// `Some` whenever the daemon served and echoed it back; `None` on
    /// fallback (there is no server-side trace to point at).
    pub trace_id: Option<String>,
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon socket path.
    pub socket: PathBuf,
    /// Spawn a daemon when the socket is dead.
    pub auto_spawn: bool,
    /// How long to poll a freshly spawned daemon before falling back.
    pub spawn_wait: Duration,
    /// Budget for the connect phase of one attempt (a busy socket is
    /// re-tried within this window before the attempt counts as
    /// transient).
    pub connect_timeout: Duration,
    /// Read/write timeout on an established connection; a daemon that
    /// takes longer than this to answer counts as busy.
    pub request_timeout: Duration,
    /// Transient-failure retries after the first attempt (each backed
    /// off exponentially with jitter). `0` falls back on the first
    /// transient failure.
    pub retries: u32,
    /// Base backoff delay (attempt `n` waits `base * 2^n`, jittered
    /// into `[0.5, 1.5)` of itself).
    pub retry_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            socket: crate::default_socket_path(),
            auto_spawn: true,
            spawn_wait: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(30),
            retries: 2,
            retry_backoff: Duration::from_millis(25),
        }
    }
}

/// Sends one request and reads one response over a fresh connection.
///
/// # Errors
///
/// Any socket-level failure (connect, framing, a non-JSON reply).
pub fn request(socket: &Path, req: &Request) -> io::Result<Json> {
    let mut stream = UnixStream::connect(socket)?;
    write_frame(&mut stream, req.to_json().to_text().as_bytes())?;
    let payload = read_frame(&mut stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed connection"))?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not utf-8"))?;
    Json::parse(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
}

/// Asks a running daemon for its status.
///
/// # Errors
///
/// Propagates [`request`] failures (typically: no daemon listening).
pub fn status(socket: &Path) -> io::Result<Json> {
    request(socket, &Request::Status)
}

/// Asks a running daemon for its full `shoal-stats/v1` telemetry
/// snapshot (request counts, latency percentiles, cache taxonomy,
/// slow-request log).
///
/// # Errors
///
/// Propagates [`request`] failures (typically: no daemon listening).
pub fn stats(socket: &Path) -> io::Result<Json> {
    request(socket, &Request::Stats)
}

/// Stops a running daemon.
///
/// # Errors
///
/// Propagates [`request`] failures (typically: no daemon listening).
pub fn stop(socket: &Path) -> io::Result<Json> {
    request(socket, &Request::Stop)
}

/// How one failed attempt should be treated.
enum Transport {
    /// Nobody is home (refused connection, missing socket file):
    /// respawn once if allowed, else fall back.
    Dead(String),
    /// The daemon exists but did not answer in time (connect/read
    /// timeout, connection torn mid-frame): transient, retry with
    /// backoff.
    Busy(String),
}

/// Analyzes `source` just-in-time: daemon first, in-process fallback.
///
/// Profiled requests (`options.profile`) skip the daemon entirely —
/// profiling instruments *this* process, so a served verdict would be
/// meaningless.
pub fn analyze(
    config: &ClientConfig,
    source: &str,
    options: &AnalysisOptions,
    resilient: bool,
) -> JitResponse {
    if options.profile {
        return local(source, options, resilient, "profile-requested");
    }
    // Mint the trace ID here, at the edge: the daemon echoes it back,
    // so the stderr marker, the server-side trace ring, and the JSONL
    // export all name the same request.
    let trace_id = shoal_obs::trace::mint_trace_id();
    let req = Request::Analyze {
        source: source.to_string(),
        options: options.clone(),
        resilient,
        trace_id: Some(trace_id.clone()),
    };

    let mut rng = backoff_rng();
    let mut spawned = false;
    let mut attempt: u32 = 0;
    loop {
        match attempt_request(config, &req) {
            Ok(json) => return interpret(json, source, options, resilient, &trace_id),
            Err(Transport::Dead(reason)) => {
                // Dead socket: reclaim by respawning, once. A second
                // dead classification means the spawn did not help —
                // stop burning the latency budget.
                if config.auto_spawn && !spawned {
                    spawned = true;
                    match spawn_and_wait(config) {
                        Ok(()) => continue, // does not consume a retry
                        Err(spawn_reason) => {
                            return local(source, options, resilient, &spawn_reason)
                        }
                    }
                }
                return local(source, options, resilient, &reason);
            }
            Err(Transport::Busy(reason)) => {
                // Transient: bounded retry with jittered exponential
                // backoff, then fall back rather than block the caller.
                if attempt >= config.retries {
                    return local(source, options, resilient, &reason);
                }
                shoal_obs::counter_add("jit.retry", 1);
                std::thread::sleep(backoff_delay(config.retry_backoff, attempt, &mut rng));
                attempt += 1;
            }
        }
    }
}

/// One request attempt over a fresh connection, with timeouts armed
/// and the failure classified dead-vs-busy.
fn attempt_request(config: &ClientConfig, req: &Request) -> Result<Json, Transport> {
    let stream = connect_classified(config)?;
    let _ = stream.set_read_timeout(Some(config.request_timeout));
    let _ = stream.set_write_timeout(Some(config.request_timeout));
    let mut stream = stream;
    write_frame(&mut stream, req.to_json().to_text().as_bytes())
        .map_err(|e| classify_io_error(&e, "send"))?;
    let payload = read_frame(&mut stream)
        .map_err(|e| classify_io_error(&e, "response"))?
        .ok_or_else(|| {
            // EOF before any response byte: the serving thread died
            // (or the daemon is shutting down) — transient.
            Transport::Busy("daemon closed connection before answering".into())
        })?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| Transport::Busy("daemon response is not utf-8".into()))?;
    Json::parse(text).map_err(|e| Transport::Busy(format!("bad daemon response: {e}")))
}

/// Connects, looping on busy-classified failures within the connect
/// budget; a dead classification surfaces immediately.
fn connect_classified(config: &ClientConfig) -> Result<UnixStream, Transport> {
    let deadline = Instant::now() + config.connect_timeout;
    loop {
        match UnixStream::connect(&config.socket) {
            Ok(stream) => return Ok(stream),
            Err(err) => match classify_connect_error(&err) {
                Transport::Dead(reason) => return Err(Transport::Dead(reason)),
                Transport::Busy(reason) => {
                    if Instant::now() >= deadline {
                        return Err(Transport::Busy(reason));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            },
        }
    }
}

/// Dead means nobody owns the socket; busy means somebody does but is
/// not keeping up. Unknown connect errors classify as dead (matching
/// the pre-shield behavior: any connect failure triggered a spawn).
fn classify_connect_error(err: &io::Error) -> Transport {
    match err.kind() {
        io::ErrorKind::ConnectionRefused => {
            Transport::Dead(format!("stale socket (connect refused: {err})"))
        }
        io::ErrorKind::NotFound => Transport::Dead("daemon not running (no socket)".into()),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted => {
            Transport::Busy(format!("daemon busy (connect: {err})"))
        }
        _ => Transport::Dead(format!("daemon unreachable (connect: {err})")),
    }
}

/// Mid-request failures are transient: the daemon *was* there (we
/// connected), so a torn frame or a stalled read means a dying worker
/// or an overloaded one — retry; if the daemon is truly gone the next
/// connect classifies dead.
fn classify_io_error(err: &io::Error, during: &str) -> Transport {
    Transport::Busy(format!("daemon {during} failed: {err}"))
}

/// Spawns a daemon and polls until it answers or the spawn budget ends.
fn spawn_and_wait(config: &ClientConfig) -> Result<(), String> {
    if let Err(e) = spawn_daemon(&config.socket) {
        return Err(format!("daemon unreachable, spawn failed: {e}"));
    }
    shoal_obs::counter_add("jit.daemon_spawned", 1);
    let deadline = Instant::now() + config.spawn_wait;
    while Instant::now() < deadline {
        if UnixStream::connect(&config.socket).is_ok() {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    Err("daemon unreachable (spawned, never answered)".into())
}

/// Seeds the jitter PRNG from wall clock + pid: cheap, and distinct
/// across the concurrent clients whose retries must not synchronize.
fn backoff_rng() -> XorShift64 {
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x9e37_79b9);
    XorShift64::seed_from_u64(nanos ^ u64::from(std::process::id()))
}

/// Attempt `n` waits `base * 2^n`, jittered uniformly into
/// `[0.5, 1.5)` of itself so synchronized clients fan out.
fn backoff_delay(base: Duration, attempt: u32, rng: &mut XorShift64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let jitter_pct = 50 + rng.random_range(0..100) as u32; // 50..150
    exp.saturating_mul(jitter_pct) / 100
}

/// Launches `<current_exe> daemon --socket …` detached.
fn spawn_daemon(socket: &Path) -> io::Result<()> {
    let exe = std::env::current_exe()?;
    std::process::Command::new(exe)
        .arg("daemon")
        .arg("--socket")
        .arg(socket)
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map(|_| ())
}

/// Turns a daemon response into a [`JitResponse`], falling back on
/// anything that is not a well-formed verdict. `sent_id` is the trace
/// ID this client minted; the response's echo is kept only when it
/// matches (an old daemon echoes nothing; a mismatched echo would mean
/// crossed frames and is discarded rather than trusted).
fn interpret(
    json: Json,
    source: &str,
    options: &AnalysisOptions,
    resilient: bool,
    sent_id: &str,
) -> JitResponse {
    let trace_id = json
        .get("trace_id")
        .and_then(Json::as_str)
        .filter(|echoed| *echoed == sent_id)
        .map(str::to_string);
    if json.get("ok").and_then(|v| match v {
        Json::Bool(b) => Some(*b),
        _ => None,
    }) == Some(true)
    {
        let Some(entry) = entry_from_response(&json) else {
            return local(source, options, resilient, "malformed daemon response");
        };
        let cache = json.get("cache").and_then(Json::as_str);
        let cache_hit = cache == Some("hit");
        shoal_obs::counter_add(
            match cache {
                Some("hit") => "jit.hit",
                // A fan-out from another request's in-flight analysis:
                // the daemon served us without a fresh engine run.
                Some("coalesced") => "jit.coalesced",
                _ => "jit.miss",
            },
            1,
        );
        return JitResponse {
            served: Served::Daemon { cache_hit },
            result: Ok(entry),
            trace_id,
        };
    }
    match json.get("error").and_then(Json::as_str) {
        // A shed is authoritative: the daemon is overloaded and told
        // us so. Fall back locally right now — retrying would only
        // deepen the overload the shield is trying to survive.
        Some("shed") => {
            shoal_obs::counter_add("jit.shed", 1);
            let reason = json
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("overloaded");
            local(
                source,
                options,
                resilient,
                &format!("daemon shed ({reason})"),
            )
        }
        // A strict-mode parse error is a *verdict* (the script does not
        // parse), not a transport failure — no point re-parsing locally.
        Some("parse") => JitResponse {
            served: Served::Daemon { cache_hit: false },
            result: Err(json
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("parse error")
                .to_string()),
            trace_id,
        },
        other => local(
            source,
            options,
            resilient,
            &format!("daemon error: {}", other.unwrap_or("unknown")),
        ),
    }
}

fn entry_from_response(json: &Json) -> Option<Entry> {
    let findings = json.get("findings")?.as_u64()? as usize;
    let text = match json.get("text")? {
        Json::Arr(items) => items
            .iter()
            .map(|t| t.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    let body = json.get("body")?.clone();
    Some(Entry {
        body,
        text,
        findings,
    })
}

/// The in-process path: same engine, same rendering, marked as
/// fallback.
fn local(source: &str, options: &AnalysisOptions, resilient: bool, reason: &str) -> JitResponse {
    shoal_obs::counter_add("jit.fallback", 1);
    let result = if resilient {
        Ok(crate::entry_from_report(&shoal_core::analyze_source_resilient(
            source,
            options.clone(),
        )))
    } else {
        match shoal_core::analyze_source_with(source, options.clone()) {
            Ok(report) => Ok(crate::entry_from_report(&report)),
            Err(e) => Err(e.to_string()),
        }
    };
    JitResponse {
        served: Served::Fallback {
            reason: reason.to_string(),
        },
        result,
        trace_id: None,
    }
}
