//! The resident analysis server.
//!
//! One blocking accept loop on a unix domain socket; each accepted
//! connection is handed to a [`shoal_obs::pool::TaskPool`] worker, so
//! concurrent clients are served in parallel without any per-request
//! thread spawn. All state a worker needs lives in one shared
//! [`ServerState`]: the two-tier result cache behind a mutex (lookups
//! are microseconds; analysis itself runs *outside* the lock), the
//! spec-library fingerprint sampled once at startup, and plain atomic
//! request counters for `status`.
//!
//! Shutdown is cooperative: the `stop` handler answers the client,
//! flips the shutdown flag, then makes a throwaway connection to its
//! own socket so the blocked `accept` wakes up and observes the flag.
//! Dropping the pool drains in-flight requests before the socket file
//! is removed, so a `stop` never strands a concurrent `analyze`.
//!
//! Startup recovers from stale sockets (a previous daemon that died
//! without unlinking): if binding fails with `AddrInUse`, we probe the
//! socket — a refused connection means nobody is home, so the stale
//! file is removed and the bind retried; a successful probe means a
//! live daemon owns the path and startup fails loudly instead of
//! stealing it.

use crate::cache::{cache_key, CacheStats, Entry, KeyParts, ResultCache};
use crate::protocol::{Request, SCHEMA};
use shoal_core::{analyze_source_resilient, analyze_source_with, AnalysisOptions};
use shoal_obs::frame::{read_frame, write_frame};
use shoal_obs::json::Json;
use shoal_obs::pool::TaskPool;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Server configuration; see [`run`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Socket path to bind.
    pub socket: PathBuf,
    /// On-disk cache directory (`None` disables the disk tier).
    pub cache_dir: Option<PathBuf>,
    /// In-memory LRU capacity (entries).
    pub cache_capacity: usize,
    /// Worker threads (0 = available parallelism).
    pub jobs: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            socket: crate::default_socket_path(),
            cache_dir: Some(crate::default_cache_dir()),
            cache_capacity: 512,
            jobs: 0,
        }
    }
}

/// Shared server state, one per daemon process.
struct ServerState {
    cache: Mutex<ResultCache>,
    spec_fingerprint: u64,
    started: Instant,
    shutdown: AtomicBool,
    socket: PathBuf,
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Binds the socket and serves until a `stop` request arrives.
///
/// # Errors
///
/// Propagates bind failures (including a live daemon already owning
/// the socket) and fatal accept errors.
pub fn run(config: ServerConfig) -> io::Result<()> {
    let listener = bind_recovering(&config.socket)?;
    let spec_fingerprint = shoal_spec::SpecLibrary::builtin().fingerprint();
    let state = Arc::new(ServerState {
        cache: Mutex::new(ResultCache::new(
            config.cache_capacity,
            config.cache_dir.clone(),
        )),
        spec_fingerprint,
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
        socket: config.socket.clone(),
        requests: AtomicU64::new(0),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    });

    let pool = TaskPool::new(config.jobs);
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let state = Arc::clone(&state);
                pool.submit(Box::new(move || serve_connection(stream, &state)));
            }
            Err(err) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                return Err(err);
            }
        }
    }
    drop(pool); // drain in-flight requests before unlinking
    let _ = std::fs::remove_file(&config.socket);
    Ok(())
}

/// Binds `socket`, removing a stale file left by a dead daemon.
fn bind_recovering(socket: &PathBuf) -> io::Result<UnixListener> {
    if let Some(parent) = socket.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    match UnixListener::bind(socket) {
        Ok(l) => Ok(l),
        Err(err) if err.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(socket).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving {}", socket.display()),
                ));
            }
            std::fs::remove_file(socket)?;
            UnixListener::bind(socket)
        }
        Err(err) => Err(err),
    }
}

/// Handles one client connection: frames in, frames out, until EOF.
fn serve_connection(mut stream: UnixStream, state: &ServerState) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // clean EOF or a client that vanished
        };
        let t0 = Instant::now();
        state.requests.fetch_add(1, Ordering::Relaxed);
        shoal_obs::counter_add("daemon.requests", 1);
        let response = dispatch(&payload, state);
        shoal_obs::hist_record("daemon.request_us", t0.elapsed().as_micros() as u64);
        if write_frame(&mut stream, response.to_text().as_bytes()).is_err() {
            return;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Parses and executes one request, always producing a response.
fn dispatch(payload: &[u8], state: &ServerState) -> Json {
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(_) => return error_response("bad-request", "frame is not utf-8"),
    };
    let json = match Json::parse(text) {
        Ok(j) => j,
        Err(e) => return error_response("bad-request", &format!("frame is not json: {e}")),
    };
    let request = match Request::from_json(&json) {
        Ok(r) => r,
        Err(e) => return error_response("bad-request", &e),
    };
    match request {
        Request::Analyze {
            source,
            options,
            resilient,
        } => handle_analyze(&source, &options, resilient, state),
        Request::Status => handle_status(state),
        Request::Stop => handle_stop(state),
    }
}

/// Serves one analyze request: cache lookup, else run the engine and
/// populate both tiers. Parse errors (strict mode) and panics are
/// reported, never cached.
fn handle_analyze(
    source: &str,
    options: &AnalysisOptions,
    resilient: bool,
    state: &ServerState,
) -> Json {
    let key = cache_key(&KeyParts {
        source,
        options,
        resilient,
        spec_fingerprint: state.spec_fingerprint,
        version: crate::version(),
    });

    if let Some(entry) = state.cache.lock().unwrap().get(&key) {
        state.hits.fetch_add(1, Ordering::Relaxed);
        return analyze_response(&key, "hit", &entry);
    }
    state.misses.fetch_add(1, Ordering::Relaxed);

    // Run the engine outside the cache lock; shield the worker from
    // engine panics so one poisonous script can't take the daemon down.
    let opts = options.clone();
    let src = source.to_string();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        if resilient {
            Ok(analyze_source_resilient(&src, opts))
        } else {
            analyze_source_with(&src, opts)
        }
    }));
    match outcome {
        Ok(Ok(report)) => {
            let entry = crate::entry_from_report(&report);
            state.cache.lock().unwrap().put(key.clone(), entry.clone());
            analyze_response(&key, "miss", &entry)
        }
        Ok(Err(parse_err)) => error_response("parse", &parse_err.to_string()),
        Err(panic) => {
            let msg = panic_message(&panic);
            shoal_obs::counter_add("daemon.panics", 1);
            error_response("panic", &msg)
        }
    }
}

fn handle_status(state: &ServerState) -> Json {
    let CacheStats {
        hot_entries,
        disk_entries,
        evictions,
    } = state.cache.lock().unwrap().stats();
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("ok".into(), Json::Bool(true)),
        ("op".into(), Json::Str("status".into())),
        ("version".into(), Json::Str(crate::version().into())),
        ("pid".into(), Json::Num(std::process::id() as f64)),
        (
            "uptime_ms".into(),
            Json::Num(state.started.elapsed().as_millis() as f64),
        ),
        (
            "spec_fingerprint".into(),
            Json::Str(format!("{:016x}", state.spec_fingerprint)),
        ),
        (
            "requests".into(),
            Json::Num(state.requests.load(Ordering::Relaxed) as f64),
        ),
        (
            "hits".into(),
            Json::Num(state.hits.load(Ordering::Relaxed) as f64),
        ),
        (
            "misses".into(),
            Json::Num(state.misses.load(Ordering::Relaxed) as f64),
        ),
        ("evictions".into(), Json::Num(evictions as f64)),
        ("hot_entries".into(), Json::Num(hot_entries as f64)),
        ("disk_entries".into(), Json::Num(disk_entries as f64)),
    ])
}

fn handle_stop(state: &ServerState) -> Json {
    state.shutdown.store(true, Ordering::SeqCst);
    // Wake the accept loop: it is blocked in `accept`, and will check
    // the flag as soon as any connection (this throwaway one) lands.
    let _ = UnixStream::connect(&state.socket);
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("ok".into(), Json::Bool(true)),
        ("op".into(), Json::Str("stop".into())),
    ])
}

fn analyze_response(key: &str, cache: &str, entry: &Entry) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("ok".into(), Json::Bool(true)),
        ("op".into(), Json::Str("analyze".into())),
        ("cache".into(), Json::Str(cache.into())),
        ("key".into(), Json::Str(key.into())),
        ("findings".into(), Json::Num(entry.findings as f64)),
        (
            "text".into(),
            Json::Arr(entry.text.iter().map(|l| Json::Str(l.clone())).collect()),
        ),
        ("body".into(), entry.body.clone()),
    ])
}

fn error_response(kind: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(kind.into())),
        ("message".into(), Json::Str(message.into())),
    ])
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine panicked".to_string()
    }
}
