//! The resident analysis server.
//!
//! One blocking accept loop on a unix domain socket; each accepted
//! connection gets its own thread, and *admission* to the expensive
//! part — running the engine — is governed by the
//! [`crate::shield::Shield`]: a bounded concurrency gate with a
//! bounded, deadline-budgeted waiting queue. Reading frames is always
//! immediate (a connection thread is cheap and mostly blocked on I/O),
//! so an overloaded daemon still *answers* every request — with a
//! structured `shed{reason}` response when it cannot afford to compute
//! — instead of letting connections starve unread in an accept
//! backlog. Cache hits and control verbs (`status`, `stats`, `stop`)
//! bypass the gate entirely; only engine runs are rationed.
//!
//! Concurrent misses for the same cache key collapse onto one engine
//! run via the [`crate::shield::FlightTable`]: the first arrival leads
//! and computes, later arrivals wait for the published outcome and are
//! answered with `cache:"coalesced"` (thundering-herd collapse).
//! All state a connection thread needs lives in one shared
//! [`ServerState`]: the two-tier result cache behind a mutex (lookups
//! are microseconds; analysis itself runs *outside* the lock), the
//! spec-library fingerprint sampled once at startup, plain atomic
//! request counters for `status`, and the [`Telemetry`] plane for
//! `stats`.
//!
//! **Telemetry.** Every request is traced: a span opens when the frame
//! arrives, per-phase durations (`decode`, `cache`, `parse`, `symexec`,
//! `relang`, `report`, `serialize`) accumulate in a thread-local while
//! the request is serviced, and on completion the assembled
//! [`shoal_obs::Trace`] is recorded — a named counter and a
//! log-bucketed latency histogram per `endpoint.outcome`, a bounded
//! in-memory ring of recent traces (plus the retained worst-N slow
//! log), and optionally one JSONL line per request when
//! [`ServerConfig::trace_log`] is set. The `stats` verb snapshots all
//! of it as a `shoal-stats/v1` document. None of this touches response
//! *content*: daemon-served output stays byte-identical to local
//! `shoal analyze`.
//!
//! Shutdown is cooperative: the `stop` handler answers the client,
//! flips the shutdown flag, then makes a throwaway connection to its
//! own socket so the blocked `accept` wakes up and observes the flag.
//! Every connection thread is joined before the socket file is
//! removed, so a `stop` never strands a concurrent `analyze` — and
//! only after that drain is the telemetry flushed (final `daemon_stats`
//! summary line + buffered trace lines), so the JSONL log is complete
//! when `stop` returns.
//!
//! Startup recovers from stale sockets (a previous daemon that died
//! without unlinking): if binding fails with `AddrInUse`, we probe the
//! socket — a refused connection means nobody is home, so the stale
//! file is removed and the bind retried; a successful probe means a
//! live daemon owns the path and startup fails loudly instead of
//! stealing it.

use crate::cache::{cache_key, CacheStats, Entry, KeyParts, ResultCache};
use crate::protocol::{Request, SCHEMA, STATS_SCHEMA};
use crate::shield::{Boarding, FlightOutcome, FlightTable, Shield, ShieldConfig, ShieldStats};
use shoal_core::{analyze_source_resilient, analyze_source_with, AnalysisOptions};
use shoal_obs::audit::CoverageMap;
use shoal_obs::failpoint;
use shoal_obs::frame::{read_frame, write_frame};
use shoal_obs::json::Json;
use shoal_obs::trace::{self, Trace, TraceRing, SLOW_RETAIN};
use shoal_obs::LogHistogram;
use std::collections::BTreeMap;
use std::io::{self, BufWriter, Write};
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server configuration; see [`run`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Socket path to bind.
    pub socket: PathBuf,
    /// On-disk cache directory (`None` disables the disk tier).
    pub cache_dir: Option<PathBuf>,
    /// In-memory LRU capacity (entries).
    pub cache_capacity: usize,
    /// On-disk cache size cap in bytes (`None` = unbounded); excess
    /// entries are GC'd oldest-mtime-first.
    pub cache_disk_bytes: Option<u64>,
    /// Concurrent analyses admitted (0 = available parallelism).
    pub jobs: usize,
    /// Requests allowed to queue for an analysis slot before arrivals
    /// are shed `queue-full`.
    pub queue_depth: usize,
    /// Ceiling on how long one request may queue before being shed
    /// `queue-timeout` (a request's own deadline budget caps it lower).
    pub queue_wait: Duration,
    /// When set, every completed request appends one JSONL trace line
    /// here, and shutdown appends a final `daemon_stats` summary line.
    pub trace_log: Option<PathBuf>,
    /// Capacity of the in-memory recent-trace ring.
    pub trace_ring: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            socket: crate::default_socket_path(),
            cache_dir: Some(crate::default_cache_dir()),
            cache_capacity: 512,
            cache_disk_bytes: None,
            jobs: 0,
            queue_depth: 256,
            queue_wait: Duration::from_secs(2),
            trace_log: None,
            trace_ring: 256,
        }
    }
}

/// The daemon's always-on observability plane. One mutex guards all of
/// it: recording happens once per *request* (not per event), after the
/// response is already serialized, so the critical section is a few
/// map operations — contention here never delays an answer.
struct Telemetry {
    /// `endpoint.outcome` → request count (e.g. `analyze.hit`).
    counters: BTreeMap<String, u64>,
    /// `endpoint.outcome` → end-to-end latency histogram (µs).
    hists: BTreeMap<String, LogHistogram>,
    /// Recent traces + retained worst-by-duration slow log.
    ring: TraceRing,
    /// JSONL export (one `kind:"trace"` line per request).
    log: Option<BufWriter<std::fs::File>>,
    /// Fleet precision health: per-request coverage maps folded in as
    /// they are computed (misses only — a cache hit replays a script
    /// whose coverage was already folded when it was first analyzed).
    audit: CoverageMap,
}

impl Telemetry {
    fn new(trace_ring: usize, trace_log: &Option<PathBuf>) -> Telemetry {
        let log = trace_log.as_ref().and_then(|path| {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(parent);
                }
            }
            std::fs::File::create(path).ok().map(BufWriter::new)
        });
        Telemetry {
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            ring: TraceRing::new(trace_ring.max(1)),
            log,
            audit: CoverageMap::default(),
        }
    }

    /// Records one completed request (and folds its coverage map, when
    /// the request computed one).
    fn record(&mut self, trace: Trace, coverage: Option<&CoverageMap>) {
        let key = format!("{}.{}", trace.endpoint, trace.outcome);
        *self.counters.entry(key.clone()).or_insert(0) += 1;
        self.hists.entry(key).or_default().record(trace.total_us);
        if let Some(cov) = coverage {
            self.audit.merge(cov);
        }
        if let Some(log) = &mut self.log {
            let _ = writeln!(log, "{}", trace.to_json().to_text());
        }
        self.ring.push(trace);
    }

    /// Shutdown drain: append the final `daemon_stats` summary line and
    /// flush every buffered trace line to disk.
    fn flush(&mut self, summary: &Json) {
        if let Some(log) = &mut self.log {
            let _ = writeln!(log, "{}", summary.to_text());
            let _ = log.flush();
        }
    }
}

/// Shared server state, one per daemon process.
struct ServerState {
    cache: Mutex<ResultCache>,
    telemetry: Mutex<Telemetry>,
    /// Admission gate + shed/coalesce counters.
    shield: Shield,
    /// In-flight dedup: same-key misses collapse onto one engine run.
    flights: FlightTable,
    spec_fingerprint: u64,
    started: Instant,
    shutdown: AtomicBool,
    socket: PathBuf,
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Binds the socket and serves until a `stop` request arrives.
///
/// # Errors
///
/// Propagates bind failures (including a live daemon already owning
/// the socket) and fatal accept errors.
pub fn run(config: ServerConfig) -> io::Result<()> {
    let listener = bind_recovering(&config.socket)?;
    let spec_fingerprint = shoal_spec::SpecLibrary::builtin().fingerprint();
    let concurrency = if config.jobs == 0 {
        ShieldConfig::default().concurrency
    } else {
        config.jobs
    };
    let state = Arc::new(ServerState {
        cache: Mutex::new(ResultCache::new(
            config.cache_capacity,
            config.cache_dir.clone(),
            config.cache_disk_bytes,
        )),
        telemetry: Mutex::new(Telemetry::new(config.trace_ring, &config.trace_log)),
        shield: Shield::new(ShieldConfig {
            concurrency,
            queue_depth: config.queue_depth,
            queue_wait: config.queue_wait,
        }),
        flights: FlightTable::new(),
        spec_fingerprint,
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
        socket: config.socket.clone(),
        requests: AtomicU64::new(0),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    });

    // One thread per connection: frame reads are never starved by
    // analyses (the shield rations those), so an overloaded daemon
    // still answers — with a shed — instead of leaving clients unread.
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let state = Arc::clone(&state);
                let spawned = std::thread::Builder::new()
                    .name("shoal-conn".into())
                    .spawn(move || {
                        // A panicking connection must not take the
                        // daemon down (engine panics are caught deeper;
                        // this guards the serving loop itself).
                        if catch_unwind(AssertUnwindSafe(|| serve_connection(stream, &state)))
                            .is_err()
                        {
                            shoal_obs::counter_add("daemon.connection_panics", 1);
                        }
                    });
                match spawned {
                    Ok(handle) => connections.push(handle),
                    Err(_) => {
                        // Thread exhaustion: drop the connection (the
                        // client sees EOF and falls back locally).
                        shoal_obs::counter_add("daemon.conn_spawn_failures", 1);
                    }
                }
                connections.retain(|h| !h.is_finished());
            }
            Err(err) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                return Err(err);
            }
        }
    }
    // Drain in-flight connections before unlinking the socket.
    for handle in connections {
        let _ = handle.join();
    }
    // Only now is the telemetry complete: every in-flight request has
    // recorded its trace. Drain it before the socket disappears.
    let summary = handle_stats(&state);
    state.telemetry.lock().unwrap().flush(&summary);
    let _ = std::fs::remove_file(&config.socket);
    Ok(())
}

/// Binds `socket`, removing a stale file left by a dead daemon.
fn bind_recovering(socket: &PathBuf) -> io::Result<UnixListener> {
    if let Some(parent) = socket.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    match UnixListener::bind(socket) {
        Ok(l) => Ok(l),
        Err(err) if err.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(socket).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving {}", socket.display()),
                ));
            }
            std::fs::remove_file(socket)?;
            UnixListener::bind(socket)
        }
        Err(err) => Err(err),
    }
}

/// What `dispatch` learned about one request, for the trace record.
struct Served {
    response: Json,
    /// `analyze` / `status` / `stats` / `stop` / `unknown`.
    endpoint: &'static str,
    /// `hit` / `miss` / `parse-error` / `panic` / `bad-request` / `ok`.
    outcome: &'static str,
    /// Client-minted ID, echoed in the response; server-minted when
    /// the client sent none, so every trace is addressable.
    trace_id: Option<String>,
    /// Coverage map from a freshly-computed analysis (miss path only),
    /// folded into the telemetry plane alongside the trace.
    coverage: Option<CoverageMap>,
}

/// Handles one client connection: frames in, frames out, until EOF.
fn serve_connection(mut stream: UnixStream, state: &ServerState) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // clean EOF or a client that vanished
        };
        // Chaos hook: kill this connection's worker mid-request (after
        // the frame is read, before any response) — the client must
        // classify the resulting EOF as transient and retry/fall back.
        failpoint::hit("daemon::serve");
        let t0 = Instant::now();
        state.requests.fetch_add(1, Ordering::Relaxed);
        shoal_obs::counter_add("daemon.requests", 1);

        // Open the request span: phase charges from here to `end`
        // accumulate in this worker's thread-local.
        trace::begin();
        let served = dispatch(&payload, state);
        let ser_t = Instant::now();
        let text = served.response.to_text();
        trace::phase_add("serialize", ser_t.elapsed().as_micros() as u64);
        let phases = trace::end();
        let total_us = t0.elapsed().as_micros() as u64;
        shoal_obs::hist_record("daemon.request_us", total_us);

        let trace = Trace {
            trace_id: served.trace_id.unwrap_or_else(trace::mint_trace_id),
            endpoint: served.endpoint.to_string(),
            outcome: served.outcome.to_string(),
            total_us,
            phases: phases.into_iter().map(|(n, us)| (n.to_string(), us)).collect(),
        };
        state
            .telemetry
            .lock()
            .unwrap()
            .record(trace, served.coverage.as_ref());

        // Chaos hook: drop the connection mid-frame — write a length
        // prefix and only half the payload, then hang up. The client
        // must treat the torn frame as transient and retry/fall back.
        if failpoint::armed("daemon::truncate-response") {
            let bytes = text.as_bytes();
            let _ = stream.write_all(&(bytes.len() as u32).to_be_bytes());
            let _ = stream.write_all(&bytes[..bytes.len() / 2]);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        if write_frame(&mut stream, text.as_bytes()).is_err() {
            return;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Parses and executes one request, always producing a response.
fn dispatch(payload: &[u8], state: &ServerState) -> Served {
    let decode_t = Instant::now();
    let request = std::str::from_utf8(payload)
        .map_err(|_| "frame is not utf-8".to_string())
        .and_then(|text| Json::parse(text).map_err(|e| format!("frame is not json: {e}")))
        .and_then(|json| Request::from_json(&json));
    trace::phase_add("decode", decode_t.elapsed().as_micros() as u64);
    let request = match request {
        Ok(r) => r,
        Err(e) => {
            return Served {
                response: error_response("bad-request", &e),
                endpoint: "unknown",
                outcome: "bad-request",
                trace_id: None,
                coverage: None,
            }
        }
    };
    match request {
        Request::Analyze {
            source,
            options,
            resilient,
            trace_id,
        } => handle_analyze(&source, &options, resilient, trace_id, state),
        Request::Status => Served {
            response: handle_status(state),
            endpoint: "status",
            outcome: "ok",
            trace_id: None,
            coverage: None,
        },
        Request::Stats => Served {
            response: handle_stats(state),
            endpoint: "stats",
            outcome: "ok",
            trace_id: None,
            coverage: None,
        },
        Request::Stop => Served {
            response: handle_stop(state),
            endpoint: "stop",
            outcome: "ok",
            trace_id: None,
            coverage: None,
        },
    }
}

/// Serves one analyze request: cache lookup, else run the engine and
/// populate both tiers. Parse errors (strict mode) and panics are
/// reported, never cached.
fn handle_analyze(
    source: &str,
    options: &AnalysisOptions,
    resilient: bool,
    trace_id: Option<String>,
    state: &ServerState,
) -> Served {
    let key = cache_key(&KeyParts {
        source,
        options,
        resilient,
        spec_fingerprint: state.spec_fingerprint,
        version: crate::version(),
    });

    let cached = {
        let _t = trace::phase_timer("cache");
        state.cache.lock().unwrap().get(&key)
    };
    if let Some(entry) = cached {
        state.hits.fetch_add(1, Ordering::Relaxed);
        return Served {
            response: analyze_response(&key, "hit", &entry, trace_id.as_deref()),
            endpoint: "analyze",
            outcome: "hit",
            trace_id,
            coverage: None,
        };
    }
    state.misses.fetch_add(1, Ordering::Relaxed);

    // Thundering-herd collapse: a miss boards the flight for its key.
    // A waiter blocks until the leader publishes, then fans the
    // outcome out without an engine run or an admission slot.
    let board_t = Instant::now();
    let lease = match state.flights.board(&key) {
        Boarding::Waiter(outcome) => {
            trace::phase_add("coalesce", board_t.elapsed().as_micros() as u64);
            return serve_flight_outcome(&key, outcome, trace_id, state);
        }
        Boarding::Leader(lease) => lease,
    };

    // Admission control: the leader asks the shield for an engine
    // slot, waiting at most the configured queue wait — capped lower
    // by the request's own deadline budget when it carries one. A shed
    // is published to any waiters too: they fall back locally just
    // like the leader's client, and nothing queues unboundedly.
    let admit_t = Instant::now();
    let slot = state.shield.admit(options.deadline);
    trace::phase_add("admission", admit_t.elapsed().as_micros() as u64);
    let _slot = match slot {
        Ok(slot) => slot,
        Err(reason) => {
            lease.publish(FlightOutcome::Shed(reason.label()));
            shoal_obs::counter_add("daemon.sheds", 1);
            return Served {
                response: shed_response(reason.label()),
                endpoint: "analyze",
                outcome: "shed",
                trace_id,
                coverage: None,
            };
        }
    };

    // Chaos hook: stall the admitted engine run (exercises client
    // request timeouts without touching admission).
    failpoint::hit("daemon::analyze");

    // Run the engine outside the cache lock; shield the worker from
    // engine panics so one poisonous script can't take the daemon down.
    // The engine's own phase hooks (`parse`, `symexec`, `relang`,
    // `report`) charge the open trace from inside this call.
    //
    // Every miss is audited: `audit` is excluded from the canonical
    // cache key (like `profile`, it is a side channel that never
    // enters the serialized report body), so flipping it here changes
    // neither the key nor the response bytes — it only feeds the
    // fleet-precision plane in `stats`.
    let mut opts = options.clone();
    opts.audit = true;
    let src = source.to_string();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        if resilient {
            Ok(analyze_source_resilient(&src, opts))
        } else {
            analyze_source_with(&src, opts)
        }
    }));
    match outcome {
        Ok(Ok(mut report)) => {
            let coverage = report.coverage.take();
            let entry = crate::entry_from_report(&report);
            {
                let _t = trace::phase_timer("cache");
                state.cache.lock().unwrap().put(key.clone(), entry.clone());
            }
            // Publish only after the cache holds the entry: a request
            // arriving between publication and its own cache lookup
            // must find the verdict, not start a redundant flight.
            lease.publish(FlightOutcome::Verdict(entry.clone()));
            Served {
                response: analyze_response(&key, "miss", &entry, trace_id.as_deref()),
                endpoint: "analyze",
                outcome: "miss",
                trace_id,
                coverage,
            }
        }
        Ok(Err(parse_err)) => {
            let msg = parse_err.to_string();
            lease.publish(FlightOutcome::ParseError(msg.clone()));
            Served {
                response: error_response("parse", &msg),
                endpoint: "analyze",
                outcome: "parse-error",
                trace_id,
                coverage: None,
            }
        }
        Err(panic) => {
            let msg = panic_message(&panic);
            shoal_obs::counter_add("daemon.panics", 1);
            lease.publish(FlightOutcome::Panic(msg.clone()));
            Served {
                response: error_response("panic", &msg),
                endpoint: "analyze",
                outcome: "panic",
                trace_id,
                coverage: None,
            }
        }
    }
}

/// Answers a coalesced waiter from its flight's published outcome.
/// A fanned-out verdict is marked `cache:"coalesced"` (the bytes of
/// `findings`/`text`/`body` are identical to any other serving path);
/// a shed leader sheds its waiters too; errors mirror the leader's.
fn serve_flight_outcome(
    key: &str,
    outcome: FlightOutcome,
    trace_id: Option<String>,
    state: &ServerState,
) -> Served {
    match outcome {
        FlightOutcome::Verdict(entry) => {
            state.shield.note_coalesced();
            shoal_obs::counter_add("daemon.coalesced", 1);
            Served {
                response: analyze_response(key, "coalesced", &entry, trace_id.as_deref()),
                endpoint: "analyze",
                outcome: "coalesced",
                trace_id,
                coverage: None,
            }
        }
        FlightOutcome::Shed(reason) => {
            shoal_obs::counter_add("daemon.sheds", 1);
            Served {
                response: shed_response(reason),
                endpoint: "analyze",
                outcome: "shed",
                trace_id,
                coverage: None,
            }
        }
        FlightOutcome::ParseError(msg) => Served {
            response: error_response("parse", &msg),
            endpoint: "analyze",
            outcome: "parse-error",
            trace_id,
            coverage: None,
        },
        FlightOutcome::Panic(msg) => Served {
            response: error_response("panic", &msg),
            endpoint: "analyze",
            outcome: "panic",
            trace_id,
            coverage: None,
        },
    }
}

fn handle_status(state: &ServerState) -> Json {
    let CacheStats {
        hot_entries,
        disk_entries,
        evictions,
        ..
    } = state.cache.lock().unwrap().stats();
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("ok".into(), Json::Bool(true)),
        ("op".into(), Json::Str("status".into())),
        ("version".into(), Json::Str(crate::version().into())),
        ("pid".into(), Json::Num(std::process::id() as f64)),
        (
            "uptime_ms".into(),
            Json::Num(state.started.elapsed().as_millis() as f64),
        ),
        (
            "spec_fingerprint".into(),
            Json::Str(format!("{:016x}", state.spec_fingerprint)),
        ),
        (
            "requests".into(),
            Json::Num(state.requests.load(Ordering::Relaxed) as f64),
        ),
        (
            "hits".into(),
            Json::Num(state.hits.load(Ordering::Relaxed) as f64),
        ),
        (
            "misses".into(),
            Json::Num(state.misses.load(Ordering::Relaxed) as f64),
        ),
        ("evictions".into(), Json::Num(evictions as f64)),
        ("hot_entries".into(), Json::Num(hot_entries as f64)),
        ("disk_entries".into(), Json::Num(disk_entries as f64)),
    ])
}

/// The full telemetry snapshot: `shoal-stats/v1`.
///
/// Field order is part of the schema (stable across releases):
/// `schema`, `ok`, `op`, `version`, `pid`, `uptime_ms`, `workers`,
/// `requests` (`total` + `by` endpoint.outcome), `cache`, `latency_us`
/// (per endpoint.outcome histogram summaries), `slow_requests`,
/// `audit`, `shield`. New fields are appended, never inserted —
/// consumers may index by position.
fn handle_stats(state: &ServerState) -> Json {
    let cache = state.cache.lock().unwrap().stats();
    let telemetry = state.telemetry.lock().unwrap();

    let by = telemetry
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
        .collect();
    let latency = telemetry
        .hists
        .iter()
        .map(|(k, h)| (k.clone(), h.to_json()))
        .collect();
    let slow = telemetry
        .ring
        .slowest(SLOW_RETAIN)
        .iter()
        .map(Trace::to_json)
        .collect();

    Json::Obj(vec![
        ("schema".into(), Json::Str(STATS_SCHEMA.into())),
        ("ok".into(), Json::Bool(true)),
        ("op".into(), Json::Str("stats".into())),
        ("version".into(), Json::Str(crate::version().into())),
        ("pid".into(), Json::Num(std::process::id() as f64)),
        (
            "uptime_ms".into(),
            Json::Num(state.started.elapsed().as_millis() as f64),
        ),
        (
            "workers".into(),
            Json::Num(state.shield.concurrency() as f64),
        ),
        (
            "requests".into(),
            Json::Obj(vec![
                (
                    "total".into(),
                    Json::Num(state.requests.load(Ordering::Relaxed) as f64),
                ),
                ("traced".into(), Json::Num(telemetry.ring.pushed() as f64)),
                ("by".into(), Json::Obj(by)),
            ]),
        ),
        ("cache".into(), cache_stats_json(&cache)),
        ("latency_us".into(), Json::Obj(latency)),
        ("slow_requests".into(), Json::Arr(slow)),
        ("audit".into(), telemetry.audit.summary_json(5)),
        ("shield".into(), shield_stats_json(&state.shield.stats())),
    ])
}

/// Serializes the overload plane: admission-gate configuration, shed
/// taxonomy, coalesced fan-outs, and live queue occupancy.
fn shield_stats_json(s: &ShieldStats) -> Json {
    Json::Obj(vec![
        ("concurrency".into(), Json::Num(s.concurrency as f64)),
        ("queue_depth".into(), Json::Num(s.queue_depth as f64)),
        ("queue_wait_ms".into(), Json::Num(s.queue_wait_ms as f64)),
        ("admitted".into(), Json::Num(s.admitted as f64)),
        ("sheds".into(), Json::Num(s.sheds() as f64)),
        (
            "sheds_by".into(),
            Json::Obj(vec![
                (
                    "queue-full".into(),
                    Json::Num(s.shed_queue_full as f64),
                ),
                (
                    "queue-timeout".into(),
                    Json::Num(s.shed_queue_timeout as f64),
                ),
            ]),
        ),
        ("coalesced".into(), Json::Num(s.coalesced as f64)),
        (
            "queue_highwater".into(),
            Json::Num(s.queue_highwater as f64),
        ),
        ("running".into(), Json::Num(s.running as f64)),
        ("queued".into(), Json::Num(s.queued as f64)),
    ])
}

/// Serializes [`CacheStats`] (occupancy + the full outcome taxonomy).
fn cache_stats_json(cache: &CacheStats) -> Json {
    let o = cache.outcomes;
    Json::Obj(vec![
        ("hot_entries".into(), Json::Num(cache.hot_entries as f64)),
        ("disk_entries".into(), Json::Num(cache.disk_entries as f64)),
        ("capacity".into(), Json::Num(cache.capacity as f64)),
        ("lookups".into(), Json::Num(o.lookups as f64)),
        ("hot_hits".into(), Json::Num(o.hot_hits as f64)),
        ("disk_hits".into(), Json::Num(o.disk_hits as f64)),
        ("misses".into(), Json::Num(o.misses as f64)),
        ("corrupt_misses".into(), Json::Num(o.corrupt_misses as f64)),
        ("write_failures".into(), Json::Num(o.write_failures as f64)),
        ("evictions".into(), Json::Num(o.evictions as f64)),
        ("disk_evictions".into(), Json::Num(o.disk_evictions as f64)),
    ])
}

fn handle_stop(state: &ServerState) -> Json {
    state.shutdown.store(true, Ordering::SeqCst);
    // Wake the accept loop: it is blocked in `accept`, and will check
    // the flag as soon as any connection (this throwaway one) lands.
    let _ = UnixStream::connect(&state.socket);
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("ok".into(), Json::Bool(true)),
        ("op".into(), Json::Str("stop".into())),
    ])
}

fn analyze_response(key: &str, cache: &str, entry: &Entry, trace_id: Option<&str>) -> Json {
    let mut fields = vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("ok".into(), Json::Bool(true)),
        ("op".into(), Json::Str("analyze".into())),
        ("cache".into(), Json::Str(cache.into())),
        ("key".into(), Json::Str(key.into())),
    ];
    if let Some(id) = trace_id {
        // Echo the client's ID so it can stitch its `served=` marker to
        // the server-side trace.
        fields.push(("trace_id".into(), Json::Str(id.into())));
    }
    fields.push(("findings".into(), Json::Num(entry.findings as f64)));
    fields.push((
        "text".into(),
        Json::Arr(entry.text.iter().map(|l| Json::Str(l.clone())).collect()),
    ));
    fields.push(("body".into(), entry.body.clone()));
    Json::Obj(fields)
}

/// The structured overload answer: `ok:false, error:"shed"` plus the
/// machine-readable reason. A shed is authoritative — the client falls
/// back locally at once rather than retrying into the same overload.
fn shed_response(reason: &str) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str("shed".into())),
        ("reason".into(), Json::Str(reason.into())),
        (
            "message".into(),
            Json::Str(format!("daemon overloaded ({reason}); analyze locally")),
        ),
    ])
}

fn error_response(kind: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(kind.into())),
        ("message".into(), Json::Str(message.into())),
    ])
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine panicked".to_string()
    }
}
