//! shoal-shield: overload survival for the daemon.
//!
//! Two cooperating mechanisms keep an overloaded daemon answering
//! instead of queuing unboundedly or stalling:
//!
//! * **Admission control** ([`Shield`]): a counting gate caps how many
//!   analyses run concurrently, a bounded waiting queue caps how many
//!   requests may block for a slot, and every wait is budgeted — by the
//!   server's configured queue-wait ceiling *and* by the request's own
//!   deadline budget ([`shoal_core::AnalysisOptions::deadline`]) when
//!   one is set, whichever is smaller. A request that cannot be
//!   admitted is **shed** with a structured reason (`queue-full`,
//!   `queue-timeout`) instead of being dropped or stalled; the client
//!   hears the shed and serves the verdict locally, so nothing is lost.
//!
//! * **In-flight deduplication** ([`FlightTable`]): concurrent analyze
//!   requests for the *same cache key* collapse onto one computation.
//!   The first arrival becomes the **leader** and holds a
//!   [`FlightLease`]; later arrivals become waiters that block until
//!   the leader publishes its [`FlightOutcome`], then fan the result
//!   out without re-running the engine or taking an admission slot.
//!   The lease publishes on drop even if the leader panics, so a
//!   waiter can never block forever.
//!
//! Everything here is std-only (mutex + condvar + atomics); the shield
//! is consulted only on the analyze miss path, so cache hits and
//! control verbs (`status`, `stats`, `stop`) are never delayed.

use crate::cache::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a request was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The waiting queue was already at capacity on arrival.
    QueueFull,
    /// The request waited its full budget without a slot freeing.
    QueueTimeout,
}

impl ShedReason {
    /// The wire / telemetry label for this reason.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::QueueTimeout => "queue-timeout",
        }
    }
}

/// Admission-gate configuration.
#[derive(Debug, Clone)]
pub struct ShieldConfig {
    /// Concurrent analyses allowed (≥ 1).
    pub concurrency: usize,
    /// Requests allowed to wait for a slot; an arrival past this is
    /// shed `queue-full` immediately.
    pub queue_depth: usize,
    /// Ceiling on how long one request may wait for a slot.
    pub queue_wait: Duration,
}

impl Default for ShieldConfig {
    fn default() -> Self {
        ShieldConfig {
            concurrency: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_depth: 256,
            queue_wait: Duration::from_secs(2),
        }
    }
}

/// Mutable gate state (guarded by [`Shield::gate`]).
#[derive(Debug, Default)]
struct Gate {
    /// Analyses currently holding a slot.
    running: usize,
    /// Requests currently blocked waiting for a slot.
    waiting: usize,
    /// High-water mark of `waiting` over the daemon's lifetime.
    highwater: usize,
}

/// A point-in-time snapshot of the shield for the stats plane.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShieldStats {
    pub concurrency: usize,
    pub queue_depth: usize,
    pub queue_wait_ms: u64,
    pub admitted: u64,
    pub shed_queue_full: u64,
    pub shed_queue_timeout: u64,
    pub coalesced: u64,
    pub queue_highwater: usize,
    pub running: usize,
    pub queued: usize,
}

impl ShieldStats {
    /// Total sheds across all reasons.
    pub fn sheds(&self) -> u64 {
        self.shed_queue_full + self.shed_queue_timeout
    }
}

/// The admission gate. One per daemon.
pub struct Shield {
    gate: Mutex<Gate>,
    free: Condvar,
    concurrency: usize,
    queue_depth: usize,
    queue_wait: Duration,
    admitted: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_queue_timeout: AtomicU64,
    coalesced: AtomicU64,
}

impl Shield {
    pub fn new(config: ShieldConfig) -> Shield {
        Shield {
            gate: Mutex::new(Gate::default()),
            free: Condvar::new(),
            concurrency: config.concurrency.max(1),
            queue_depth: config.queue_depth,
            queue_wait: config.queue_wait,
            admitted: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_queue_timeout: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// The configured concurrency limit.
    pub fn concurrency(&self) -> usize {
        self.concurrency
    }

    /// Tries to admit one analysis, blocking up to the smaller of the
    /// configured queue wait and the request's own deadline `budget`.
    /// Returns a slot guard (released on drop) or the shed reason.
    ///
    /// # Errors
    ///
    /// [`ShedReason::QueueFull`] when the waiting queue is already at
    /// capacity; [`ShedReason::QueueTimeout`] when the wait budget ran
    /// out without a slot freeing.
    pub fn admit(&self, budget: Option<Duration>) -> Result<SlotGuard<'_>, ShedReason> {
        let wait_cap = match budget {
            Some(b) => b.min(self.queue_wait),
            None => self.queue_wait,
        };
        let mut gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        if gate.running < self.concurrency {
            gate.running += 1;
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(SlotGuard { shield: self });
        }
        if gate.waiting >= self.queue_depth {
            self.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(ShedReason::QueueFull);
        }
        gate.waiting += 1;
        gate.highwater = gate.highwater.max(gate.waiting);
        let deadline = Instant::now() + wait_cap;
        loop {
            // Check for a free slot before the deadline: a wake that
            // raced the timeout still claims the slot it was woken for.
            if gate.running < self.concurrency {
                gate.running += 1;
                gate.waiting -= 1;
                self.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(SlotGuard { shield: self });
            }
            let now = Instant::now();
            if now >= deadline {
                gate.waiting -= 1;
                self.shed_queue_timeout.fetch_add(1, Ordering::Relaxed);
                return Err(ShedReason::QueueTimeout);
            }
            let (g, _timeout) = self
                .free
                .wait_timeout(gate, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            gate = g;
        }
    }

    /// Counts one coalesced waiter (a request served from a flight it
    /// did not lead).
    pub fn note_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot for the stats plane.
    pub fn stats(&self) -> ShieldStats {
        let gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        ShieldStats {
            concurrency: self.concurrency,
            queue_depth: self.queue_depth,
            queue_wait_ms: self.queue_wait.as_millis() as u64,
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_queue_timeout: self.shed_queue_timeout.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            queue_highwater: gate.highwater,
            running: gate.running,
            queued: gate.waiting,
        }
    }
}

/// One admitted analysis slot; releasing it wakes all queued waiters
/// (they re-check the gate, so a spurious wake is harmless).
pub struct SlotGuard<'a> {
    shield: &'a Shield,
}

impl std::fmt::Debug for SlotGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotGuard").finish_non_exhaustive()
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut gate = self
            .shield
            .gate
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        gate.running = gate.running.saturating_sub(1);
        drop(gate);
        self.shield.free.notify_all();
    }
}

/// What one in-flight analysis concluded, fanned out to every waiter.
/// Mirrors the analyze outcomes the server can produce on a miss.
#[derive(Debug, Clone)]
pub enum FlightOutcome {
    /// A verdict (cached by the leader before publishing).
    Verdict(Entry),
    /// Strict-mode parse error (a verdict about the script, not a
    /// transport failure).
    ParseError(String),
    /// The engine panicked under the leader.
    Panic(String),
    /// The leader itself was shed before it could run.
    Shed(&'static str),
}

/// One in-flight computation, keyed by cache key.
struct Flight {
    slot: Mutex<Option<FlightOutcome>>,
    done: Condvar,
}

/// How `board` classified this request.
pub enum Boarding<'a> {
    /// First arrival for the key: run the analysis and publish through
    /// the lease.
    Leader(FlightLease<'a>),
    /// A leader was already in flight: this is its published outcome.
    Waiter(FlightOutcome),
}

/// The in-flight dedup table. One per daemon.
#[derive(Default)]
pub struct FlightTable {
    flights: Mutex<HashMap<String, Arc<Flight>>>,
}

impl FlightTable {
    pub fn new() -> FlightTable {
        FlightTable::default()
    }

    /// Joins the flight for `key`: the first caller leads, later
    /// callers block until the leader publishes and then receive the
    /// outcome.
    pub fn board(&self, key: &str) -> Boarding<'_> {
        let flight = {
            let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(flight) = flights.get(key) {
                Arc::clone(flight)
            } else {
                let flight = Arc::new(Flight {
                    slot: Mutex::new(None),
                    done: Condvar::new(),
                });
                flights.insert(key.to_string(), Arc::clone(&flight));
                return Boarding::Leader(FlightLease {
                    table: self,
                    key: key.to_string(),
                    flight,
                    published: false,
                });
            }
        };
        let mut slot = flight.slot.lock().unwrap_or_else(|e| e.into_inner());
        while slot.is_none() {
            slot = flight
                .done
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
        Boarding::Waiter(slot.clone().expect("published outcome"))
    }
}

/// The leader's obligation to publish. Publishing removes the key from
/// the table first (so a request arriving after publication starts a
/// fresh flight — the cache will serve it) and then wakes all waiters.
/// Dropping an unpublished lease publishes a `Panic` outcome so the
/// leader dying can never strand its waiters.
pub struct FlightLease<'a> {
    table: &'a FlightTable,
    key: String,
    flight: Arc<Flight>,
    published: bool,
}

impl FlightLease<'_> {
    /// Publishes the outcome to every waiter and retires the flight.
    pub fn publish(mut self, outcome: FlightOutcome) {
        self.publish_inner(outcome);
    }

    fn publish_inner(&mut self, outcome: FlightOutcome) {
        if self.published {
            return;
        }
        self.published = true;
        {
            let mut flights = self
                .table
                .flights
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            flights.remove(&self.key);
        }
        let mut slot = self.flight.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(outcome);
        drop(slot);
        self.flight.done.notify_all();
    }
}

impl Drop for FlightLease<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.publish_inner(FlightOutcome::Panic(
                "flight leader died before publishing".into(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoal_obs::json::Json;
    use std::sync::atomic::AtomicUsize;

    fn entry() -> Entry {
        Entry {
            body: Json::Obj(vec![]),
            text: vec!["ok".into()],
            findings: 0,
        }
    }

    #[test]
    fn admits_up_to_concurrency_then_queues() {
        let shield = Shield::new(ShieldConfig {
            concurrency: 2,
            queue_depth: 4,
            queue_wait: Duration::from_millis(200),
        });
        let a = shield.admit(None).expect("slot 1");
        let b = shield.admit(None).expect("slot 2");
        assert_eq!(shield.stats().running, 2);
        drop(a);
        let c = shield.admit(None).expect("slot freed by drop");
        drop(b);
        drop(c);
        let s = shield.stats();
        assert_eq!(s.running, 0);
        assert_eq!(s.admitted, 3);
        assert_eq!(s.sheds(), 0);
    }

    #[test]
    fn sheds_queue_full_when_queue_is_at_capacity() {
        let shield = Shield::new(ShieldConfig {
            concurrency: 1,
            queue_depth: 0,
            queue_wait: Duration::from_secs(5),
        });
        let _slot = shield.admit(None).expect("slot");
        // queue_depth 0: nobody may wait, so the second admit sheds
        // immediately rather than blocking for queue_wait.
        let t = Instant::now();
        let shed = shield.admit(None).expect_err("must shed");
        assert_eq!(shed, ShedReason::QueueFull);
        assert!(t.elapsed() < Duration::from_secs(1));
        assert_eq!(shield.stats().shed_queue_full, 1);
    }

    #[test]
    fn sheds_queue_timeout_and_deadline_budget_caps_the_wait() {
        let shield = Shield::new(ShieldConfig {
            concurrency: 1,
            queue_depth: 4,
            queue_wait: Duration::from_secs(30),
        });
        let _slot = shield.admit(None).expect("slot");
        // The request's own deadline budget (10ms) is far below the
        // configured queue wait (30s): the wait must honor the smaller.
        let t = Instant::now();
        let shed = shield
            .admit(Some(Duration::from_millis(10)))
            .expect_err("must time out");
        assert_eq!(shed, ShedReason::QueueTimeout);
        assert!(t.elapsed() < Duration::from_secs(5));
        let s = shield.stats();
        assert_eq!(s.shed_queue_timeout, 1);
        assert_eq!(s.queue_highwater, 1);
    }

    #[test]
    fn queued_waiter_claims_a_freed_slot() {
        let shield = Arc::new(Shield::new(ShieldConfig {
            concurrency: 1,
            queue_depth: 4,
            queue_wait: Duration::from_secs(10),
        }));
        let slot = shield.admit(None).expect("slot");
        let waiter = {
            let shield = Arc::clone(&shield);
            std::thread::spawn(move || shield.admit(None).map(drop))
        };
        std::thread::sleep(Duration::from_millis(50));
        drop(slot); // frees the slot; the waiter must claim it
        waiter
            .join()
            .expect("waiter thread")
            .expect("waiter admitted after slot freed");
        assert_eq!(shield.stats().admitted, 2);
    }

    #[test]
    fn flight_waiters_receive_the_leaders_outcome() {
        let table = Arc::new(FlightTable::new());
        let lease = match table.board("k1") {
            Boarding::Leader(l) => l,
            Boarding::Waiter(_) => panic!("first board must lead"),
        };
        let fanned = Arc::new(AtomicUsize::new(0));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let table = Arc::clone(&table);
                let fanned = Arc::clone(&fanned);
                std::thread::spawn(move || match table.board("k1") {
                    Boarding::Waiter(FlightOutcome::Verdict(e)) => {
                        assert_eq!(e.text, vec!["ok".to_string()]);
                        fanned.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => panic!("waiter must receive the leader's verdict"),
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        lease.publish(FlightOutcome::Verdict(entry()));
        for w in waiters {
            w.join().expect("waiter thread");
        }
        assert_eq!(fanned.load(Ordering::Relaxed), 3);
        // The flight is retired: the next board leads a fresh flight.
        assert!(matches!(table.board("k1"), Boarding::Leader(_)));
    }

    #[test]
    fn distinct_keys_never_share_a_flight() {
        let table = FlightTable::new();
        let lease_a = match table.board("ka") {
            Boarding::Leader(l) => l,
            Boarding::Waiter(_) => panic!("ka must lead"),
        };
        // A different key boards its own flight even while ka is open.
        match table.board("kb") {
            Boarding::Leader(lease_b) => lease_b.publish(FlightOutcome::ParseError("x".into())),
            Boarding::Waiter(_) => panic!("kb must not join ka's flight"),
        }
        lease_a.publish(FlightOutcome::Verdict(entry()));
    }

    #[test]
    fn dropped_lease_publishes_panic_so_waiters_never_hang() {
        let table = Arc::new(FlightTable::new());
        let lease = match table.board("k9") {
            Boarding::Leader(l) => l,
            Boarding::Waiter(_) => panic!("first board must lead"),
        };
        let waiter = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || match table.board("k9") {
                Boarding::Waiter(outcome) => outcome,
                Boarding::Leader(_) => panic!("second board must wait"),
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        drop(lease); // leader dies without publishing
        match waiter.join().expect("waiter thread") {
            FlightOutcome::Panic(msg) => {
                assert!(msg.contains("leader died"), "{msg}");
            }
            _ => panic!("dropped lease must publish a panic outcome"),
        }
    }
}
