//! `shoal-daemon`: the just-in-time analysis service.
//!
//! The paper's title arc — "from ahead-of-time to just-in-time and
//! back again" — argues shell analysis must also run *at invocation
//! time*, where the latency budget is milliseconds. This crate is that
//! side of the arc: a resident daemon on a unix domain socket serving
//! analyze verdicts from a content-addressed cache, and a thin client
//! that auto-spawns it and **falls back to in-process analysis** when
//! the socket is unreachable (the PR 3 degradation contract: never
//! lose a verdict, always mark the path taken).
//!
//! The daemon is *not* a degraded fast path: a warm hit replays the
//! exact serialized report body the batch engine produced, so
//! `shoal jit --format json` is byte-identical to
//! `shoal analyze --format json` (asserted across the figure corpus in
//! this crate's tests and the CI smoke gate).
//!
//! Layout:
//!
//! * [`protocol`] — the `shoal-jit/v1` length-prefixed JSON wire
//!   format (plus the `shoal-stats/v1` telemetry snapshot),
//! * [`cache`] — content-addressed verdicts: bounded in-memory LRU
//!   over a size-capped on-disk store, every outcome counted by name,
//! * [`shield`] — overload survival: the bounded admission gate
//!   (concurrency limit + deadline-budgeted wait queue + structured
//!   sheds) and the in-flight dedup table (thundering-herd collapse),
//! * [`server`] — the accept loop, one thread per connection with
//!   engine runs rationed by the shield, tracing every request into
//!   the telemetry plane,
//! * [`client`] — connect / auto-spawn / retry with jittered backoff /
//!   fall back, minting the trace IDs the server echoes,
//! * [`bench_service`] — the closed-loop load generator behind
//!   `shoal bench-service` (including the `--overload` mode).

pub mod bench_service;
pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
pub mod shield;

use shoal_core::{AnalysisReport, Severity};
use std::path::PathBuf;

/// Builds the cacheable verdict for a report: the path-free serialized
/// body, each diagnostic's full `Display` rendering, and the
/// warning-or-worse count. Server (on miss) and client (on fallback)
/// both go through this one function, so a served verdict and a local
/// one can never disagree in shape.
pub fn entry_from_report(report: &AnalysisReport) -> cache::Entry {
    cache::Entry {
        body: shoal_obs::json::Json::Obj(shoal_core::provenance::report_body_fields(report)),
        text: report.diagnostics.iter().map(|d| d.to_string()).collect(),
        findings: report
            .diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .count(),
    }
}

/// The shoal version string baked into cache keys and status replies.
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// The default daemon socket path: `$SHOAL_DAEMON_SOCKET` if set, else
/// a per-user name under `$XDG_RUNTIME_DIR` (fall back: the temp dir).
pub fn default_socket_path() -> PathBuf {
    if let Ok(p) = std::env::var("SHOAL_DAEMON_SOCKET") {
        return PathBuf::from(p);
    }
    let base = std::env::var("XDG_RUNTIME_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    base.join(format!("shoal-daemon-{}.sock", user_tag()))
}

/// The default on-disk cache directory: `$SHOAL_CACHE_DIR` if set,
/// else `$XDG_CACHE_HOME/shoal-jit`, else `$HOME/.cache/shoal-jit`,
/// else a per-user directory under the temp dir.
pub fn default_cache_dir() -> PathBuf {
    if let Ok(p) = std::env::var("SHOAL_CACHE_DIR") {
        return PathBuf::from(p);
    }
    if let Ok(x) = std::env::var("XDG_CACHE_HOME") {
        return PathBuf::from(x).join("shoal-jit");
    }
    if let Ok(home) = std::env::var("HOME") {
        return PathBuf::from(home).join(".cache").join("shoal-jit");
    }
    std::env::temp_dir().join(format!("shoal-jit-cache-{}", user_tag()))
}

fn user_tag() -> String {
    std::env::var("USER")
        .or_else(|_| std::env::var("LOGNAME"))
        .unwrap_or_else(|_| "anon".into())
}
