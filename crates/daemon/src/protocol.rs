//! The `shoal-jit/v1` wire protocol.
//!
//! One request frame, one response frame, both length-prefixed JSON
//! ([`shoal_obs::frame`]). The protocol is deliberately boring — a
//! stable surface outlives the engine behind it (the maintenance
//! lesson this subsystem exists to apply): every message carries a
//! `schema` tag, unknown fields are ignored, and a malformed request
//! gets a structured error response, never a dropped connection.
//!
//! Requests:
//!
//! ```json
//! {"schema":"shoal-jit/v1","op":"analyze","source":"…","resilient":false,
//!  "options":{"loop_bound":2,"max_worlds":64,"stream_types":true,
//!             "pruning":true,"fuel":null,"deadline_ms":null},
//!  "trace_id":"00f1e2d3c4b5a697"}
//! {"schema":"shoal-jit/v1","op":"status"}
//! {"schema":"shoal-jit/v1","op":"stats"}
//! {"schema":"shoal-jit/v1","op":"stop"}
//! ```
//!
//! Responses: see [`crate::server`] (`ok`, `cache` =
//! `hit`/`miss`/`coalesced`, `key`, `body`, `text`, `findings` for
//! analyze; counters for status; `ok` for stop; `error` + `message` on
//! failure). An overloaded daemon sheds with a structured refusal
//! instead of queueing unboundedly:
//!
//! ```json
//! {"schema":"shoal-jit/v1","ok":false,"error":"shed",
//!  "reason":"queue-full","message":"daemon overloaded (queue-full); analyze locally"}
//! ```
//!
//! `reason` is machine-readable (`queue-full` | `queue-timeout`); a
//! shed is authoritative, so clients fall back locally rather than
//! retry. `cache:"coalesced"` marks a verdict fanned out from another
//! request's in-flight analysis — the payload fields are byte-
//! identical to a hit or miss for the same key.

use shoal_core::AnalysisOptions;
use shoal_obs::json::Json;
use std::time::Duration;

/// Protocol schema tag; requests and responses both carry it.
pub const SCHEMA: &str = "shoal-jit/v1";

/// Schema tag of the telemetry snapshot served by the `stats` verb
/// (and `shoal daemon status --format json`).
pub const STATS_SCHEMA: &str = "shoal-stats/v1";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Analyze `source` under `options`; `resilient` selects the
    /// recovering parser (the `scan` entry point) over the strict one.
    /// `trace_id` is minted by the client and echoed back in the
    /// response, linking the client's `served=` marker to the
    /// server-side trace. Optional on the wire (unknown fields are
    /// ignored), so old clients and servers interoperate: an old
    /// server drops the field, an old client never sends it.
    Analyze {
        source: String,
        options: AnalysisOptions,
        resilient: bool,
        trace_id: Option<String>,
    },
    /// Report daemon liveness, uptime, and cache statistics.
    Status,
    /// Report the full telemetry snapshot: per-endpoint/per-outcome
    /// request counts, latency percentiles, cache counters, and the
    /// slow-request log ([`STATS_SCHEMA`]).
    Stats,
    /// Drain in-flight requests and shut down.
    Stop,
}

/// Serializes [`AnalysisOptions`] for the wire. `profile` is not
/// carried: profiled runs are meaningless served remotely, so the
/// client analyzes those in-process (see
/// [`AnalysisOptions::canonical`]).
pub fn options_json(o: &AnalysisOptions) -> Json {
    Json::Obj(vec![
        ("loop_bound".into(), Json::Num(o.loop_bound as f64)),
        ("max_worlds".into(), Json::Num(o.max_worlds as f64)),
        ("stream_types".into(), Json::Bool(o.enable_stream_types)),
        ("pruning".into(), Json::Bool(o.enable_pruning)),
        (
            "fuel".into(),
            match o.fuel {
                Some(f) => Json::Num(f as f64),
                None => Json::Null,
            },
        ),
        (
            "deadline_ms".into(),
            match o.deadline {
                Some(d) => Json::Num(d.as_millis() as f64),
                None => Json::Null,
            },
        ),
    ])
}

/// Parses wire options; absent fields take the defaults, so older
/// clients keep working against newer daemons.
pub fn options_from_json(json: &Json) -> AnalysisOptions {
    let mut o = AnalysisOptions::default();
    if let Some(n) = json.get("loop_bound").and_then(Json::as_u64) {
        o.loop_bound = n as usize;
    }
    if let Some(n) = json.get("max_worlds").and_then(Json::as_u64) {
        o.max_worlds = n as usize;
    }
    if let Some(Json::Bool(b)) = json.get("stream_types") {
        o.enable_stream_types = *b;
    }
    if let Some(Json::Bool(b)) = json.get("pruning") {
        o.enable_pruning = *b;
    }
    o.fuel = json.get("fuel").and_then(Json::as_u64);
    o.deadline = json
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .map(Duration::from_millis);
    o
}

impl Request {
    /// Serializes for the wire.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("schema".into(), Json::Str(SCHEMA.into()))];
        match self {
            Request::Analyze {
                source,
                options,
                resilient,
                trace_id,
            } => {
                fields.push(("op".into(), Json::Str("analyze".into())));
                fields.push(("source".into(), Json::Str(source.clone())));
                fields.push(("resilient".into(), Json::Bool(*resilient)));
                fields.push(("options".into(), options_json(options)));
                if let Some(id) = trace_id {
                    fields.push(("trace_id".into(), Json::Str(id.clone())));
                }
            }
            Request::Status => fields.push(("op".into(), Json::Str("status".into()))),
            Request::Stats => fields.push(("op".into(), Json::Str("stats".into()))),
            Request::Stop => fields.push(("op".into(), Json::Str("stop".into()))),
        }
        Json::Obj(fields)
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the frame is not valid
    /// `shoal-jit/v1` (wrong schema, unknown op, missing fields); the
    /// server turns it into a `bad-request` response.
    pub fn from_json(json: &Json) -> Result<Request, String> {
        match json.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("unsupported schema {other:?} (want {SCHEMA:?})")),
        }
        match json.get("op").and_then(Json::as_str) {
            Some("analyze") => {
                let source = json
                    .get("source")
                    .and_then(Json::as_str)
                    .ok_or("analyze request needs a string `source`")?
                    .to_string();
                let resilient = matches!(json.get("resilient"), Some(Json::Bool(true)));
                let options = json
                    .get("options")
                    .map(options_from_json)
                    .unwrap_or_default();
                let trace_id = json
                    .get("trace_id")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                Ok(Request::Analyze {
                    source,
                    options,
                    resilient,
                    trace_id,
                })
            }
            Some("status") => Ok(Request::Status),
            Some("stats") => Ok(Request::Stats),
            Some("stop") => Ok(Request::Stop),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Analyze {
                source: "echo \"hi\"\n".into(),
                options: AnalysisOptions {
                    fuel: Some(500),
                    deadline: Some(Duration::from_millis(250)),
                    max_worlds: 32,
                    ..AnalysisOptions::default()
                },
                resilient: true,
                trace_id: Some("00f1e2d3c4b5a697".into()),
            },
            Request::Analyze {
                source: "true\n".into(),
                options: AnalysisOptions::default(),
                resilient: false,
                trace_id: None,
            },
            Request::Status,
            Request::Stats,
            Request::Stop,
        ];
        for req in reqs {
            let json = req.to_json();
            let text = json.to_text();
            let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn options_round_trip_preserves_canonical_key() {
        let o = AnalysisOptions {
            loop_bound: 5,
            max_worlds: 7,
            enable_stream_types: false,
            enable_pruning: false,
            fuel: Some(123),
            deadline: Some(Duration::from_millis(42)),
            ..AnalysisOptions::default()
        };
        let back = options_from_json(&options_json(&o));
        assert_eq!(back.canonical(), o.canonical());
    }

    #[test]
    fn unknown_fields_are_tolerated_for_interop() {
        // A frame from a *newer* client (extra fields this version has
        // never heard of) must still parse — the trace_id rollout
        // depends on exactly this property holding in both directions.
        let futuristic = r#"{"schema":"shoal-jit/v1","op":"analyze","source":"true\n",
            "trace_id":"aa00bb11cc22dd33","shard_hint":7,"tenant":"t1"}"#;
        let req = Request::from_json(&Json::parse(futuristic).unwrap()).unwrap();
        match req {
            Request::Analyze {
                source, trace_id, ..
            } => {
                assert_eq!(source, "true\n");
                assert_eq!(trace_id.as_deref(), Some("aa00bb11cc22dd33"));
            }
            other => panic!("expected analyze, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        for bad in [
            r#"{"op":"analyze"}"#,                                    // no schema
            r#"{"schema":"shoal-jit/v1","op":"explode"}"#,            // unknown op
            r#"{"schema":"shoal-jit/v1","op":"analyze"}"#,            // no source
            r#"{"schema":"shoal-jit/v9","op":"status"}"#,             // future schema
        ] {
            let json = Json::parse(bad).unwrap();
            assert!(Request::from_json(&json).is_err(), "{bad}");
        }
    }
}
