//! Property-based tests for signature application: the soundness
//! relations every downstream consumer relies on.

use proptest::prelude::*;
use shoal_relang::{ByteClass, Regex};
use shoal_streamty::sig::Sig;

fn classical_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::eps()),
        Just(Regex::byte(b'a')),
        Just(Regex::byte(b'b')),
        Just(Regex::class(ByteClass::from_bytes(b"ab"))),
        Just(Regex::class(ByteClass::range(b'0', b'9'))),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..3).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Regex::alt),
            inner.prop_map(|r| r.star()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn filter_output_is_subset_of_input(input in classical_regex(), keep in classical_regex()) {
        let sig = Sig::Filter { keep };
        let out = sig.apply(&input).expect("filters never reject");
        prop_assert!(out.is_subset_of(&input), "a filter invented lines");
    }

    #[test]
    fn filter_out_output_is_subset_of_input(input in classical_regex(), drop in classical_regex()) {
        let sig = Sig::FilterOut { drop: drop.clone() };
        let out = sig.apply(&input).expect("filters never reject");
        prop_assert!(out.is_subset_of(&input));
        prop_assert!(out.disjoint(&drop), "dropped lines leaked through");
    }

    #[test]
    fn filter_then_filterout_partition_input(input in classical_regex(), pat in classical_regex()) {
        // grep P + grep -v P together cover the input exactly.
        let keep = Sig::Filter { keep: pat.clone() }.apply(&input).unwrap();
        let dropped = Sig::FilterOut { drop: pat }.apply(&input).unwrap();
        prop_assert!(keep.or(&dropped).equiv(&input));
        prop_assert!(keep.disjoint(&dropped));
    }

    #[test]
    fn poly_wrap_is_exact(input in classical_regex(), prefix in "[a-z]{0,3}") {
        let sig = Sig::poly_wrap(Regex::lit(&prefix), Regex::eps());
        let out = sig.apply(&input).expect("unbounded poly accepts anything");
        let expected = Regex::lit(&prefix).then(&input);
        prop_assert!(out.equiv(&expected));
    }

    #[test]
    fn mono_application_overapproximates_poly(input in classical_regex(), prefix in "[a-z]{0,2}") {
        // Forgetting polymorphism must never *shrink* the output type:
        // the monomorphic reading is an over-approximation, which is why
        // it loses proofs (E6) but stays sound.
        let sig = Sig::poly_wrap(Regex::lit(&prefix), Regex::eps());
        let poly = sig.apply(&input).unwrap();
        let mono = sig.apply_mono(&input).unwrap();
        prop_assert!(poly.is_subset_of(&mono), "mono lost strings poly can produce");
    }

    #[test]
    fn bounded_identity_is_identity_within_bound(input in classical_regex()) {
        // Any input is within the `.*`-line bound after intersecting.
        let line_input = input.intersect(&Regex::any_line());
        let sig = Sig::bounded_identity(Regex::any_line());
        let out = sig.apply(&line_input).expect("within bound");
        prop_assert!(out.equiv(&line_input));
    }
}
