//! Property-based tests for signature application (on the in-repo
//! seeded harness): the soundness relations every downstream consumer
//! relies on.

use shoal_obs::prop::{run_cases, Gen};
use shoal_relang::{ByteClass, Regex};
use shoal_streamty::sig::Sig;

fn classical_regex(g: &mut Gen, depth: usize) -> Regex {
    if depth == 0 || g.ratio(0.35) {
        return match g.usize(0..5) {
            0 => Regex::eps(),
            1 => Regex::byte(b'a'),
            2 => Regex::byte(b'b'),
            3 => Regex::class(ByteClass::from_bytes(b"ab")),
            _ => Regex::class(ByteClass::range(b'0', b'9')),
        };
    }
    match g.usize(0..3) {
        0 => Regex::concat(g.vec_of(2..3, |g| classical_regex(g, depth - 1))),
        1 => Regex::alt(g.vec_of(2..3, |g| classical_regex(g, depth - 1))),
        _ => classical_regex(g, depth - 1).star(),
    }
}

#[test]
fn filter_output_is_subset_of_input() {
    run_cases("filter_output_is_subset_of_input", 96, |g| {
        let input = classical_regex(g, 3);
        let keep = classical_regex(g, 3);
        let sig = Sig::Filter { keep };
        let out = sig.apply(&input).expect("filters never reject");
        assert!(out.is_subset_of(&input), "a filter invented lines");
    });
}

#[test]
fn filter_out_output_is_subset_of_input() {
    run_cases("filter_out_output_is_subset_of_input", 96, |g| {
        let input = classical_regex(g, 3);
        let drop = classical_regex(g, 3);
        let sig = Sig::FilterOut { drop: drop.clone() };
        let out = sig.apply(&input).expect("filters never reject");
        assert!(out.is_subset_of(&input));
        assert!(out.disjoint(&drop), "dropped lines leaked through");
    });
}

#[test]
fn filter_then_filterout_partition_input() {
    run_cases("filter_then_filterout_partition_input", 96, |g| {
        let input = classical_regex(g, 3);
        let pat = classical_regex(g, 3);
        // grep P + grep -v P together cover the input exactly.
        let keep = Sig::Filter { keep: pat.clone() }.apply(&input).unwrap();
        let dropped = Sig::FilterOut { drop: pat }.apply(&input).unwrap();
        assert!(keep.or(&dropped).equiv(&input));
        assert!(keep.disjoint(&dropped));
    });
}

#[test]
fn poly_wrap_is_exact() {
    run_cases("poly_wrap_is_exact", 96, |g| {
        let input = classical_regex(g, 3);
        let prefix = g.string_of("abcdefghijklmnopqrstuvwxyz", 0..4);
        let sig = Sig::poly_wrap(Regex::lit(&prefix), Regex::eps());
        let out = sig.apply(&input).expect("unbounded poly accepts anything");
        let expected = Regex::lit(&prefix).then(&input);
        assert!(out.equiv(&expected));
    });
}

#[test]
fn mono_application_overapproximates_poly() {
    run_cases("mono_application_overapproximates_poly", 96, |g| {
        let input = classical_regex(g, 3);
        let prefix = g.string_of("abcdefghijklmnopqrstuvwxyz", 0..3);
        // Forgetting polymorphism must never *shrink* the output type:
        // the monomorphic reading is an over-approximation, which is why
        // it loses proofs (E6) but stays sound.
        let sig = Sig::poly_wrap(Regex::lit(&prefix), Regex::eps());
        let poly = sig.apply(&input).unwrap();
        let mono = sig.apply_mono(&input).unwrap();
        assert!(poly.is_subset_of(&mono), "mono lost strings poly can produce");
    });
}

#[test]
fn bounded_identity_is_identity_within_bound() {
    run_cases("bounded_identity_is_identity_within_bound", 96, |g| {
        let input = classical_regex(g, 3);
        // Any input is within the `.*`-line bound after intersecting.
        let line_input = input.intersect(&Regex::any_line());
        let sig = Sig::bounded_identity(Regex::any_line());
        let out = sig.apply(&line_input).expect("within bound");
        assert!(out.equiv(&line_input));
    });
}
