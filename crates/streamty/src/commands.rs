//! Deriving stream signatures from classified invocations.
//!
//! Each standard filter gets a signature derivation that inspects its
//! flags and arguments. This is the analyzer's counterpart of the spec
//! library: specs describe file-system behavior, signatures describe
//! stream behavior.

use crate::sig::Sig;
use shoal_relang::Regex;
use shoal_spec::Invocation;

/// The bound of `sort -g` (general numeric): lines beginning with an
/// optionally-signed decimal, a `0x` hexadecimal, or empty lines (which
/// `sort -g` treats as zero). This is the paper's
/// `∀α ⊆ 0x[0-9a-f]+.*` example generalized to what `-g` really accepts.
pub fn sort_g_bound() -> Regex {
    Regex::parse(r"([-+]?[0-9]+(\.[0-9]*)?([eE][-+]?[0-9]+)?.*|0[xX][0-9a-fA-F]+.*)?")
        .expect("builtin pattern")
}

/// The bound of `sort -n` (decimal numeric prefix or blank).
pub fn sort_n_bound() -> Regex {
    Regex::parse(r"( *[-+]?[0-9]+(\.[0-9]*)?.*)?").expect("builtin pattern")
}

/// Derives the stream signature of one filter invocation, if the command
/// is a known filter. Returns `None` for non-filters (their stdout comes
/// from the spec library's `stdout_line` instead) and for invocations too
/// exotic to type.
pub fn sig_for(inv: &Invocation) -> Option<Sig> {
    match inv.name.as_str() {
        "grep" => grep_sig(inv),
        "sed" => sed_sig(inv),
        "cut" => cut_sig(inv),
        "sort" => Some(sort_sig(inv)),
        "cat" | "tac" | "rev0" => Some(Sig::identity()),
        "head" | "tail" => Some(Sig::identity()),
        "uniq" => Some(uniq_sig(inv)),
        "tr" => Some(tr_sig(inv)),
        "wc" => Some(wc_sig(inv)),
        "nl" => Some(Sig::poly_wrap(
            Regex::parse(" *[0-9]+\t").expect("builtin"),
            Regex::eps(),
        )),
        "xargs" | "tee" => Some(Sig::identity()),
        _ => None,
    }
}

fn pattern_of(inv: &Invocation) -> Option<String> {
    if let Some(p) = inv.options.get(&'e') {
        return Some(p.clone());
    }
    inv.operands.first().cloned()
}

fn grep_sig(inv: &Invocation) -> Option<Sig> {
    let pattern = pattern_of(inv)?;
    // `-q` produces no stream output at all; `-c` produces a count.
    if inv.has_flag('q') {
        return Some(Sig::mono(Regex::any_line(), Regex::empty()));
    }
    if inv.has_flag('c') {
        return Some(Sig::mono(
            Regex::any_line(),
            Regex::parse("[0-9]+").expect("builtin"),
        ));
    }
    // `-F`: fixed string — build the literal's substring language.
    let mut keep = if inv.has_flag('F') {
        Regex::any_line()
            .then(&Regex::lit(&pattern))
            .then(&Regex::any_line())
    } else {
        // BREs and EREs differ in ways that rarely matter for typing;
        // parse both with the ERE-subset parser.
        Regex::grep_pattern(&pattern).ok()?
    };
    if inv.has_flag('i') {
        keep = keep.case_insensitive();
    }
    if inv.has_flag('o') {
        // Output lines are the matched fragments themselves.
        let mut inner = if inv.has_flag('F') {
            Regex::lit(&pattern)
        } else {
            Regex::parse(&pattern).ok()?
        };
        if inv.has_flag('i') {
            inner = inner.case_insensitive();
        }
        return Some(Sig::mono(Regex::any_line(), inner));
    }
    if inv.has_flag('v') {
        return Some(Sig::FilterOut { drop: keep });
    }
    let mut sig_keep = keep;
    if inv.has_flag('n') {
        // `-n` prefixes `lineno:`; model as filter-then-wrap. The filter
        // semantics dominate for dead-pipe detection, so approximate the
        // output as `[0-9]+:` + kept lines.
        sig_keep = Regex::parse("[0-9]+:").expect("builtin").then(&sig_keep);
        return Some(Sig::mono(Regex::any_line(), sig_keep));
    }
    Some(Sig::Filter { keep: sig_keep })
}

/// `sed` scripts of the forms the paper discusses:
/// `s/^/P/` (prefix), `s/$/S/` (suffix) — polymorphic wraps; anything
/// else falls back to `.* → .*`.
fn sed_sig(inv: &Invocation) -> Option<Sig> {
    let script = inv
        .options
        .get(&'e')
        .cloned()
        .or_else(|| inv.operands.first().cloned())?;
    if let Some(rest) = script.strip_prefix("s/^/") {
        if let Some(repl) = rest.strip_suffix('/') {
            if !repl.contains('/') && !repl.contains('&') && !repl.contains('\\') {
                return Some(Sig::poly_wrap(Regex::lit(repl), Regex::eps()));
            }
        }
    }
    if let Some(rest) = script.strip_prefix("s/$/") {
        if let Some(repl) = rest.strip_suffix('/') {
            if !repl.contains('/') && !repl.contains('&') && !repl.contains('\\') {
                return Some(Sig::poly_wrap(Regex::eps(), Regex::lit(repl)));
            }
        }
    }
    // `sed -n` with no printing commands produces nothing.
    if inv.has_flag('n') && !script.contains('p') {
        return Some(Sig::mono(Regex::any_line(), Regex::empty()));
    }
    // General substitution: output shape unknown.
    Some(Sig::mono(Regex::any_line(), Regex::any_line()))
}

fn cut_sig(inv: &Invocation) -> Option<Sig> {
    let delim = inv
        .options
        .get(&'d')
        .and_then(|d| d.bytes().next())
        .unwrap_or(b'\t');
    if inv.options.contains_key(&'f') {
        // Output is a field: no (single) delimiter inside a single
        // selected field. Multi-field selections (`-f1,3`) may retain
        // delimiters; approximate by any_line then.
        let fields = inv.options.get(&'f').map(String::as_str).unwrap_or("");
        if fields.chars().all(|c| c.is_ascii_digit()) {
            let mut cls = shoal_relang::ByteClass::dot();
            cls.remove(delim);
            return Some(Sig::mono(Regex::any_line(), Regex::class(cls).star()));
        }
        return Some(Sig::mono(Regex::any_line(), Regex::any_line()));
    }
    if inv.options.contains_key(&'c') {
        return Some(Sig::mono(Regex::any_line(), Regex::any_line()));
    }
    None
}

fn sort_sig(inv: &Invocation) -> Sig {
    if inv.has_flag('g') {
        Sig::bounded_identity(sort_g_bound())
    } else if inv.has_flag('n') {
        Sig::bounded_identity(sort_n_bound())
    } else {
        Sig::identity()
    }
}

fn uniq_sig(inv: &Invocation) -> Sig {
    if inv.has_flag('c') {
        // `uniq -c` prefixes a count.
        Sig::poly_wrap(Regex::parse(" *[0-9]+ ").expect("builtin"), Regex::eps())
    } else {
        Sig::identity()
    }
}

fn tr_sig(inv: &Invocation) -> Sig {
    // Precise class-translation typing is possible; the identity-shape
    // approximation `.* → .*` is sound for dead-pipe detection.
    let _ = inv;
    Sig::mono(Regex::any_line(), Regex::any_line())
}

fn wc_sig(inv: &Invocation) -> Sig {
    if inv.has_flag('l') || inv.has_flag('w') || inv.has_flag('c') {
        Sig::mono(
            Regex::any_line(),
            Regex::parse(" *[0-9]+").expect("builtin"),
        )
    } else {
        Sig::mono(
            Regex::any_line(),
            Regex::parse(" *[0-9]+ +[0-9]+ +[0-9]+.*").expect("builtin"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoal_spec::Invocation;

    fn inv(name: &str, flags: &[char], operands: &[&str]) -> Invocation {
        Invocation::new(name, flags, operands)
    }

    #[test]
    fn grep_plain_is_filter() {
        let sig = sig_for(&inv("grep", &[], &["^desc"])).unwrap();
        assert!(matches!(sig, Sig::Filter { .. }));
    }

    #[test]
    fn grep_v_is_filter_out() {
        let sig = sig_for(&inv("grep", &['v'], &["^#"])).unwrap();
        let out = sig.apply(&Regex::any_line()).unwrap();
        assert!(out.matches(b"data"));
        assert!(!out.matches(b"# comment"));
    }

    #[test]
    fn grep_i_widens_case() {
        let sig = sig_for(&inv("grep", &['i'], &["^desc"])).unwrap();
        let lsb = Regex::parse(r"(Distributor ID|Description|Release|Codename):\t.*").unwrap();
        let out = sig.apply(&lsb).unwrap();
        assert!(!out.is_empty(), "-i makes ^desc match Description:");
    }

    #[test]
    fn grep_o_extracts_matches() {
        // The paper's `grep -oE "$hex"`.
        let sig = sig_for(&inv("grep", &['o', 'E'], &["[0-9a-f]+"])).unwrap();
        let out = sig.apply(&Regex::any_line()).unwrap();
        assert!(out.equiv(&Regex::parse("[0-9a-f]+").unwrap()));
    }

    #[test]
    fn grep_q_and_c() {
        let q = sig_for(&inv("grep", &['q'], &["x"])).unwrap();
        assert!(q.apply(&Regex::any_line()).unwrap().is_empty());
        let c = sig_for(&inv("grep", &['c'], &["x"])).unwrap();
        let out = c.apply(&Regex::any_line()).unwrap();
        assert!(out.matches(b"42"));
        assert!(!out.matches(b"x 42"));
    }

    #[test]
    fn sed_prefix_is_polymorphic() {
        let sig = sig_for(&inv("sed", &[], &["s/^/0x/"])).unwrap();
        assert!(matches!(sig, Sig::Poly { .. }));
        let out = sig.apply(&Regex::parse("[0-9a-f]+").unwrap()).unwrap();
        assert!(out.equiv(&Regex::parse("0x[0-9a-f]+").unwrap()));
    }

    #[test]
    fn sed_suffix_is_polymorphic() {
        let sig = sig_for(&inv("sed", &[], &["s/$/;/"])).unwrap();
        let out = sig.apply(&Regex::parse("[a-z]+").unwrap()).unwrap();
        assert!(out.matches(b"abc;"));
        assert!(!out.matches(b"abc"));
    }

    #[test]
    fn sed_general_is_any() {
        let sig = sig_for(&inv("sed", &[], &["s/a/b/g"])).unwrap();
        let out = sig.apply(&Regex::parse("[a-z]+").unwrap()).unwrap();
        assert!(out.equiv(&Regex::any_line()));
    }

    #[test]
    fn cut_field_excludes_delimiter() {
        let mut i = inv("cut", &[], &[]);
        i.options.insert('f', "2".to_string());
        let sig = sig_for(&i).unwrap();
        let out = sig.apply(&Regex::any_line()).unwrap();
        assert!(out.matches(b"field"));
        assert!(!out.matches(b"two\tfields"));
    }

    #[test]
    fn sort_g_bound_accepts_paper_inputs() {
        let b = sort_g_bound();
        assert!(Regex::parse("0x[0-9a-f]+").unwrap().is_subset_of(&b));
        assert!(Regex::parse("[0-9]+").unwrap().is_subset_of(&b));
        assert!(!Regex::parse("[a-z]+").unwrap().is_subset_of(&b));
    }

    #[test]
    fn sort_plain_is_identity() {
        let sig = sig_for(&inv("sort", &[], &[])).unwrap();
        let t = Regex::parse("[a-z]+").unwrap();
        assert!(sig.apply(&t).unwrap().equiv(&t));
    }

    #[test]
    fn wc_l_emits_number() {
        let sig = sig_for(&inv("wc", &['l'], &[])).unwrap();
        let out = sig.apply(&Regex::any_line()).unwrap();
        assert!(out.matches(b"17"));
        assert!(out.matches(b"  17"));
        assert!(!out.matches(b"seventeen"));
    }

    #[test]
    fn unknown_commands_have_no_sig() {
        assert!(sig_for(&inv("objdump", &[], &[])).is_none());
        assert!(sig_for(&inv("rm", &['r'], &["/x"])).is_none());
    }
}
