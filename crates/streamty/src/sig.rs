//! Filter signatures and their application to line types.
//!
//! A stream's type is the regular language of its individual lines
//! (lines never contain `\n`). A [`Sig`] describes how one pipeline
//! stage transforms that type. Four shapes cover the standard filters:
//!
//! * [`Sig::Filter`] — output = input ∩ keep. This is grep: it never
//!   invents lines, so its output type is the *intersection* of what
//!   arrives and what the pattern selects. The paper's Fig. 5 verdict
//!   ("the intersection of grep's combined input and output constraints
//!   is the empty language") is exactly this signature going empty.
//! * [`Sig::Mono`] — a fixed input/output pair,
//!   `grep '^desc' :: .* → desc.*` style. Used when the output shape
//!   does not depend on the input shape (`cut -f2`, `wc -l`,
//!   `grep -o`).
//! * [`Sig::Poly`] — the §4 polymorphic shape `∀α ⊆ bound. α → pre·α·suf`.
//!   With `pre = suf = ε` this is the bounded identity (`sort -g`); with
//!   `pre = 0x` it is the paper's `sed 's/^/0x/' :: ∀α. α → 0xα`.
//! * [`Sig::FilterOut`] — output = input ∩ ¬drop (`grep -v`).

use shoal_relang::Regex;
use std::fmt;

/// A pipeline-stage signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sig {
    /// Output = input ∩ `keep`.
    Filter {
        /// Language of lines the filter lets through.
        keep: Regex,
    },
    /// Output = input ∩ ¬`drop`.
    FilterOut {
        /// Language of lines the filter removes.
        drop: Regex,
    },
    /// Fixed `input → output`, requiring input ⊆ `input`.
    Mono {
        /// Greatest line type the stage accepts.
        input: Regex,
        /// Line type of the output.
        output: Regex,
    },
    /// `∀α ⊆ bound. α → prefix·α·suffix`.
    Poly {
        /// Upper bound on the instantiation.
        bound: Regex,
        /// Prepended language.
        prefix: Regex,
        /// Appended language.
        suffix: Regex,
    },
}

/// Why a signature rejected its input type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigError {
    /// The offending input type.
    pub input: Regex,
    /// The bound the input failed to satisfy.
    pub expected: Regex,
    /// A line demonstrating the mismatch (in input, outside the bound).
    pub witness: Option<String>,
}

impl fmt::Display for SigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "input type {} is not contained in {}",
            self.input, self.expected
        )?;
        if let Some(w) = &self.witness {
            write!(f, " (e.g. line {w:?})")?;
        }
        Ok(())
    }
}

impl std::error::Error for SigError {}

impl Sig {
    /// The identity signature (`cat`).
    pub fn identity() -> Sig {
        Sig::Poly {
            bound: Regex::any_line(),
            prefix: Regex::eps(),
            suffix: Regex::eps(),
        }
    }

    /// A bounded identity (`sort -g`-style).
    pub fn bounded_identity(bound: Regex) -> Sig {
        Sig::Poly {
            bound,
            prefix: Regex::eps(),
            suffix: Regex::eps(),
        }
    }

    /// A monomorphic signature.
    pub fn mono(input: Regex, output: Regex) -> Sig {
        Sig::Mono { input, output }
    }

    /// An unbounded polymorphic wrap (`sed 's/^/0x/'`-style).
    pub fn poly_wrap(prefix: Regex, suffix: Regex) -> Sig {
        Sig::Poly {
            bound: Regex::any_line(),
            prefix,
            suffix,
        }
    }

    /// Applies the signature to an input line type, yielding the output
    /// line type.
    ///
    /// # Errors
    ///
    /// [`SigError`] when the input type violates the signature's bound —
    /// the "does not type-check" verdict. Filters never error (they
    /// accept anything).
    pub fn apply(&self, input: &Regex) -> Result<Regex, SigError> {
        match self {
            Sig::Filter { keep } => Ok(input.intersect(keep)),
            Sig::FilterOut { drop } => Ok(input.difference(drop)),
            Sig::Mono {
                input: bound,
                output,
            } => {
                if input.is_subset_of(bound) {
                    Ok(output.clone())
                } else {
                    Err(SigError {
                        input: input.clone(),
                        expected: bound.clone(),
                        witness: input.difference(bound).witness_string(),
                    })
                }
            }
            Sig::Poly {
                bound,
                prefix,
                suffix,
            } => {
                if input.is_subset_of(bound) {
                    Ok(Regex::concat(vec![
                        prefix.clone(),
                        input.clone(),
                        suffix.clone(),
                    ]))
                } else {
                    Err(SigError {
                        input: input.clone(),
                        expected: bound.clone(),
                        witness: input.difference(bound).witness_string(),
                    })
                }
            }
        }
    }

    /// Applies *monomorphically*: polymorphic structure is forgotten, as
    /// in the paper's §4 illustration of why simple types lose
    /// information. `sed 's/^/0x/'` becomes `.* → 0x.*`, so the fact
    /// that the 0x prefix is followed by the *input* language is lost.
    /// Used by experiment E6 as the ablation baseline.
    pub fn apply_mono(&self, input: &Regex) -> Result<Regex, SigError> {
        match self {
            Sig::Poly {
                bound,
                prefix,
                suffix,
            } => Sig::Mono {
                input: bound.clone(),
                output: Regex::concat(vec![prefix.clone(), bound.clone(), suffix.clone()]),
            }
            .apply(input),
            other => other.apply(input),
        }
    }
}

impl fmt::Display for Sig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sig::Filter { keep } => write!(f, ".* → (input ∩ {keep})"),
            Sig::FilterOut { drop } => write!(f, ".* → (input \\ {drop})"),
            Sig::Mono { input, output } => write!(f, "{input} → {output}"),
            Sig::Poly {
                bound,
                prefix,
                suffix,
            } => {
                write!(f, "∀α ⊆ {bound}. α → ")?;
                if *prefix != Regex::Eps {
                    write!(f, "{prefix}·")?;
                }
                write!(f, "α")?;
                if *suffix != Regex::Eps {
                    write!(f, "·{suffix}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_intersects() {
        let lsb = Regex::parse(r"(Distributor ID|Description|Release|Codename):\t.*").unwrap();
        let bad = Sig::Filter {
            keep: Regex::grep_pattern("^desc").unwrap(),
        };
        let good = Sig::Filter {
            keep: Regex::grep_pattern("^Desc").unwrap(),
        };
        assert!(bad.apply(&lsb).unwrap().is_empty());
        assert!(!good.apply(&lsb).unwrap().is_empty());
    }

    #[test]
    fn filter_out_subtracts() {
        let input = Regex::parse("(ok|err).*").unwrap();
        let sig = Sig::FilterOut {
            drop: Regex::grep_pattern("^err").unwrap(),
        };
        let out = sig.apply(&input).unwrap();
        assert!(out.matches(b"ok fine"));
        assert!(!out.matches(b"err bad"));
    }

    #[test]
    fn mono_checks_bound() {
        let sig = Sig::mono(
            Regex::parse("[0-9]+").unwrap(),
            Regex::parse("n=[0-9]+").unwrap(),
        );
        assert!(sig.apply(&Regex::parse("[0-4]+").unwrap()).is_ok());
        let err = sig.apply(&Regex::parse("[0-9a-z]+").unwrap()).unwrap_err();
        assert!(err.witness.is_some());
    }

    #[test]
    fn poly_wraps_input() {
        // The paper's sed example: ∀α. α → 0xα.
        let sed = Sig::poly_wrap(Regex::lit("0x"), Regex::eps());
        let hex = Regex::parse("[0-9a-f]+").unwrap();
        let out = sed.apply(&hex).unwrap();
        assert!(out.matches(b"0xdeadbeef"));
        assert!(!out.matches(b"deadbeef"));
        assert!(out.equiv(&Regex::parse("0x[0-9a-f]+").unwrap()));
    }

    #[test]
    fn paper_e6_mono_vs_poly() {
        // Monomorphic sed forgets the hex constraint; polymorphic keeps it.
        let sed = Sig::poly_wrap(Regex::lit("0x"), Regex::eps());
        let hex = Regex::parse("[0-9a-f]+").unwrap();
        let sortg_bound = Regex::parse("0x[0-9a-f]+.*").unwrap();

        let poly_out = sed.apply(&hex).unwrap();
        assert!(
            poly_out.is_subset_of(&sortg_bound),
            "polymorphic typing validates"
        );

        let mono_out = sed.apply_mono(&hex).unwrap();
        assert!(
            !mono_out.is_subset_of(&sortg_bound),
            "monomorphic typing cannot validate (0x.* ⊄ 0x[0-9a-f]+.*)"
        );
    }

    #[test]
    fn bounded_identity_rejects_bad_input() {
        let sortg = Sig::bounded_identity(Regex::parse("0x[0-9a-f]+.*").unwrap());
        let hex = Regex::parse("0x[0-9a-f]+").unwrap();
        assert!(sortg.apply(&hex).is_ok());
        let words = Regex::parse("[a-z]+").unwrap();
        let err = sortg.apply(&words).unwrap_err();
        assert_eq!(err.expected, Regex::parse("0x[0-9a-f]+.*").unwrap());
    }

    #[test]
    fn identity_is_identity() {
        let id = Sig::identity();
        let t = Regex::parse("x[0-9]*").unwrap();
        assert!(id.apply(&t).unwrap().equiv(&t));
    }

    #[test]
    fn display_readable() {
        let sed = Sig::poly_wrap(Regex::lit("0x"), Regex::eps());
        assert_eq!(sed.to_string(), "∀α ⊆ .*. α → 0x·α");
        let sortg = Sig::bounded_identity(Regex::parse("[0-9]+").unwrap());
        assert!(sortg.to_string().contains("α → α"));
    }
}
