//! Descriptive type aliases.
//!
//! §4 ("Ergonomic annotations") argues that raw regular-language
//! constraints are "intimidating and cumbersome" and calls for "an
//! extensible library of descriptive types. For example, `any` may stand
//! for `.*`; `url` for inputs to curl; and `longlist` for outputs of
//! `ls -l`." This module is that library, plus the `typeOf`-style
//! reverse lookup used in diagnostics.

use shoal_relang::Regex;
use std::collections::BTreeMap;

/// An extensible alias table: name → line type.
#[derive(Debug, Clone)]
pub struct TypeAliases {
    map: BTreeMap<String, Regex>,
}

impl TypeAliases {
    /// The built-in aliases from the paper plus common Unix line shapes.
    pub fn builtin() -> TypeAliases {
        let mut map = BTreeMap::new();
        let mut put = |name: &str, pat: &str| {
            map.insert(
                name.to_string(),
                Regex::parse(pat).unwrap_or_else(|e| panic!("builtin alias {name}: {e}")),
            );
        };
        put("any", ".*");
        put("empty", "");
        put("word", "[^ \t]+");
        put("num", "[-+]?[0-9]+");
        put("float", r"[-+]?[0-9]+(\.[0-9]*)?([eE][-+]?[0-9]+)?");
        put("hex", "[0-9a-f]+");
        put("path", "/?([^/\n]+/)*[^/\n]+/?");
        put("abspath", "/([^/\n]+(/[^/\n]+)*)?");
        put("url", "(https?|ftp)://[^ \t]+");
        put(
            "longlist",
            "[-dlbcps][-rwxsStT]{9} +[0-9]+ +[^ ]+ +[^ ]+ +[0-9]+ .*",
        );
        put("kv", "[^=\t ]+=.*");
        put("tsv2", "[^\t]*\t[^\t]*");
        put("csv", "[^,\n]*(,[^,\n]*)*");
        put("ipv4", "[0-9]{1,3}(\\.[0-9]{1,3}){3}");
        put("identifier", "[A-Za-z_][A-Za-z0-9_]*");
        TypeAliases { map }
    }

    /// Resolves a type expression: either an alias name or a raw ERE.
    ///
    /// # Errors
    ///
    /// Returns the regex parse error message if the expression is neither
    /// an alias nor a valid pattern.
    pub fn resolve(&self, expr: &str) -> Result<Regex, String> {
        if let Some(r) = self.map.get(expr) {
            return Ok(r.clone());
        }
        Regex::parse(expr).map_err(|e| format!("{expr:?} is not a known type or pattern: {e}"))
    }

    /// Adds or replaces an alias (user `type` definitions).
    pub fn define(&mut self, name: &str, ty: Regex) {
        self.map.insert(name.to_string(), ty);
    }

    /// `typeOf`: the most specific alias containing `ty`, if any —
    /// preferring narrower aliases so diagnostics say `hex`, not `any`.
    pub fn type_of(&self, ty: &Regex) -> Option<&str> {
        let mut best: Option<(&str, &Regex)> = None;
        for (name, alias) in &self.map {
            if ty.is_subset_of(alias) {
                best = match best {
                    None => Some((name, alias)),
                    Some((_, b)) if alias.is_subset_of(b) && !b.is_subset_of(alias) => {
                        Some((name, alias))
                    }
                    keep => keep,
                };
            }
        }
        best.map(|(n, _)| n)
    }

    /// All alias names.
    pub fn names(&self) -> Vec<&str> {
        self.map.keys().map(String::as_str).collect()
    }
}

impl Default for TypeAliases {
    fn default() -> Self {
        TypeAliases::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_aliases_resolve() {
        let t = TypeAliases::builtin();
        assert!(t.resolve("any").unwrap().matches(b"whatever"));
        assert!(t.resolve("hex").unwrap().matches(b"deadbeef"));
        assert!(!t.resolve("hex").unwrap().matches(b"xyz"));
        assert!(t.resolve("url").unwrap().matches(b"https://example.org/x"));
        assert!(!t.resolve("url").unwrap().matches(b"not a url"));
        assert!(t.resolve("abspath").unwrap().matches(b"/usr/local/bin"));
        assert!(t.resolve("abspath").unwrap().matches(b"/"));
        assert!(!t.resolve("abspath").unwrap().matches(b"relative/path"));
    }

    #[test]
    fn longlist_matches_ls_l_output() {
        let t = TypeAliases::builtin();
        let ll = t.resolve("longlist").unwrap();
        assert!(ll.matches(b"-rw-r--r-- 1 root root 4096 Jan  1 00:00 notes.txt"));
        assert!(ll.matches(b"drwxr-xr-x 2 alice users 4096 Jul  6 12:00 src"));
        assert!(!ll.matches(b"notes.txt"));
    }

    #[test]
    fn raw_patterns_resolve_too() {
        let t = TypeAliases::builtin();
        assert!(t.resolve("[0-9]{4}").unwrap().matches(b"2026"));
        assert!(t.resolve("[unclosed").is_err());
    }

    #[test]
    fn user_definitions() {
        let mut t = TypeAliases::builtin();
        t.define("steamsuffix", Regex::parse(r"\.(config/)?steam").unwrap());
        assert!(t.resolve("steamsuffix").unwrap().matches(b".steam"));
    }

    #[test]
    fn type_of_prefers_specific() {
        let t = TypeAliases::builtin();
        let hex = Regex::parse("[0-9a-f]{8}").unwrap();
        assert_eq!(t.type_of(&hex), Some("hex"));
        let anything = Regex::any_line();
        assert_eq!(t.type_of(&anything), Some("any"));
        let digits = Regex::parse("[0-9]+").unwrap();
        // digits ⊆ hex ⊆ any; digits ⊆ num too. num and hex are
        // incomparable; either is acceptable, but not "any".
        let got = t.type_of(&digits).unwrap();
        assert_ne!(got, "any");
    }
}
