//! The pipeline type checker.
//!
//! Given an initial line type (from the producer's spec or `.*` when
//! unknown) and the signatures of the downstream stages, propagate the
//! type left to right and report, per stage:
//!
//! * **dead output** — the stage's output language is empty though its
//!   input was not: everything downstream sees an empty stream. This is
//!   Fig. 5's `grep '^desc'` verdict.
//! * **input mismatch** — the stage's bound rejects its input type
//!   (`sort -g` fed non-numeric lines).

use crate::sig::Sig;
use shoal_relang::Regex;
use std::fmt;

/// Per-stage verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageVerdict {
    /// Types flow through.
    Ok,
    /// Output language is empty although input was not.
    DeadOutput,
    /// Input type violates the stage's bound; the payload is the bound
    /// and an example offending line.
    InputMismatch {
        /// The bound that was violated.
        expected: Regex,
        /// A line in the input type but outside the bound.
        witness: Option<String>,
    },
}

/// The report for one stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage label (usually the command text).
    pub name: String,
    /// Input line type.
    pub input: Regex,
    /// Output line type (empty when the stage errored).
    pub output: Regex,
    /// Verdict.
    pub verdict: StageVerdict,
}

impl fmt::Display for StageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :: {} → {}", self.name, self.input, self.output)?;
        match &self.verdict {
            StageVerdict::Ok => Ok(()),
            StageVerdict::DeadOutput => write!(f, "  [DEAD: no line can pass]"),
            StageVerdict::InputMismatch { expected, witness } => {
                write!(f, "  [TYPE ERROR: input ⊄ {expected}")?;
                if let Some(w) = witness {
                    write!(f, ", e.g. {w:?}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Checks a pipeline: `initial` is the producer's output line type; each
/// element of `stages` is a labelled signature. Propagation continues
/// past errors (with the stage's nominal output) so one run reports all
/// problems.
pub fn check_pipeline(initial: &Regex, stages: &[(String, Sig)]) -> Vec<StageReport> {
    let mut current = initial.clone();
    let mut reports = Vec::with_capacity(stages.len());
    for (name, sig) in stages {
        let input = current.clone();
        let (output, verdict) = match sig.apply(&input) {
            Ok(out) => {
                if out.is_empty() && !input.is_empty() {
                    (out, StageVerdict::DeadOutput)
                } else {
                    (out, StageVerdict::Ok)
                }
            }
            Err(e) => {
                // Continue with the stage's most general output.
                let fallback = match sig {
                    Sig::Mono { output, .. } => output.clone(),
                    Sig::Poly {
                        bound,
                        prefix,
                        suffix,
                    } => Regex::concat(vec![prefix.clone(), bound.clone(), suffix.clone()]),
                    _ => Regex::any_line(),
                };
                (
                    fallback,
                    StageVerdict::InputMismatch {
                        expected: e.expected,
                        witness: e.witness,
                    },
                )
            }
        };
        reports.push(StageReport {
            name: name.clone(),
            input,
            output: output.clone(),
            verdict,
        });
        current = output;
    }
    reports
}

/// True when any stage reported a problem.
pub fn has_problem(reports: &[StageReport]) -> bool {
    reports.iter().any(|r| r.verdict != StageVerdict::Ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::sig_for;
    use shoal_spec::Invocation;

    fn stage(name: &str, flags: &[char], operands: &[&str]) -> (String, Sig) {
        let inv = Invocation::new(name, flags, operands);
        (format!("{inv}"), sig_for(&inv).expect("known filter"))
    }

    #[test]
    fn fig5_pipeline_reports_dead_grep() {
        // lsb_release -a | grep '^desc' | cut -f 2
        let lsb = Regex::parse(r"(Distributor ID|Description|Release|Codename):\t.*").unwrap();
        let mut cut = Invocation::new("cut", &[], &[]);
        cut.options.insert('f', "2".to_string());
        let stages = vec![
            stage("grep", &[], &["^desc"]),
            ("cut -f 2".to_string(), sig_for(&cut).unwrap()),
        ];
        let reports = check_pipeline(&lsb, &stages);
        assert_eq!(reports[0].verdict, StageVerdict::DeadOutput);
        assert!(has_problem(&reports));
    }

    #[test]
    fn fig5_corrected_pipeline_is_clean() {
        let lsb = Regex::parse(r"(Distributor ID|Description|Release|Codename):\t.*").unwrap();
        let stages = vec![stage("grep", &[], &["^Desc"])];
        let reports = check_pipeline(&lsb, &stages);
        assert_eq!(reports[0].verdict, StageVerdict::Ok);
        assert!(reports[0]
            .output
            .witness_string()
            .unwrap()
            .starts_with("Description:"));
    }

    #[test]
    fn hex_pipeline_types_with_polymorphism() {
        // grep -oE "[0-9a-f]+" | sed 's/^/0x/' | sort -g
        let stages = vec![
            stage("grep", &['o', 'E'], &["[0-9a-f]+"]),
            stage("sed", &[], &["s/^/0x/"]),
            stage("sort", &['g'], &[]),
        ];
        let reports = check_pipeline(&Regex::any_line(), &stages);
        assert!(
            !has_problem(&reports),
            "{:?}",
            reports.last().unwrap().verdict
        );
        // The final type is exactly 0x[0-9a-f]+.
        assert!(reports[2]
            .output
            .equiv(&Regex::parse("0x[0-9a-f]+").unwrap()));
    }

    #[test]
    fn sort_g_rejects_words() {
        let stages = vec![stage("sort", &['g'], &[])];
        let words = Regex::parse("[a-z]+").unwrap();
        let reports = check_pipeline(&words, &stages);
        assert!(matches!(
            reports[0].verdict,
            StageVerdict::InputMismatch { .. }
        ));
    }

    #[test]
    fn propagation_continues_after_error() {
        // sort -g errors, but wc -l downstream still gets a type.
        let stages = vec![stage("sort", &['g'], &[]), stage("wc", &['l'], &[])];
        let words = Regex::parse("[a-z]+").unwrap();
        let reports = check_pipeline(&words, &stages);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[1].verdict, StageVerdict::Ok);
        assert!(reports[1].output.matches(b"3"));
    }

    #[test]
    fn chained_filters_accumulate() {
        // grep err | grep -v warn: output is (err-lines) minus (warn-lines).
        let stages = vec![
            stage("grep", &[], &["err"]),
            stage("grep", &['v'], &["warn"]),
        ];
        let reports = check_pipeline(&Regex::any_line(), &stages);
        let out = &reports[1].output;
        assert!(out.matches(b"an err here"));
        assert!(!out.matches(b"err and warn"));
        assert!(!out.matches(b"all fine"));
    }

    #[test]
    fn contradictory_filters_go_dead() {
        let stages = vec![stage("grep", &[], &["^a"]), stage("grep", &[], &["^b"])];
        let reports = check_pipeline(&Regex::any_line(), &stages);
        assert_eq!(reports[1].verdict, StageVerdict::DeadOutput);
    }
}
