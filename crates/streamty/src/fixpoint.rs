//! Least-fixpoint stream-invariant inference for circular dataflow.
//!
//! §4 ("Feedback loops and circular dataflow") observes that crawlers,
//! indexers, and ML workloads wire commands into cycles, and proposes an
//! "iterative 'least fixpoint' approach: start with an empty invariant
//! set and then gradually expand it until a property needs no further
//! expansion". This module implements exactly that over a dataflow graph
//! whose nodes are streams and whose edges are filter signatures:
//!
//! ```text
//! type[n] ← seed[n] ∪ ⋃ { sig_e(type[src(e)]) : e into n }
//! ```
//!
//! iterated from ⊥ (the empty language) until no node's type grows.
//! Equality is decided semantically (language equivalence), not
//! syntactically. A widening threshold keeps pathological cycles finite:
//! after `widen_after` iterations a still-growing node is widened to the
//! full line type.

use crate::sig::Sig;
use shoal_relang::Regex;

/// A node index in the dataflow graph.
pub type NodeId = usize;

/// One edge: data flows from `from` through `sig` into `to`.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Producing node.
    pub from: NodeId,
    /// Consuming node.
    pub to: NodeId,
    /// The transformation applied along the edge.
    pub sig: Sig,
}

/// A dataflow graph over stream nodes.
#[derive(Debug, Clone, Default)]
pub struct DataflowGraph {
    names: Vec<String>,
    seeds: Vec<Regex>,
    edges: Vec<Edge>,
}

/// The result of fixpoint inference.
#[derive(Debug, Clone)]
pub struct FixpointOutcome {
    /// Final line type per node.
    pub types: Vec<Regex>,
    /// Iterations until stabilization.
    pub iterations: usize,
    /// Nodes that had to be widened.
    pub widened: Vec<NodeId>,
}

impl DataflowGraph {
    /// An empty graph.
    pub fn new() -> DataflowGraph {
        DataflowGraph::default()
    }

    /// Adds a stream node with an initial (seed) line type; `⊥` (empty)
    /// for pure intermediate streams.
    pub fn node(&mut self, name: &str, seed: Regex) -> NodeId {
        self.names.push(name.to_string());
        self.seeds.push(seed);
        self.names.len() - 1
    }

    /// Adds an edge carrying `sig` from `from` to `to`.
    pub fn edge(&mut self, from: NodeId, to: NodeId, sig: Sig) {
        self.edges.push(Edge { from, to, sig });
    }

    /// Node names (for reports).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Runs least-fixpoint inference. `widen_after` bounds the number of
    /// growth steps per node before widening to `.*`.
    pub fn solve(&self, widen_after: usize) -> FixpointOutcome {
        let n = self.names.len();
        let mut types: Vec<Regex> = vec![Regex::empty(); n];
        let mut grew_count = vec![0usize; n];
        let mut widened = Vec::new();
        let mut iterations = 0;
        loop {
            iterations += 1;
            let mut changed = false;
            for i in 0..n {
                let mut parts = vec![self.seeds[i].clone()];
                for e in self.edges.iter().filter(|e| e.to == i) {
                    let inflow = match e.sig.apply(&types[e.from]) {
                        Ok(t) => t,
                        // A bound violation mid-fixpoint means the cycle
                        // can carry lines outside the stage's bound; the
                        // safe invariant contribution is the bound image.
                        Err(_) => match &e.sig {
                            Sig::Mono { output, .. } => output.clone(),
                            Sig::Poly {
                                bound,
                                prefix,
                                suffix,
                            } => Regex::concat(vec![prefix.clone(), bound.clone(), suffix.clone()]),
                            _ => Regex::any_line(),
                        },
                    };
                    parts.push(inflow);
                }
                let next = Regex::alt(parts);
                if !next.is_subset_of(&types[i]) {
                    grew_count[i] += 1;
                    if grew_count[i] > widen_after {
                        types[i] = Regex::any_line();
                        if !widened.contains(&i) {
                            widened.push(i);
                        }
                    } else {
                        types[i] = next.or(&types[i]);
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        shoal_obs::counter_add("streamty.fixpoint_runs", 1);
        shoal_obs::counter_add("streamty.fixpoint_iterations", iterations as u64);
        shoal_obs::counter_add("streamty.widened_nodes", widened.len() as u64);
        shoal_obs::event!(
            "fixpoint",
            nodes = n,
            edges = self.edges.len(),
            iterations = iterations,
            widened = widened.len()
        );
        FixpointOutcome {
            types,
            iterations,
            widened,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_is_plain_propagation() {
        // source --grep err--> mid --wc -l--> out
        let mut g = DataflowGraph::new();
        let src = g.node("source", Regex::any_line());
        let mid = g.node("mid", Regex::empty());
        let out = g.node("out", Regex::empty());
        g.edge(
            src,
            mid,
            Sig::Filter {
                keep: Regex::grep_pattern("err").unwrap(),
            },
        );
        g.edge(
            mid,
            out,
            Sig::mono(Regex::any_line(), Regex::parse("[0-9]+").unwrap()),
        );
        let fx = g.solve(8);
        assert!(fx.widened.is_empty());
        assert!(fx.types[mid].matches(b"an err line"));
        assert!(!fx.types[mid].matches(b"fine"));
        assert!(fx.types[out].matches(b"42"));
    }

    #[test]
    fn self_loop_identity_converges_immediately() {
        // A tail -f style cycle that feeds a stream back into itself
        // unchanged: the invariant is the seed.
        let mut g = DataflowGraph::new();
        let n = g.node("loop", Regex::parse("seed[0-9]*").unwrap());
        g.edge(n, n, Sig::identity());
        let fx = g.solve(8);
        assert!(fx.types[n].equiv(&Regex::parse("seed[0-9]*").unwrap()));
        assert!(fx.widened.is_empty());
        assert!(fx.iterations <= 3);
    }

    #[test]
    fn cycle_through_filter_converges() {
        // worklist = seed ∪ grep '^task:' (worklist): stable at seed ∪
        // (task-lines of seed).
        let mut g = DataflowGraph::new();
        let n = g.node("worklist", Regex::parse("task:[a-z]+|done").unwrap());
        g.edge(
            n,
            n,
            Sig::Filter {
                keep: Regex::grep_pattern("^task:").unwrap(),
            },
        );
        let fx = g.solve(8);
        assert!(fx.types[n].matches(b"task:abc"));
        assert!(fx.types[n].matches(b"done"));
        assert!(fx.widened.is_empty());
    }

    #[test]
    fn growing_cycle_widens() {
        // Each trip around prepends "x": the exact invariant x*seed is
        // not reached by finite unions, so widening must kick in.
        let mut g = DataflowGraph::new();
        let n = g.node("grow", Regex::lit("seed"));
        g.edge(n, n, Sig::poly_wrap(Regex::lit("x"), Regex::eps()));
        let fx = g.solve(5);
        assert_eq!(fx.widened, vec![n]);
        assert!(fx.types[n].equiv(&Regex::any_line()));
    }

    #[test]
    fn two_node_cycle() {
        // a -> b through prefix "b:", b -> a through grep 'keep'.
        // Seed on a only.
        let mut g = DataflowGraph::new();
        let a = g.node("a", Regex::lit("keep"));
        let b = g.node("b", Regex::empty());
        g.edge(a, b, Sig::poly_wrap(Regex::lit("b:"), Regex::eps()));
        g.edge(
            b,
            a,
            Sig::Filter {
                keep: Regex::grep_pattern("nomatch").unwrap(),
            },
        );
        let fx = g.solve(8);
        // b carries b:keep; nothing flows back (filter kills it).
        assert!(fx.types[b].matches(b"b:keep"));
        assert!(fx.types[a].equiv(&Regex::lit("keep")));
        assert!(fx.widened.is_empty());
    }

    #[test]
    fn iterations_scale_with_cycle_length() {
        // A ring of k identity edges oriented *against* the solver's
        // update order needs ~k iterations to carry the seed around
        // (E7's measured series). With the flow aligned to update order
        // the chaotic (Gauss-Seidel) iteration collapses the ring in
        // O(1) sweeps; both behaviors are asserted.
        for k in [2usize, 4, 8] {
            // Against update order: edge i → i-1; seed at the last node.
            let mut g = DataflowGraph::new();
            let nodes: Vec<NodeId> = (0..k)
                .map(|i| {
                    let seed = if i == k - 1 {
                        Regex::lit("v")
                    } else {
                        Regex::empty()
                    };
                    g.node(&format!("n{i}"), seed)
                })
                .collect();
            for i in 1..k {
                g.edge(nodes[i], nodes[i - 1], Sig::identity());
            }
            g.edge(nodes[0], nodes[k - 1], Sig::identity());
            let fx = g.solve(16);
            for t in &fx.types {
                assert!(t.matches(b"v"));
            }
            assert!(
                fx.iterations >= k,
                "ring of {k} took {} iterations",
                fx.iterations
            );

            // With update order: converges in a constant number of sweeps.
            let mut g2 = DataflowGraph::new();
            let first = g2.node("m0", Regex::lit("v"));
            let mut prev = first;
            for i in 1..k {
                let n = g2.node(&format!("m{i}"), Regex::empty());
                g2.edge(prev, n, Sig::identity());
                prev = n;
            }
            g2.edge(prev, first, Sig::identity());
            let fx2 = g2.solve(16);
            for t in &fx2.types {
                assert!(t.matches(b"v"));
            }
            assert!(fx2.iterations <= 3);
        }
    }
}
