//! `shoal-streamty`: regular types for Unix streams.
//!
//! §3 introduces "*regular types*, a new type system for string shapes
//! centered around the familiar and concise representation of regular
//! languages", describing "the shape of entire streams or, more
//! conveniently, of each line in the stream". This crate implements that
//! type system:
//!
//! * [`sig`] — filter signatures: monomorphic (`grep '^desc' :: .* →
//!   desc.*`), *intersection* filters (grep's output is input ∩ pattern,
//!   which is what makes Fig. 5's dead pipe decidable), and the §4
//!   **polymorphic** signatures (`sed 's/^/0x/' :: ∀α. α → 0xα`,
//!   `sort -g :: ∀α ⊆ numeric. α → α`);
//! * [`commands`] — deriving a signature from a classified invocation of
//!   the standard filters (`grep`, `sed`, `cut`, `sort`, `head`, `tail`,
//!   `tr`, `uniq`, `wc`, `cat`, …), including flag handling (`-v`, `-o`,
//!   `-i`, `-c`, `-q`);
//! * [`pipeline`] — the pipeline checker: propagate a line type through
//!   the stages, reporting dead stages (empty output language) and input
//!   mismatches (input ⊄ bound);
//! * [`fixpoint`] — least-fixpoint inference of stream invariants for
//!   circular dataflow graphs (§4 "Feedback loops and circular
//!   dataflow"), with widening;
//! * [`aliases`] — the extensible library of descriptive types (`any`,
//!   `hex`, `url`, `longlist`, …) from §4 "Ergonomic annotations".
//!
//! # Examples
//!
//! ```
//! use shoal_relang::Regex;
//! use shoal_streamty::sig::Sig;
//!
//! // The paper's §4 pipeline: grep -oE "$hex" | sed 's/^/0x/' | sort -g
//! let hex = Regex::parse("[0-9a-f]+").unwrap();
//! let extract = Sig::mono(Regex::any_line(), hex.clone());
//! let prefix = Sig::poly_wrap(Regex::lit("0x"), Regex::eps());
//! let sortg = shoal_streamty::commands::sort_g_bound();
//!
//! let t1 = extract.apply(&Regex::any_line()).unwrap();
//! let t2 = prefix.apply(&t1).unwrap();
//! assert!(t2.is_subset_of(&sortg)); // 0x[0-9a-f]+ ⊆ sort -g's bound
//! ```

pub mod aliases;
pub mod commands;
pub mod fixpoint;
pub mod pipeline;
pub mod sig;

pub use aliases::TypeAliases;
pub use commands::sig_for;
pub use fixpoint::{DataflowGraph, FixpointOutcome};
pub use pipeline::{check_pipeline, StageReport, StageVerdict};
pub use sig::{Sig, SigError};
