//! Integration tests for the shell parser, including every script figure
//! from the paper.

use shoal_shparse::{parse_script, AndOrOp, Command, ParamOp, RedirOp, WordPart};

/// Convenience: parse and unwrap.
fn p(src: &str) -> shoal_shparse::Script {
    match parse_script(src) {
        Ok(s) => s,
        Err(e) => panic!("failed to parse {src:?}: {e}"),
    }
}

/// The first simple command of the first item.
fn first_simple(script: &shoal_shparse::Script) -> &shoal_shparse::SimpleCommand {
    match &script.items[0].and_or.first.commands[0] {
        Command::Simple(s) => s,
        other => panic!("expected simple command, got {other:?}"),
    }
}

#[test]
fn simple_command_words() {
    let s = p("echo hello world");
    let c = first_simple(&s);
    assert_eq!(c.words.len(), 3);
    assert_eq!(c.name_literal().as_deref(), Some("echo"));
    assert_eq!(c.words[2].as_literal().as_deref(), Some("world"));
}

#[test]
fn assignments_before_command() {
    let s = p("FOO=bar BAZ= env");
    let c = first_simple(&s);
    assert_eq!(c.assignments.len(), 2);
    assert_eq!(c.assignments[0].name, "FOO");
    assert_eq!(c.assignments[0].value.as_literal().as_deref(), Some("bar"));
    assert_eq!(c.assignments[1].name, "BAZ");
    assert!(c.assignments[1].value.parts.is_empty());
    assert_eq!(c.name_literal().as_deref(), Some("env"));
}

#[test]
fn bare_assignment() {
    let s = p("STEAMROOT=/home/user/.steam");
    let c = first_simple(&s);
    assert!(c.words.is_empty());
    assert_eq!(c.assignments[0].name, "STEAMROOT");
}

#[test]
fn assignment_is_positional_only_first() {
    // An `X=y` after the command name is an argument, not an assignment.
    let s = p("env X=y");
    let c = first_simple(&s);
    assert!(c.assignments.is_empty());
    assert_eq!(c.words.len(), 2);
}

#[test]
fn pipeline_structure() {
    let s = p("cat f | grep x | wc -l");
    let pipe = &s.items[0].and_or.first;
    assert_eq!(pipe.commands.len(), 3);
    assert!(!pipe.negated);
}

#[test]
fn negated_pipeline() {
    let s = p("! grep -q err log");
    assert!(s.items[0].and_or.first.negated);
}

#[test]
fn and_or_chain() {
    let s = p("make && make install || echo failed");
    let chain = &s.items[0].and_or;
    assert_eq!(chain.rest.len(), 2);
    assert_eq!(chain.rest[0].0, AndOrOp::And);
    assert_eq!(chain.rest[1].0, AndOrOp::Or);
}

#[test]
fn background_and_sequence() {
    let s = p("sleep 5 & echo done; echo again");
    assert_eq!(s.items.len(), 3);
    assert!(s.items[0].background);
    assert!(!s.items[1].background);
}

#[test]
fn comments_are_skipped() {
    let s = p("# a comment line\necho hi # trailing\n# another\n");
    assert_eq!(s.items.len(), 1);
    let c = first_simple(&s);
    assert_eq!(c.words.len(), 2);
}

#[test]
fn single_and_double_quotes() {
    let s = p(r#"printf '%s\n' "a b" c"#);
    let c = first_simple(&s);
    assert_eq!(c.words.len(), 4);
    assert!(matches!(c.words[1].parts[0], WordPart::SingleQuoted(_)));
    assert!(matches!(c.words[2].parts[0], WordPart::DoubleQuoted(_)));
    assert_eq!(c.words[2].as_literal().as_deref(), Some("a b"));
}

#[test]
fn escapes_in_words() {
    let s = p(r"echo a\ b");
    let c = first_simple(&s);
    assert_eq!(c.words.len(), 2);
    assert_eq!(c.words[1].as_literal().as_deref(), Some("a b"));
}

#[test]
fn parameter_expansions() {
    let s = p(r#"echo $HOME ${PATH} ${x:-default} ${y:?msg} ${0%/*} ${z##*/} ${#w}"#);
    let c = first_simple(&s);
    let param = |i: usize| match &c.words[i].parts[0] {
        WordPart::Param(p) => p,
        other => panic!("expected param, got {other:?}"),
    };
    assert_eq!(param(1).name, "HOME");
    assert!(param(1).op.is_none());
    assert_eq!(param(2).name, "PATH");
    assert!(matches!(param(3).op, Some(ParamOp::Default(_, true))));
    assert!(matches!(param(4).op, Some(ParamOp::Error(Some(_), true))));
    assert_eq!(param(5).name, "0");
    assert!(matches!(
        param(5).op,
        Some(ParamOp::RemoveSmallestSuffix(_))
    ));
    assert!(matches!(param(6).op, Some(ParamOp::RemoveLargestPrefix(_))));
    assert!(matches!(param(7).op, Some(ParamOp::Length)));
}

#[test]
fn special_parameters() {
    let s = p(r#"echo $0 $1 $# $? $$ $! $- $* "$@""#);
    let c = first_simple(&s);
    assert_eq!(c.words.len(), 10);
    for (i, name) in [
        (1, "0"),
        (2, "1"),
        (3, "#"),
        (4, "?"),
        (5, "$"),
        (6, "!"),
        (7, "-"),
        (8, "*"),
    ] {
        match &c.words[i].parts[0] {
            WordPart::Param(p) => assert_eq!(p.name, name),
            other => panic!("word {i}: {other:?}"),
        }
    }
}

#[test]
fn command_substitution() {
    let s = p(r#"out="$(ls -l | wc -l)""#);
    let c = first_simple(&s);
    let value = &c.assignments[0].value;
    let WordPart::DoubleQuoted(inner) = &value.parts[0] else {
        panic!("expected double-quoted value");
    };
    let WordPart::CmdSub(script) = &inner[0] else {
        panic!("expected command substitution");
    };
    assert_eq!(script.items[0].and_or.first.commands.len(), 2);
}

#[test]
fn backquote_substitution() {
    let s = p("files=`ls /tmp`");
    let c = first_simple(&s);
    let WordPart::CmdSub(script) = &c.assignments[0].value.parts[0] else {
        panic!("expected backquote command substitution");
    };
    assert_eq!(first_simple(script).name_literal().as_deref(), Some("ls"));
}

#[test]
fn arithmetic_substitution() {
    let s = p("echo $((1 + 2 * (3 - 1)))");
    let c = first_simple(&s);
    let WordPart::Arith(text) = &c.words[1].parts[0] else {
        panic!("expected arithmetic part");
    };
    assert_eq!(text, "1 + 2 * (3 - 1)");
}

#[test]
fn globs_and_tilde() {
    let s = p("ls *.log ?x [a-z]* ~ ~alice/docs");
    let c = first_simple(&s);
    assert!(matches!(c.words[1].parts[0], WordPart::Glob(ref g) if g == "*"));
    assert!(matches!(c.words[2].parts[0], WordPart::Glob(ref g) if g == "?"));
    assert!(matches!(c.words[3].parts[0], WordPart::Glob(ref g) if g == "[a-z]"));
    assert!(matches!(c.words[4].parts[0], WordPart::Tilde(None)));
    assert!(matches!(c.words[5].parts[0], WordPart::Tilde(Some(ref u)) if u == "alice"));
}

#[test]
fn redirections() {
    let s = p("cmd <in >out 2>>err 2>&1 <>rw >|clob");
    let c = first_simple(&s);
    assert_eq!(c.redirects.len(), 6);
    assert_eq!(c.redirects[0].op, RedirOp::In);
    assert_eq!(c.redirects[1].op, RedirOp::Out);
    assert_eq!(c.redirects[2].op, RedirOp::Append);
    assert_eq!(c.redirects[2].fd, Some(2));
    assert_eq!(c.redirects[3].op, RedirOp::DupOut);
    assert_eq!(c.redirects[4].op, RedirOp::ReadWrite);
    assert_eq!(c.redirects[5].op, RedirOp::Clobber);
}

#[test]
fn heredoc_basic() {
    let s = p("cat <<EOF\nline one\nline two\nEOF\necho after");
    assert_eq!(s.items.len(), 2);
    let c = first_simple(&s);
    let RedirOp::HereDoc { strip, body } = c.redirects[0].op else {
        panic!("expected here-doc");
    };
    assert!(!strip);
    assert_eq!(s.heredoc_body(body), "line one\nline two\n");
}

#[test]
fn heredoc_strip_tabs() {
    let s = p("cat <<-END\n\tindented\n\tEND\necho x");
    let RedirOp::HereDoc { strip, body } = first_simple(&s).redirects[0].op else {
        panic!("expected here-doc");
    };
    assert!(strip);
    assert_eq!(s.heredoc_body(body), "indented\n");
}

#[test]
fn two_heredocs_one_line() {
    let s = p("cat <<A <<B\nbody a\nA\nbody b\nB\n");
    let c = first_simple(&s);
    assert_eq!(c.redirects.len(), 2);
    let RedirOp::HereDoc { body: b0, .. } = c.redirects[0].op else {
        panic!()
    };
    let RedirOp::HereDoc { body: b1, .. } = c.redirects[1].op else {
        panic!()
    };
    assert_eq!(s.heredoc_body(b0), "body a\n");
    assert_eq!(s.heredoc_body(b1), "body b\n");
}

#[test]
fn if_elif_else() {
    let src = "if test -f a; then echo a; elif test -f b; then echo b; else echo c; fi";
    let s = p(src);
    let Command::If(clause, _, _) = &s.items[0].and_or.first.commands[0] else {
        panic!("expected if");
    };
    assert_eq!(clause.elifs.len(), 1);
    assert!(clause.else_body.is_some());
}

#[test]
fn while_and_until() {
    let s = p("while read line; do echo \"$line\"; done < input");
    let Command::While(clause, redirs, _) = &s.items[0].and_or.first.commands[0] else {
        panic!("expected while");
    };
    assert_eq!(clause.body.len(), 1);
    assert_eq!(redirs.len(), 1);
    let s2 = p("until test -f done.flag; do sleep 1; done");
    assert!(matches!(
        s2.items[0].and_or.first.commands[0],
        Command::Until(..)
    ));
}

#[test]
fn for_loop_with_words() {
    let s = p("for f in a b \"c d\"; do rm \"$f\"; done");
    let Command::For(clause, _, _) = &s.items[0].and_or.first.commands[0] else {
        panic!("expected for");
    };
    assert_eq!(clause.var, "f");
    assert_eq!(clause.words.as_ref().unwrap().len(), 3);
}

#[test]
fn for_loop_implicit_args() {
    let s = p("for arg; do echo \"$arg\"; done");
    let Command::For(clause, _, _) = &s.items[0].and_or.first.commands[0] else {
        panic!("expected for");
    };
    assert!(clause.words.is_none());
}

#[test]
fn case_statement() {
    let src = "case $x in\n  a|b) echo ab ;;\n  *Linux) echo linux ;;\n  *) echo other ;;\nesac";
    let s = p(src);
    let Command::Case(clause, _, _) = &s.items[0].and_or.first.commands[0] else {
        panic!("expected case");
    };
    assert_eq!(clause.arms.len(), 3);
    assert_eq!(clause.arms[0].patterns.len(), 2);
    // `*Linux` keeps its glob structure.
    let pat = &clause.arms[1].patterns[0];
    assert!(matches!(pat.parts[0], WordPart::Glob(ref g) if g == "*"));
}

#[test]
fn case_with_open_paren_patterns() {
    let s = p("case $x in (a) echo a ;; (b) echo b ;; esac");
    let Command::Case(clause, _, _) = &s.items[0].and_or.first.commands[0] else {
        panic!("expected case");
    };
    assert_eq!(clause.arms.len(), 2);
}

#[test]
fn subshell_and_brace_group() {
    let s = p("(cd /tmp && ls) > out");
    let Command::Subshell(items, redirs, _) = &s.items[0].and_or.first.commands[0] else {
        panic!("expected subshell");
    };
    assert_eq!(items.len(), 1);
    assert_eq!(redirs.len(), 1);
    let s2 = p("{ echo a; echo b; } 2>err");
    let Command::BraceGroup(items, redirs, _) = &s2.items[0].and_or.first.commands[0] else {
        panic!("expected brace group");
    };
    assert_eq!(items.len(), 2);
    assert_eq!(redirs.len(), 1);
}

#[test]
fn function_definition() {
    let s = p("cleanup() { rm -f \"$tmp\"; }\ncleanup");
    let Command::FunctionDef { name, body, .. } = &s.items[0].and_or.first.commands[0] else {
        panic!("expected function def");
    };
    assert_eq!(name, "cleanup");
    assert!(matches!(**body, Command::BraceGroup(..)));
}

#[test]
fn multiline_continuation() {
    let s = p("echo a \\\n  b");
    let c = first_simple(&s);
    assert_eq!(c.words.len(), 3);
}

// ---------------------------------------------------------------------
// The paper's figures
// ---------------------------------------------------------------------

/// Fig. 1: the Steam updater bug.
pub const FIG1: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
# ... more lines ...
rm -fr "$STEAMROOT"/*
"#;

/// Fig. 2: the obviously safe fix.
pub const FIG2: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"

if [ "$(realpath "$STEAMROOT/")" != "/" ]; then
    rm -fr "$STEAMROOT"/*
else
    echo "Bad script path: $0"; exit 1
fi
"#;

/// Fig. 3: the obviously unsafe fix (one character away from Fig. 2).
pub const FIG3: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"

if [ "$(realpath "$STEAMROOT/")" = "/" ]; then
    rm -fr "$STEAMROOT"/*
else
    echo "Bad script path: $0"; exit 1
fi
"#;

/// Fig. 5: the suffix fix with the dead `grep '^desc'` filter.
pub const FIG5: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/
case $(lsb_release -a | grep '^desc' | cut -f 2) in
  Debian) SUFFIX=".config/steam" ;;
  *Linux) SUFFIX=".steam" ;;
esac
rm -fr $STEAMROOT$SUFFIX
"#;

#[test]
fn fig1_parses() {
    let s = p(FIG1);
    assert_eq!(s.items.len(), 2);
    // Item 0: the assignment with the nested `cd … && echo $PWD`.
    let c = first_simple(&s);
    assert_eq!(c.assignments[0].name, "STEAMROOT");
    let WordPart::DoubleQuoted(inner) = &c.assignments[0].value.parts[0] else {
        panic!("expected quoted value");
    };
    let WordPart::CmdSub(sub) = &inner[0] else {
        panic!("expected command substitution");
    };
    assert_eq!(sub.items[0].and_or.rest.len(), 1);
    assert_eq!(sub.items[0].and_or.rest[0].0, AndOrOp::And);
    // Item 1: `rm -fr "$STEAMROOT"/*`.
    let Command::Simple(rm) = &s.items[1].and_or.first.commands[0] else {
        panic!("expected rm");
    };
    assert_eq!(rm.name_literal().as_deref(), Some("rm"));
    let target = &rm.words[2];
    assert_eq!(target.parts.len(), 3); // "…" + /  + *
    assert!(matches!(target.parts[2], WordPart::Glob(ref g) if g == "*"));
}

#[test]
fn fig2_and_fig3_parse_and_differ_only_in_operator() {
    let s2 = p(FIG2);
    let s3 = p(FIG3);
    let cond_of = |s: &shoal_shparse::Script| {
        let Command::If(clause, _, _) = &s.items[1].and_or.first.commands[0] else {
            panic!("expected if");
        };
        let Command::Simple(t) = &clause.cond[0].and_or.first.commands[0] else {
            panic!("expected test");
        };
        t.words
            .iter()
            .filter_map(|w| w.as_literal())
            .collect::<Vec<_>>()
    };
    let c2 = cond_of(&s2);
    let c3 = cond_of(&s3);
    assert!(c2.contains(&"!=".to_string()));
    assert!(c3.contains(&"=".to_string()));
    assert!(!c3.contains(&"!=".to_string()));
}

#[test]
fn fig5_parses() {
    let s = p(FIG5);
    assert_eq!(s.items.len(), 3);
    let Command::Case(clause, _, _) = &s.items[1].and_or.first.commands[0] else {
        panic!("expected case");
    };
    assert_eq!(clause.arms.len(), 2);
    // The subject is a command substitution over the 3-stage pipeline.
    let WordPart::CmdSub(sub) = &clause.subject.parts[0] else {
        panic!("expected cmdsub subject");
    };
    assert_eq!(sub.items[0].and_or.first.commands.len(), 3);
}

#[test]
fn paper_variant_snippet() {
    // §3 "Key takeaways": robustness to split variables.
    let s = p("c=\"/*\"; rm -fr $STEAMROOT$c");
    assert_eq!(s.items.len(), 2);
    let Command::Simple(rm) = &s.items[1].and_or.first.commands[0] else {
        panic!("expected rm");
    };
    let target = &rm.words[2];
    assert_eq!(target.parts.len(), 2);
    assert!(matches!(&target.parts[0], WordPart::Param(p) if p.name == "STEAMROOT"));
    assert!(matches!(&target.parts[1], WordPart::Param(p) if p.name == "c"));
}

#[test]
fn paper_hex_pipeline_parses() {
    let s = p("grep -oE \"$hex\" | sed 's/^/0x/' | sort -g");
    assert_eq!(s.items[0].and_or.first.commands.len(), 3);
}

#[test]
fn paper_rm_cat_snippet() {
    let s = p("rm -r $1\ncat $1/config");
    assert_eq!(s.items.len(), 2);
}

#[test]
fn curl_pipe_sh() {
    let s = p("curl sw.com/up.sh | verify --no-RW ~/mine | sh");
    assert_eq!(s.items[0].and_or.first.commands.len(), 3);
}

// ---------------------------------------------------------------------
// Error cases
// ---------------------------------------------------------------------

#[test]
fn errors_reported() {
    for bad in [
        "echo 'unterminated",
        "echo \"unterminated",
        "if true; then echo x",     // missing fi
        "while true; do echo x",    // missing done
        "case x in a) echo a",      // missing esac
        "echo $(",                  // unterminated cmdsub
        "cat <<EOF\nno terminator", // unterminated heredoc
        "fi",                       // stray reserved word
        "echo |",                   // missing command after pipe
        "a && ",                    // missing command after &&
        "( echo x",                 // unterminated subshell
    ] {
        assert!(
            parse_script(bad).is_err(),
            "expected parse error for {bad:?}"
        );
    }
}

#[test]
fn error_spans_have_lines() {
    let err = parse_script("echo ok\necho 'oops").unwrap_err();
    assert_eq!(err.span.line, 2);
}
