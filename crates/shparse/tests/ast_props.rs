//! Property-based round-trip testing of the parser/printer pair over
//! *generated* syntax trees (on the in-repo seeded harness): print a
//! random AST, parse the result, and the re-printed form must be
//! identical. This covers combinations no hand-written corpus reaches.

use shoal_obs::prop::{run_cases, Gen};
use shoal_shparse::{
    parse_script, AndOr, Assignment, CaseArm, CaseClause, Command, ForClause, IfClause, ListItem,
    ParamExp, ParamOp, Pipeline, Script, SimpleCommand, Span, WhileClause, Word, WordPart,
};

const RESERVED: &[&str] = &[
    "if", "then", "else", "elif", "fi", "do", "done", "while", "until", "for", "case", "esac",
    "in", "function",
];

fn ident(g: &mut Gen) -> String {
    loop {
        let mut s = g.string_of("abcdefghijklmnopqrstuvwxyz", 1..2);
        s.push_str(&g.string_of("abcdefghijklmnopqrstuvwxyz0123456789_", 0..6));
        // Reserved words are valid *arguments* but not command names or
        // for-variables; keep the generator in the unambiguous subset.
        if !RESERVED.contains(&s.as_str()) {
            return s;
        }
    }
}

fn safe_text(g: &mut Gen) -> String {
    g.string_of("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_./:=+,-", 1..9)
}

fn quoted_text(g: &mut Gen) -> String {
    g.string_of("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _./-", 0..9)
}

fn param(g: &mut Gen) -> ParamExp {
    let name = match g.usize(0..5) {
        0 => "1".to_string(),
        1 => "0".to_string(),
        2 => "#".to_string(),
        3 => "?".to_string(),
        _ => ident(g),
    };
    let op = match g.usize(0..7) {
        0 => None,
        1 => Some(ParamOp::Default(word_flat(g), g.bool())),
        2 => Some(ParamOp::Assign(word_flat(g), g.bool())),
        3 => Some(ParamOp::Alt(word_flat(g), g.bool())),
        4 => Some(ParamOp::RemoveSmallestSuffix(word_flat(g))),
        5 => Some(ParamOp::RemoveLargestPrefix(word_flat(g))),
        _ => Some(ParamOp::Length),
    };
    // `${#name}` only supports plain names/digits.
    let op = if matches!(op, Some(ParamOp::Length))
        && !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        None
    } else {
        op
    };
    ParamExp { name, op }
}

/// A word made only of simple parts (for use inside `${x:-…}` operands).
fn word_flat(g: &mut Gen) -> Word {
    let parts = g.vec_of(1..2, |g| {
        if g.bool() {
            WordPart::Literal(safe_text(g))
        } else {
            WordPart::SingleQuoted(quoted_text(g))
        }
    });
    Word {
        parts,
        span: Span::default(),
    }
}

fn word(g: &mut Gen) -> Word {
    let parts = g.vec_of(1..3, |g| match g.weighted(&[4, 2, 2, 1, 1]) {
        0 => WordPart::Literal(safe_text(g)),
        1 => WordPart::SingleQuoted(quoted_text(g)),
        2 => WordPart::Param(param(g)),
        3 => WordPart::DoubleQuoted(g.vec_of(1..3, |g| {
            if g.bool() {
                WordPart::Literal(safe_text(g))
            } else {
                WordPart::Param(param(g))
            }
        })),
        _ => WordPart::Glob("*".to_string()),
    });
    Word {
        parts,
        span: Span::default(),
    }
}

fn simple_command(g: &mut Gen) -> Command {
    let name = ident(g);
    let args = g.vec_of(0..3, word);
    let assigns = g.vec_of(0..2, |g| (ident(g), word(g)));
    let mut words = vec![Word {
        parts: vec![WordPart::Literal(name)],
        span: Span::default(),
    }];
    words.extend(args);
    Command::Simple(SimpleCommand {
        assignments: assigns
            .into_iter()
            .map(|(name, value)| Assignment {
                name,
                value,
                span: Span::default(),
            })
            .collect(),
        words,
        redirects: Vec::new(),
        span: Span::default(),
    })
}

fn item_of(cmd: Command) -> ListItem {
    ListItem {
        and_or: AndOr::single(Pipeline {
            negated: false,
            commands: vec![cmd],
        }),
        background: false,
    }
}

fn items(g: &mut Gen, depth: usize) -> Vec<ListItem> {
    g.vec_of(1..3, |g| item_of(command(g, depth)))
}

fn command(g: &mut Gen, depth: usize) -> Command {
    if depth == 0 || g.ratio(0.35) {
        return simple_command(g);
    }
    match g.usize(0..7) {
        0 => {
            // Wrap a multi-command pipeline back into a brace group so
            // the recursion type stays Command.
            let cmds = g.vec_of(1..3, |g| command(g, depth - 1));
            let neg = g.bool();
            Command::BraceGroup(
                vec![ListItem {
                    and_or: AndOr::single(Pipeline {
                        negated: neg,
                        commands: cmds,
                    }),
                    background: false,
                }],
                Vec::new(),
                Span::default(),
            )
        }
        1 => {
            let t = items(g, depth - 1);
            let e = items(g, depth - 1);
            Command::If(
                IfClause {
                    cond: t.clone(),
                    then_body: e,
                    elifs: Vec::new(),
                    else_body: Some(t),
                },
                Vec::new(),
                Span::default(),
            )
        }
        2 => {
            let c = items(g, depth - 1);
            let b = items(g, depth - 1);
            Command::While(WhileClause { cond: c, body: b }, Vec::new(), Span::default())
        }
        3 => {
            let var = ident(g);
            let words = g.vec_of(0..3, word);
            let body = items(g, depth - 1);
            Command::For(
                ForClause {
                    var,
                    words: if words.is_empty() { None } else { Some(words) },
                    body,
                },
                Vec::new(),
                Span::default(),
            )
        }
        4 => {
            let subject = word(g);
            let arms = g.vec_of(1..3, |g| (word_flat(g), items(g, depth - 1)));
            Command::Case(
                CaseClause {
                    subject,
                    arms: arms
                        .into_iter()
                        .map(|(p, body)| CaseArm {
                            patterns: vec![p],
                            body,
                        })
                        .collect(),
                },
                Vec::new(),
                Span::default(),
            )
        }
        5 => Command::Subshell(items(g, depth - 1), Vec::new(), Span::default()),
        _ => {
            let name = ident(g);
            let body = command(g, depth - 1);
            Command::FunctionDef {
                name,
                body: Box::new(Command::BraceGroup(
                    vec![item_of(body)],
                    Vec::new(),
                    Span::default(),
                )),
                span: Span::default(),
            }
        }
    }
}

fn script(g: &mut Gen) -> Script {
    Script {
        items: g.vec_of(1..4, |g| item_of(command(g, 3))),
        heredocs: Vec::new(),
    }
}

#[test]
fn printed_ast_reparses_to_fixpoint() {
    run_cases("printed_ast_reparses_to_fixpoint", 192, |g| {
        let ast = script(g);
        let printed = ast.to_source();
        let reparsed = parse_script(&printed)
            .unwrap_or_else(|e| panic!("printed AST failed to parse: {e}\n---\n{printed}"));
        let reprinted = reparsed.to_source();
        assert_eq!(
            printed, reprinted,
            "print→parse→print not a fixpoint\n---\n{printed}"
        );
    });
}

#[test]
fn printed_words_survive() {
    run_cases("printed_words_survive", 192, |g| {
        // Embed a word as an argument and round-trip it.
        let w = word(g);
        let script = Script {
            items: vec![item_of(Command::Simple(SimpleCommand {
                assignments: Vec::new(),
                words: vec![
                    Word {
                        parts: vec![WordPart::Literal("cmd".to_string())],
                        span: Span::default(),
                    },
                    w,
                ],
                redirects: Vec::new(),
                span: Span::default(),
            }))],
            heredocs: Vec::new(),
        };
        let printed = script.to_source();
        let reparsed = parse_script(&printed)
            .unwrap_or_else(|e| panic!("word failed to parse: {e}\n---\n{printed}"));
        assert_eq!(printed, reparsed.to_source(), "{printed}");
    });
}

#[test]
fn random_text_never_panics_the_parser() {
    run_cases("random_text_never_panics_the_parser", 256, |g| {
        // Any byte soup either parses or errors; no panics, no hangs.
        let n = g.usize(0..81);
        let src: String = (0..n)
            .map(|_| {
                // Printable ASCII plus newline, like the old "[ -~\n]".
                let c = g.usize(0..96);
                if c == 95 {
                    '\n'
                } else {
                    (b' ' + c as u8) as char
                }
            })
            .collect();
        let _ = parse_script(&src);
    });
}
