//! Property-based round-trip testing of the parser/printer pair over
//! *generated* syntax trees: print a random AST, parse the result, and
//! the re-printed form must be identical. This covers combinations no
//! hand-written corpus reaches.

use proptest::prelude::*;
use shoal_shparse::{
    parse_script, AndOr, AndOrOp, Assignment, CaseArm, CaseClause, Command, ForClause, IfClause,
    ListItem, ParamExp, ParamOp, Pipeline, Script, SimpleCommand, Span, WhileClause, Word,
    WordPart,
};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,5}"
}

fn safe_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_./:=+,-]{1,8}"
}

fn quoted_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 _./-]{0,8}"
}

fn param() -> impl Strategy<Value = ParamExp> {
    let plain_name = prop_oneof![
        ident(),
        Just("1".to_string()),
        Just("0".to_string()),
        Just("#".to_string()),
        Just("?".to_string()),
    ];
    let opd = prop_oneof![
        Just(None),
        (word_flat(), prop::bool::ANY).prop_map(|(w, c)| Some(ParamOp::Default(w, c))),
        (word_flat(), prop::bool::ANY).prop_map(|(w, c)| Some(ParamOp::Assign(w, c))),
        (word_flat(), prop::bool::ANY).prop_map(|(w, c)| Some(ParamOp::Alt(w, c))),
        word_flat().prop_map(|w| Some(ParamOp::RemoveSmallestSuffix(w))),
        word_flat().prop_map(|w| Some(ParamOp::RemoveLargestPrefix(w))),
        Just(Some(ParamOp::Length)),
    ];
    (plain_name, opd).prop_map(|(name, op)| {
        // `${#name}` only supports plain names/digits.
        let op = if matches!(op, Some(ParamOp::Length))
            && !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            None
        } else {
            op
        };
        ParamExp { name, op }
    })
}

/// A word made only of simple parts (for use inside `${x:-…}` operands).
fn word_flat() -> impl Strategy<Value = Word> {
    prop::collection::vec(
        prop_oneof![
            safe_text().prop_map(WordPart::Literal),
            quoted_text().prop_map(WordPart::SingleQuoted),
        ],
        1..2,
    )
    .prop_map(|parts| Word {
        parts,
        span: Span::default(),
    })
}

fn word() -> impl Strategy<Value = Word> {
    let part = prop_oneof![
        4 => safe_text().prop_map(WordPart::Literal),
        2 => quoted_text().prop_map(WordPart::SingleQuoted),
        2 => param().prop_map(WordPart::Param),
        1 => prop::collection::vec(
            prop_oneof![
                safe_text().prop_map(WordPart::Literal),
                param().prop_map(WordPart::Param),
            ],
            1..3,
        )
        .prop_map(WordPart::DoubleQuoted),
        1 => Just(WordPart::Glob("*".to_string())),
    ];
    prop::collection::vec(part, 1..3).prop_map(|parts| Word {
        parts,
        span: Span::default(),
    })
}

fn simple_command() -> impl Strategy<Value = Command> {
    (
        ident(),
        prop::collection::vec(word(), 0..3),
        prop::collection::vec((ident(), word()), 0..2),
    )
        .prop_map(|(name, args, assigns)| {
            let mut words = vec![Word {
                parts: vec![WordPart::Literal(name)],
                span: Span::default(),
            }];
            words.extend(args);
            Command::Simple(SimpleCommand {
                assignments: assigns
                    .into_iter()
                    .map(|(name, value)| Assignment {
                        name,
                        value,
                        span: Span::default(),
                    })
                    .collect(),
                words,
                redirects: Vec::new(),
                span: Span::default(),
            })
        })
}

fn item_of(cmd: Command) -> ListItem {
    ListItem {
        and_or: AndOr::single(Pipeline {
            negated: false,
            commands: vec![cmd],
        }),
        background: false,
    }
}

fn command() -> impl Strategy<Value = Command> {
    simple_command().prop_recursive(3, 12, 3, |inner| {
        let items = prop::collection::vec(inner.clone().prop_map(item_of), 1..3);
        prop_oneof![
            // Pipelines and and-or chains.
            (prop::collection::vec(inner.clone(), 1..3), prop::bool::ANY).prop_map(
                |(cmds, neg)| {
                    // Wrap a multi-command pipeline back into a brace
                    // group so the recursion type stays Command.
                    Command::BraceGroup(
                        vec![ListItem {
                            and_or: AndOr::single(Pipeline {
                                negated: neg,
                                commands: cmds,
                            }),
                            background: false,
                        }],
                        Vec::new(),
                        Span::default(),
                    )
                }
            ),
            (items.clone(), items.clone()).prop_map(|(t, e)| {
                Command::If(
                    IfClause {
                        cond: t.clone(),
                        then_body: e.clone(),
                        elifs: Vec::new(),
                        else_body: Some(t),
                    },
                    Vec::new(),
                    Span::default(),
                )
            }),
            (items.clone(), items.clone()).prop_map(|(c, b)| {
                Command::While(
                    WhileClause { cond: c, body: b },
                    Vec::new(),
                    Span::default(),
                )
            }),
            (ident(), prop::collection::vec(word(), 0..3), items.clone()).prop_map(
                |(var, words, body)| {
                    Command::For(
                        ForClause {
                            var,
                            words: if words.is_empty() { None } else { Some(words) },
                            body,
                        },
                        Vec::new(),
                        Span::default(),
                    )
                }
            ),
            (
                word(),
                prop::collection::vec((word_flat(), items.clone()), 1..3)
            )
                .prop_map(|(subject, arms)| {
                    Command::Case(
                        CaseClause {
                            subject,
                            arms: arms
                                .into_iter()
                                .map(|(p, body)| CaseArm {
                                    patterns: vec![p],
                                    body,
                                })
                                .collect(),
                        },
                        Vec::new(),
                        Span::default(),
                    )
                }),
            items
                .clone()
                .prop_map(|i| Command::Subshell(i, Vec::new(), Span::default())),
            (ident(), inner).prop_map(|(name, body)| Command::FunctionDef {
                name,
                body: Box::new(Command::BraceGroup(
                    vec![item_of(body)],
                    Vec::new(),
                    Span::default(),
                )),
                span: Span::default(),
            }),
        ]
    })
}

fn script() -> impl Strategy<Value = Script> {
    prop::collection::vec(command().prop_map(item_of), 1..4).prop_map(|items| Script {
        items,
        heredocs: Vec::new(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn printed_ast_reparses_to_fixpoint(ast in script()) {
        let printed = ast.to_source();
        let reparsed = parse_script(&printed).map_err(|e| {
            TestCaseError::fail(format!("printed AST failed to parse: {e}\n---\n{printed}"))
        })?;
        let reprinted = reparsed.to_source();
        prop_assert_eq!(
            printed.clone(),
            reprinted,
            "print→parse→print not a fixpoint\n---\n{}",
            printed
        );
    }

    #[test]
    fn printed_words_survive(w in word()) {
        // Embed a word as an argument and round-trip it.
        let script = Script {
            items: vec![item_of(Command::Simple(SimpleCommand {
                assignments: Vec::new(),
                words: vec![
                    Word {
                        parts: vec![WordPart::Literal("cmd".to_string())],
                        span: Span::default(),
                    },
                    w,
                ],
                redirects: Vec::new(),
                span: Span::default(),
            }))],
            heredocs: Vec::new(),
        };
        let printed = script.to_source();
        let reparsed = parse_script(&printed).map_err(|e| {
            TestCaseError::fail(format!("word failed to parse: {e}\n---\n{printed}"))
        })?;
        prop_assert_eq!(printed.clone(), reparsed.to_source(), "{}", printed);
    }

    #[test]
    fn random_text_never_panics_the_parser(src in "[ -~\\n]{0,80}") {
        // Any byte soup either parses or errors; no panics, no hangs.
        let _ = parse_script(&src);
    }
}
