//! Content-addressed statement identity.
//!
//! The incremental engine keys statement summaries on
//! `item_content_hash`, which hashes the pretty-printed canonical
//! subtree rather than byte spans. These tests pin the property that
//! makes prefix replay survive editing: whitespace- and comment-only
//! edits (blank lines, indentation, trailing comments, reordering of
//! the surrounding file) must not move any statement's hash, while any
//! semantic edit must.

use shoal_shparse::{canonical_item, item_content_hash, parse_script};

/// Per-statement hashes of a script, in statement order.
fn hashes(src: &str) -> Vec<u64> {
    let script = parse_script(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"));
    script
        .items
        .iter()
        .map(|item| item_content_hash(&script, item))
        .collect()
}

#[test]
fn blank_line_above_does_not_invalidate() {
    let base = "echo one\nrm -rf \"$d/\"*\necho two\n";
    let shifted = "\n\necho one\nrm -rf \"$d/\"*\necho two\n";
    assert_eq!(hashes(base), hashes(shifted));
}

#[test]
fn comment_and_indentation_edits_are_invisible() {
    let base = "cd /srv/app && make\ncp a b\n";
    for variant in [
        "# deploy step\ncd /srv/app && make\ncp a b\n",
        "cd /srv/app && make   # build\ncp a b\n",
        "cd /srv/app && make\n\n   cp a b\n",
        "   cd   /srv/app   &&   make\ncp a b # done\n",
    ] {
        assert_eq!(hashes(base), hashes(variant), "variant {variant:?}");
    }
}

#[test]
fn hash_ignores_statement_position() {
    // The same statement at the top and at the bottom of two different
    // files hashes identically: identity is content, not location.
    let a = hashes("echo probe\necho filler\n");
    let b = hashes("echo filler\necho other\necho probe\n");
    assert_eq!(a[0], b[2]);
    assert_eq!(a[1], b[0]);
}

#[test]
fn semantic_edits_move_the_hash() {
    let base = hashes("echo one\n")[0];
    for changed in ["echo two\n", "echo one two\n", "echo one &\n", "echo 'one'\n"] {
        assert_ne!(base, hashes(changed)[0], "edit {changed:?} must change the hash");
    }
}

#[test]
fn heredoc_bodies_are_part_of_the_content() {
    let a = "cat <<EOF\nalpha\nEOF\n";
    let b = "cat <<EOF\nbeta\nEOF\n";
    assert_ne!(hashes(a), hashes(b), "heredoc body edits must change the hash");
    let script = parse_script(a).unwrap();
    let (text, uses_heredoc) = canonical_item(&script, &script.items[0]);
    assert!(uses_heredoc, "top-level heredoc statements are flagged");
    assert!(text.contains("alpha\n"), "canonical text embeds the body: {text:?}");
}

#[test]
fn canonical_text_is_reparse_stable() {
    // The canonical rendering of a statement reparses to the same
    // canonical rendering — the hash is a fixpoint of print∘parse.
    let src = "for f in a b; do rm \"$f\"; done\ncase $x in a) echo a ;; esac\n";
    let script = parse_script(src).unwrap();
    for item in &script.items {
        let (text, _) = canonical_item(&script, item);
        let reparsed = parse_script(&text).unwrap_or_else(|e| panic!("reparse {text:?}: {e}"));
        assert_eq!(reparsed.items.len(), 1);
        assert_eq!(
            item_content_hash(&script, item),
            item_content_hash(&reparsed, &reparsed.items[0]),
            "canonical form of {text:?} is not hash-stable"
        );
    }
}
