//! Print/reparse round-trip stability.
//!
//! For every corpus script: parse it, print it, parse the printed form,
//! and print again. The two printed forms must be identical — any
//! divergence means the printer and parser disagree about structure.

use shoal_shparse::parse_script;

fn assert_roundtrip(src: &str) {
    let ast1 = parse_script(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"));
    let printed1 = ast1.to_source();
    let ast2 = parse_script(&printed1).unwrap_or_else(|e| {
        panic!("reparse of printed form failed: {e}\n--- printed:\n{printed1}")
    });
    let printed2 = ast2.to_source();
    assert_eq!(printed1, printed2, "printing is not a fixpoint for {src:?}");
}

#[test]
fn roundtrip_simple() {
    for src in [
        "echo hello world",
        "FOO=bar BAZ= env",
        "cat f | grep x | wc -l",
        "make && make install || echo failed",
        "sleep 5 & echo done; echo again",
        "! grep -q err log",
        "cmd <in >out 2>>err 2>&1",
        "echo 'single' \"double $x\" mixed\\ word",
    ] {
        assert_roundtrip(src);
    }
}

#[test]
fn roundtrip_expansions() {
    for src in [
        "echo $HOME ${PATH} ${x:-default} ${y:?msg} ${0%/*} ${z##*/} ${#w}",
        "echo ${a-x} ${b=y} ${c+z} ${d?}",
        "out=$(ls -l | wc -l)",
        "files=`ls /tmp`",
        "echo $((1 + 2))",
        "ls *.log ?x [a-z]* ~ ~alice/docs",
        "echo $0 $# $? $$ $! $- $* \"$@\"",
    ] {
        assert_roundtrip(src);
    }
}

#[test]
fn roundtrip_compound() {
    for src in [
        "if test -f a; then echo a; elif test -f b; then echo b; else echo c; fi",
        "while read line; do echo \"$line\"; done < input",
        "until test -f done.flag; do sleep 1; done",
        "for f in a b \"c d\"; do rm \"$f\"; done",
        "for arg; do echo \"$arg\"; done",
        "case $x in a|b) echo ab ;; *Linux) echo linux ;; *) echo other ;; esac",
        "(cd /tmp && ls) > out",
        "{ echo a; echo b; } 2>err",
        "cleanup() { rm -f \"$tmp\"; }\ncleanup",
        "f() ( cd /x; ls )",
    ] {
        assert_roundtrip(src);
    }
}

#[test]
fn roundtrip_heredocs() {
    for src in [
        "cat <<EOF\nline one\nline two\nEOF\necho after",
        "cat <<-END\n\tindented\n\tEND\necho x",
        "cat <<A <<B\nbody a\nA\nbody b\nB\n",
    ] {
        assert_roundtrip(src);
    }
}

#[test]
fn roundtrip_paper_figures() {
    let fig1 = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
rm -fr "$STEAMROOT"/*
"#;
    let fig2 = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
if [ "$(realpath "$STEAMROOT/")" != "/" ]; then
    rm -fr "$STEAMROOT"/*
else
    echo "Bad script path: $0"; exit 1
fi
"#;
    let fig5 = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/
case $(lsb_release -a | grep '^desc' | cut -f 2) in
  Debian) SUFFIX=".config/steam" ;;
  *Linux) SUFFIX=".steam" ;;
esac
rm -fr $STEAMROOT$SUFFIX
"#;
    for src in [fig1, fig2, fig5] {
        assert_roundtrip(src);
    }
}

#[test]
fn roundtrip_nested() {
    for src in [
        "if true; then if false; then echo deep; fi; fi",
        "while true; do case $x in a) for i in 1 2; do echo $i; done ;; esac; done",
        "echo $(echo $(echo inner))",
        "x=\"pre$(cmd a | cmd b)post\"",
        "if [ \"$(realpath \"$r/\")\" != \"/\" ]; then rm -fr \"$r\"/*; fi",
    ] {
        assert_roundtrip(src);
    }
}
