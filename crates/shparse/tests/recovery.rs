//! Parser error recovery: `parse_script_recovering` returns a partial
//! AST plus diagnostics instead of failing fast, resynchronizing at
//! statement boundaries (newline / `;` / dangling `fi`/`done`/`esac`).

use shoal_shparse::{parse_script, parse_script_recovering};

#[test]
fn clean_script_recovers_to_exact_parse() {
    let src = "x=1\nif [ -z \"$x\" ]; then echo empty; fi\necho done\n";
    let strict = parse_script(src).expect("valid script");
    let recovered = parse_script_recovering(src);
    assert!(recovered.diagnostics.is_empty());
    assert_eq!(recovered.script.items.len(), strict.items.len());
}

#[test]
fn malformed_first_statement_keeps_the_rest() {
    // The first line is garbage; the Steam-updater lines after it must
    // still parse.
    let src = ")\nSTEAMROOT=\"$(cd \"${0%/*}\" && echo $PWD)\"\nrm -rf \"$STEAMROOT/\"*\n";
    let recovered = parse_script_recovering(src);
    assert_eq!(recovered.diagnostics.len(), 1);
    assert_eq!(recovered.diagnostics[0].span.line, 1);
    assert_eq!(
        recovered.script.items.len(),
        2,
        "the two healthy statements must survive"
    );
}

#[test]
fn resync_consumes_dangling_closers() {
    // `fi` with no `if`: record, consume the closer, continue.
    let src = "fi\necho after\n";
    let recovered = parse_script_recovering(src);
    assert_eq!(recovered.diagnostics.len(), 1);
    assert_eq!(recovered.script.items.len(), 1);
}

#[test]
fn error_mid_script_skips_to_next_boundary() {
    let src = "echo one\necho two | | echo broken\necho three\n";
    let recovered = parse_script_recovering(src);
    assert!(!recovered.diagnostics.is_empty());
    assert!(
        recovered.script.items.len() >= 2,
        "statements before and after the bad line must parse, got {}",
        recovered.script.items.len()
    );
}

#[test]
fn multiple_errors_all_recorded_in_order() {
    let src = ")\necho ok\n;;\necho also ok\n";
    let recovered = parse_script_recovering(src);
    assert_eq!(recovered.diagnostics.len(), 2);
    assert!(recovered.diagnostics[0].span.line < recovered.diagnostics[1].span.line);
    assert_eq!(recovered.script.items.len(), 2);
}

#[test]
fn unterminated_heredoc_is_a_diagnostic_not_a_panic() {
    let src = "cat <<EOF\nno terminator";
    let recovered = parse_script_recovering(src);
    assert!(recovered
        .diagnostics
        .iter()
        .any(|d| d.message.contains("here-document")));
}

#[test]
fn trailing_input_error_spans_the_offending_token() {
    // Strict parse: the error must point at the `)` token itself.
    let src = "echo hi )";
    let err = parse_script(src).expect_err("trailing `)` is an error");
    assert!(
        err.message.contains("trailing input"),
        "got {:?}",
        err.message
    );
    let start = err.span.start;
    assert_eq!(&src[start..start + 1], ")", "span must start at the token");
    assert_eq!(err.span.line, 1);
}

#[test]
fn trailing_token_span_covers_whole_word_on_right_line() {
    let src = "echo hi\necho bye ;; after";
    let err = parse_script(src).expect_err("dangling ;; is an error");
    assert_eq!(err.span.line, 2, "line must be the token's line");
    assert_eq!(&src[err.span.start..err.span.start + 1], ";");
}

#[test]
fn recovery_never_loses_source_order() {
    let src = "a=1\n) stray\nb=2\n";
    let recovered = parse_script_recovering(src);
    assert_eq!(recovered.diagnostics.len(), 1);
    assert_eq!(recovered.script.items.len(), 2);
}

#[test]
fn unclosed_subshell_swallows_to_eof_but_keeps_prefix() {
    // An unclosed `(` legitimately consumes the rest of the input
    // looking for `)`; recovery keeps everything before it and reports
    // one error instead of panicking or looping.
    let src = "a=1\n(((\nb=2\n";
    let recovered = parse_script_recovering(src);
    assert_eq!(recovered.script.items.len(), 1);
    assert_eq!(recovered.diagnostics.len(), 1);
}
