//! `shoal-shparse`: a POSIX shell front end built from scratch.
//!
//! The analyzer needs to reason about "the semantics of the shell
//! language \\[6\\], including composition primitives such as `|`, `&`, and
//! `&&`" (§3). That starts with a faithful syntax tree. This crate
//! provides:
//!
//! * a character-level recursive-descent parser for the POSIX shell
//!   command language: simple commands, pipelines, and-or lists,
//!   `if`/`while`/`until`/`for`/`case`, subshells, brace groups, function
//!   definitions, redirections (including here-documents), and
//!   assignments;
//! * full *word structure*: single/double quoting, parameter expansion
//!   with every POSIX operator (`${x%pat}`, `${x:-d}`, `${x:?msg}`, …),
//!   command substitution (both `$(…)` and backticks), arithmetic
//!   substitution, globs, and tildes — the raw material for the symbolic
//!   expansion engine in `shoal-core`;
//! * source spans on every node, so diagnostics point at real locations;
//! * a pretty-printer that renders the tree back to executable shell,
//!   used by diagnostics and by the corpus generators.
//!
//! # Examples
//!
//! ```
//! use shoal_shparse::parse_script;
//!
//! // Line 2 of the paper's Fig. 1 (the Steam updater bug).
//! let script = parse_script(r#"STEAMROOT="$(cd "${0%/*}" && echo $PWD)""#).unwrap();
//! assert_eq!(script.items.len(), 1);
//! ```

pub mod ast;
pub mod cursor;
pub mod parse;
pub mod print;

pub use ast::{
    AndOr, AndOrOp, Assignment, CaseArm, CaseClause, Command, ForClause, IfClause, ListItem,
    ParamExp, ParamOp, Pipeline, Redir, RedirOp, Script, SimpleCommand, Span, WhileClause, Word,
    WordPart,
};
pub use parse::{
    parse_script, parse_script_recovering, ParseDiagnostic, ParseError, RecoveredParse,
};
pub use print::{canonical_item, item_content_hash};
