//! The abstract syntax tree for POSIX shell programs.
//!
//! The tree mirrors the POSIX grammar hierarchy: a [`Script`] is a list of
//! [`ListItem`]s (separated by `;`, `&`, or newlines), each an [`AndOr`]
//! chain of [`Pipeline`]s, each a `|`-sequence of [`Command`]s. Every node
//! carries a [`Span`] so that diagnostics can point at source.
//!
//! Words keep their internal structure ([`WordPart`]): quoting, parameter
//! expansion operators, command substitution, globs. The analyzer's
//! symbolic expansion (shoal-core) consumes this structure directly — the
//! Fig. 1 bug hinges on the exact semantics of `"${0%/*}"`, which survives
//! here as `ParamOp::RemoveSmallestSuffix` applied to parameter `0` inside
//! double quotes.

use std::fmt;

/// A half-open byte range into the source, with a 1-based starting line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize, line: u32) -> Span {
        Span { start, end, line }
    }

    /// The smallest span covering both inputs.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// A whole script: a sequence of list items plus collected here-document
/// bodies (see [`Script::heredoc_body`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Script {
    /// Top-level commands in order.
    pub items: Vec<ListItem>,
    /// Here-document bodies, indexed by [`RedirOp::HereDoc`]'s `body`.
    pub heredocs: Vec<String>,
}

impl Script {
    /// Fetches the body of a here-document redirection.
    pub fn heredoc_body(&self, index: usize) -> &str {
        self.heredocs.get(index).map(String::as_str).unwrap_or("")
    }
}

/// One list entry: an and-or chain, possibly sent to the background.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListItem {
    /// The chain itself.
    pub and_or: AndOr,
    /// True when terminated by `&`.
    pub background: bool,
}

/// An `&&`/`||` chain of pipelines, evaluated left to right with shell
/// short-circuit semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AndOr {
    /// The first pipeline.
    pub first: Pipeline,
    /// Subsequent pipelines, each guarded by the preceding exit status.
    pub rest: Vec<(AndOrOp, Pipeline)>,
}

impl AndOr {
    /// Wraps a single pipeline with no continuation.
    pub fn single(p: Pipeline) -> AndOr {
        AndOr {
            first: p,
            rest: Vec::new(),
        }
    }

    /// The source span of the whole chain.
    pub fn span(&self) -> Span {
        let mut s = self.first.span();
        for (_, p) in &self.rest {
            s = s.merge(p.span());
        }
        s
    }
}

/// The connective between two pipelines in an [`AndOr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AndOrOp {
    /// `&&` — run the right side only on success.
    And,
    /// `||` — run the right side only on failure.
    Or,
}

/// A `|`-connected sequence of commands, optionally negated with `!`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    /// True when prefixed by `!` (exit status negation).
    pub negated: bool,
    /// The commands, left to right; length ≥ 1.
    pub commands: Vec<Command>,
}

impl Pipeline {
    /// The source span of the pipeline.
    pub fn span(&self) -> Span {
        let mut it = self.commands.iter().map(Command::span);
        let first = it.next().unwrap_or_default();
        it.fold(first, Span::merge)
    }
}

/// A command: either simple or one of the compound forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `name args… <redirs`, possibly with leading assignments.
    Simple(SimpleCommand),
    /// `{ list; }` with redirections applied to the whole group.
    BraceGroup(Vec<ListItem>, Vec<Redir>, Span),
    /// `( list )` — runs in a subshell environment.
    Subshell(Vec<ListItem>, Vec<Redir>, Span),
    /// `if … then … [elif …] [else …] fi`.
    If(IfClause, Vec<Redir>, Span),
    /// `while cond; do body; done`.
    While(WhileClause, Vec<Redir>, Span),
    /// `until cond; do body; done`.
    Until(WhileClause, Vec<Redir>, Span),
    /// `for x in words; do body; done`.
    For(ForClause, Vec<Redir>, Span),
    /// `case subject in pattern) body ;; … esac`.
    Case(CaseClause, Vec<Redir>, Span),
    /// `name() body` — a function definition.
    FunctionDef {
        /// Function name.
        name: String,
        /// Function body (usually a brace group).
        body: Box<Command>,
        /// Definition site.
        span: Span,
    },
}

impl Command {
    /// The source span of the command.
    pub fn span(&self) -> Span {
        match self {
            Command::Simple(s) => s.span,
            Command::BraceGroup(_, _, s)
            | Command::Subshell(_, _, s)
            | Command::If(_, _, s)
            | Command::While(_, _, s)
            | Command::Until(_, _, s)
            | Command::For(_, _, s)
            | Command::Case(_, _, s) => *s,
            Command::FunctionDef { span, .. } => *span,
        }
    }

    /// Redirections attached to the command, if any.
    pub fn redirects(&self) -> &[Redir] {
        match self {
            Command::Simple(s) => &s.redirects,
            Command::BraceGroup(_, r, _)
            | Command::Subshell(_, r, _)
            | Command::If(_, r, _)
            | Command::While(_, r, _)
            | Command::Until(_, r, _)
            | Command::For(_, r, _)
            | Command::Case(_, r, _) => r,
            Command::FunctionDef { .. } => &[],
        }
    }
}

/// A simple command: assignments, words, redirections.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimpleCommand {
    /// Leading `NAME=value` assignments.
    pub assignments: Vec<Assignment>,
    /// Command name and arguments (empty for bare assignments).
    pub words: Vec<Word>,
    /// Redirections in source order.
    pub redirects: Vec<Redir>,
    /// Source location.
    pub span: Span,
}

impl SimpleCommand {
    /// The command name, if this is not a bare assignment and the name is
    /// a plain literal.
    pub fn name_literal(&self) -> Option<String> {
        self.words.first().and_then(Word::as_literal)
    }
}

/// A variable assignment `NAME=value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Variable name.
    pub name: String,
    /// Assigned word (empty word for `NAME=`).
    pub value: Word,
    /// Source location.
    pub span: Span,
}

/// The `if` compound command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfClause {
    /// Condition list.
    pub cond: Vec<ListItem>,
    /// `then` branch.
    pub then_body: Vec<ListItem>,
    /// `elif` branches, in order.
    pub elifs: Vec<(Vec<ListItem>, Vec<ListItem>)>,
    /// `else` branch, if present.
    pub else_body: Option<Vec<ListItem>>,
}

/// The `while`/`until` compound command body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhileClause {
    /// Condition list.
    pub cond: Vec<ListItem>,
    /// Loop body.
    pub body: Vec<ListItem>,
}

/// The `for` compound command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForClause {
    /// Loop variable.
    pub var: String,
    /// Words iterated over; `None` means the implicit `"$@"`.
    pub words: Option<Vec<Word>>,
    /// Loop body.
    pub body: Vec<ListItem>,
}

/// The `case` compound command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseClause {
    /// The word being matched.
    pub subject: Word,
    /// The arms in order; first matching pattern wins.
    pub arms: Vec<CaseArm>,
}

/// One `pattern[|pattern…]) body ;;` arm of a `case`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseArm {
    /// The glob patterns.
    pub patterns: Vec<Word>,
    /// The arm body.
    pub body: Vec<ListItem>,
}

/// A redirection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redir {
    /// Explicit file descriptor, when written (`2>err`).
    pub fd: Option<u32>,
    /// The operator.
    pub op: RedirOp,
    /// The target word (filename, fd digits for dups, or here-doc
    /// delimiter).
    pub target: Word,
    /// Source location.
    pub span: Span,
}

/// Redirection operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirOp {
    /// `<`.
    In,
    /// `>`.
    Out,
    /// `>>`.
    Append,
    /// `<&`.
    DupIn,
    /// `>&`.
    DupOut,
    /// `<>`.
    ReadWrite,
    /// `>|`.
    Clobber,
    /// `<<` / `<<-`; `body` indexes [`Script::heredocs`].
    HereDoc {
        /// True for `<<-` (leading tabs stripped).
        strip: bool,
        /// Index into the script's here-document table.
        body: usize,
    },
}

/// One structural piece of a word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordPart {
    /// Unquoted or backslash-escaped literal text.
    Literal(String),
    /// `'…'` — literal, no expansion.
    SingleQuoted(String),
    /// `"…"` — inner parts expand but do not field-split.
    DoubleQuoted(Vec<WordPart>),
    /// `$name`, `${name}`, `${name op word}`.
    Param(ParamExp),
    /// `$( … )` or `` ` … ` ``.
    CmdSub(Box<Script>),
    /// `$(( … ))`, kept as raw text.
    Arith(String),
    /// An unquoted glob metacharacter sequence (`*`, `?`, `[…]`).
    Glob(String),
    /// `~` or `~user` at the start of a word.
    Tilde(Option<String>),
}

impl WordPart {
    /// True when the part can expand to multiple fields or arbitrary text.
    pub fn is_expansion(&self) -> bool {
        matches!(
            self,
            WordPart::Param(_) | WordPart::CmdSub(_) | WordPart::Arith(_)
        )
    }
}

/// A word: a non-empty sequence of parts (or empty for the empty word).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Word {
    /// The parts, in order.
    pub parts: Vec<WordPart>,
    /// Source location.
    pub span: Span,
}

impl Word {
    /// Builds a purely literal word (used by generators and tests).
    pub fn literal(text: &str) -> Word {
        Word {
            parts: vec![WordPart::Literal(text.to_string())],
            span: Span::default(),
        }
    }

    /// If the word is entirely static text (literals and quotes, no
    /// expansion), returns that text.
    pub fn as_literal(&self) -> Option<String> {
        let mut out = String::new();
        for part in &self.parts {
            match part {
                WordPart::Literal(s) | WordPart::SingleQuoted(s) => out.push_str(s),
                WordPart::DoubleQuoted(inner) => {
                    for p in inner {
                        match p {
                            WordPart::Literal(s) => out.push_str(s),
                            _ => return None,
                        }
                    }
                }
                _ => return None,
            }
        }
        Some(out)
    }

    /// True when any part is an unquoted expansion subject to field
    /// splitting — the shape ShellCheck's SC2086 warns about.
    pub fn has_unquoted_expansion(&self) -> bool {
        self.parts.iter().any(WordPart::is_expansion)
    }

    /// True when the word contains any expansion at any quoting depth.
    pub fn has_expansion(&self) -> bool {
        fn go(parts: &[WordPart]) -> bool {
            parts.iter().any(|p| match p {
                WordPart::DoubleQuoted(inner) => go(inner),
                other => other.is_expansion(),
            })
        }
        go(&self.parts)
    }
}

/// A parameter expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamExp {
    /// The parameter name: a variable name, a positional digit string, or
    /// one of the specials `# ? * @ $ ! -`.
    pub name: String,
    /// The operator, if any.
    pub op: Option<ParamOp>,
}

impl ParamExp {
    /// A bare `$name` expansion.
    pub fn bare(name: &str) -> ParamExp {
        ParamExp {
            name: name.to_string(),
            op: None,
        }
    }
}

/// Parameter expansion operators (POSIX 2.6.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamOp {
    /// `${x-w}` / `${x:-w}`: default value. `colon` distinguishes the two.
    Default(Word, bool),
    /// `${x=w}` / `${x:=w}`: assign default.
    Assign(Word, bool),
    /// `${x?w}` / `${x:?w}`: error if unset (or empty, with colon).
    Error(Option<Word>, bool),
    /// `${x+w}` / `${x:+w}`: alternative value.
    Alt(Word, bool),
    /// `${x%pat}`: remove smallest matching suffix.
    RemoveSmallestSuffix(Word),
    /// `${x%%pat}`: remove largest matching suffix.
    RemoveLargestSuffix(Word),
    /// `${x#pat}`: remove smallest matching prefix.
    RemoveSmallestPrefix(Word),
    /// `${x##pat}`: remove largest matching prefix.
    RemoveLargestPrefix(Word),
    /// `${#x}`: string length.
    Length,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge() {
        let a = Span::new(5, 10, 2);
        let b = Span::new(8, 20, 3);
        let m = a.merge(b);
        assert_eq!(m, Span::new(5, 20, 2));
    }

    #[test]
    fn word_as_literal() {
        let w = Word {
            parts: vec![
                WordPart::Literal("a".into()),
                WordPart::SingleQuoted("b c".into()),
                WordPart::DoubleQuoted(vec![WordPart::Literal("d".into())]),
            ],
            span: Span::default(),
        };
        assert_eq!(w.as_literal(), Some("ab cd".to_string()));
        let dynamic = Word {
            parts: vec![WordPart::Param(ParamExp::bare("HOME"))],
            span: Span::default(),
        };
        assert_eq!(dynamic.as_literal(), None);
    }

    #[test]
    fn unquoted_vs_quoted_expansion() {
        let unquoted = Word {
            parts: vec![WordPart::Param(ParamExp::bare("x"))],
            span: Span::default(),
        };
        assert!(unquoted.has_unquoted_expansion());
        let quoted = Word {
            parts: vec![WordPart::DoubleQuoted(vec![WordPart::Param(
                ParamExp::bare("x"),
            )])],
            span: Span::default(),
        };
        assert!(!quoted.has_unquoted_expansion());
        assert!(quoted.has_expansion());
        assert!(!Word::literal("plain").has_expansion());
    }
}
