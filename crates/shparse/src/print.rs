//! Pretty-printing the AST back to executable shell syntax.
//!
//! Diagnostics quote reconstructed commands, the corpus generators build
//! scripts from ASTs, and the round-trip property (parse → print → parse
//! yields an equal tree, modulo spans) is a strong structural test of the
//! parser itself.

use crate::ast::{
    AndOr, AndOrOp, Command, ListItem, ParamExp, ParamOp, Pipeline, Redir, RedirOp, Script,
    SimpleCommand, Word, WordPart,
};
use std::fmt::Write as _;

impl Script {
    /// Renders the script as shell source. Here-document bodies are
    /// emitted after the command line that opens them, as the shell
    /// grammar requires.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        let mut pending = Vec::new();
        write_items(&mut out, &self.items, 0, self, &mut pending);
        out
    }
}

/// A here-document whose body must be emitted after the current line:
/// (rendered delimiter, body index).
type PendingHeredoc = (String, usize);

/// The canonical rendering of one top-level statement: the
/// pretty-printed `and_or` (plus `&` for background jobs) followed by
/// any here-document bodies the statement opens. Because it is built
/// from the AST — never from byte spans — two statements that differ
/// only in surrounding whitespace, comments, or position in the file
/// render identically. The boolean is true when the statement opened a
/// here-document whose body lives *outside* the statement's own span
/// (the incremental engine must treat such statements position-
/// sensitively).
pub fn canonical_item(script: &Script, item: &ListItem) -> (String, bool) {
    let mut out = String::new();
    let mut pending = Vec::new();
    write_and_or(&mut out, &item.and_or, 0, script, &mut pending);
    if item.background {
        out.push_str(" &");
    }
    out.push('\n');
    let uses_heredoc = !pending.is_empty();
    for (delim, body) in pending.drain(..) {
        out.push_str(script.heredoc_body(body));
        out.push_str(&delim);
        out.push('\n');
    }
    (out, uses_heredoc)
}

/// FNV-1a over the canonical rendering of one statement: the
/// content-addressed statement identity used by incremental analysis
/// summary keys. Stable under whitespace/comment-only edits and under
/// moving the statement around the file (shparse has no dependencies,
/// so the hash lives here rather than in shoal-obs).
pub fn item_content_hash(script: &Script, item: &ListItem) -> u64 {
    let (text, _) = canonical_item(script, item);
    fnv1a64(text.as_bytes())
}

/// FNV-1a 64-bit (the same function the obs crate uses; duplicated here
/// because shparse keeps an empty dependency list).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_items(
    out: &mut String,
    items: &[ListItem],
    level: usize,
    script: &Script,
    pending: &mut Vec<PendingHeredoc>,
) {
    for item in items {
        indent(out, level);
        write_and_or(out, &item.and_or, level, script, pending);
        if item.background {
            out.push_str(" &");
        }
        out.push('\n');
        // Emit here-document bodies opened on this line.
        for (delim, body) in pending.drain(..) {
            out.push_str(script.heredoc_body(body));
            out.push_str(&delim);
            out.push('\n');
        }
    }
}

fn write_and_or(
    out: &mut String,
    and_or: &AndOr,
    level: usize,
    script: &Script,
    pending: &mut Vec<PendingHeredoc>,
) {
    write_pipeline(out, &and_or.first, level, script, pending);
    for (op, p) in &and_or.rest {
        out.push_str(match op {
            AndOrOp::And => " && ",
            AndOrOp::Or => " || ",
        });
        write_pipeline(out, p, level, script, pending);
    }
}

fn write_pipeline(
    out: &mut String,
    p: &Pipeline,
    level: usize,
    script: &Script,
    pending: &mut Vec<PendingHeredoc>,
) {
    if p.negated {
        out.push_str("! ");
    }
    for (i, c) in p.commands.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        write_command(out, c, level, script, pending);
    }
}

fn write_command(
    out: &mut String,
    c: &Command,
    level: usize,
    script: &Script,
    pending: &mut Vec<PendingHeredoc>,
) {
    match c {
        Command::Simple(s) => write_simple(out, s, script, pending),
        Command::BraceGroup(items, redirs, _) => {
            out.push_str("{\n");
            write_items(out, items, level + 1, script, pending);
            indent(out, level);
            out.push('}');
            write_redirs(out, redirs, script, pending);
        }
        Command::Subshell(items, redirs, _) => {
            out.push_str("(\n");
            write_items(out, items, level + 1, script, pending);
            indent(out, level);
            out.push(')');
            write_redirs(out, redirs, script, pending);
        }
        Command::If(clause, redirs, _) => {
            out.push_str("if\n");
            write_items(out, &clause.cond, level + 1, script, pending);
            indent(out, level);
            out.push_str("then\n");
            write_items(out, &clause.then_body, level + 1, script, pending);
            for (cond, body) in &clause.elifs {
                indent(out, level);
                out.push_str("elif\n");
                write_items(out, cond, level + 1, script, pending);
                indent(out, level);
                out.push_str("then\n");
                write_items(out, body, level + 1, script, pending);
            }
            if let Some(e) = &clause.else_body {
                indent(out, level);
                out.push_str("else\n");
                write_items(out, e, level + 1, script, pending);
            }
            indent(out, level);
            out.push_str("fi");
            write_redirs(out, redirs, script, pending);
        }
        Command::While(clause, redirs, _) | Command::Until(clause, redirs, _) => {
            out.push_str(if matches!(c, Command::While(..)) {
                "while\n"
            } else {
                "until\n"
            });
            write_items(out, &clause.cond, level + 1, script, pending);
            indent(out, level);
            out.push_str("do\n");
            write_items(out, &clause.body, level + 1, script, pending);
            indent(out, level);
            out.push_str("done");
            write_redirs(out, redirs, script, pending);
        }
        Command::For(clause, redirs, _) => {
            let _ = write!(out, "for {}", clause.var);
            if let Some(words) = &clause.words {
                out.push_str(" in");
                for w in words {
                    out.push(' ');
                    write_word(out, w, script);
                }
            }
            out.push('\n');
            indent(out, level);
            out.push_str("do\n");
            write_items(out, &clause.body, level + 1, script, pending);
            indent(out, level);
            out.push_str("done");
            write_redirs(out, redirs, script, pending);
        }
        Command::Case(clause, redirs, _) => {
            out.push_str("case ");
            write_word(out, &clause.subject, script);
            out.push_str(" in\n");
            for arm in &clause.arms {
                indent(out, level + 1);
                for (i, p) in arm.patterns.iter().enumerate() {
                    if i > 0 {
                        out.push('|');
                    }
                    write_word(out, p, script);
                }
                out.push_str(")\n");
                write_items(out, &arm.body, level + 2, script, pending);
                indent(out, level + 1);
                out.push_str(";;\n");
            }
            indent(out, level);
            out.push_str("esac");
            write_redirs(out, redirs, script, pending);
        }
        Command::FunctionDef { name, body, .. } => {
            let _ = write!(out, "{name}() ");
            write_command(out, body, level, script, pending);
        }
    }
}

fn write_simple(
    out: &mut String,
    s: &SimpleCommand,
    script: &Script,
    pending: &mut Vec<PendingHeredoc>,
) {
    let mut first = true;
    for a in &s.assignments {
        if !first {
            out.push(' ');
        }
        first = false;
        let _ = write!(out, "{}=", a.name);
        write_word(out, &a.value, script);
    }
    for w in &s.words {
        if !first {
            out.push(' ');
        }
        first = false;
        write_word(out, w, script);
    }
    write_redirs(out, &s.redirects, script, pending);
}

fn write_redirs(
    out: &mut String,
    redirs: &[Redir],
    script: &Script,
    pending: &mut Vec<PendingHeredoc>,
) {
    for r in redirs {
        out.push(' ');
        if let Some(fd) = r.fd {
            let _ = write!(out, "{fd}");
        }
        match r.op {
            RedirOp::In => out.push('<'),
            RedirOp::Out => out.push('>'),
            RedirOp::Append => out.push_str(">>"),
            RedirOp::DupIn => out.push_str("<&"),
            RedirOp::DupOut => out.push_str(">&"),
            RedirOp::ReadWrite => out.push_str("<>"),
            RedirOp::Clobber => out.push_str(">|"),
            RedirOp::HereDoc { strip, body } => {
                out.push_str(if strip { "<<-" } else { "<<" });
                write_word(out, &r.target, script);
                let mut delim = String::new();
                write_word(&mut delim, &r.target, script);
                pending.push((delim, body));
                continue;
            }
        }
        write_word(out, &r.target, script);
    }
}

/// Renders a single word.
pub fn write_word(out: &mut String, w: &Word, script: &Script) {
    if w.parts.is_empty() {
        out.push_str("\"\"");
        return;
    }
    for p in &w.parts {
        write_part(out, p, false, script);
    }
}

fn write_part(out: &mut String, p: &WordPart, in_dquotes: bool, script: &Script) {
    match p {
        WordPart::Literal(s) => {
            if in_dquotes {
                for c in s.chars() {
                    if matches!(c, '$' | '`' | '"' | '\\') {
                        out.push('\\');
                    }
                    out.push(c);
                }
            } else {
                for c in s.chars() {
                    if " \t\n;&|<>()'\"\\$`*?[~#=".contains(c) {
                        out.push('\\');
                    }
                    out.push(c);
                }
            }
        }
        WordPart::SingleQuoted(s) => {
            out.push('\'');
            out.push_str(s);
            out.push('\'');
        }
        WordPart::DoubleQuoted(parts) => {
            out.push('"');
            for p in parts {
                write_part(out, p, true, script);
            }
            out.push('"');
        }
        WordPart::Param(p) => write_param(out, p, script),
        WordPart::CmdSub(inner) => {
            out.push_str("$(");
            let src = inner.to_source();
            // Render single-command substitutions inline.
            let trimmed = src.trim_end_matches('\n');
            if trimmed.contains('\n') {
                out.push('\n');
                out.push_str(&src);
            } else {
                out.push_str(trimmed);
            }
            out.push(')');
        }
        WordPart::Arith(text) => {
            let _ = write!(out, "$(({text}))");
        }
        WordPart::Glob(g) => out.push_str(g),
        WordPart::Tilde(user) => {
            out.push('~');
            if let Some(u) = user {
                out.push_str(u);
            }
        }
    }
}

fn write_param(out: &mut String, p: &ParamExp, script: &Script) {
    let Some(op) = &p.op else {
        // Use braces whenever the bare form could be ambiguous.
        if p.name.len() == 1
            || p.name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            let _ = write!(out, "${{{}}}", p.name);
        } else {
            let _ = write!(out, "${}", p.name);
        }
        return;
    };
    out.push_str("${");
    if matches!(op, ParamOp::Length) {
        out.push('#');
        out.push_str(&p.name);
        out.push('}');
        return;
    }
    out.push_str(&p.name);
    let word = |out: &mut String, w: &Word| write_word_in_braces(out, w, script);
    match op {
        ParamOp::Default(w, colon) => {
            if *colon {
                out.push(':');
            }
            out.push('-');
            word(out, w);
        }
        ParamOp::Assign(w, colon) => {
            if *colon {
                out.push(':');
            }
            out.push('=');
            word(out, w);
        }
        ParamOp::Error(w, colon) => {
            if *colon {
                out.push(':');
            }
            out.push('?');
            if let Some(w) = w {
                word(out, w);
            }
        }
        ParamOp::Alt(w, colon) => {
            if *colon {
                out.push(':');
            }
            out.push('+');
            word(out, w);
        }
        ParamOp::RemoveSmallestSuffix(w) => {
            out.push('%');
            word(out, w);
        }
        ParamOp::RemoveLargestSuffix(w) => {
            out.push_str("%%");
            word(out, w);
        }
        ParamOp::RemoveSmallestPrefix(w) => {
            out.push('#');
            word(out, w);
        }
        ParamOp::RemoveLargestPrefix(w) => {
            out.push_str("##");
            word(out, w);
        }
        ParamOp::Length => unreachable!("handled above"),
    }
    out.push('}');
}

/// Renders a word in `${…}` operand position: `}` must be escaped, word
/// terminators need no quoting.
fn write_word_in_braces(out: &mut String, w: &Word, script: &Script) {
    for p in &w.parts {
        match p {
            WordPart::Literal(s) => {
                for c in s.chars() {
                    if matches!(c, '}' | '\\' | '\'' | '"' | '$' | '`') {
                        out.push('\\');
                    }
                    out.push(c);
                }
            }
            other => write_part(out, other, false, script),
        }
    }
}
