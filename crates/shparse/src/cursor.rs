//! A byte cursor over shell source with line tracking.
//!
//! The shell grammar is context-dependent enough that a conventional
//! token stream fights the language (words, operators, and reserved words
//! are distinguished by position, and quoting changes everything). Like
//! several production shell parsers, shoal parses straight off a character
//! cursor; this module is that cursor.

use crate::ast::Span;

/// A peekable byte cursor with position and line tracking.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor at the start of `src`.
    pub fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Current 1-based line number.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// True at end of input.
    pub fn at_eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    /// The byte at the cursor, if any.
    pub fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    /// The byte `n` positions ahead of the cursor.
    pub fn peek_at(&self, n: usize) -> Option<u8> {
        self.src.get(self.pos + n).copied()
    }

    /// Advances one byte and returns it.
    pub fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// If the input at the cursor starts with `s`, consumes it.
    pub fn eat(&mut self, s: &str) -> bool {
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// Does the input at the cursor start with `s`?
    pub fn looking_at(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    /// Reads bytes while `pred` holds, returning them as a string.
    pub fn take_while(&mut self, pred: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Reads the remainder of the current line *without* consuming the
    /// newline.
    pub fn take_line(&mut self) -> String {
        self.take_while(|b| b != b'\n')
    }

    /// A span from `start` (offset, line) to the current position.
    pub fn span_from(&self, start: usize, start_line: u32) -> Span {
        Span::new(start, self.pos, start_line)
    }

    /// The raw source slice of a span (for diagnostics).
    pub fn slice(&self, span: Span) -> &'a str {
        std::str::from_utf8(&self.src[span.start.min(self.src.len())..span.end.min(self.src.len())])
            .unwrap_or("")
    }
}

/// Is `b` a shell metacharacter that terminates an unquoted word?
pub fn is_word_end(b: u8) -> bool {
    matches!(
        b,
        b' ' | b'\t' | b'\n' | b';' | b'&' | b'|' | b'<' | b'>' | b'(' | b')'
    )
}

/// Is `b` valid in a variable/function name (after the first character)?
pub fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Is `b` valid as the first character of a variable/function name?
pub fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_tracks_lines() {
        let mut c = Cursor::new("a\nb\nc");
        assert_eq!(c.line(), 1);
        c.bump();
        c.bump();
        assert_eq!(c.line(), 2);
        assert_eq!(c.peek(), Some(b'b'));
    }

    #[test]
    fn eat_and_looking_at() {
        let mut c = Cursor::new("&& echo");
        assert!(c.looking_at("&&"));
        assert!(c.eat("&&"));
        assert!(!c.eat("&&"));
        assert_eq!(c.peek(), Some(b' '));
    }

    #[test]
    fn take_while_stops() {
        let mut c = Cursor::new("abc123 rest");
        assert_eq!(c.take_while(|b| b.is_ascii_alphanumeric()), "abc123");
        assert_eq!(c.peek(), Some(b' '));
    }

    #[test]
    fn word_end_classification() {
        for b in b" \t\n;&|<>()" {
            assert!(is_word_end(*b));
        }
        for b in b"a3_$\"'`=-/*?[".iter() {
            assert!(!is_word_end(*b));
        }
    }
}
