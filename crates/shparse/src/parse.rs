//! The recursive-descent parser for the POSIX shell command language.
//!
//! The parser follows the POSIX grammar hierarchy (complete command →
//! list → and-or → pipeline → command) directly off a byte cursor,
//! recognizing reserved words positionally as the standard requires.
//! Here-document bodies are collected when the parser crosses the
//! newline that ends their command and stored in a per-script table.

use crate::ast::{
    AndOr, AndOrOp, Assignment, CaseArm, CaseClause, Command, ForClause, IfClause, ListItem,
    ParamExp, ParamOp, Pipeline, Redir, RedirOp, Script, SimpleCommand, Span, WhileClause, Word,
    WordPart,
};
use crate::cursor::{is_name_char, is_name_start, is_word_end, Cursor};
use std::fmt;

/// A parse error with a message and source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where the error was detected.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete shell script.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error, with its
/// source span.
pub fn parse_script(src: &str) -> Result<Script, ParseError> {
    let mut p = Parser::new(src);
    let items = p.parse_list(&[])?;
    p.skip_blank();
    if !p.cur.at_eof() {
        return Err(p.error_at_token("unexpected trailing input"));
    }
    if let Some(pending) = p.pending.first() {
        return Err(ParseError {
            message: format!("unterminated here-document (delimiter {:?})", pending.delim),
            span: Span::new(p.cur.pos(), p.cur.pos(), p.cur.line()),
        });
    }
    Ok(Script {
        items,
        heredocs: p.heredocs,
    })
}

/// A syntax error recorded — not raised — while parsing with recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDiagnostic {
    /// Human-readable description.
    pub message: String,
    /// Where the error was detected.
    pub span: Span,
}

impl fmt::Display for ParseDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.message, self.span)
    }
}

/// The result of [`parse_script_recovering`]: whatever parsed, plus the
/// syntax errors that were skipped to get it.
#[derive(Debug, Clone)]
pub struct RecoveredParse {
    /// The statements that parsed cleanly.
    pub script: Script,
    /// One entry per syntax error recovered from, in source order.
    /// Empty means the script parsed exactly as [`parse_script`] would.
    pub diagnostics: Vec<ParseDiagnostic>,
}

/// Parses a script, *recovering* from syntax errors instead of failing.
///
/// On an error the parser records a [`ParseDiagnostic`], resynchronizes
/// at the next statement boundary (newline, `;`, or a dangling
/// `fi`/`done`/`esac`), and continues, so one malformed statement does
/// not hide findings in the healthy remainder of the script. The strict
/// [`parse_script`] API is unchanged.
pub fn parse_script_recovering(src: &str) -> RecoveredParse {
    let mut p = Parser::new(src);
    let mut items = Vec::new();
    let mut diagnostics = Vec::new();
    loop {
        let before = p.cur.pos();
        p.skip_blank();
        match p.cur.peek() {
            None => break,
            Some(b'\n') => {
                if let Err(e) = p.consume_newline() {
                    // Unterminated here-document: record it and drop the
                    // pending collection so later lines parse as code.
                    diagnostics.push(ParseDiagnostic {
                        message: e.message,
                        span: e.span,
                    });
                    p.pending.clear();
                }
                continue;
            }
            Some(b';') if !p.cur.looking_at(";;") => {
                p.cur.bump();
                continue;
            }
            _ => {}
        }
        match p.parse_and_or() {
            Ok(and_or) => {
                p.skip_blank();
                let mut background = false;
                if p.cur.peek() == Some(b'&') && !p.cur.looking_at("&&") {
                    p.cur.bump();
                    background = true;
                }
                items.push(ListItem { and_or, background });
            }
            Err(e) => {
                diagnostics.push(ParseDiagnostic {
                    message: e.message,
                    span: e.span,
                });
                p.resync();
            }
        }
        if p.cur.pos() == before && !p.cur.at_eof() {
            // Defensive progress guarantee: never loop on the same byte.
            p.cur.bump();
        }
    }
    if let Some(pending) = p.pending.first() {
        diagnostics.push(ParseDiagnostic {
            message: format!("unterminated here-document (delimiter {:?})", pending.delim),
            span: Span::new(p.cur.pos(), p.cur.pos(), p.cur.line()),
        });
    }
    RecoveredParse {
        script: Script {
            items,
            heredocs: p.heredocs,
        },
        diagnostics,
    }
}

/// Reserved words, recognized only in command position.
const RESERVED: &[&str] = &[
    "if", "then", "else", "elif", "fi", "while", "until", "do", "done", "for", "in", "case",
    "esac", "{", "}", "!",
];

/// A here-document whose body has not yet been collected.
struct Pending {
    delim: String,
    strip: bool,
    index: usize,
}

struct Parser<'a> {
    cur: Cursor<'a>,
    heredocs: Vec<String>,
    pending: Vec<Pending>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            cur: Cursor::new(src),
            heredocs: Vec::new(),
            pending: Vec::new(),
        }
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: Span::new(self.cur.pos(), self.cur.pos() + 1, self.cur.line()),
        }
    }

    /// Like [`Parser::error_here`], but the span covers the whole token
    /// at the cursor (to the next word-ending metacharacter) rather
    /// than a single byte, so editors highlight the offending token.
    fn error_at_token(&self, message: impl Into<String>) -> ParseError {
        let start = self.cur.pos();
        let mut len = 0;
        while let Some(b) = self.cur.peek_at(len) {
            // Operator bytes (`)`, `;`, `&`, …) form the token when they
            // come first; otherwise stop at the first word end.
            if len > 0 && is_word_end(b) {
                break;
            }
            len += 1;
            if len == 1 && is_word_end(b) {
                break;
            }
        }
        ParseError {
            message: message.into(),
            span: Span::new(start, start + len.max(1), self.cur.line()),
        }
    }

    /// Error recovery: advances to the next statement boundary — past a
    /// newline or `;`, or past a dangling `fi`/`done`/`esac` closer —
    /// discarding any half-collected here-documents on the way.
    fn resync(&mut self) {
        self.pending.clear();
        loop {
            match self.cur.peek() {
                None => return,
                Some(b'\n') => {
                    self.cur.bump();
                    return;
                }
                Some(b';') => {
                    self.cur.bump();
                    if self.cur.peek() == Some(b';') {
                        self.cur.bump();
                    }
                    return;
                }
                _ => {
                    if let Some(w @ ("fi" | "done" | "esac")) = self.peek_reserved() {
                        for _ in 0..w.len() {
                            self.cur.bump();
                        }
                        return;
                    }
                    self.cur.bump();
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Whitespace, separators, reserved words
    // -----------------------------------------------------------------

    /// Skips spaces, tabs, comments, and escaped newlines — everything
    /// blank except newlines (which are separators).
    fn skip_blank(&mut self) {
        loop {
            match self.cur.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.cur.bump();
                }
                Some(b'\\') if self.cur.peek_at(1) == Some(b'\n') => {
                    self.cur.bump();
                    self.cur.bump();
                }
                Some(b'#') => {
                    self.cur.take_line();
                }
                _ => break,
            }
        }
    }

    /// Skips blanks *and* newlines (for positions where the grammar
    /// allows line breaks, e.g. after `&&`).
    fn skip_linebreaks(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_blank();
            if self.cur.peek() == Some(b'\n') {
                self.consume_newline()?;
            } else {
                return Ok(());
            }
        }
    }

    /// Consumes a newline and collects any pending here-document bodies.
    fn consume_newline(&mut self) -> Result<(), ParseError> {
        debug_assert_eq!(self.cur.peek(), Some(b'\n'));
        self.cur.bump();
        while !self.pending.is_empty() {
            let p = self.pending.remove(0);
            let mut body = String::new();
            loop {
                if self.cur.at_eof() {
                    return Err(ParseError {
                        message: format!("unterminated here-document (delimiter {:?})", p.delim),
                        span: Span::new(self.cur.pos(), self.cur.pos(), self.cur.line()),
                    });
                }
                let line = self.cur.take_line();
                if self.cur.peek() == Some(b'\n') {
                    self.cur.bump();
                }
                let check: &str = if p.strip {
                    line.trim_start_matches('\t')
                } else {
                    line.as_str()
                };
                if check == p.delim {
                    break;
                }
                body.push_str(check);
                body.push('\n');
            }
            self.heredocs[p.index] = body;
        }
        Ok(())
    }

    /// If the input at the cursor is a reserved word (entire, unquoted),
    /// returns it without consuming.
    fn peek_reserved(&self) -> Option<&'static str> {
        let mut i = 0;
        loop {
            match self.cur.peek_at(i) {
                None => break,
                Some(b) if is_word_end(b) => break,
                Some(b'\'') | Some(b'"') | Some(b'$') | Some(b'`') | Some(b'\\') => return None,
                Some(b'}') if i > 0 => break,
                Some(_) => i += 1,
            }
        }
        if i == 0 {
            // `}` alone: is_word_end excludes it, handled above only for
            // i > 0; catch the standalone case here.
            if self.cur.peek() == Some(b'}') {
                let next = self.cur.peek_at(1);
                if next.is_none() || next.is_some_and(is_word_end) {
                    return Some("}");
                }
            }
            return None;
        }
        let text: Vec<u8> = (0..i).filter_map(|k| self.cur.peek_at(k)).collect();
        RESERVED
            .iter()
            .copied()
            .find(|w| w.as_bytes() == text.as_slice())
    }

    /// Consumes an expected reserved word or fails.
    fn expect_reserved(&mut self, word: &str) -> Result<(), ParseError> {
        self.skip_blank();
        if self.peek_reserved()
            == Some(match RESERVED.iter().find(|w| **w == word) {
                Some(w) => *w,
                None => return Err(self.error_here(format!("internal: {word:?} is not reserved"))),
            })
        {
            for _ in 0..word.len() {
                self.cur.bump();
            }
            Ok(())
        } else {
            Err(self.error_here(format!("expected {word:?}")))
        }
    }

    // -----------------------------------------------------------------
    // Lists, and-or chains, pipelines
    // -----------------------------------------------------------------

    /// Parses a command list until EOF or one of `terms` (a terminator
    /// reserved word, `)`, or `;;`), which is left unconsumed.
    fn parse_list(&mut self, terms: &[&str]) -> Result<Vec<ListItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            self.skip_blank();
            match self.cur.peek() {
                Some(b'\n') => {
                    self.consume_newline()?;
                    continue;
                }
                Some(b';') if !self.cur.looking_at(";;") => {
                    self.cur.bump();
                    continue;
                }
                None => break,
                _ => {}
            }
            // A dangling `;;` or `)` always ends the list: either the
            // enclosing construct expects it (case arm, subshell), or
            // `parse_script` reports it as trailing input with the
            // token's own span.
            if self.cur.looking_at(";;") || self.cur.looking_at(")") {
                break;
            }
            if let Some(w) = self.peek_reserved() {
                if terms.contains(&w) {
                    break;
                }
            }
            let and_or = self.parse_and_or()?;
            self.skip_blank();
            let mut background = false;
            if self.cur.peek() == Some(b'&') && !self.cur.looking_at("&&") {
                self.cur.bump();
                background = true;
            }
            items.push(ListItem { and_or, background });
        }
        Ok(items)
    }

    fn parse_and_or(&mut self) -> Result<AndOr, ParseError> {
        let first = self.parse_pipeline()?;
        let mut rest = Vec::new();
        loop {
            self.skip_blank();
            let op = if self.cur.looking_at("&&") {
                self.cur.eat("&&");
                AndOrOp::And
            } else if self.cur.looking_at("||") {
                self.cur.eat("||");
                AndOrOp::Or
            } else {
                break;
            };
            self.skip_linebreaks()?;
            rest.push((op, self.parse_pipeline()?));
        }
        Ok(AndOr { first, rest })
    }

    fn parse_pipeline(&mut self) -> Result<Pipeline, ParseError> {
        self.skip_blank();
        let mut negated = false;
        while self.peek_reserved() == Some("!") {
            self.cur.bump();
            negated = !negated;
            self.skip_blank();
        }
        let mut commands = vec![self.parse_command()?];
        loop {
            self.skip_blank();
            if self.cur.peek() == Some(b'|') && !self.cur.looking_at("||") {
                self.cur.bump();
                self.skip_linebreaks()?;
                commands.push(self.parse_command()?);
            } else {
                break;
            }
        }
        Ok(Pipeline { negated, commands })
    }

    // -----------------------------------------------------------------
    // Commands
    // -----------------------------------------------------------------

    fn parse_command(&mut self) -> Result<Command, ParseError> {
        self.skip_blank();
        let start = self.cur.pos();
        let line = self.cur.line();
        if self.cur.peek() == Some(b'(') {
            return self.parse_subshell(start, line);
        }
        match self.peek_reserved() {
            Some("if") => return self.parse_if(start, line),
            Some("while") => return self.parse_while(false, start, line),
            Some("until") => return self.parse_while(true, start, line),
            Some("for") => return self.parse_for(start, line),
            Some("case") => return self.parse_case(start, line),
            Some("{") => return self.parse_brace_group(start, line),
            Some(w @ ("then" | "else" | "elif" | "fi" | "do" | "done" | "esac" | "}" | "in")) => {
                return Err(self.error_here(format!("unexpected reserved word {w:?}")))
            }
            _ => {}
        }
        // Function definition lookahead: NAME ( ) compound-command.
        if self.cur.peek().is_some_and(is_name_start) {
            let save = self.cur.clone();
            let name = self.cur.take_while(is_name_char);
            self.skip_blank();
            if self.cur.peek() == Some(b'(') {
                let after_paren = {
                    let mut probe = self.cur.clone();
                    probe.bump();
                    // Allow blanks between the parens.
                    while matches!(probe.peek(), Some(b' ') | Some(b'\t')) {
                        probe.bump();
                    }
                    probe.peek() == Some(b')')
                };
                if after_paren {
                    self.cur.bump(); // `(`
                    while matches!(self.cur.peek(), Some(b' ') | Some(b'\t')) {
                        self.cur.bump();
                    }
                    self.cur.bump(); // `)`
                    self.skip_linebreaks()?;
                    let body = Box::new(self.parse_command()?);
                    let span = self.cur.span_from(start, line);
                    return Ok(Command::FunctionDef { name, body, span });
                }
            }
            self.cur = save;
        }
        self.parse_simple(start, line)
    }

    fn parse_trailing_redirects(&mut self) -> Result<Vec<Redir>, ParseError> {
        let mut redirs = Vec::new();
        loop {
            self.skip_blank();
            if self.at_redirect() {
                redirs.push(self.parse_redirect()?);
            } else {
                return Ok(redirs);
            }
        }
    }

    fn parse_subshell(&mut self, start: usize, line: u32) -> Result<Command, ParseError> {
        self.cur.bump(); // `(`
        let items = self.parse_list(&[")"])?;
        if !self.cur.eat(")") {
            return Err(self.error_here("expected `)` to close subshell"));
        }
        let redirs = self.parse_trailing_redirects()?;
        Ok(Command::Subshell(
            items,
            redirs,
            self.cur.span_from(start, line),
        ))
    }

    fn parse_brace_group(&mut self, start: usize, line: u32) -> Result<Command, ParseError> {
        self.cur.bump(); // `{`
        let items = self.parse_list(&["}"])?;
        self.expect_reserved("}")?;
        let redirs = self.parse_trailing_redirects()?;
        Ok(Command::BraceGroup(
            items,
            redirs,
            self.cur.span_from(start, line),
        ))
    }

    fn parse_if(&mut self, start: usize, line: u32) -> Result<Command, ParseError> {
        self.expect_reserved("if")?;
        let cond = self.parse_list(&["then"])?;
        self.expect_reserved("then")?;
        let then_body = self.parse_list(&["elif", "else", "fi"])?;
        let mut elifs = Vec::new();
        loop {
            self.skip_blank();
            match self.peek_reserved() {
                Some("elif") => {
                    self.expect_reserved("elif")?;
                    let c = self.parse_list(&["then"])?;
                    self.expect_reserved("then")?;
                    let b = self.parse_list(&["elif", "else", "fi"])?;
                    elifs.push((c, b));
                }
                _ => break,
            }
        }
        let else_body = if self.peek_reserved() == Some("else") {
            self.expect_reserved("else")?;
            Some(self.parse_list(&["fi"])?)
        } else {
            None
        };
        self.expect_reserved("fi")?;
        let redirs = self.parse_trailing_redirects()?;
        let clause = IfClause {
            cond,
            then_body,
            elifs,
            else_body,
        };
        Ok(Command::If(clause, redirs, self.cur.span_from(start, line)))
    }

    fn parse_while(&mut self, until: bool, start: usize, line: u32) -> Result<Command, ParseError> {
        self.expect_reserved(if until { "until" } else { "while" })?;
        let cond = self.parse_list(&["do"])?;
        self.expect_reserved("do")?;
        let body = self.parse_list(&["done"])?;
        self.expect_reserved("done")?;
        let redirs = self.parse_trailing_redirects()?;
        let clause = WhileClause { cond, body };
        let span = self.cur.span_from(start, line);
        Ok(if until {
            Command::Until(clause, redirs, span)
        } else {
            Command::While(clause, redirs, span)
        })
    }

    fn parse_for(&mut self, start: usize, line: u32) -> Result<Command, ParseError> {
        self.expect_reserved("for")?;
        self.skip_blank();
        if !self.cur.peek().is_some_and(is_name_start) {
            return Err(self.error_here("expected loop variable name after `for`"));
        }
        let var = self.cur.take_while(is_name_char);
        self.skip_linebreaks()?;
        let words = if self.peek_reserved() == Some("in") {
            self.expect_reserved("in")?;
            let mut words = Vec::new();
            loop {
                self.skip_blank();
                match self.cur.peek() {
                    None | Some(b'\n') | Some(b';') => break,
                    Some(b) if is_word_end(b) => {
                        return Err(self.error_here("unexpected operator in `for` word list"))
                    }
                    Some(_) => words.push(self.parse_word(false)?),
                }
            }
            Some(words)
        } else {
            None
        };
        // Separator before `do`.
        self.skip_blank();
        if self.cur.peek() == Some(b';') && !self.cur.looking_at(";;") {
            self.cur.bump();
        }
        self.skip_linebreaks()?;
        self.expect_reserved("do")?;
        let body = self.parse_list(&["done"])?;
        self.expect_reserved("done")?;
        let redirs = self.parse_trailing_redirects()?;
        Ok(Command::For(
            ForClause { var, words, body },
            redirs,
            self.cur.span_from(start, line),
        ))
    }

    fn parse_case(&mut self, start: usize, line: u32) -> Result<Command, ParseError> {
        self.expect_reserved("case")?;
        self.skip_blank();
        let subject = self.parse_word(false)?;
        self.skip_linebreaks()?;
        self.expect_reserved("in")?;
        let mut arms = Vec::new();
        loop {
            self.skip_linebreaks()?;
            if self.peek_reserved() == Some("esac") {
                self.expect_reserved("esac")?;
                break;
            }
            if self.cur.at_eof() {
                return Err(self.error_here("expected `esac`"));
            }
            if self.cur.peek() == Some(b'(') {
                self.cur.bump();
                self.skip_blank();
            }
            let mut patterns = vec![self.parse_word(false)?];
            loop {
                self.skip_blank();
                if self.cur.peek() == Some(b'|') && !self.cur.looking_at("||") {
                    self.cur.bump();
                    self.skip_blank();
                    patterns.push(self.parse_word(false)?);
                } else {
                    break;
                }
            }
            if !self.cur.eat(")") {
                return Err(self.error_here("expected `)` after case pattern"));
            }
            let body = self.parse_list(&[";;", "esac"])?;
            self.skip_blank();
            if self.cur.looking_at(";;") {
                self.cur.eat(";;");
            }
            arms.push(CaseArm { patterns, body });
        }
        let redirs = self.parse_trailing_redirects()?;
        Ok(Command::Case(
            CaseClause { subject, arms },
            redirs,
            self.cur.span_from(start, line),
        ))
    }

    // -----------------------------------------------------------------
    // Simple commands
    // -----------------------------------------------------------------

    fn parse_simple(&mut self, start: usize, line: u32) -> Result<Command, ParseError> {
        let mut cmd = SimpleCommand::default();
        loop {
            self.skip_blank();
            if self.at_redirect() {
                cmd.redirects.push(self.parse_redirect()?);
                continue;
            }
            match self.cur.peek() {
                None => break,
                Some(b) if is_word_end(b) => break,
                Some(_) => {
                    if cmd.words.is_empty() {
                        if let Some(assign) = self.try_parse_assignment()? {
                            cmd.assignments.push(assign);
                            continue;
                        }
                    }
                    cmd.words.push(self.parse_word(false)?);
                }
            }
        }
        if cmd.assignments.is_empty() && cmd.words.is_empty() && cmd.redirects.is_empty() {
            return Err(self.error_here("expected a command"));
        }
        cmd.span = self.cur.span_from(start, line);
        Ok(Command::Simple(cmd))
    }

    /// If the cursor is at `NAME=…`, parses the assignment.
    fn try_parse_assignment(&mut self) -> Result<Option<Assignment>, ParseError> {
        if !self.cur.peek().is_some_and(is_name_start) {
            return Ok(None);
        }
        let mut i = 1;
        while self.cur.peek_at(i).is_some_and(is_name_char) {
            i += 1;
        }
        if self.cur.peek_at(i) != Some(b'=') {
            return Ok(None);
        }
        let start = self.cur.pos();
        let line = self.cur.line();
        let name = self.cur.take_while(is_name_char);
        self.cur.bump(); // `=`
        let value = if self.cur.peek().is_none_or(is_word_end) {
            Word {
                parts: Vec::new(),
                span: self.cur.span_from(self.cur.pos(), line),
            }
        } else {
            self.parse_word(false)?
        };
        Ok(Some(Assignment {
            name,
            value,
            span: self.cur.span_from(start, line),
        }))
    }

    // -----------------------------------------------------------------
    // Redirections
    // -----------------------------------------------------------------

    /// Is the cursor at the start of a redirection (`<`, `>`, or `3>`)?
    fn at_redirect(&self) -> bool {
        let mut i = 0;
        while self.cur.peek_at(i).is_some_and(|b| b.is_ascii_digit()) {
            i += 1;
        }
        matches!(self.cur.peek_at(i), Some(b'<') | Some(b'>'))
            && (i == 0 || self.cur.peek_at(i).is_some())
    }

    fn parse_redirect(&mut self) -> Result<Redir, ParseError> {
        let start = self.cur.pos();
        let line = self.cur.line();
        let mut fd_digits = String::new();
        while self.cur.peek().is_some_and(|b| b.is_ascii_digit()) {
            fd_digits.push(
                self.cur
                    .bump()
                    .expect("peek saw an ASCII digit, so bump cannot hit EOF") as char,
            );
        }
        let fd = if fd_digits.is_empty() {
            None
        } else {
            fd_digits.parse::<u32>().ok()
        };
        let op = if self.cur.eat("<<-") {
            Some((true, true))
        } else if self.cur.eat("<<") {
            Some((true, false))
        } else {
            None
        };
        if let Some((_, strip)) = op {
            // Here-document: the target word is the delimiter.
            self.skip_blank();
            let target = self.parse_word(false)?;
            let delim = heredoc_delimiter(&target);
            let index = self.heredocs.len();
            self.heredocs.push(String::new());
            self.pending.push(Pending {
                delim,
                strip,
                index,
            });
            return Ok(Redir {
                fd,
                op: RedirOp::HereDoc { strip, body: index },
                target,
                span: self.cur.span_from(start, line),
            });
        }
        let op = if self.cur.eat("<&") {
            RedirOp::DupIn
        } else if self.cur.eat("<>") {
            RedirOp::ReadWrite
        } else if self.cur.eat("<") {
            RedirOp::In
        } else if self.cur.eat(">>") {
            RedirOp::Append
        } else if self.cur.eat(">&") {
            RedirOp::DupOut
        } else if self.cur.eat(">|") {
            RedirOp::Clobber
        } else if self.cur.eat(">") {
            RedirOp::Out
        } else {
            return Err(self.error_here("expected redirection operator"));
        };
        self.skip_blank();
        if self.cur.peek().is_none_or(is_word_end) {
            return Err(self.error_here("expected redirection target"));
        }
        let target = self.parse_word(false)?;
        Ok(Redir {
            fd,
            op,
            target,
            span: self.cur.span_from(start, line),
        })
    }

    // -----------------------------------------------------------------
    // Words
    // -----------------------------------------------------------------

    /// Parses one word. With `in_braces`, the word also ends at `}`
    /// (parameter-expansion operand position).
    fn parse_word(&mut self, in_braces: bool) -> Result<Word, ParseError> {
        let start = self.cur.pos();
        let line = self.cur.line();
        let mut parts: Vec<WordPart> = Vec::new();
        loop {
            let b = match self.cur.peek() {
                None => break,
                Some(b) => b,
            };
            if is_word_end(b) || (in_braces && b == b'}') {
                break;
            }
            match b {
                b'\'' => {
                    self.cur.bump();
                    let text = self.cur.take_while(|c| c != b'\'');
                    if self.cur.bump() != Some(b'\'') {
                        return Err(self.error_here("unterminated single quote"));
                    }
                    parts.push(WordPart::SingleQuoted(text));
                }
                b'"' => {
                    parts.push(WordPart::DoubleQuoted(self.parse_double_quoted()?));
                }
                b'\\' => {
                    self.cur.bump();
                    match self.cur.bump() {
                        None => return Err(self.error_here("trailing backslash")),
                        Some(b'\n') => {} // Line continuation.
                        Some(c) => push_literal(&mut parts, c as char),
                    }
                }
                b'$' => {
                    parts.push(self.parse_dollar()?);
                }
                b'`' => {
                    parts.push(self.parse_backquote()?);
                }
                b'*' | b'?' => {
                    self.cur.bump();
                    parts.push(WordPart::Glob((b as char).to_string()));
                }
                b'[' => {
                    // Glob class if a `]` occurs before the word ends.
                    let mut i = 1;
                    // A `]` or `!`/`^` immediately after `[` is literal.
                    if matches!(self.cur.peek_at(i), Some(b'!') | Some(b'^')) {
                        i += 1;
                    }
                    if self.cur.peek_at(i) == Some(b']') {
                        i += 1;
                    }
                    let mut found = None;
                    while let Some(c) = self.cur.peek_at(i) {
                        if c == b']' {
                            found = Some(i);
                            break;
                        }
                        if is_word_end(c) || c == b'\'' || c == b'"' || c == b'\\' || c == b'$' {
                            break;
                        }
                        i += 1;
                    }
                    match found {
                        Some(end) => {
                            let mut text = String::new();
                            for _ in 0..=end {
                                text.push(
                                    self.cur
                                        .bump()
                                        .expect("bounded by `found`, which peeked Some")
                                        as char,
                                );
                            }
                            parts.push(WordPart::Glob(text));
                        }
                        None => {
                            self.cur.bump();
                            push_literal(&mut parts, '[');
                        }
                    }
                }
                b'~' if parts.is_empty() => {
                    self.cur.bump();
                    let user = self.cur.take_while(|c| {
                        c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.'
                    });
                    parts.push(WordPart::Tilde(if user.is_empty() {
                        None
                    } else {
                        Some(user)
                    }));
                }
                _ => {
                    let text = self.cur.take_while(|c| {
                        !(is_word_end(c)
                            || matches!(c, b'\'' | b'"' | b'\\' | b'$' | b'`' | b'*' | b'?' | b'[')
                            || (in_braces && c == b'}'))
                    });
                    if text.is_empty() {
                        return Err(
                            self.error_here(format!("unexpected character {:?}", b as char))
                        );
                    }
                    push_literal_str(&mut parts, &text);
                }
            }
        }
        if parts.is_empty() && self.cur.pos() == start {
            return Err(self.error_here("expected a word"));
        }
        Ok(Word {
            parts,
            span: self.cur.span_from(start, line),
        })
    }

    fn parse_double_quoted(&mut self) -> Result<Vec<WordPart>, ParseError> {
        debug_assert_eq!(self.cur.peek(), Some(b'"'));
        self.cur.bump();
        let mut parts: Vec<WordPart> = Vec::new();
        loop {
            match self.cur.peek() {
                None => return Err(self.error_here("unterminated double quote")),
                Some(b'"') => {
                    self.cur.bump();
                    break;
                }
                Some(b'$') => parts.push(self.parse_dollar()?),
                Some(b'`') => parts.push(self.parse_backquote()?),
                Some(b'\\') => {
                    self.cur.bump();
                    match self.cur.bump() {
                        None => return Err(self.error_here("trailing backslash")),
                        Some(b'\n') => {}
                        Some(c @ (b'$' | b'`' | b'"' | b'\\')) => {
                            push_literal(&mut parts, c as char)
                        }
                        Some(c) => {
                            // Inside double quotes, `\` before other chars
                            // stays literal.
                            push_literal(&mut parts, '\\');
                            push_literal(&mut parts, c as char);
                        }
                    }
                }
                Some(_) => {
                    let text = self
                        .cur
                        .take_while(|c| !matches!(c, b'"' | b'$' | b'`' | b'\\'));
                    push_literal_str(&mut parts, &text);
                }
            }
        }
        Ok(parts)
    }

    fn parse_dollar(&mut self) -> Result<WordPart, ParseError> {
        debug_assert_eq!(self.cur.peek(), Some(b'$'));
        self.cur.bump();
        match self.cur.peek() {
            Some(b'(') if self.cur.peek_at(1) == Some(b'(') => {
                self.cur.bump();
                self.cur.bump();
                let mut depth = 0usize;
                let mut text = String::new();
                loop {
                    match self.cur.peek() {
                        None => return Err(self.error_here("unterminated arithmetic expansion")),
                        Some(b')') if depth == 0 && self.cur.peek_at(1) == Some(b')') => {
                            self.cur.bump();
                            self.cur.bump();
                            break;
                        }
                        Some(b'(') => {
                            depth += 1;
                            text.push(self.cur.bump().expect("peek returned Some, so bump cannot hit EOF") as char);
                        }
                        Some(b')') => {
                            depth = depth.saturating_sub(1);
                            text.push(self.cur.bump().expect("peek returned Some, so bump cannot hit EOF") as char);
                        }
                        Some(_) => text.push(self.cur.bump().expect("peek returned Some, so bump cannot hit EOF") as char),
                    }
                }
                Ok(WordPart::Arith(text))
            }
            Some(b'(') => {
                self.cur.bump();
                let items = self.parse_list(&[")"])?;
                if !self.cur.eat(")") {
                    return Err(self.error_here("expected `)` to close command substitution"));
                }
                // Inner scripts share the (growing) here-document table;
                // copy its current state so inner indices stay valid.
                let script = Script {
                    items,
                    heredocs: self.heredocs.clone(),
                };
                Ok(WordPart::CmdSub(Box::new(script)))
            }
            Some(b'{') => {
                self.cur.bump();
                let part = self.parse_braced_param()?;
                if self.cur.bump() != Some(b'}') {
                    return Err(self.error_here("expected `}` to close parameter expansion"));
                }
                Ok(part)
            }
            Some(b) if is_name_start(b) => {
                let name = self.cur.take_while(is_name_char);
                Ok(WordPart::Param(ParamExp::bare(&name)))
            }
            Some(b) if b.is_ascii_digit() => {
                self.cur.bump();
                Ok(WordPart::Param(ParamExp::bare(&(b as char).to_string())))
            }
            Some(b @ (b'#' | b'?' | b'*' | b'@' | b'$' | b'!' | b'-')) => {
                self.cur.bump();
                Ok(WordPart::Param(ParamExp::bare(&(b as char).to_string())))
            }
            _ => Ok(WordPart::Literal("$".to_string())),
        }
    }

    /// Parses the inside of `${…}` up to (but not including) the closing
    /// brace.
    fn parse_braced_param(&mut self) -> Result<WordPart, ParseError> {
        // `${#name}` is string length; `${#}`, `${#-…}` etc. refer to `#`.
        if self.cur.peek() == Some(b'#') {
            let next = self.cur.peek_at(1);
            let is_length = next.is_some_and(|b| is_name_start(b) || b.is_ascii_digit())
                || matches!(
                    next,
                    Some(b'?') | Some(b'*') | Some(b'@') | Some(b'!') | Some(b'$')
                );
            if is_length {
                self.cur.bump();
                let name = self.read_param_name()?;
                return Ok(WordPart::Param(ParamExp {
                    name,
                    op: Some(ParamOp::Length),
                }));
            }
        }
        let name = self.read_param_name()?;
        if self.cur.peek() == Some(b'}') {
            return Ok(WordPart::Param(ParamExp { name, op: None }));
        }
        let colon = self.cur.peek() == Some(b':');
        if colon {
            self.cur.bump();
        }
        let op = match self.cur.peek() {
            Some(b'-') => {
                self.cur.bump();
                ParamOp::Default(self.parse_param_word()?, colon)
            }
            Some(b'=') => {
                self.cur.bump();
                ParamOp::Assign(self.parse_param_word()?, colon)
            }
            Some(b'?') => {
                self.cur.bump();
                let w = if self.cur.peek() == Some(b'}') {
                    None
                } else {
                    Some(self.parse_param_word()?)
                };
                ParamOp::Error(w, colon)
            }
            Some(b'+') => {
                self.cur.bump();
                ParamOp::Alt(self.parse_param_word()?, colon)
            }
            Some(b'%') if !colon => {
                self.cur.bump();
                if self.cur.peek() == Some(b'%') {
                    self.cur.bump();
                    ParamOp::RemoveLargestSuffix(self.parse_param_word()?)
                } else {
                    ParamOp::RemoveSmallestSuffix(self.parse_param_word()?)
                }
            }
            Some(b'#') if !colon => {
                self.cur.bump();
                if self.cur.peek() == Some(b'#') {
                    self.cur.bump();
                    ParamOp::RemoveLargestPrefix(self.parse_param_word()?)
                } else {
                    ParamOp::RemoveSmallestPrefix(self.parse_param_word()?)
                }
            }
            other => {
                return Err(self.error_here(format!(
                    "unexpected {:?} in parameter expansion",
                    other.map(|b| b as char)
                )))
            }
        };
        Ok(WordPart::Param(ParamExp { name, op: Some(op) }))
    }

    /// The operand word of a `${x op word}` expansion; may be empty.
    fn parse_param_word(&mut self) -> Result<Word, ParseError> {
        if self.cur.peek() == Some(b'}') {
            return Ok(Word {
                parts: Vec::new(),
                span: Span::new(self.cur.pos(), self.cur.pos(), self.cur.line()),
            });
        }
        self.parse_word(true)
    }

    fn read_param_name(&mut self) -> Result<String, ParseError> {
        match self.cur.peek() {
            Some(b) if is_name_start(b) => Ok(self.cur.take_while(is_name_char)),
            Some(b) if b.is_ascii_digit() => Ok(self.cur.take_while(|c| c.is_ascii_digit())),
            Some(b @ (b'#' | b'?' | b'*' | b'@' | b'$' | b'!' | b'-')) => {
                self.cur.bump();
                Ok((b as char).to_string())
            }
            other => Err(self.error_here(format!(
                "expected parameter name, found {:?}",
                other.map(|b| b as char)
            ))),
        }
    }

    fn parse_backquote(&mut self) -> Result<WordPart, ParseError> {
        debug_assert_eq!(self.cur.peek(), Some(b'`'));
        let start_line = self.cur.line();
        self.cur.bump();
        let mut text = String::new();
        loop {
            match self.cur.bump() {
                None => return Err(self.error_here("unterminated backquote substitution")),
                Some(b'`') => break,
                Some(b'\\') => match self.cur.bump() {
                    Some(c @ (b'$' | b'`' | b'\\')) => text.push(c as char),
                    Some(c) => {
                        text.push('\\');
                        text.push(c as char);
                    }
                    None => return Err(self.error_here("trailing backslash in backquotes")),
                },
                Some(c) => text.push(c as char),
            }
        }
        let script = parse_script(&text).map_err(|mut e| {
            e.message = format!("in backquote substitution: {}", e.message);
            e.span.line = start_line;
            e
        })?;
        Ok(WordPart::CmdSub(Box::new(script)))
    }
}

/// Appends a literal character, merging with a trailing literal part.
fn push_literal(parts: &mut Vec<WordPart>, c: char) {
    if let Some(WordPart::Literal(s)) = parts.last_mut() {
        s.push(c);
    } else {
        parts.push(WordPart::Literal(c.to_string()));
    }
}

/// Appends literal text, merging with a trailing literal part.
fn push_literal_str(parts: &mut Vec<WordPart>, text: &str) {
    if text.is_empty() {
        return;
    }
    if let Some(WordPart::Literal(s)) = parts.last_mut() {
        s.push_str(text);
    } else {
        parts.push(WordPart::Literal(text.to_string()));
    }
}

/// The delimiter string of a here-document target word (quotes removed;
/// we do not model the expansion/no-expansion distinction).
fn heredoc_delimiter(word: &Word) -> String {
    let mut out = String::new();
    for part in &word.parts {
        match part {
            WordPart::Literal(s) | WordPart::SingleQuoted(s) => out.push_str(s),
            WordPart::DoubleQuoted(inner) => {
                for p in inner {
                    if let WordPart::Literal(s) = p {
                        out.push_str(s);
                    }
                }
            }
            _ => {}
        }
    }
    out
}
