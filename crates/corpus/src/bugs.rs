//! The labeled bug corpus (experiment E8).
//!
//! §4 "Incorrectness criteria": a useful criteria set comes from
//! "surveying the literature and exploring bugs in the wild". The
//! generator below produces, per bug class, scripts with an injected
//! instance of the bug *and* matched benign twins that share surface
//! syntax — the twins are what separate a semantic analyzer from a
//! pattern matcher in the measured precision (E8). Generation is
//! deterministic per seed; filler commands vary so no two scripts are
//! textually identical.

use shoal_obs::XorShift64;

/// The injected bug class (the ground-truth label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugClass {
    /// A deletion that can reach `/` (Fig. 1 family).
    DangerousDelete,
    /// A filter whose output language is empty (Fig. 5 family).
    DeadPipe,
    /// A command that can never succeed after earlier effects (§4
    /// rm/cat family).
    AlwaysFails,
    /// No bug: a benign twin.
    Benign,
}

impl std::fmt::Display for BugClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BugClass::DangerousDelete => "dangerous-delete",
            BugClass::DeadPipe => "dead-pipe",
            BugClass::AlwaysFails => "always-fails",
            BugClass::Benign => "benign",
        };
        write!(f, "{s}")
    }
}

/// One labeled script.
#[derive(Debug, Clone)]
pub struct LabeledScript {
    /// Identifier (`class-index`).
    pub name: String,
    /// Ground truth.
    pub class: BugClass,
    /// The script source.
    pub script: String,
}

/// Deterministic filler lines that do not affect the injected bug.
fn filler(rng: &mut XorShift64) -> String {
    let options = [
        "echo \"starting step\"",
        "date",
        "mkdir -p /tmp/work",
        "touch /tmp/work/stamp",
        "uname",
        "echo done >> /tmp/work/log",
        "wc -l /tmp/work/log",
        "true",
    ];
    options[rng.random_range(0..options.len())].to_string()
}

fn with_filler(rng: &mut XorShift64, core_lines: &[String]) -> String {
    let mut lines: Vec<String> = vec!["#!/bin/sh".to_string()];
    for core in core_lines {
        for _ in 0..rng.random_range(1..4) {
            lines.push(filler(rng));
        }
        lines.push(core.clone());
    }
    for _ in 0..rng.random_range(0..3) {
        lines.push(filler(rng));
    }
    lines.join("\n") + "\n"
}

/// Generates `per_class` scripts for each bug class (plus the same
/// number of benign twins per class), deterministically from `seed`.
pub fn generate_corpus(per_class: usize, seed: u64) -> Vec<LabeledScript> {
    let mut rng = XorShift64::seed_from_u64(seed);
    let mut out = Vec::new();
    for i in 0..per_class {
        out.push(dangerous_delete(i, &mut rng));
        out.push(benign_delete(i, &mut rng));
        out.push(dead_pipe(i, &mut rng));
        out.push(live_pipe(i, &mut rng));
        out.push(always_fails(i, &mut rng));
        out.push(sometimes_fails(i, &mut rng));
    }
    out
}

fn dangerous_delete(i: usize, rng: &mut XorShift64) -> LabeledScript {
    // The variable comes from a fallible command substitution: it may be
    // empty.
    let var = ["ROOT", "BASE", "TARGET", "INSTALL_DIR"][i % 4];
    let core = vec![
        format!("{var}=\"$(cd \"${{0%/*}}\" && echo $PWD)\""),
        format!("rm -rf \"${var}\"/*"),
    ];
    LabeledScript {
        name: format!("dangerous-delete-{i}"),
        class: BugClass::DangerousDelete,
        script: with_filler(rng, &core),
    }
}

fn benign_delete(i: usize, rng: &mut XorShift64) -> LabeledScript {
    // Same surface shape, but the variable is guarded (or anchored).
    let var = ["ROOT", "BASE", "TARGET", "INSTALL_DIR"][i % 4];
    let core = if i.is_multiple_of(2) {
        vec![
            format!("{var}=\"$(cd \"${{0%/*}}\" && echo $PWD)\""),
            format!("if [ -n \"${var}\" ] && [ \"${var}\" != \"/\" ]; then"),
            format!("    rm -rf \"${var}\"/*"),
            "fi".to_string(),
        ]
    } else {
        vec![
            format!("{var}=/var/cache/app{i}"),
            format!("rm -rf \"${var}\"/*"),
        ]
    };
    LabeledScript {
        name: format!("benign-delete-{i}"),
        class: BugClass::Benign,
        script: with_filler(rng, &core),
    }
}

fn dead_pipe(i: usize, rng: &mut XorShift64) -> LabeledScript {
    // lsb_release emits capitalized labels; the filter is
    // wrongly-cased or structurally impossible.
    let bad_filters = ["'^desc'", "'^release:'", "'^CODENAME'", "'^distributor id'"];
    let core = vec![format!(
        "v=$(lsb_release -a | grep {} | cut -f 2)\necho \"$v\"",
        bad_filters[i % bad_filters.len()]
    )];
    LabeledScript {
        name: format!("dead-pipe-{i}"),
        class: BugClass::DeadPipe,
        script: with_filler(rng, &core),
    }
}

fn live_pipe(i: usize, rng: &mut XorShift64) -> LabeledScript {
    let good_filters = ["'^Desc'", "'^Release'", "'^Codename'", "'^Distributor'"];
    let core = vec![format!(
        "v=$(lsb_release -a | grep {} | cut -f 2)\necho \"$v\"",
        good_filters[i % good_filters.len()]
    )];
    LabeledScript {
        name: format!("live-pipe-{i}"),
        class: BugClass::Benign,
        script: with_filler(rng, &core),
    }
}

fn always_fails(i: usize, rng: &mut XorShift64) -> LabeledScript {
    // Delete a tree, then use a path under it.
    let use_cmd = ["cat", "ls", "grep x"][i % 3];
    let sub = ["config", "data/db", "state"][i % 3];
    let core = vec![format!("rm -rf \"$1\""), format!("{use_cmd} \"$1\"/{sub}")];
    LabeledScript {
        name: format!("always-fails-{i}"),
        class: BugClass::AlwaysFails,
        script: with_filler(rng, &core),
    }
}

fn sometimes_fails(i: usize, rng: &mut XorShift64) -> LabeledScript {
    // Surface twin: the later use targets a different root, or the tree
    // is recreated in between.
    let core = if i.is_multiple_of(2) {
        vec!["rm -rf \"$1\"".to_string(), "cat \"$2\"/config".to_string()]
    } else {
        vec![
            "rm -rf \"$1\"".to_string(),
            "mkdir -p \"$1\"".to_string(),
            "touch \"$1\"/config".to_string(),
            "cat \"$1\"/config".to_string(),
        ]
    };
    LabeledScript {
        name: format!("sometimes-fails-{i}"),
        class: BugClass::Benign,
        script: with_filler(rng, &core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoal_shparse::parse_script;

    #[test]
    fn corpus_is_deterministic() {
        let a = generate_corpus(4, 99);
        let b = generate_corpus(4, 99);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.script, y.script);
        }
        let c = generate_corpus(4, 100);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.script != y.script));
    }

    #[test]
    fn corpus_parses_and_is_balanced() {
        let corpus = generate_corpus(6, 1);
        assert_eq!(corpus.len(), 36);
        let buggy = corpus
            .iter()
            .filter(|s| s.class != BugClass::Benign)
            .count();
        assert_eq!(buggy, 18);
        for s in &corpus {
            parse_script(&s.script)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}\n{}", s.name, s.script));
        }
    }

    #[test]
    fn class_counts() {
        let corpus = generate_corpus(5, 2);
        for class in [
            BugClass::DangerousDelete,
            BugClass::DeadPipe,
            BugClass::AlwaysFails,
        ] {
            assert_eq!(corpus.iter().filter(|s| s.class == class).count(), 5);
        }
        assert_eq!(
            corpus
                .iter()
                .filter(|s| s.class == BugClass::Benign)
                .count(),
            15
        );
    }
}
