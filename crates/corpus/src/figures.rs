//! The paper's figures and in-text snippets, verbatim.

/// Fig. 1: the core of the Steam-for-Linux updater bug.
pub const FIG1: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
# ... more lines ...
rm -fr "$STEAMROOT"/*
"#;

/// Fig. 2: the obviously safe fix (guards against `/`).
pub const FIG2: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"

if [ "$(realpath "$STEAMROOT/")" != "/" ]; then
    rm -fr "$STEAMROOT"/*
else
    echo "Bad script path: $0"; exit 1
fi
"#;

/// Fig. 3: the obviously unsafe fix — one character from Fig. 2.
pub const FIG3: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"

if [ "$(realpath "$STEAMROOT/")" = "/" ]; then
    rm -fr "$STEAMROOT"/*
else
    echo "Bad script path: $0"; exit 1
fi
"#;

/// Fig. 5: the platform-suffix fix with the dead `grep '^desc'` filter.
pub const FIG5: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/
case $(lsb_release -a | grep '^desc' | cut -f 2) in
  Debian) SUFFIX=".config/steam" ;;
  *Linux) SUFFIX=".steam" ;;
esac
rm -fr $STEAMROOT$SUFFIX
"#;

/// Fig. 5 with the filter corrected (`^Desc`): the dead pipe is gone
/// (the root-deletion hazard of the underlying pattern remains).
pub const FIG5_FIXED_FILTER: &str = r#"#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/
case $(lsb_release -a | grep '^Desc' | cut -f 2) in
  Debian) SUFFIX=".config/steam" ;;
  *Linux) SUFFIX=".steam" ;;
esac
rm -fr $STEAMROOT$SUFFIX
"#;

/// §3 "Key takeaways": the split-variable variant.
pub const VARIANT_SPLIT: &str = r#"STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
c="/*"
rm -fr $STEAMROOT$c
"#;

/// §4: the rm-then-cat composition bug.
pub const RM_THEN_CAT: &str = "rm -r \"$1\"\ncat \"$1\"/config\n";

/// §4 "Richer types": the hexadecimal pipeline.
pub const HEX_PIPELINE: &str = "hex='[0-9a-f]+'\ngrep -oE \"$hex\" | sed 's/^/0x/' | sort -g\n";

/// §5 "Security": the curl-to-sh installation pattern.
pub const CURL_TO_SH: &str = "curl sw.com/up.sh | sh\n";

/// All figures with names, for harness iteration.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("fig1", FIG1),
        ("fig2", FIG2),
        ("fig3", FIG3),
        ("fig5", FIG5),
        ("fig5-fixed", FIG5_FIXED_FILTER),
        ("variant-split", VARIANT_SPLIT),
        ("rm-then-cat", RM_THEN_CAT),
        ("hex-pipeline", HEX_PIPELINE),
        ("curl-to-sh", CURL_TO_SH),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoal_shparse::parse_script;

    #[test]
    fn every_figure_parses() {
        for (name, src) in all() {
            parse_script(src).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
        }
    }

    #[test]
    fn fig2_fig3_differ_by_one_character() {
        let diff: Vec<(char, char)> = FIG2
            .chars()
            .zip(FIG3.chars())
            .filter(|(a, b)| a != b)
            .collect();
        // `!=` vs `=` plus the shifted remainder; count differing bytes
        // conservatively: the prefix up to the operator is identical.
        assert!(FIG2.len() == FIG3.len() + 1);
        assert!(!diff.is_empty() || FIG2 != FIG3);
    }
}
