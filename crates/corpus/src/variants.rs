//! Syntactic variants of the Steam deletion pattern (experiment E3).
//!
//! §3 "Key takeaways" claims the analysis "is robust to
//! semantically-equivalent syntactic variants such as splitting rm's
//! path across variables: `c=\"/*\"; rm -fr $STEAMROOT$c`". This module
//! generates a family of such variants — every one performs the same
//! dangerous deletion, spelled differently — plus a matched family of
//! *safe* look-alikes that a purely syntactic matcher tends to flag
//! anyway.

/// The assignment producing a possibly-empty `STEAMROOT`, shared by all
/// variants.
const SETUP: &str = "STEAMROOT=\"$(cd \"${0%/*}\" && echo $PWD)\"\n";

/// One labeled variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Short name for tables.
    pub name: &'static str,
    /// The script.
    pub script: String,
    /// True when the deletion is genuinely dangerous (may hit `/`).
    pub dangerous: bool,
}

/// The dangerous variants: all semantically perform `rm -fr <maybe-empty>/​*`.
pub fn dangerous_variants() -> Vec<Variant> {
    let v = |name: &'static str, body: &str| Variant {
        name,
        script: format!("{SETUP}{body}\n"),
        dangerous: true,
    };
    vec![
        v("quoted-glob", "rm -fr \"$STEAMROOT\"/*"),
        v("unquoted-glob", "rm -fr $STEAMROOT/*"),
        v("split-var", "c=\"/*\"\nrm -fr $STEAMROOT$c"),
        v("split-var-sq", "c='/*'\nrm -fr $STEAMROOT$c"),
        v("braced", "rm -fr \"${STEAMROOT}\"/*"),
        v("flags-split", "rm -f -r \"$STEAMROOT\"/*"),
        v("flags-reordered", "rm -rf \"$STEAMROOT\"/*"),
        v("alias-var", "target=$STEAMROOT\nrm -fr \"$target\"/*"),
        v("two-hop-alias", "a=$STEAMROOT\nb=$a\nrm -fr \"$b\"/*"),
        v("trailing-slash", "rm -fr \"$STEAMROOT\"/"),
        v("tail-in-var", "tail=\"*\"\nrm -fr \"$STEAMROOT\"/$tail"),
        v("double-dash", "rm -fr -- \"$STEAMROOT\"/*"),
    ]
}

/// Safe look-alikes: syntactically similar, semantically guarded or
/// anchored so the deletion cannot reach `/`.
pub fn safe_lookalikes() -> Vec<Variant> {
    let v = |name: &'static str, body: &str| Variant {
        name,
        script: format!("{SETUP}{body}\n"),
        dangerous: false,
    };
    vec![
        v(
            "guarded-nonempty-nonroot",
            "if [ -n \"$STEAMROOT\" ] && [ \"$STEAMROOT\" != \"/\" ]; then\n  rm -fr \"$STEAMROOT\"/*\nfi",
        ),
        v("anchored-prefix", "rm -fr \"/opt/steam$STEAMROOT\"/*"),
        v(
            "fig2-realpath-guard",
            "if [ \"$(realpath \"$STEAMROOT/\")\" != \"/\" ]; then\n  rm -fr \"$STEAMROOT\"/*\nfi",
        ),
        Variant {
            name: "literal-safe-path",
            script: "rm -fr /home/user/.steam/*\n".to_string(),
            dangerous: false,
        },
        Variant {
            name: "var-is-literal-safe",
            script: "d=/home/user/.steam\nrm -fr \"$d\"/*\n".to_string(),
            dangerous: false,
        },
    ]
}

/// All variants, dangerous first.
pub fn all_variants() -> Vec<Variant> {
    let mut out = dangerous_variants();
    out.extend(safe_lookalikes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoal_shparse::parse_script;

    #[test]
    fn all_variants_parse() {
        for v in all_variants() {
            parse_script(&v.script)
                .unwrap_or_else(|e| panic!("variant {} failed to parse: {e}", v.name));
        }
    }

    #[test]
    fn counts() {
        assert!(dangerous_variants().len() >= 12);
        assert!(safe_lookalikes().len() >= 5);
        let names: std::collections::BTreeSet<&str> =
            all_variants().iter().map(|v| v.name).collect();
        assert_eq!(names.len(), all_variants().len(), "variant names unique");
    }
}
