//! `shoal-corpus`: the evaluation substrate.
//!
//! The paper is a position paper without a released benchmark suite;
//! its evaluation objects are the figures themselves plus the claims in
//! the text. This crate collects:
//!
//! * [`figures`] — every script figure from the paper, verbatim;
//! * [`variants`] — generated *semantically-equivalent syntactic
//!   variants* of the Steam deletion (E3: "robust to
//!   semantically-equivalent syntactic variants");
//! * [`bugs`] — a deterministic, labeled corpus of scripts with
//!   injected bug classes and matched benign twins (E8: precision/recall
//!   of semantic analysis vs. syntactic linting);
//! * [`scale`] — parameterized script generators for the performance
//!   experiments (E9): straight-line length, branching depth, pipeline
//!   width.
//!
//! Everything is deterministic given a seed: experiments are exactly
//! reproducible.

pub mod bugs;
pub mod figures;
pub mod scale;
pub mod variants;

pub use bugs::{generate_corpus, BugClass, LabeledScript};
