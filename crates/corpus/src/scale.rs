//! Parameterized script generators for the performance experiments
//! (E9): how analysis time and explored states grow with script size
//! and shape. §4 names the central challenge: "track the file system's
//! state with sufficient precision … while avoiding exponential
//! explosion in complexity for realistically sized programs."

/// A straight-line script of `n` file-manipulation commands over a
/// rolling set of paths (no branching: one execution path).
pub fn straight_line(n: usize) -> String {
    let mut out = String::from("#!/bin/sh\n");
    for i in 0..n {
        match i % 5 {
            0 => out.push_str(&format!("mkdir -p /data/d{i}\n")),
            1 => out.push_str(&format!("touch /data/d{}/f\n", i - 1)),
            2 => out.push_str(&format!("cat /data/d{}/f\n", i - 2)),
            3 => out.push_str(&format!("cp /data/d{}/f /data/copy{i}\n", i - 3)),
            _ => out.push_str(&format!("rm -f /data/copy{}\n", i - 1)),
        }
    }
    out
}

/// A script with `k` sequential two-way branches that all test the
/// *same* symbolic value: with concrete pruning (§3), the first fork
/// decides the rest and path count stays constant; without it, the
/// worst case is 2ᵏ. This is the E9 ablation workload.
pub fn branchy(k: usize) -> String {
    let mut out = String::from("#!/bin/sh\n");
    for i in 0..k {
        out.push_str(&format!(
            "if [ \"$1\" = \"on\" ]; then\n    echo on{i}\nelse\n    echo off{i}\nfi\n"
        ));
    }
    out
}

/// Like [`branchy`] but every branch tests an independent variable:
/// 2ᵏ genuine paths regardless of pruning (the exponential baseline).
pub fn branchy_independent(k: usize) -> String {
    let mut out = String::from("#!/bin/sh\n");
    for i in 0..k {
        let n = i + 1;
        out.push_str(&format!(
            "if [ \"${n}\" = \"on\" ]; then\n    echo on{i}\nelse\n    echo off{i}\nfi\n"
        ));
    }
    out
}

/// A single pipeline of `n` filter stages (stream-typing cost).
pub fn wide_pipeline(n: usize) -> String {
    let mut out = String::from("cat /data/input");
    for i in 0..n {
        match i % 4 {
            0 => out.push_str(" | grep x"),
            1 => out.push_str(" | sort"),
            2 => out.push_str(" | uniq"),
            _ => out.push_str(" | head -n 100"),
        }
    }
    out.push('\n');
    out
}

/// A script of `n` loops, each bounded, for loop-unrolling cost.
pub fn loopy(n: usize) -> String {
    let mut out = String::from("#!/bin/sh\n");
    for i in 0..n {
        out.push_str(&format!(
            "for x in a b c; do\n    echo \"$x\" >> /log/l{i}\ndone\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoal_shparse::parse_script;

    #[test]
    fn generators_parse_at_size() {
        for n in [0, 1, 10, 100] {
            parse_script(&straight_line(n)).unwrap();
            parse_script(&wide_pipeline(n)).unwrap();
            parse_script(&loopy(n.min(20))).unwrap();
        }
        for k in [0, 1, 5, 10] {
            parse_script(&branchy(k)).unwrap();
        }
    }

    #[test]
    fn sizes_scale_linearly() {
        let small = straight_line(10).lines().count();
        let large = straight_line(100).lines().count();
        assert_eq!(large - 1, (small - 1) * 10);
    }
}
