//! The `verify` policy checker (§5 "Security").
//!
//! The paper's motivating use:
//!
//! ```text
//! curl sw.com/up.sh | verify --no-RW ~/mine | sh
//! ```
//!
//! A [`Policy`] protects path prefixes from reads and/or writes.
//! [`verify_script`] statically walks the script's commands, classifies
//! every file-system access against the policy via the spec library, and
//! reports:
//!
//! * **definite violations** — a literal path under a protected prefix
//!   is read/written/deleted;
//! * **possible violations** — a symbolic path (or glob) *could* land
//!   under a protected prefix; these are the residual obligations that
//!   §5 says "leverage the guard and monitor generation … to fill gaps";
//! * **conclusiveness** — whether every access was classified
//!   definitely, i.e. the static verdict covers all executions.

use shoal_shparse::{parse_script, Command, ListItem, ParseError, Script, Span, Word};
use shoal_spec::hoare::{operand_indices, Effect};
use shoal_spec::SpecLibrary;

/// A protection policy over path prefixes.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Prefixes that must not be read.
    pub no_read: Vec<String>,
    /// Prefixes that must not be written (created/deleted/modified).
    pub no_write: Vec<String>,
}

impl Policy {
    /// `--no-RW prefix`: protect from both reads and writes.
    pub fn no_rw(prefix: &str) -> Policy {
        Policy {
            no_read: vec![prefix.to_string()],
            no_write: vec![prefix.to_string()],
        }
    }

    /// Is a literal path under a protected read prefix?
    fn read_protected(&self, path: &str) -> bool {
        self.no_read.iter().any(|p| is_under(p, path))
    }

    fn write_protected(&self, path: &str) -> bool {
        self.no_write.iter().any(|p| is_under(p, path))
    }
}

fn is_under(prefix: &str, path: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    let norm = shoal_symfs::normalize_lexical(path);
    norm == prefix || (norm.starts_with(prefix) && norm.as_bytes().get(prefix.len()) == Some(&b'/'))
}

/// How certain a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certainty {
    /// Violation on every execution reaching the command.
    Definite,
    /// The access target is not statically known; it may violate.
    Possible,
}

/// One policy finding.
#[derive(Debug, Clone)]
pub struct PolicyFinding {
    /// Where.
    pub span: Span,
    /// The offending command (pretty-printed name + argument).
    pub what: String,
    /// `"read"` or `"write"`.
    pub access: &'static str,
    /// Which protected prefix.
    pub prefix: String,
    /// Definite or possible.
    pub certainty: Certainty,
}

/// The outcome of verification.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// All findings.
    pub findings: Vec<PolicyFinding>,
    /// Commands whose targets could not be classified at all (unknown
    /// commands, dynamic names) — each needs runtime containment.
    pub unclassified: Vec<(Span, String)>,
    /// Total file-system-relevant commands inspected.
    pub commands_checked: usize,
}

impl VerifyReport {
    /// True when no finding and nothing unclassified: the script
    /// *provably* respects the policy.
    pub fn conclusively_safe(&self) -> bool {
        self.findings.is_empty() && self.unclassified.is_empty()
    }

    /// Definite violations only.
    pub fn definite(&self) -> Vec<&PolicyFinding> {
        self.findings
            .iter()
            .filter(|f| f.certainty == Certainty::Definite)
            .collect()
    }
}

/// Verifies a parsed script against a policy.
pub fn verify_script(script: &Script, policy: &Policy, specs: &SpecLibrary) -> VerifyReport {
    let mut report = VerifyReport::default();
    {
        let _span = shoal_obs::span!("verify");
        visit_items(&script.items, policy, specs, &mut report);
    }
    shoal_obs::counter_add("verify.runs", 1);
    shoal_obs::counter_add("verify.commands_checked", report.commands_checked as u64);
    shoal_obs::counter_add("verify.findings", report.findings.len() as u64);
    shoal_obs::counter_add("verify.unclassified", report.unclassified.len() as u64);
    shoal_obs::event!(
        "verify",
        commands_checked = report.commands_checked,
        findings = report.findings.len(),
        unclassified = report.unclassified.len(),
        safe = report.conclusively_safe()
    );
    report
}

/// Parses and verifies shell source.
///
/// # Errors
///
/// Returns the parse error for invalid source.
pub fn verify_source(
    src: &str,
    policy: &Policy,
    specs: &SpecLibrary,
) -> Result<VerifyReport, ParseError> {
    Ok(verify_script(&parse_script(src)?, policy, specs))
}

fn visit_items(
    items: &[ListItem],
    policy: &Policy,
    specs: &SpecLibrary,
    report: &mut VerifyReport,
) {
    for item in items {
        let mut pipes = vec![&item.and_or.first];
        pipes.extend(item.and_or.rest.iter().map(|(_, p)| p));
        for p in pipes {
            for c in &p.commands {
                visit_command(c, policy, specs, report);
            }
        }
    }
}

fn visit_command(cmd: &Command, policy: &Policy, specs: &SpecLibrary, report: &mut VerifyReport) {
    match cmd {
        Command::Simple(sc) => {
            // Redirections write their targets.
            for r in &sc.redirects {
                use shoal_shparse::RedirOp::*;
                let access = match r.op {
                    Out | Append | Clobber | ReadWrite => Some("write"),
                    In => Some("read"),
                    _ => None,
                };
                if let Some(access) = access {
                    check_target(&r.target, access, r.span, "redirection", policy, report);
                }
            }
            if sc.words.is_empty() {
                // A bare assignment touches no files.
                return;
            }
            let Some(name) = sc.name_literal() else {
                report
                    .unclassified
                    .push((sc.span, "dynamically-named command".to_string()));
                return;
            };
            if name == "cd" || name == "echo" || name == "test" || name == "[" {
                return;
            }
            let Some(spec) = specs.get(&name) else {
                // Unknown command with path-looking args: unclassified.
                report.unclassified.push((sc.span, name));
                return;
            };
            report.commands_checked += 1;
            // Reconstruct the invocation over literal args; symbolic args
            // become placeholders that classify as operands.
            let args: Vec<String> = sc.words[1..]
                .iter()
                .map(|w| w.as_literal().unwrap_or_else(|| "\u{1}dyn".to_string()))
                .collect();
            let Ok(inv) = spec.syntax.classify(&args) else {
                report
                    .unclassified
                    .push((sc.span, format!("{name} (unusual invocation)")));
                return;
            };
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            for case in spec.applicable(&inv) {
                for e in &case.effects {
                    match e {
                        Effect::Reads(m) => reads.push(*m),
                        Effect::Writes(m)
                        | Effect::Deletes(m)
                        | Effect::DeletesChildren(m)
                        | Effect::CreatesFile(m)
                        | Effect::CreatesDir(m)
                        | Effect::CreatesDirChain(m) => writes.push(*m),
                        Effect::CopiesTo { src, dst } => {
                            reads.push(*src);
                            writes.push(*dst);
                        }
                        Effect::MovesTo { src, dst } => {
                            writes.push(*src);
                            writes.push(*dst);
                        }
                        _ => {}
                    }
                }
            }
            for (markers, access) in [(&reads, "read"), (&writes, "write")] {
                for &m in markers.iter() {
                    for idx in operand_indices(m, inv.operands.len()) {
                        let Some(op) = inv.operands.get(idx) else {
                            continue;
                        };
                        let span = sc.span;
                        if op.contains('\u{1}') {
                            // Symbolic target: possible violation of every
                            // protected prefix.
                            for prefix in protected(policy, access) {
                                push_unique(
                                    report,
                                    PolicyFinding {
                                        span,
                                        what: format!("{name} ⟨dynamic path⟩"),
                                        access,
                                        prefix: prefix.clone(),
                                        certainty: Certainty::Possible,
                                    },
                                );
                            }
                            continue;
                        }
                        let violated = match access {
                            "read" => policy.read_protected(op),
                            _ => policy.write_protected(op),
                        };
                        if violated {
                            let prefix = protected(policy, access)
                                .iter()
                                .find(|p| is_under(p, op))
                                .cloned()
                                .unwrap_or_default();
                            push_unique(
                                report,
                                PolicyFinding {
                                    span,
                                    what: format!("{name} {op}"),
                                    access,
                                    prefix,
                                    certainty: Certainty::Definite,
                                },
                            );
                        }
                    }
                }
            }
        }
        Command::BraceGroup(items, _, _) | Command::Subshell(items, _, _) => {
            visit_items(items, policy, specs, report)
        }
        Command::If(c, _, _) => {
            visit_items(&c.cond, policy, specs, report);
            visit_items(&c.then_body, policy, specs, report);
            for (cc, bb) in &c.elifs {
                visit_items(cc, policy, specs, report);
                visit_items(bb, policy, specs, report);
            }
            if let Some(e) = &c.else_body {
                visit_items(e, policy, specs, report);
            }
        }
        Command::While(c, _, _) | Command::Until(c, _, _) => {
            visit_items(&c.cond, policy, specs, report);
            visit_items(&c.body, policy, specs, report);
        }
        Command::For(c, _, _) => visit_items(&c.body, policy, specs, report),
        Command::Case(c, _, _) => {
            for arm in &c.arms {
                visit_items(&arm.body, policy, specs, report);
            }
        }
        Command::FunctionDef { body, .. } => visit_command(body, policy, specs, report),
    }
}

fn check_target(
    word: &Word,
    access: &'static str,
    span: Span,
    what: &str,
    policy: &Policy,
    report: &mut VerifyReport,
) {
    match word.as_literal() {
        Some(path) => {
            let violated = match access {
                "read" => policy.read_protected(&path),
                _ => policy.write_protected(&path),
            };
            if violated {
                let prefix = protected(policy, access)
                    .iter()
                    .find(|p| is_under(p, &path))
                    .cloned()
                    .unwrap_or_default();
                push_unique(
                    report,
                    PolicyFinding {
                        span,
                        what: format!("{what} {path}"),
                        access,
                        prefix,
                        certainty: Certainty::Definite,
                    },
                );
            }
        }
        None => {
            for prefix in protected(policy, access) {
                push_unique(
                    report,
                    PolicyFinding {
                        span,
                        what: format!("{what} ⟨dynamic path⟩"),
                        access,
                        prefix: prefix.clone(),
                        certainty: Certainty::Possible,
                    },
                );
            }
        }
    }
}

fn protected<'a>(policy: &'a Policy, access: &str) -> &'a [String] {
    match access {
        "read" => &policy.no_read,
        _ => &policy.no_write,
    }
}

fn push_unique(report: &mut VerifyReport, finding: PolicyFinding) {
    let dup = report.findings.iter().any(|f| {
        f.span.line == finding.span.line
            && f.access == finding.access
            && f.what == finding.what
            && f.prefix == finding.prefix
    });
    if !dup {
        report.findings.push(finding);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> SpecLibrary {
        SpecLibrary::builtin()
    }

    #[test]
    fn clean_installer_is_conclusively_safe() {
        let src = "mkdir -p /opt/app\ntouch /opt/app/installed\ncat /opt/app/installed\n";
        let r = verify_source(src, &Policy::no_rw("/home/me/mine"), &specs()).unwrap();
        assert!(r.conclusively_safe(), "{:?}", r.findings);
        assert!(r.commands_checked >= 3);
    }

    #[test]
    fn definite_write_violation() {
        let src = "rm -rf /home/me/mine/docs\n";
        let r = verify_source(src, &Policy::no_rw("/home/me/mine"), &specs()).unwrap();
        assert_eq!(r.definite().len(), 1);
        assert_eq!(r.definite()[0].access, "write");
    }

    #[test]
    fn definite_read_violation() {
        let src = "cat /home/me/mine/secrets.txt\n";
        let r = verify_source(src, &Policy::no_rw("/home/me/mine"), &specs()).unwrap();
        assert!(r.definite().iter().any(|f| f.access == "read"));
    }

    #[test]
    fn sibling_paths_do_not_violate() {
        let src = "cat /home/me/mineral.txt\nrm /home/me/mine2\n";
        let r = verify_source(src, &Policy::no_rw("/home/me/mine"), &specs()).unwrap();
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn normalization_catches_dot_dot() {
        let src = "rm /tmp/../home/me/mine/f\n";
        let r = verify_source(src, &Policy::no_rw("/home/me/mine"), &specs()).unwrap();
        assert_eq!(r.definite().len(), 1);
    }

    #[test]
    fn symbolic_target_is_possible() {
        let src = "rm -rf \"$1\"\n";
        let r = verify_source(src, &Policy::no_rw("/home/me/mine"), &specs()).unwrap();
        assert!(r
            .findings
            .iter()
            .any(|f| f.certainty == Certainty::Possible));
        assert!(!r.conclusively_safe());
    }

    #[test]
    fn unknown_commands_are_unclassified() {
        let src = "./install.bin --target /somewhere\n";
        let r = verify_source(src, &Policy::no_rw("/home/me/mine"), &specs()).unwrap();
        assert!(!r.unclassified.is_empty());
        assert!(!r.conclusively_safe());
    }

    #[test]
    fn redirections_checked() {
        let src = "echo pwned > /home/me/mine/log\n";
        let r = verify_source(src, &Policy::no_rw("/home/me/mine"), &specs()).unwrap();
        assert_eq!(r.definite().len(), 1);
    }

    #[test]
    fn branches_are_visited() {
        let src = "if true; then rm -rf /home/me/mine; fi\n";
        let r = verify_source(src, &Policy::no_rw("/home/me/mine"), &specs()).unwrap();
        assert_eq!(r.definite().len(), 1);
    }
}
