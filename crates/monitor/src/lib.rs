//! `shoal-monitor`: "better late than sorry".
//!
//! When ahead-of-time checking cannot conclude safety — a command has no
//! inferable type, or a path is symbolic beyond tracking — the paper's
//! third insight applies: "specification-aware runtime monitoring can
//! stop execution before catastrophic bugs occur" (§1), via "a
//! higher-order monitor command, similar in spirit to strace and xargs
//! (but more sanely named)" (§4). This crate provides:
//!
//! * [`stream`] — the stream monitor: checks each line of a stream
//!   against a regular type while passing it through, with configurable
//!   halt/flag behavior and accounting (violations, detection delay) —
//!   the measured subject of experiment E10;
//! * [`guard`] — guard synthesis: turning an unresolved static
//!   obligation into the `… | shoal monitor --type T | …` insertion;
//! * [`verify`] — the §5 security checker: `verify --no-RW ~/mine`
//!   analyzes a script against user path policies, reports definite
//!   violations statically, and identifies exactly which commands are
//!   inconclusive (to be wrapped by monitors/sandboxing at run time).

pub mod guard;
pub mod stream;
pub mod verify;

pub use guard::synthesize_guard;
pub use stream::{MonitorReport, OnViolation, StreamMonitor, Verdict};
pub use verify::{verify_script, verify_source, Policy, PolicyFinding, VerifyReport};
