//! The higher-order stream monitor.
//!
//! A [`StreamMonitor`] sits on a pipe, forwarding bytes unchanged while
//! checking that every complete line belongs to a regular type. The type
//! is compiled once to a DFA; per-line checking is then a single pass
//! over the line's bytes, which keeps the monitoring overhead measured in
//! E10 proportional to data volume.

use shoal_relang::{Dfa, Regex};
use std::io::{BufRead, Write};

/// What to do when a line violates the type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnViolation {
    /// Stop forwarding and report (the "halt the execution of a script
    /// about to perform a dangerous action" mode).
    Halt,
    /// Keep forwarding, count the violation.
    Flag,
}

/// Per-line verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The line belongs to the type.
    Ok,
    /// The line violates the type.
    Violation,
    /// The monitor already halted; the line was not forwarded.
    Halted,
}

/// Accounting for one monitored stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonitorReport {
    /// Lines checked (including the violating one).
    pub lines: usize,
    /// Bytes forwarded.
    pub bytes_forwarded: usize,
    /// Number of violating lines seen.
    pub violations: usize,
    /// 1-based index of the first violating line.
    pub first_violation: Option<usize>,
    /// True when the monitor halted the stream.
    pub halted: bool,
}

/// A line-type monitor over a byte stream.
#[derive(Debug)]
pub struct StreamMonitor {
    dfa: Dfa,
    policy: OnViolation,
    report: MonitorReport,
    partial: Vec<u8>,
}

impl StreamMonitor {
    /// Creates a monitor for `line_type`.
    pub fn new(line_type: &Regex, policy: OnViolation) -> StreamMonitor {
        StreamMonitor {
            dfa: Dfa::from_regex(line_type),
            policy,
            report: MonitorReport::default(),
            partial: Vec::new(),
        }
    }

    /// Checks one complete line (without the newline).
    pub fn check_line(&mut self, line: &[u8]) -> Verdict {
        if self.report.halted {
            return Verdict::Halted;
        }
        self.report.lines += 1;
        // Per-line check latency is only clocked while recording: the
        // disabled path must stay a single branch on top of the DFA run.
        let t = shoal_obs::enabled().then(std::time::Instant::now);
        let ok = self.dfa.matches(line);
        if let Some(t) = t {
            shoal_obs::counter_add("monitor.lines", 1);
            shoal_obs::counter_add("monitor.bytes_checked", line.len() as u64);
            shoal_obs::hist_record("monitor.check_latency_ns", t.elapsed().as_nanos() as u64);
        }
        if ok {
            Verdict::Ok
        } else {
            self.report.violations += 1;
            shoal_obs::counter_add("monitor.violations", 1);
            shoal_obs::event!(
                "monitor_violation",
                line_no = self.report.lines,
                line_len = line.len(),
                halting = self.policy == OnViolation::Halt
            );
            if self.report.first_violation.is_none() {
                self.report.first_violation = Some(self.report.lines);
            }
            if self.policy == OnViolation::Halt {
                self.report.halted = true;
            }
            Verdict::Violation
        }
    }

    /// Feeds raw bytes, checking and forwarding complete lines to
    /// `sink`. Returns the number of bytes forwarded from this chunk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn feed(&mut self, chunk: &[u8], sink: &mut impl Write) -> std::io::Result<usize> {
        let mut forwarded = 0;
        let mut start = 0;
        while let Some(nl) = chunk[start..].iter().position(|&b| b == b'\n') {
            let end = start + nl;
            let line: Vec<u8> = if self.partial.is_empty() {
                chunk[start..end].to_vec()
            } else {
                let mut l = std::mem::take(&mut self.partial);
                l.extend_from_slice(&chunk[start..end]);
                l
            };
            match self.check_line(&line) {
                Verdict::Ok | Verdict::Violation if !self.report.halted => {
                    sink.write_all(&line)?;
                    sink.write_all(b"\n")?;
                    forwarded += line.len() + 1;
                }
                Verdict::Violation => {
                    // Halting policy: the violating line is NOT forwarded.
                }
                _ => {}
            }
            start = end + 1;
        }
        if start < chunk.len() && !self.report.halted {
            self.partial.extend_from_slice(&chunk[start..]);
        }
        self.report.bytes_forwarded += forwarded;
        shoal_obs::counter_add("monitor.bytes_forwarded", forwarded as u64);
        Ok(forwarded)
    }

    /// Runs the monitor over a reader, writing to a sink (the
    /// command-line `shoal monitor` entry point).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn run(
        &mut self,
        input: &mut impl BufRead,
        sink: &mut impl Write,
    ) -> std::io::Result<MonitorReport> {
        let mut line = Vec::new();
        loop {
            line.clear();
            let n = input.read_until(b'\n', &mut line)?;
            if n == 0 {
                break;
            }
            let had_newline = line.last() == Some(&b'\n');
            if had_newline {
                line.pop();
            }
            match self.check_line(&line) {
                Verdict::Halted => break,
                Verdict::Violation if self.report.halted => break,
                _ => {
                    sink.write_all(&line)?;
                    if had_newline {
                        sink.write_all(b"\n")?;
                    }
                    let n = line.len() + usize::from(had_newline);
                    self.report.bytes_forwarded += n;
                    shoal_obs::counter_add("monitor.bytes_forwarded", n as u64);
                }
            }
        }
        Ok(self.finish())
    }

    /// Finalizes (checks any unterminated last line) and returns the
    /// report.
    pub fn finish(&mut self) -> MonitorReport {
        if !self.partial.is_empty() && !self.report.halted {
            let line = std::mem::take(&mut self.partial);
            self.check_line(&line);
        }
        self.report.clone()
    }

    /// The report so far.
    pub fn report(&self) -> &MonitorReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_stream_passes_through() {
        let ty = Regex::parse("[0-9]+").unwrap();
        let mut m = StreamMonitor::new(&ty, OnViolation::Halt);
        let mut out = Vec::new();
        m.feed(b"1\n22\n333\n", &mut out).unwrap();
        let r = m.finish();
        assert_eq!(out, b"1\n22\n333\n");
        assert_eq!(r.lines, 3);
        assert_eq!(r.violations, 0);
        assert!(!r.halted);
    }

    #[test]
    fn halt_on_first_violation() {
        let ty = Regex::parse("[0-9]+").unwrap();
        let mut m = StreamMonitor::new(&ty, OnViolation::Halt);
        let mut out = Vec::new();
        m.feed(b"1\nbad\n3\n", &mut out).unwrap();
        let r = m.finish();
        assert_eq!(out, b"1\n", "violating line and everything after withheld");
        assert_eq!(r.first_violation, Some(2));
        assert!(r.halted);
    }

    #[test]
    fn flag_mode_keeps_forwarding() {
        let ty = Regex::parse("[0-9]+").unwrap();
        let mut m = StreamMonitor::new(&ty, OnViolation::Flag);
        let mut out = Vec::new();
        m.feed(b"1\nbad\n3\n", &mut out).unwrap();
        let r = m.finish();
        assert_eq!(out, b"1\nbad\n3\n");
        assert_eq!(r.violations, 1);
        assert!(!r.halted);
    }

    #[test]
    fn partial_lines_buffer_across_chunks() {
        let ty = Regex::parse("ab").unwrap();
        let mut m = StreamMonitor::new(&ty, OnViolation::Flag);
        let mut out = Vec::new();
        m.feed(b"a", &mut out).unwrap();
        m.feed(b"b\na", &mut out).unwrap();
        m.feed(b"b\n", &mut out).unwrap();
        let r = m.finish();
        assert_eq!(r.lines, 2);
        assert_eq!(r.violations, 0);
        assert_eq!(out, b"ab\nab\n");
    }

    #[test]
    fn unterminated_last_line_checked_at_finish() {
        let ty = Regex::parse("x").unwrap();
        let mut m = StreamMonitor::new(&ty, OnViolation::Flag);
        let mut out = Vec::new();
        m.feed(b"x\nbad-tail", &mut out).unwrap();
        let r = m.finish();
        assert_eq!(r.lines, 2);
        assert_eq!(r.violations, 1);
    }

    #[test]
    fn run_over_reader() {
        let ty = Regex::parse("(Distributor ID|Description|Release|Codename):\t.*").unwrap();
        let input = b"Description:\tDebian GNU/Linux\nRelease:\t12\n".to_vec();
        let mut m = StreamMonitor::new(&ty, OnViolation::Halt);
        let mut out = Vec::new();
        let r = m.run(&mut input.as_slice(), &mut out).unwrap();
        assert_eq!(r.violations, 0);
        assert_eq!(out, input);
    }

    #[test]
    fn empty_line_semantics() {
        // An empty line is a line; it must be checked.
        let ty = Regex::parse(".+").unwrap();
        let mut m = StreamMonitor::new(&ty, OnViolation::Flag);
        let mut out = Vec::new();
        m.feed(b"a\n\nb\n", &mut out).unwrap();
        let r = m.finish();
        assert_eq!(r.lines, 3);
        assert_eq!(r.violations, 1);
    }
}
