//! Guard synthesis: from an unresolved static obligation to an inline
//! monitor insertion.
//!
//! §4: "runtime monitoring protects computations adjacent to an untyped
//! command to ensure their type expectations are maintained during the
//! execution of the program." Given a pipeline and the stage whose output
//! could not be typed, [`synthesize_guard`] rewrites the pipeline text to
//! interpose `shoal monitor` with the *downstream* stage's expected input
//! type — the cheapest point that still protects the typed neighbor.

use shoal_relang::Regex;

/// Rewrites a pipeline source string, inserting a monitor after stage
/// `after_stage` (0-based) checking `expected` as the line type.
/// Stages are split on `|` at the top level of the given source line
/// (the caller passes a single-pipeline command, as produced by the
/// analyzer's reporting).
pub fn synthesize_guard(pipeline_src: &str, after_stage: usize, expected: &Regex) -> String {
    let stages = split_pipeline(pipeline_src);
    let mut out = String::new();
    for (i, stage) in stages.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        out.push_str(stage.trim());
        if i == after_stage {
            out.push_str(&format!(
                " | shoal monitor --halt --type '{}'",
                escape_single_quotes(&expected.to_string())
            ));
        }
    }
    out
}

/// Splits a command line on top-level `|` (not `||`, not inside quotes
/// or substitutions).
fn split_pipeline(src: &str) -> Vec<String> {
    let bytes = src.as_bytes();
    let mut stages = Vec::new();
    let mut depth = 0usize;
    let mut in_single = false;
    let mut in_double = false;
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'\\' => i += 1,
            b'(' if !in_single && !in_double => depth += 1,
            b')' if !in_single && !in_double => depth = depth.saturating_sub(1),
            b'|' if !in_single && !in_double && depth == 0 => {
                if bytes.get(i + 1) == Some(&b'|') {
                    i += 1; // `||` is not a pipe.
                } else {
                    stages.push(src[start..i].to_string());
                    start = i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    stages.push(src[start..].to_string());
    stages
}

fn escape_single_quotes(s: &str) -> String {
    s.replace('\'', r"'\''")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_after_requested_stage() {
        let ty = Regex::parse("0x[0-9a-f]+").unwrap();
        let guarded = synthesize_guard("mystery-cmd | sort -g", 0, &ty);
        assert!(guarded.starts_with("mystery-cmd | shoal monitor --halt --type '"));
        assert!(guarded.ends_with("| sort -g"));
    }

    #[test]
    fn split_respects_quotes_and_or() {
        let stages = split_pipeline("grep 'a|b' file | wc -l || echo none");
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].trim(), "grep 'a|b' file");
        let stages2 = split_pipeline("echo \"x|y\" | cat");
        assert_eq!(stages2.len(), 2);
    }

    #[test]
    fn split_respects_subshells() {
        let stages = split_pipeline("(cat a | cat b) | wc");
        assert_eq!(stages.len(), 2);
    }

    #[test]
    fn guard_at_last_stage() {
        let ty = Regex::parse(".*").unwrap();
        let guarded = synthesize_guard("producer", 0, &ty);
        assert!(guarded.contains("producer | shoal monitor"));
    }
}
