//! The synthetic man-page corpus.
//!
//! The paper mines "man pages, markdown files, web pages, etc." — "the
//! only common source of truth for opaque commands". This corpus holds
//! conventionally-formatted manual pages (NAME / SYNOPSIS / OPTIONS /
//! DESCRIPTION) for the utilities the sandbox can execute. The wording
//! follows POSIX man-page conventions so the extractor exercises the
//! same parsing problems a real page poses (optional groups, flag
//! clustering, option arguments, operand ellipses).

/// Returns the manual page for `name`, if the corpus has one.
pub fn man_page(name: &str) -> Option<&'static str> {
    Some(match name {
        "rm" => RM,
        "rmdir" => RMDIR,
        "mkdir" => MKDIR,
        "touch" => TOUCH,
        "cat" => CAT,
        "cp" => CP,
        "mv" => MV,
        "ls" => LS,
        "cd" => CD,
        "realpath" => REALPATH,
        "ln" => LN,
        "tee" => TEE,
        _ => return None,
    })
}

/// Every documented command name.
pub fn all_documented() -> Vec<&'static str> {
    vec![
        "rm", "rmdir", "mkdir", "touch", "cat", "cp", "mv", "ls", "cd", "realpath", "ln", "tee",
    ]
}

const RM: &str = r#"NAME
    rm - remove directory entries

SYNOPSIS
    rm [-f] [-i] [-r] [-v] file...

OPTIONS
    -f  Do not prompt for confirmation. Do not write diagnostic messages
        or modify the exit status in the case of nonexistent operands.
    -i  Prompt for confirmation before removing each entry.
    -r  Remove file hierarchies: remove directories and their contents
        recursively.
    -v  Write a message for each removed entry.

OPERANDS
    file  A pathname of a directory entry to be removed.

DESCRIPTION
    The rm utility shall remove the directory entry specified by each
    file argument. If a file is a directory and -r is not specified, rm
    shall write a diagnostic message and do nothing more with the
    operand.
"#;

const RMDIR: &str = r#"NAME
    rmdir - remove directories

SYNOPSIS
    rmdir [-p] dir...

OPTIONS
    -p  Remove all directories in a pathname.

OPERANDS
    dir  A pathname of an empty directory to be removed.

DESCRIPTION
    The rmdir utility shall remove the directory named by each dir
    operand, which shall refer to an empty directory.
"#;

const MKDIR: &str = r#"NAME
    mkdir - make directories

SYNOPSIS
    mkdir [-p] dir...

OPTIONS
    -p  Create any missing intermediate pathname components; do not
        treat an existing directory as an error.

OPERANDS
    dir  A pathname of a directory to be created.

DESCRIPTION
    The mkdir utility shall create the directories specified by the
    operands.
"#;

const TOUCH: &str = r#"NAME
    touch - change file access and modification times

SYNOPSIS
    touch [-c] file...

OPTIONS
    -c  Do not create a specified file if it does not exist.

OPERANDS
    file  A pathname of a file whose times shall be modified.

DESCRIPTION
    The touch utility shall change the modification time of each file.
    A file that does not exist shall be created, unless -c is given.
"#;

const CAT: &str = r#"NAME
    cat - concatenate and print files

SYNOPSIS
    cat [-u] file...

OPTIONS
    -u  Write bytes without delay.

OPERANDS
    file  A pathname of an input file.

DESCRIPTION
    The cat utility shall read files in sequence and write their
    contents to the standard output in the same sequence.
"#;

const CP: &str = r#"NAME
    cp - copy files

SYNOPSIS
    cp [-f] [-p] [-r] source_file target_file

OPTIONS
    -f  Unlink the destination if needed and try again.
    -p  Duplicate file characteristics.
    -r  Copy file hierarchies recursively.

OPERANDS
    source_file  A pathname of a file to be copied.
    target_file  A pathname of the destination.

DESCRIPTION
    The cp utility shall copy the contents of source_file to the
    destination path named by target_file.
"#;

const MV: &str = r#"NAME
    mv - move files

SYNOPSIS
    mv [-f] [-i] source_file target_file

OPTIONS
    -f  Do not prompt for confirmation.
    -i  Prompt for confirmation when overwriting.

OPERANDS
    source_file  A pathname of the file to be moved.
    target_file  The new pathname of the file.

DESCRIPTION
    The mv utility shall move the file named by source_file to the
    destination specified by target_file.
"#;

const LS: &str = r#"NAME
    ls - list directory contents

SYNOPSIS
    ls [-a] [-l] [-1] file...

OPTIONS
    -a  Write out all directory entries, including dot entries.
    -l  Write output in long format.
    -1  Force output to be one entry per line.

OPERANDS
    file  A pathname of a file to be written.

DESCRIPTION
    For each operand that names a file of type directory, ls shall
    write the names of files contained within the directory.
"#;

const CD: &str = r#"NAME
    cd - change the working directory

SYNOPSIS
    cd [directory]

OPERANDS
    directory  An absolute or relative pathname of the directory that
        shall become the new working directory.

DESCRIPTION
    The cd utility shall change the working directory of the current
    shell execution environment.
"#;

const REALPATH: &str = r#"NAME
    realpath - resolve a pathname

SYNOPSIS
    realpath [-e] [-m] file...

OPTIONS
    -e  All components of the pathname must exist.
    -m  No components of the pathname need exist.

OPERANDS
    file  A pathname to be resolved.

DESCRIPTION
    The realpath utility shall canonicalize the pathname given as a
    file operand and write the resolved absolute pathname to standard
    output.
"#;

const LN: &str = r#"NAME
    ln - link files

SYNOPSIS
    ln [-f] [-s] source_file target_file

OPTIONS
    -f  Remove existing destination pathnames.
    -s  Create symbolic links instead of hard links.

OPERANDS
    source_file  A pathname of a file to be linked.
    target_file  The pathname of the new directory entry.

DESCRIPTION
    The ln utility shall create a new directory entry for the file
    specified by source_file at the destination path.
"#;

const TEE: &str = r#"NAME
    tee - duplicate standard input

SYNOPSIS
    tee [-a] [-i] file...

OPTIONS
    -a  Append the output to the files.
    -i  Ignore the SIGINT signal.

OPERANDS
    file  A pathname of an output file.

DESCRIPTION
    The tee utility shall copy standard input to standard output,
    making a copy in zero or more files.
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_complete_and_conventional() {
        for name in all_documented() {
            let page = man_page(name).unwrap();
            assert!(page.contains("NAME"), "{name} page missing NAME");
            assert!(page.contains("SYNOPSIS"), "{name} page missing SYNOPSIS");
            assert!(
                page.contains("DESCRIPTION"),
                "{name} page missing DESCRIPTION"
            );
            let syn_line = page
                .lines()
                .skip_while(|l| !l.starts_with("SYNOPSIS"))
                .nth(1)
                .unwrap_or("");
            assert!(
                syn_line.trim_start().starts_with(name),
                "{name} synopsis must start with the command name, got {syn_line:?}"
            );
        }
        assert!(man_page("no-such-command").is_none());
    }
}
