//! Documentation mining: natural-language manual → invocation syntax.
//!
//! This is Fig. 4's left stage. The paper uses an LLM "guardrailed via
//! domain-specific languages designed to express only legitimate
//! invocations"; the reproduction substitutes a deterministic extractor
//! (see DESIGN.md §5 on why the substitution preserves the pipeline's
//! claims: the guardrail DSL is the interface, and probing verifies
//! whatever the extractor proposes). The [`NoiseModel`] deliberately
//! corrupts extraction — dropping real flags, inventing phantom ones —
//! to emulate LLM imprecision; experiment E4 shows probing recovering
//! from phantom flags.

use shoal_obs::XorShift64;
use shoal_spec::{ArgKind, CmdSyntax};

/// An extraction-noise model (all probabilities in `[0, 1]`).
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// Probability of dropping each documented flag.
    pub drop_flag: f64,
    /// Probability of inventing one phantom flag.
    pub phantom_flag: f64,
    /// RNG seed (extraction stays deterministic given the seed).
    pub seed: u64,
}

impl NoiseModel {
    /// The faithful extractor.
    pub fn none() -> NoiseModel {
        NoiseModel {
            drop_flag: 0.0,
            phantom_flag: 0.0,
            seed: 0,
        }
    }

    /// A noisy extractor with the given rates.
    pub fn with_rates(drop_flag: f64, phantom_flag: f64, seed: u64) -> NoiseModel {
        NoiseModel {
            drop_flag,
            phantom_flag,
            seed,
        }
    }
}

/// Extracts the invocation syntax from a conventional man page.
/// Returns `None` when no SYNOPSIS can be found — the guardrail: without
/// a parseable synopsis there is no legitimate-invocation grammar.
pub fn extract_syntax(page: &str, noise: &NoiseModel) -> Option<CmdSyntax> {
    let synopsis = section(page, "SYNOPSIS")?;
    let line = synopsis.lines().find(|l| !l.trim().is_empty())?.trim();
    let mut tokens = line.split_whitespace();
    let name = tokens.next()?;
    let mut syntax = CmdSyntax::simple(name, 0, Some(0));
    let mut min_operands = 0usize;
    let mut max_operands = Some(0usize);
    for tok in tokens {
        let optional = tok.starts_with('[') && tok.ends_with(']');
        let inner = tok.trim_matches(|c| c == '[' || c == ']');
        if let Some(flags) = inner.strip_prefix('-') {
            // `-f` or clustered `-firv`.
            for c in flags.chars() {
                if c.is_ascii_alphanumeric() {
                    syntax = syntax.flag(c, "");
                }
            }
        } else if inner.ends_with("...") {
            // `file...`: one or more operands.
            min_operands = if optional { 0 } else { 1 };
            max_operands = None;
            syntax.operand_kind = operand_kind(inner);
        } else {
            // A single named operand.
            if !optional {
                min_operands += 1;
            }
            max_operands = max_operands.map(|m| m + 1);
            syntax.operand_kind = operand_kind(inner);
        }
    }
    syntax.min_operands = min_operands;
    syntax.max_operands = max_operands;
    // Attach option descriptions from OPTIONS.
    if let Some(options) = section(page, "OPTIONS") {
        let mut current: Option<char> = None;
        for l in options.lines() {
            let t = l.trim();
            if let Some(rest) = t.strip_prefix('-') {
                let mut chars = rest.chars();
                if let Some(c) = chars.next() {
                    current = Some(c);
                    if let Some(f) = syntax.flags.iter_mut().find(|f| f.flag == c) {
                        f.description = chars.as_str().trim().to_string();
                    }
                }
            } else if !t.is_empty() {
                // Continuation line of the previous option description.
                if let Some(c) = current {
                    if let Some(f) = syntax.flags.iter_mut().find(|f| f.flag == c) {
                        if !f.description.is_empty() {
                            f.description.push(' ');
                        }
                        f.description.push_str(t);
                    }
                }
            } else {
                current = None;
            }
        }
    }
    apply_noise(&mut syntax, noise);
    Some(syntax)
}

fn operand_kind(token: &str) -> ArgKind {
    let t = token.trim_end_matches("...").trim_end_matches('.');
    if t.contains("file")
        || t.contains("dir")
        || t.contains("path")
        || t.contains("source")
        || t.contains("target")
    {
        ArgKind::Path
    } else {
        ArgKind::Str
    }
}

/// Extracts a titled section (up to the next ALL-CAPS heading).
fn section<'a>(page: &'a str, title: &str) -> Option<&'a str> {
    let start = page.find(&format!("{title}\n"))?;
    let body_start = start + title.len() + 1;
    let rest = &page[body_start..];
    let end = rest
        .lines()
        .scan(0usize, |off, l| {
            let this = *off;
            *off += l.len() + 1;
            Some((this, l))
        })
        .find(|(_, l)| {
            !l.is_empty()
                && !l.starts_with(' ')
                && l.chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_whitespace())
        })
        .map(|(off, _)| off);
    Some(match end {
        Some(e) => &rest[..e],
        None => rest,
    })
}

fn apply_noise(syntax: &mut CmdSyntax, noise: &NoiseModel) {
    if noise.drop_flag == 0.0 && noise.phantom_flag == 0.0 {
        return;
    }
    let mut rng = XorShift64::seed_from_u64(noise.seed);
    syntax.flags.retain(|_| !rng.random_bool(noise.drop_flag));
    if rng.random_bool(noise.phantom_flag) {
        // Invent a flag the command does not actually accept.
        for candidate in ['z', 'q', 'x', 'y'] {
            if !syntax.has_flag(candidate) {
                *syntax = syntax.clone().flag(candidate, "(phantom)");
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manpages::man_page;

    #[test]
    fn extracts_rm_syntax() {
        let syn = extract_syntax(man_page("rm").unwrap(), &NoiseModel::none()).unwrap();
        assert_eq!(syn.name, "rm");
        for f in ['f', 'i', 'r', 'v'] {
            assert!(syn.has_flag(f), "missing -{f}");
        }
        assert_eq!(syn.min_operands, 1);
        assert_eq!(syn.max_operands, None);
        assert_eq!(syn.operand_kind, ArgKind::Path);
        // Descriptions attached from OPTIONS.
        assert!(syn
            .flags
            .iter()
            .find(|f| f.flag == 'r')
            .unwrap()
            .description
            .contains("recursively"));
    }

    #[test]
    fn extracts_two_operand_commands() {
        let cp = extract_syntax(man_page("cp").unwrap(), &NoiseModel::none()).unwrap();
        assert_eq!(cp.min_operands, 2);
        assert_eq!(cp.max_operands, Some(2));
        let cd = extract_syntax(man_page("cd").unwrap(), &NoiseModel::none()).unwrap();
        assert_eq!(cd.min_operands, 0);
        assert_eq!(cd.max_operands, Some(1));
    }

    #[test]
    fn guardrail_rejects_pageless_input() {
        assert!(extract_syntax("no structure here at all", &NoiseModel::none()).is_none());
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let noisy = NoiseModel::with_rates(0.5, 1.0, 42);
        let a = extract_syntax(man_page("rm").unwrap(), &noisy).unwrap();
        let b = extract_syntax(man_page("rm").unwrap(), &noisy).unwrap();
        assert_eq!(a, b);
        // Phantom flag guaranteed at rate 1.0.
        assert!(a.flags.iter().any(|f| f.description == "(phantom)"));
    }

    #[test]
    fn every_corpus_page_extracts() {
        for name in crate::manpages::all_documented() {
            let syn = extract_syntax(man_page(name).unwrap(), &NoiseModel::none())
                .unwrap_or_else(|| panic!("{name} failed to extract"));
            assert_eq!(syn.name, name);
        }
    }
}
