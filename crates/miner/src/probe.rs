//! Instrumented probing: run every valid invocation in every
//! environment, recording effects.
//!
//! For each flag subset from the mined syntax and each generated
//! environment, [`probe_command`] executes the invocation in the sandbox
//! and distills an [`Observation`]: the exit code plus the *effect
//! fingerprint* computed by diffing the file system before and after and
//! scanning the trace — exactly the inputs Fig. 4's compilation rules
//! need.

use crate::envgen::{environments, Env, OperandState};
use crate::sandbox::{execute, Kind, TraceEvent};
use shoal_spec::CmdSyntax;
use std::collections::BTreeSet;

/// One probed execution, distilled.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Flags of the invocation.
    pub flags: BTreeSet<char>,
    /// Initial state of each operand.
    pub states: Vec<OperandState>,
    /// Exit code.
    pub exit: i32,
    /// The invocation was rejected as malformed (unknown flag).
    pub rejected: bool,
    /// Operand indexes whose node vanished.
    pub deleted: Vec<usize>,
    /// Operand indexes where a file was created.
    pub created_file: Vec<usize>,
    /// Operand indexes where a directory was created.
    pub created_dir: Vec<usize>,
    /// Operand indexes that were opened for reading.
    pub read: Vec<usize>,
    /// Operand indexes that were written in place.
    pub written: Vec<usize>,
    /// The working directory changed to this operand.
    pub cwd_to: Option<usize>,
    /// Anything appeared on stdout.
    pub stdout: bool,
    /// Anything appeared on stderr.
    pub stderr: bool,
}

impl Observation {
    /// Did the execution succeed?
    pub fn success(&self) -> bool {
        self.exit == 0
    }
}

/// Probes `syntax.name` over flag subsets × environments.
pub fn probe_command(syntax: &CmdSyntax) -> Vec<Observation> {
    let n_operands = syntax
        .min_operands
        .max(1)
        .min(syntax.max_operands.unwrap_or(usize::MAX))
        .max(1);
    let mut out = Vec::new();
    let mut flag_sets = 0u64;
    for flags in syntax.enumerate_flag_sets() {
        flag_sets += 1;
        for env in environments(n_operands) {
            out.push(probe_one(&syntax.name, &flags, env));
        }
    }
    shoal_obs::counter_add("miner.probe_commands", 1);
    shoal_obs::counter_add("miner.probe_invocations", out.len() as u64);
    shoal_obs::event!(
        "probe_command",
        command = syntax.name.as_str(),
        flag_sets = flag_sets,
        observations = out.len(),
        rejected = out.iter().filter(|o| o.rejected).count(),
        succeeded = out.iter().filter(|o| o.success()).count()
    );
    out
}

fn probe_one(name: &str, flags: &BTreeSet<char>, env: Env) -> Observation {
    let Env {
        mut fs,
        operands,
        states,
    } = env;
    let before = fs.snapshot();
    let cwd_before = fs.cwd().to_string();
    let mut argv: Vec<String> = flags.iter().map(|f| format!("-{f}")).collect();
    argv.extend(operands.iter().cloned());
    let result = execute(name, &argv, &mut fs);
    let after = fs.snapshot();
    let rejected = result.exit == 2
        && result
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Diag(d) if d.contains("invalid option")));
    let mut obs = Observation {
        flags: flags.clone(),
        states,
        exit: result.exit,
        rejected,
        deleted: Vec::new(),
        created_file: Vec::new(),
        created_dir: Vec::new(),
        read: Vec::new(),
        written: Vec::new(),
        cwd_to: None,
        stdout: false,
        stderr: false,
    };
    for (i, op) in operands.iter().enumerate() {
        let was = before.get(op.as_str());
        let is = after.get(op.as_str());
        match (was, is) {
            (Some(_), None) => obs.deleted.push(i),
            (None, Some(Kind::File)) => obs.created_file.push(i),
            (None, Some(Kind::Dir)) => obs.created_dir.push(i),
            _ => {}
        }
        for ev in &result.trace {
            match ev {
                TraceEvent::Open(p) | TraceEvent::ReadDir(p)
                    if p == op && !obs.read.contains(&i) =>
                {
                    obs.read.push(i);
                }
                TraceEvent::Write(p) if p == op && !obs.written.contains(&i) => {
                    obs.written.push(i);
                }
                TraceEvent::Chdir(p) if p == op && fs.cwd() != cwd_before => {
                    obs.cwd_to = Some(i);
                }
                _ => {}
            }
        }
    }
    obs.stdout = result
        .trace
        .iter()
        .any(|e| matches!(e, TraceEvent::Stdout(_)));
    obs.stderr = result
        .trace
        .iter()
        .any(|e| matches!(e, TraceEvent::Diag(_)));
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docmine::{extract_syntax, NoiseModel};
    use crate::manpages::man_page;

    fn observations(name: &str) -> Vec<Observation> {
        let syn = extract_syntax(man_page(name).unwrap(), &NoiseModel::none()).unwrap();
        probe_command(&syn)
    }

    #[test]
    fn rm_probe_matrix_shape() {
        let obs = observations("rm");
        // 2^4 flag subsets × 3 environments.
        assert_eq!(obs.len(), 16 * 3);
        // The paper's triple is in there: -f -r on a dir deletes it.
        let fr_dir = obs
            .iter()
            .find(|o| {
                o.flags == ['f', 'r'].into_iter().collect() && o.states == vec![OperandState::Dir]
            })
            .unwrap();
        assert!(fr_dir.success());
        assert_eq!(fr_dir.deleted, vec![0]);
    }

    #[test]
    fn rm_plain_on_dir_fails_in_probe() {
        let obs = observations("rm");
        let plain_dir = obs
            .iter()
            .find(|o| o.flags.is_empty() && o.states == vec![OperandState::Dir])
            .unwrap();
        assert!(!plain_dir.success());
        assert!(plain_dir.deleted.is_empty());
        assert!(plain_dir.stderr);
    }

    #[test]
    fn touch_creates_only_when_missing() {
        let obs = observations("touch");
        let missing = obs
            .iter()
            .find(|o| o.flags.is_empty() && o.states == vec![OperandState::Missing])
            .unwrap();
        assert_eq!(missing.created_file, vec![0]);
        let nocreate = obs
            .iter()
            .find(|o| {
                o.flags == ['c'].into_iter().collect() && o.states == vec![OperandState::Missing]
            })
            .unwrap();
        assert!(nocreate.created_file.is_empty());
        assert!(nocreate.success());
    }

    #[test]
    fn cd_probe_records_cwd_change() {
        let obs = observations("cd");
        let dir = obs
            .iter()
            .find(|o| o.states == vec![OperandState::Dir])
            .unwrap();
        assert_eq!(dir.cwd_to, Some(0));
        assert!(dir.success());
        let file = obs
            .iter()
            .find(|o| o.states == vec![OperandState::File])
            .unwrap();
        assert!(!file.success());
    }

    #[test]
    fn phantom_flags_are_rejected_by_probing() {
        // Extraction noise invents a phantom flag; every probe carrying
        // it must come back `rejected`.
        let noisy = NoiseModel::with_rates(0.0, 1.0, 7);
        let syn = extract_syntax(man_page("rm").unwrap(), &noisy).unwrap();
        let phantom: Vec<char> = syn
            .flags
            .iter()
            .filter(|f| f.description == "(phantom)")
            .map(|f| f.flag)
            .collect();
        assert_eq!(phantom.len(), 1);
        let obs = probe_command(&syn);
        for o in &obs {
            if o.flags.contains(&phantom[0]) {
                assert!(o.rejected, "phantom flag {:?} must be rejected", phantom[0]);
            }
        }
    }
}
