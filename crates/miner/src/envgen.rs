//! Execution-environment generation.
//!
//! Fig. 4 (mid): the miner "generates a large number of test
//! configurations sweeping through the possible flags, options, and
//! relevant file system states. It then instantiates concrete
//! environments". For file-system utilities, the relevant states per
//! operand are: the path is *missing*, a *regular file*, or a
//! *directory* (with a child, so emptiness-sensitive behavior shows).
//! Environments are the cross product over operands, capped.

use crate::sandbox::MockFs;

/// The initial state of one operand path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OperandState {
    /// The path does not exist.
    Missing,
    /// The path is a regular file.
    File,
    /// The path is a directory containing one file.
    Dir,
}

impl OperandState {
    /// All states, in a fixed order.
    pub fn all() -> [OperandState; 3] {
        [OperandState::Missing, OperandState::File, OperandState::Dir]
    }
}

impl std::fmt::Display for OperandState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OperandState::Missing => "missing",
            OperandState::File => "file",
            OperandState::Dir => "dir",
        };
        write!(f, "{s}")
    }
}

/// One concrete environment: a file system plus the operand paths and
/// their initial states.
#[derive(Debug, Clone)]
pub struct Env {
    /// The pre-populated file system.
    pub fs: MockFs,
    /// Operand paths, `/op0`, `/op1`, ….
    pub operands: Vec<String>,
    /// The per-operand initial state.
    pub states: Vec<OperandState>,
}

/// Generates every environment for `n_operands` operands (3ⁿ,
/// capped at 81).
pub fn environments(n_operands: usize) -> Vec<Env> {
    let n = n_operands.min(4);
    let total = 3usize.pow(n as u32);
    let mut out = Vec::with_capacity(total);
    for idx in 0..total {
        let mut fs = MockFs::new();
        let mut operands = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n);
        let mut rest = idx;
        for i in 0..n {
            let state = OperandState::all()[rest % 3];
            rest /= 3;
            let path = format!("/op{i}");
            match state {
                OperandState::Missing => {}
                OperandState::File => fs.put_file(&path),
                OperandState::Dir => {
                    fs.put_dir(&path);
                    fs.put_file(&format!("{path}/child"));
                }
            }
            operands.push(path);
            states.push(state);
        }
        out.push(Env {
            fs,
            operands,
            states,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sandbox::Kind;

    #[test]
    fn one_operand_three_envs() {
        let envs = environments(1);
        assert_eq!(envs.len(), 3);
        let states: Vec<OperandState> = envs.iter().map(|e| e.states[0]).collect();
        assert!(states.contains(&OperandState::Missing));
        assert!(states.contains(&OperandState::File));
        assert!(states.contains(&OperandState::Dir));
    }

    #[test]
    fn two_operands_nine_envs() {
        let envs = environments(2);
        assert_eq!(envs.len(), 9);
        for e in &envs {
            assert_eq!(e.operands.len(), 2);
            for (path, state) in e.operands.iter().zip(e.states.iter()) {
                match state {
                    OperandState::Missing => assert_eq!(e.fs.kind(path), None),
                    OperandState::File => assert_eq!(e.fs.kind(path), Some(Kind::File)),
                    OperandState::Dir => {
                        assert_eq!(e.fs.kind(path), Some(Kind::Dir));
                        assert!(!e.fs.children(path).is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn operand_count_capped() {
        assert_eq!(environments(10).len(), 81);
    }
}
