//! Compilation: traces → Hoare-style specification cases (Fig. 4,
//! right).
//!
//! The rules:
//!
//! 1. **Phantom-flag elimination** ("trust, but verify"): a flag whose
//!    every probe was rejected as an invalid option did not survive
//!    verification; it is removed from the syntax and its observations
//!    dropped. This is how probing corrects extraction (or LLM) noise.
//! 2. **Behavior grouping**: observations are grouped by (flag set,
//!    operand-state vector); each group is one candidate behavior.
//! 3. **Case emission**: each group becomes a [`SpecCase`] —
//!    preconditions from the initial operand states, effects from the
//!    observed file-system diff and trace, exit from the code.
//! 4. **Case merging**: cases identical except for one operand state
//!    are merged by weakening the precondition (`file` + `dir` →
//!    `exists`; all three → `any`), which is how
//!    `{(∃ $p)} rm -f -r $p {(∄ $p)}` emerges from separate file/dir
//!    probes.

use crate::envgen::OperandState;
use crate::probe::Observation;
use shoal_spec::hoare::{Cond, Effect, ExitSpec, Guard, NodeReq, EACH};
use shoal_spec::{CmdSyntax, CommandSpec, SpecCase};
use std::collections::{BTreeMap, BTreeSet};

/// Compiles observations into a command specification.
pub fn compile_spec(mut syntax: CmdSyntax, observations: &[Observation]) -> CommandSpec {
    // Rule 1: phantom-flag elimination. A flag is phantom if every
    // observation containing it was rejected (and it appeared at least
    // once).
    let mut appeared: BTreeSet<char> = BTreeSet::new();
    let mut ok_with: BTreeSet<char> = BTreeSet::new();
    for obs in observations {
        for f in &obs.flags {
            appeared.insert(*f);
            if !obs.rejected {
                ok_with.insert(*f);
            }
        }
    }
    let phantom: BTreeSet<char> = appeared
        .iter()
        .filter(|f| !ok_with.contains(f))
        .copied()
        .collect();
    syntax.flags.retain(|f| !phantom.contains(&f.flag));
    let usable: Vec<&Observation> = observations
        .iter()
        .filter(|o| !o.rejected && o.flags.iter().all(|f| !phantom.contains(f)))
        .collect();

    // Rule 2: group by behavior key.
    let single_operand = usable.iter().all(|o| o.states.len() == 1);
    let mut cases: Vec<SpecCase> = Vec::new();
    let mut grouped: BTreeMap<(Vec<char>, Vec<OperandState>), Vec<&Observation>> = BTreeMap::new();
    for o in &usable {
        grouped
            .entry((o.flags.iter().copied().collect(), o.states.clone()))
            .or_default()
            .push(o);
    }

    // Rule 3: emit one case per group.
    let all_flags: Vec<char> = syntax.flags.iter().map(|f| f.flag).collect();
    for ((flags, states), group) in &grouped {
        let obs = group[0];
        let guard = Guard {
            requires_flags: flags.clone(),
            forbids_flags: all_flags
                .iter()
                .filter(|f| !flags.contains(f))
                .copied()
                .collect(),
            operand_count: None,
        };
        let mut case = SpecCase::new(guard);
        for (i, st) in states.iter().enumerate() {
            let req = match st {
                OperandState::Missing => NodeReq::Absent,
                OperandState::File => NodeReq::File,
                OperandState::Dir => NodeReq::Dir,
            };
            case.pre
                .push(Cond::OperandIs(op_ref(i, single_operand), req));
        }
        for &i in &obs.deleted {
            case.effects
                .push(Effect::Deletes(op_ref(i, single_operand)));
        }
        for &i in &obs.created_file {
            case.effects
                .push(Effect::CreatesFile(op_ref(i, single_operand)));
        }
        for &i in &obs.created_dir {
            case.effects
                .push(Effect::CreatesDir(op_ref(i, single_operand)));
        }
        for &i in &obs.read {
            case.effects.push(Effect::Reads(op_ref(i, single_operand)));
        }
        for &i in &obs.written {
            case.effects.push(Effect::Writes(op_ref(i, single_operand)));
        }
        if let Some(i) = obs.cwd_to {
            case.effects
                .push(Effect::ChangesCwdTo(op_ref(i, single_operand)));
        }
        if obs.stdout {
            case.effects.push(Effect::WritesStdout);
        }
        if obs.stderr {
            case.effects.push(Effect::WritesStderr);
        }
        case.exit = if obs.success() {
            ExitSpec::Success
        } else {
            ExitSpec::Failure
        };
        cases.push(case);
    }

    // Rule 4: merge cases differing only in one single-operand
    // precondition.
    if single_operand {
        cases = merge_single_operand_cases(cases);
    }
    CommandSpec { syntax, cases }
}

fn op_ref(i: usize, single: bool) -> usize {
    if single {
        EACH
    } else {
        i
    }
}

/// Merges cases with the same guard, effects, and exit whose
/// preconditions differ only in the operand requirement.
fn merge_single_operand_cases(cases: Vec<SpecCase>) -> Vec<SpecCase> {
    let mut by_key: BTreeMap<String, (SpecCase, BTreeSet<String>)> = BTreeMap::new();
    for case in cases {
        let reqs: Vec<String> = case
            .pre
            .iter()
            .map(|Cond::OperandIs(_, r)| r.to_string())
            .collect();
        let key = format!(
            "{:?}|{:?}|{:?}|{:?}",
            case.guard, case.effects, case.exit, case.stdout_line
        );
        let entry = by_key
            .entry(key)
            .or_insert_with(|| (case.clone(), BTreeSet::new()));
        for r in reqs {
            entry.1.insert(r);
        }
    }
    by_key
        .into_values()
        .flat_map(|(case, reqs)| {
            // Only semantically-clean merges: {file, dir} → exists and
            // {file, dir, absent} → any. Other combinations (e.g.
            // dir+absent) stay as separate precise cases — merging them
            // to `any` would wrongly cover the remaining state too.
            let merged: Vec<NodeReq> = if reqs.len() == 3 {
                vec![NodeReq::Any]
            } else if reqs.contains("file") && reqs.contains("dir") {
                vec![NodeReq::Exists]
            } else {
                reqs.iter().filter_map(|r| NodeReq::parse(r)).collect()
            };
            merged.into_iter().map(move |req| {
                let mut c = case.clone();
                c.pre = vec![Cond::OperandIs(EACH, req)];
                c
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docmine::{extract_syntax, NoiseModel};
    use crate::manpages::man_page;
    use crate::probe::probe_command;
    use shoal_spec::Invocation;

    fn mine(name: &str) -> CommandSpec {
        let syn = extract_syntax(man_page(name).unwrap(), &NoiseModel::none()).unwrap();
        let obs = probe_command(&syn);
        compile_spec(syn, &obs)
    }

    #[test]
    fn mined_rm_contains_the_paper_triple() {
        let spec = mine("rm");
        // rm -f -r on an existing path: deletes it, exits 0.
        let inv = Invocation::new("rm", &['f', 'r'], &["/p"]);
        let applicable: Vec<_> = spec.applicable(&inv).collect();
        assert!(!applicable.is_empty(), "no case covers rm -fr");
        let deleting_success = applicable.iter().any(|c| {
            c.exit == ExitSpec::Success && c.effects.iter().any(|e| matches!(e, Effect::Deletes(_)))
        });
        assert!(deleting_success, "cases: {:#?}", applicable);
    }

    #[test]
    fn mined_rm_dir_without_r_fails() {
        let spec = mine("rm");
        let inv = Invocation::new("rm", &[], &["/d"]);
        let dir_case = spec
            .applicable(&inv)
            .find(|c| c.pre.iter().any(|Cond::OperandIs(_, r)| *r == NodeReq::Dir));
        assert!(
            dir_case.is_some_and(|c| c.exit == ExitSpec::Failure),
            "plain rm on a dir must be a failure case"
        );
    }

    #[test]
    fn mined_mkdir_p_is_idempotent() {
        let spec = mine("mkdir");
        let inv = Invocation::new("mkdir", &['p'], &["/d"]);
        // Every applicable -p case succeeds (missing or existing).
        for c in spec.applicable(&inv) {
            assert_eq!(c.exit, ExitSpec::Success, "mkdir -p never fails: {c:#?}");
        }
    }

    #[test]
    fn mined_cd_changes_cwd() {
        let spec = mine("cd");
        let inv = Invocation::new("cd", &[], &["/d"]);
        let has_cwd_effect = spec.applicable(&inv).any(|c| {
            c.effects
                .iter()
                .any(|e| matches!(e, Effect::ChangesCwdTo(_)))
        });
        assert!(has_cwd_effect);
    }

    #[test]
    fn phantom_flags_eliminated() {
        let noisy = NoiseModel::with_rates(0.0, 1.0, 7);
        let syn = extract_syntax(man_page("rm").unwrap(), &noisy).unwrap();
        let phantom: char = syn
            .flags
            .iter()
            .find(|f| f.description == "(phantom)")
            .map(|f| f.flag)
            .unwrap();
        let obs = probe_command(&syn);
        let spec = compile_spec(syn, &obs);
        assert!(
            !spec.syntax.has_flag(phantom),
            "probing must eliminate the phantom -{phantom}"
        );
        // And the real flags survive.
        for f in ['f', 'r', 'i', 'v'] {
            assert!(spec.syntax.has_flag(f));
        }
    }

    #[test]
    fn merging_produces_exists_requirement() {
        // rm -r succeeds on both files and dirs with the same effect →
        // the merged precondition is `exists`.
        let spec = mine("rm");
        let inv = Invocation::new("rm", &['r'], &["/p"]);
        let merged = spec.applicable(&inv).any(|c| {
            c.exit == ExitSpec::Success
                && c.pre
                    .iter()
                    .any(|Cond::OperandIs(_, r)| matches!(r, NodeReq::Exists | NodeReq::Any))
        });
        assert!(merged, "file/dir success cases should merge to exists");
    }
}
