//! `shoal-miner`: command-specification inference (the paper's Fig. 4).
//!
//! "Commands are fundamentally opaque … Fortunately, commands are
//! typically distributed with some form of documentation" (§3). The
//! mining pipeline has three stages, mirroring Fig. 4 exactly:
//!
//! 1. **Left — documentation mining** ([`docmine`]): derive a command's
//!    invocation syntax from its man page. The paper guardrails an LLM
//!    with a DSL "designed to express only legitimate invocations"; this
//!    reproduction substitutes a deterministic extractor over a synthetic
//!    man-page corpus ([`manpages`]) producing the *same* DSL
//!    (`shoal_spec::CmdSyntax`). A seeded noise model emulates LLM
//!    imprecision — and stage 2 catches it, which is the paper's "trust,
//!    but verify" point.
//! 2. **Mid — instrumented probing** ([`probe`], [`sandbox`],
//!    [`envgen`]): enumerate valid invocations (flag subsets × operand
//!    file-system states), execute each in a hermetic model file system
//!    with syscall-style tracing.
//! 3. **Right — compilation** ([`compile`]): apply transformation rules
//!    to the traces, producing Hoare-style [`shoal_spec::SpecCase`]s.
//!
//! [`eval`] measures the mined specs against the hand-written ground
//! truth (experiment E4).

pub mod compile;
pub mod docmine;
pub mod envgen;
pub mod eval;
pub mod manpages;
pub mod probe;
pub mod sandbox;

pub use compile::compile_spec;
pub use docmine::{extract_syntax, NoiseModel};
pub use eval::{evaluate_mined, MiningScore};
pub use probe::{probe_command, Observation};
pub use sandbox::{ExecResult, MockFs, TraceEvent};

/// Mines a complete specification for `name`: documentation → syntax →
/// probing → compiled cases. Returns `None` when no man page exists.
pub fn mine_command(name: &str) -> Option<shoal_spec::CommandSpec> {
    mine_command_noisy(name, &NoiseModel::none())
}

/// Like [`mine_command`] with an explicit extraction-noise model.
pub fn mine_command_noisy(name: &str, noise: &NoiseModel) -> Option<shoal_spec::CommandSpec> {
    let page = manpages::man_page(name)?;
    let syntax = extract_syntax(page, noise)?;
    let observations = probe_command(&syntax);
    Some(compile_spec(syntax, &observations))
}
