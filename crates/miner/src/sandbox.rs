//! The probing sandbox: a concrete model file system and instrumented
//! mock executors.
//!
//! The paper probes real commands in instrumented containers with
//! system-call tracing. The reproduction runs *operational mock
//! implementations* of each utility against an in-process file system,
//! emitting the same trace alphabet ptrace-based interposition would
//! produce (`open`, `unlink`, `mkdir`, `chdir`, …). The compilation
//! rules (Fig. 4 right) consume only these traces and the before/after
//! file-system states, so the substitution is invisible to them (DESIGN
//! §5).
//!
//! The executors are deliberately *independent* of `shoal-spec`'s
//! ground-truth library: they implement POSIX behavior operationally, so
//! that E4's mined-vs-ground-truth comparison is a genuine two-sided
//! check.

use shoal_symfs::{join, normalize_lexical};
use std::collections::BTreeMap;

/// Node kinds in the model file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

/// A concrete model file system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MockFs {
    entries: BTreeMap<String, Kind>,
    cwd: String,
}

impl MockFs {
    /// An empty file system with cwd `/`.
    pub fn new() -> MockFs {
        let mut fs = MockFs {
            entries: BTreeMap::new(),
            cwd: "/".to_string(),
        };
        fs.entries.insert("/".to_string(), Kind::Dir);
        fs
    }

    /// Resolves a path against the cwd and normalizes it.
    pub fn resolve(&self, path: &str) -> String {
        join(&self.cwd, path)
    }

    /// The node at `path`, if any.
    pub fn kind(&self, path: &str) -> Option<Kind> {
        self.entries.get(&self.resolve(path)).copied()
    }

    /// Creates a file, creating parent directories implicitly (the
    /// environment generator uses this; executors check parents).
    pub fn put_file(&mut self, path: &str) {
        let p = self.resolve(path);
        self.ensure_parents(&p);
        self.entries.insert(p, Kind::File);
    }

    /// Creates a directory (with parents).
    pub fn put_dir(&mut self, path: &str) {
        let p = self.resolve(path);
        self.ensure_parents(&p);
        self.entries.insert(p, Kind::Dir);
    }

    fn ensure_parents(&mut self, abs: &str) {
        let mut cur = String::new();
        for comp in abs.split('/').filter(|c| !c.is_empty()) {
            cur.push('/');
            cur.push_str(comp);
            if cur != abs {
                self.entries.entry(cur.clone()).or_insert(Kind::Dir);
            }
        }
        self.entries.entry("/".to_string()).or_insert(Kind::Dir);
    }

    /// Removes a single node.
    pub fn remove(&mut self, path: &str) {
        let p = self.resolve(path);
        self.entries.remove(&p);
    }

    /// Removes a node and its subtree.
    pub fn remove_tree(&mut self, path: &str) {
        let p = self.resolve(path);
        let doomed: Vec<String> = self
            .entries
            .keys()
            .filter(|k| **k == p || (k.starts_with(&p) && k.as_bytes().get(p.len()) == Some(&b'/')))
            .cloned()
            .collect();
        for k in doomed {
            self.entries.remove(&k);
        }
    }

    /// Direct children of a directory.
    pub fn children(&self, path: &str) -> Vec<String> {
        let p = self.resolve(path);
        let prefix = if p == "/" {
            "/".to_string()
        } else {
            format!("{p}/")
        };
        self.entries
            .keys()
            .filter(|k| {
                k.starts_with(&prefix)
                    && **k != p
                    && !k[prefix.len()..].contains('/')
                    && !k[prefix.len()..].is_empty()
            })
            .cloned()
            .collect()
    }

    /// Current working directory.
    pub fn cwd(&self) -> &str {
        &self.cwd
    }

    /// All entries (for before/after diffing).
    pub fn snapshot(&self) -> BTreeMap<String, Kind> {
        self.entries.clone()
    }
}

/// One syscall-style trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// `open(path, O_RDONLY)`.
    Open(String),
    /// `open(path, O_CREAT|O_WRONLY)`.
    Create(String),
    /// `write` to a path.
    Write(String),
    /// `unlink(path)`.
    Unlink(String),
    /// `rmdir(path)`.
    Rmdir(String),
    /// `mkdir(path)`.
    Mkdir(String),
    /// `chdir(path)`.
    Chdir(String),
    /// `readdir(path)`.
    ReadDir(String),
    /// `stat(path)`.
    Stat(String),
    /// A diagnostic on stderr.
    Diag(String),
    /// Bytes on stdout.
    Stdout(String),
}

/// The result of one sandboxed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Exit code.
    pub exit: i32,
    /// Trace in order.
    pub trace: Vec<TraceEvent>,
}

impl ExecResult {
    /// Did the command succeed?
    pub fn success(&self) -> bool {
        self.exit == 0
    }
}

/// Executes `name args…` in the sandbox.
pub fn execute(name: &str, args: &[String], fs: &mut MockFs) -> ExecResult {
    let mut flags: Vec<char> = Vec::new();
    let mut operands: Vec<String> = Vec::new();
    let mut no_more = false;
    for a in args {
        if !no_more && a == "--" {
            no_more = true;
        } else if !no_more && a.starts_with('-') && a.len() > 1 {
            flags.extend(a[1..].chars());
        } else {
            operands.push(a.clone());
        }
    }
    let has = |c: char| flags.contains(&c);
    // Validate flags first: real utilities reject unknown options before
    // doing any work.
    let known: &[char] = match name {
        "rm" => &['f', 'i', 'r', 'R', 'v'],
        "rmdir" => &['p'],
        "mkdir" => &['p'],
        "touch" => &['c', 'a', 'm'],
        "cat" => &['u'],
        "cp" => &['f', 'p', 'r', 'R'],
        "mv" => &['f', 'i'],
        "ls" => &['a', 'l', '1'],
        "realpath" => &['e', 'm'],
        "ln" => &['f', 's'],
        "tee" => &['a', 'i'],
        _ => &[],
    };
    if let Some(bad) = flags.iter().find(|f| !known.contains(f)) {
        return ExecResult {
            exit: 2,
            trace: vec![TraceEvent::Diag(format!(
                "{name}: invalid option -- '{bad}'"
            ))],
        };
    }
    let mut trace = Vec::new();
    let exit = match name {
        "rm" => rm(fs, &mut trace, has('f'), has('r') || has('R'), &operands),
        "rmdir" => rmdir(fs, &mut trace, &operands),
        "mkdir" => mkdir(fs, &mut trace, has('p'), &operands),
        "touch" => touch(fs, &mut trace, has('c'), &operands),
        "cat" => cat(fs, &mut trace, &operands),
        "cp" => cp(fs, &mut trace, has('r') || has('R'), &operands),
        "mv" => mv(fs, &mut trace, &operands),
        "ls" => ls(fs, &mut trace, &operands),
        "cd" => cd(fs, &mut trace, &operands),
        "realpath" => realpath(fs, &mut trace, has('m'), &operands),
        "ln" => ln(fs, &mut trace, &operands),
        "tee" => tee(fs, &mut trace, &operands),
        other => {
            trace.push(TraceEvent::Diag(format!("{other}: command not found")));
            127
        }
    };
    ExecResult { exit, trace }
}

fn rm(
    fs: &mut MockFs,
    t: &mut Vec<TraceEvent>,
    force: bool,
    recursive: bool,
    ops: &[String],
) -> i32 {
    let mut exit = 0;
    for op in ops {
        let p = fs.resolve(op);
        t.push(TraceEvent::Stat(p.clone()));
        match fs.kind(op) {
            None => {
                if !force {
                    t.push(TraceEvent::Diag(format!(
                        "rm: cannot remove '{op}': No such file"
                    )));
                    exit = 1;
                }
            }
            Some(Kind::File) => {
                t.push(TraceEvent::Unlink(p.clone()));
                fs.remove(op);
            }
            Some(Kind::Dir) => {
                if recursive {
                    for child in fs.children(op) {
                        t.push(TraceEvent::Unlink(child));
                    }
                    t.push(TraceEvent::Rmdir(p.clone()));
                    fs.remove_tree(op);
                } else {
                    t.push(TraceEvent::Diag(format!(
                        "rm: cannot remove '{op}': Is a directory"
                    )));
                    exit = 1;
                }
            }
        }
    }
    exit
}

fn rmdir(fs: &mut MockFs, t: &mut Vec<TraceEvent>, ops: &[String]) -> i32 {
    let mut exit = 0;
    for op in ops {
        let p = fs.resolve(op);
        t.push(TraceEvent::Stat(p.clone()));
        match fs.kind(op) {
            Some(Kind::Dir) if fs.children(op).is_empty() => {
                t.push(TraceEvent::Rmdir(p));
                fs.remove(op);
            }
            Some(Kind::Dir) => {
                t.push(TraceEvent::Diag(format!(
                    "rmdir: '{op}': Directory not empty"
                )));
                exit = 1;
            }
            Some(Kind::File) => {
                t.push(TraceEvent::Diag(format!("rmdir: '{op}': Not a directory")));
                exit = 1;
            }
            None => {
                t.push(TraceEvent::Diag(format!(
                    "rmdir: '{op}': No such file or directory"
                )));
                exit = 1;
            }
        }
    }
    exit
}

fn mkdir(fs: &mut MockFs, t: &mut Vec<TraceEvent>, parents: bool, ops: &[String]) -> i32 {
    let mut exit = 0;
    for op in ops {
        let p = fs.resolve(op);
        match fs.kind(op) {
            Some(_) if parents => {}
            Some(_) => {
                t.push(TraceEvent::Diag(format!(
                    "mkdir: cannot create '{op}': File exists"
                )));
                exit = 1;
            }
            None => {
                // Parent must exist without -p.
                let parent = shoal_symfs::parent(&p).unwrap_or_else(|| "/".to_string());
                if !parents && fs.kind(&parent) != Some(Kind::Dir) {
                    t.push(TraceEvent::Diag(format!(
                        "mkdir: cannot create '{op}': No such file or directory"
                    )));
                    exit = 1;
                } else {
                    t.push(TraceEvent::Mkdir(p.clone()));
                    fs.put_dir(op);
                }
            }
        }
    }
    exit
}

fn touch(fs: &mut MockFs, t: &mut Vec<TraceEvent>, no_create: bool, ops: &[String]) -> i32 {
    for op in ops {
        let p = fs.resolve(op);
        t.push(TraceEvent::Stat(p.clone()));
        match fs.kind(op) {
            Some(_) => t.push(TraceEvent::Write(p)),
            None if no_create => {}
            None => {
                t.push(TraceEvent::Create(p.clone()));
                fs.put_file(op);
            }
        }
    }
    0
}

fn cat(fs: &mut MockFs, t: &mut Vec<TraceEvent>, ops: &[String]) -> i32 {
    let mut exit = 0;
    for op in ops {
        let p = fs.resolve(op);
        match fs.kind(op) {
            Some(Kind::File) => {
                t.push(TraceEvent::Open(p.clone()));
                t.push(TraceEvent::Stdout(format!("<contents of {p}>")));
            }
            Some(Kind::Dir) => {
                t.push(TraceEvent::Diag(format!("cat: {op}: Is a directory")));
                exit = 1;
            }
            None => {
                t.push(TraceEvent::Diag(format!(
                    "cat: {op}: No such file or directory"
                )));
                exit = 1;
            }
        }
    }
    exit
}

fn cp(fs: &mut MockFs, t: &mut Vec<TraceEvent>, recursive: bool, ops: &[String]) -> i32 {
    if ops.len() != 2 {
        t.push(TraceEvent::Diag("cp: missing operand".to_string()));
        return 1;
    }
    let (src, dst) = (&ops[0], &ops[1]);
    match fs.kind(src) {
        None => {
            t.push(TraceEvent::Diag(format!("cp: cannot stat '{src}'")));
            1
        }
        Some(Kind::Dir) if !recursive => {
            t.push(TraceEvent::Diag(format!(
                "cp: -r not specified; omitting directory '{src}'"
            )));
            1
        }
        Some(kind) => {
            t.push(TraceEvent::Open(fs.resolve(src)));
            t.push(TraceEvent::Create(fs.resolve(dst)));
            match kind {
                Kind::File => fs.put_file(dst),
                Kind::Dir => fs.put_dir(dst),
            }
            0
        }
    }
}

fn mv(fs: &mut MockFs, t: &mut Vec<TraceEvent>, ops: &[String]) -> i32 {
    if ops.len() != 2 {
        t.push(TraceEvent::Diag("mv: missing operand".to_string()));
        return 1;
    }
    let (src, dst) = (&ops[0], &ops[1]);
    match fs.kind(src) {
        None => {
            t.push(TraceEvent::Diag(format!("mv: cannot stat '{src}'")));
            1
        }
        Some(kind) => {
            t.push(TraceEvent::Unlink(fs.resolve(src)));
            t.push(TraceEvent::Create(fs.resolve(dst)));
            fs.remove_tree(src);
            match kind {
                Kind::File => fs.put_file(dst),
                Kind::Dir => fs.put_dir(dst),
            }
            0
        }
    }
}

fn ls(fs: &mut MockFs, t: &mut Vec<TraceEvent>, ops: &[String]) -> i32 {
    let targets: Vec<String> = if ops.is_empty() {
        vec![".".to_string()]
    } else {
        ops.to_vec()
    };
    let mut exit = 0;
    for op in &targets {
        match fs.kind(op) {
            Some(Kind::Dir) => {
                t.push(TraceEvent::ReadDir(fs.resolve(op)));
                for c in fs.children(op) {
                    t.push(TraceEvent::Stdout(c));
                }
            }
            Some(Kind::File) => t.push(TraceEvent::Stdout(fs.resolve(op))),
            None => {
                t.push(TraceEvent::Diag(format!("ls: cannot access '{op}'")));
                exit = 2;
            }
        }
    }
    exit
}

fn cd(fs: &mut MockFs, t: &mut Vec<TraceEvent>, ops: &[String]) -> i32 {
    let target = ops.first().cloned().unwrap_or_else(|| "/".to_string());
    match fs.kind(&target) {
        Some(Kind::Dir) => {
            let p = fs.resolve(&target);
            t.push(TraceEvent::Chdir(p.clone()));
            fs.cwd = p;
            0
        }
        Some(Kind::File) => {
            t.push(TraceEvent::Diag(format!("cd: {target}: Not a directory")));
            1
        }
        None => {
            t.push(TraceEvent::Diag(format!(
                "cd: {target}: No such file or directory"
            )));
            1
        }
    }
}

fn realpath(fs: &mut MockFs, t: &mut Vec<TraceEvent>, missing_ok: bool, ops: &[String]) -> i32 {
    let mut exit = 0;
    for op in ops {
        let p = normalize_lexical(&fs.resolve(op));
        t.push(TraceEvent::Stat(p.clone()));
        if fs.entries.contains_key(&p) || missing_ok {
            t.push(TraceEvent::Stdout(p));
        } else {
            t.push(TraceEvent::Diag(format!(
                "realpath: {op}: No such file or directory"
            )));
            exit = 1;
        }
    }
    exit
}

fn ln(fs: &mut MockFs, t: &mut Vec<TraceEvent>, ops: &[String]) -> i32 {
    if ops.len() != 2 {
        t.push(TraceEvent::Diag("ln: missing operand".to_string()));
        return 1;
    }
    let (src, dst) = (&ops[0], &ops[1]);
    if fs.kind(src).is_none() {
        t.push(TraceEvent::Diag(format!(
            "ln: '{src}': No such file or directory"
        )));
        return 1;
    }
    t.push(TraceEvent::Create(fs.resolve(dst)));
    fs.put_file(dst);
    0
}

fn tee(fs: &mut MockFs, t: &mut Vec<TraceEvent>, ops: &[String]) -> i32 {
    for op in ops {
        t.push(TraceEvent::Create(fs.resolve(op)));
        fs.put_file(op);
    }
    t.push(TraceEvent::Stdout("<stdin copy>".to_string()));
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(a: &[&str]) -> Vec<String> {
        a.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn fs_basics() {
        let mut fs = MockFs::new();
        fs.put_file("/a/b/c.txt");
        assert_eq!(fs.kind("/a"), Some(Kind::Dir));
        assert_eq!(fs.kind("/a/b/c.txt"), Some(Kind::File));
        assert_eq!(fs.children("/a"), vec!["/a/b".to_string()]);
        fs.remove_tree("/a");
        assert_eq!(fs.kind("/a/b/c.txt"), None);
        assert_eq!(fs.kind("/"), Some(Kind::Dir));
    }

    #[test]
    fn rm_file_succeeds_and_traces_unlink() {
        let mut fs = MockFs::new();
        fs.put_file("/f");
        let r = execute("rm", &args(&["/f"]), &mut fs);
        assert!(r.success());
        assert!(r.trace.contains(&TraceEvent::Unlink("/f".to_string())));
        assert_eq!(fs.kind("/f"), None);
    }

    #[test]
    fn rm_dir_without_r_fails() {
        let mut fs = MockFs::new();
        fs.put_dir("/d");
        let r = execute("rm", &args(&["/d"]), &mut fs);
        assert!(!r.success());
        assert_eq!(fs.kind("/d"), Some(Kind::Dir));
        // Even with -f, a directory needs -r.
        let r2 = execute("rm", &args(&["-f", "/d"]), &mut fs);
        assert!(!r2.success());
    }

    #[test]
    fn rm_rf_paper_triple() {
        // {(∃ p)} rm -f -r p {(∄ p) ∧ exit 0}
        let mut fs = MockFs::new();
        fs.put_dir("/p");
        fs.put_file("/p/inner");
        let r = execute("rm", &args(&["-f", "-r", "/p"]), &mut fs);
        assert_eq!(r.exit, 0);
        assert_eq!(fs.kind("/p"), None);
        assert_eq!(fs.kind("/p/inner"), None);
    }

    #[test]
    fn rm_missing_with_and_without_f() {
        let mut fs = MockFs::new();
        assert!(!execute("rm", &args(&["/nope"]), &mut fs).success());
        assert!(execute("rm", &args(&["-f", "/nope"]), &mut fs).success());
    }

    #[test]
    fn unknown_flag_rejected() {
        let mut fs = MockFs::new();
        fs.put_file("/f");
        let r = execute("rm", &args(&["-z", "/f"]), &mut fs);
        assert_eq!(r.exit, 2);
        assert_eq!(fs.kind("/f"), Some(Kind::File), "no effect on error");
    }

    #[test]
    fn mkdir_semantics() {
        let mut fs = MockFs::new();
        assert!(execute("mkdir", &args(&["/d"]), &mut fs).success());
        assert!(!execute("mkdir", &args(&["/d"]), &mut fs).success());
        assert!(execute("mkdir", &args(&["-p", "/d"]), &mut fs).success());
        assert!(!execute("mkdir", &args(&["/x/y/z"]), &mut fs).success());
        assert!(execute("mkdir", &args(&["-p", "/x/y/z"]), &mut fs).success());
        assert_eq!(fs.kind("/x/y"), Some(Kind::Dir));
    }

    #[test]
    fn touch_create_and_nocreate() {
        let mut fs = MockFs::new();
        assert!(execute("touch", &args(&["/new"]), &mut fs).success());
        assert_eq!(fs.kind("/new"), Some(Kind::File));
        assert!(execute("touch", &args(&["-c", "/other"]), &mut fs).success());
        assert_eq!(fs.kind("/other"), None);
    }

    #[test]
    fn cat_trace() {
        let mut fs = MockFs::new();
        fs.put_file("/f");
        let r = execute("cat", &args(&["/f"]), &mut fs);
        assert!(r.success());
        assert!(r.trace.contains(&TraceEvent::Open("/f".to_string())));
        assert!(!execute("cat", &args(&["/missing"]), &mut fs).success());
        fs.put_dir("/d");
        assert!(!execute("cat", &args(&["/d"]), &mut fs).success());
    }

    #[test]
    fn cp_mv_semantics() {
        let mut fs = MockFs::new();
        fs.put_file("/src");
        assert!(execute("cp", &args(&["/src", "/dst"]), &mut fs).success());
        assert_eq!(fs.kind("/src"), Some(Kind::File));
        assert_eq!(fs.kind("/dst"), Some(Kind::File));
        assert!(execute("mv", &args(&["/dst", "/moved"]), &mut fs).success());
        assert_eq!(fs.kind("/dst"), None);
        assert_eq!(fs.kind("/moved"), Some(Kind::File));
        fs.put_dir("/dir");
        assert!(!execute("cp", &args(&["/dir", "/dir2"]), &mut fs).success());
        assert!(execute("cp", &args(&["-r", "/dir", "/dir2"]), &mut fs).success());
    }

    #[test]
    fn cd_changes_cwd_and_relative_resolution() {
        let mut fs = MockFs::new();
        fs.put_dir("/work");
        assert!(execute("cd", &args(&["/work"]), &mut fs).success());
        assert_eq!(fs.cwd(), "/work");
        execute("touch", &args(&["rel.txt"]), &mut fs);
        assert_eq!(fs.kind("/work/rel.txt"), Some(Kind::File));
        fs.put_file("/work/afile");
        assert!(!execute("cd", &args(&["afile"]), &mut fs).success());
    }

    #[test]
    fn realpath_modes() {
        let mut fs = MockFs::new();
        fs.put_dir("/a");
        let ok = execute("realpath", &args(&["/a/../a"]), &mut fs);
        assert!(ok.success());
        assert!(ok.trace.contains(&TraceEvent::Stdout("/a".to_string())));
        assert!(!execute("realpath", &args(&["/missing"]), &mut fs).success());
        assert!(execute("realpath", &args(&["-m", "/missing"]), &mut fs).success());
    }
}
