//! Evaluating mined specifications against the ground truth
//! (experiment E4).
//!
//! Syntactic spec equality is the wrong metric (the miner's exact-guard
//! cases and the hand-written library's layered guards can describe the
//! same behavior); the comparison is *behavioral*: over the full probe
//! matrix (flag subsets × operand states), does each spec predict the
//! same (exit, deletes, creates) fingerprint as the sandbox actually
//! exhibits?

use crate::envgen::OperandState;
use crate::probe::{probe_command, Observation};
use shoal_spec::hoare::{operand_indices, Cond, Effect, ExitSpec, NodeReq};
use shoal_spec::{CommandSpec, Invocation};

/// The behavioral fingerprint of one invocation in one environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    /// Did it succeed?
    pub success: bool,
    /// Did it delete any operand?
    pub deletes: bool,
    /// Did it create any operand?
    pub creates: bool,
}

/// Mining quality for one command.
#[derive(Debug, Clone)]
pub struct MiningScore {
    /// Command name.
    pub command: String,
    /// Number of probed invocations (flag set × environment).
    pub invocations: usize,
    /// Number of mined cases.
    pub cases: usize,
    /// Fraction of probes where the mined spec predicts the actual
    /// fingerprint.
    pub accuracy: f64,
    /// Fraction of probes where the mined spec has *any* applicable
    /// case whose precondition matches the environment.
    pub coverage: f64,
    /// Same accuracy metric for the hand-written ground-truth spec
    /// (context for how hard the command is to specify).
    pub ground_truth_accuracy: f64,
}

/// What a spec predicts for one (flags, operand states) situation, or
/// `None` when no case covers it.
pub fn predict(spec: &CommandSpec, flags: &[char], states: &[OperandState]) -> Option<Fingerprint> {
    let operands: Vec<String> = (0..states.len()).map(|i| format!("/op{i}")).collect();
    let inv = Invocation::new(
        spec.name(),
        flags,
        &operands.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for case in spec.applicable(&inv) {
        let pre_ok = case.pre.iter().all(|Cond::OperandIs(marker, req)| {
            operand_indices(*marker, states.len()).iter().all(|&i| {
                matches!(
                    (req, states.get(i)),
                    (NodeReq::Any, _)
                        | (NodeReq::File, Some(OperandState::File))
                        | (NodeReq::Dir, Some(OperandState::Dir))
                        | (
                            NodeReq::Exists,
                            Some(OperandState::File | OperandState::Dir)
                        )
                        | (NodeReq::Absent, Some(OperandState::Missing))
                )
            })
        });
        if !pre_ok {
            continue;
        }
        let deletes = case.effects.iter().any(|e| {
            matches!(
                e,
                Effect::Deletes(_) | Effect::DeletesChildren(_) | Effect::MovesTo { .. }
            )
        });
        let creates = case.effects.iter().any(|e| {
            matches!(
                e,
                Effect::CreatesFile(_)
                    | Effect::CreatesDir(_)
                    | Effect::CreatesDirChain(_)
                    | Effect::CopiesTo { .. }
                    | Effect::MovesTo { .. }
            )
        });
        let success = match case.exit {
            ExitSpec::Success => true,
            ExitSpec::Failure => false,
            ExitSpec::Unknown => true,
        };
        return Some(Fingerprint {
            success,
            deletes,
            creates,
        });
    }
    None
}

/// The actual fingerprint of an observation.
fn actual(obs: &Observation) -> Fingerprint {
    Fingerprint {
        success: obs.success(),
        deletes: !obs.deleted.is_empty(),
        creates: !obs.created_file.is_empty() || !obs.created_dir.is_empty(),
    }
}

/// Scores a mined spec against ground truth over the probe matrix.
pub fn evaluate_mined(mined: &CommandSpec, ground_truth: Option<&CommandSpec>) -> MiningScore {
    // Probe with the *mined* syntax: the matrix of invocations the miner
    // believes legitimate (phantom flags already eliminated).
    let observations = probe_command(&mined.syntax);
    let mut total = 0usize;
    let mut covered = 0usize;
    let mut correct = 0usize;
    let mut gt_correct = 0usize;
    for obs in &observations {
        if obs.rejected {
            continue;
        }
        total += 1;
        let flags: Vec<char> = obs.flags.iter().copied().collect();
        let act = actual(obs);
        if let Some(pred) = predict(mined, &flags, &obs.states) {
            covered += 1;
            if pred == act {
                correct += 1;
            }
        }
        if let Some(gt) = ground_truth {
            if let Some(pred) = predict(gt, &flags, &obs.states) {
                if pred == act {
                    gt_correct += 1;
                }
            }
        }
    }
    let denom = total.max(1) as f64;
    MiningScore {
        command: mined.name().to_string(),
        invocations: total,
        cases: mined.cases.len(),
        accuracy: correct as f64 / denom,
        coverage: covered as f64 / denom,
        ground_truth_accuracy: gt_correct as f64 / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_command;
    use shoal_spec::SpecLibrary;

    #[test]
    fn mined_rm_is_behaviorally_perfect() {
        let mined = mine_command("rm").unwrap();
        let lib = SpecLibrary::builtin();
        let score = evaluate_mined(&mined, lib.get("rm"));
        assert!(
            score.accuracy > 0.99,
            "mined rm accuracy {} (cases: {:#?})",
            score.accuracy,
            mined.cases
        );
        assert!(score.coverage > 0.99);
        assert!(score.invocations >= 48);
    }

    #[test]
    fn all_documented_commands_mine_with_high_accuracy() {
        let lib = SpecLibrary::builtin();
        for name in crate::manpages::all_documented() {
            let mined = mine_command(name).unwrap();
            let score = evaluate_mined(&mined, lib.get(name));
            assert!(
                score.accuracy >= 0.95,
                "{name}: accuracy {} too low",
                score.accuracy
            );
            assert!(score.cases >= 1, "{name}: no cases mined");
        }
    }

    #[test]
    fn noisy_extraction_recovers_via_probing() {
        use crate::docmine::NoiseModel;
        let lib = SpecLibrary::builtin();
        // Phantom flags at rate 1.0: probing must eliminate them and the
        // final accuracy must be unaffected.
        let mined = crate::mine_command_noisy("rm", &NoiseModel::with_rates(0.0, 1.0, 3)).unwrap();
        let score = evaluate_mined(&mined, lib.get("rm"));
        assert!(score.accuracy > 0.99, "accuracy {}", score.accuracy);
        assert!(!mined
            .syntax
            .flags
            .iter()
            .any(|f| f.description == "(phantom)"));
    }
}
