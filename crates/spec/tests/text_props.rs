//! Property-based round-trip tests for the spec text format: any
//! well-formed specification renders to text that parses back to the
//! identical specification. This is what makes the format safe as the
//! community-maintained interchange the paper calls for (§4).

use proptest::prelude::*;
use shoal_spec::hoare::{Cond, Effect, ExitSpec, Guard, NodeReq, SpecCase, EACH, REST};
use shoal_spec::text::{parse_specs, render_spec};
use shoal_spec::{ArgKind, CmdSyntax, CommandSpec};

fn name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_-]{0,6}"
}

fn flag_char() -> impl Strategy<Value = char> {
    prop_oneof![
        prop::char::range('a', 'z'),
        prop::char::range('A', 'Z'),
        prop::char::range('0', '9'),
    ]
}

/// Single-line descriptions without format-significant characters.
fn description() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ,.()-]{0,24}".prop_map(|s| s.trim().to_string())
}

fn arg_kind() -> impl Strategy<Value = ArgKind> {
    prop_oneof![
        Just(ArgKind::Path),
        Just(ArgKind::Str),
        Just(ArgKind::Number),
        Just(ArgKind::Pattern),
    ]
}

fn syntax() -> impl Strategy<Value = CmdSyntax> {
    (
        name(),
        prop::collection::btree_set(flag_char(), 0..4),
        prop::collection::vec(description(), 4),
        0usize..3,
        prop::option::of(0usize..4),
        arg_kind(),
    )
        .prop_map(|(name, flags, descs, min, max_extra, kind)| {
            let mut syn = CmdSyntax::simple(&name, min, None);
            for (i, f) in flags.into_iter().enumerate() {
                syn = syn.flag(f, &descs[i % descs.len()]);
            }
            syn.max_operands = max_extra.map(|e| min + e);
            syn.operand_kind = kind;
            syn
        })
}

fn node_req() -> impl Strategy<Value = NodeReq> {
    prop_oneof![
        Just(NodeReq::File),
        Just(NodeReq::Dir),
        Just(NodeReq::Exists),
        Just(NodeReq::Absent),
        Just(NodeReq::Any),
    ]
}

fn operand_ref() -> impl Strategy<Value = usize> {
    prop_oneof![Just(EACH), Just(REST), 0usize..4]
}

fn effect() -> impl Strategy<Value = Effect> {
    prop_oneof![
        operand_ref().prop_map(Effect::Deletes),
        operand_ref().prop_map(Effect::DeletesChildren),
        operand_ref().prop_map(Effect::CreatesFile),
        operand_ref().prop_map(Effect::CreatesDir),
        operand_ref().prop_map(Effect::CreatesDirChain),
        operand_ref().prop_map(Effect::Reads),
        operand_ref().prop_map(Effect::Writes),
        (operand_ref(), operand_ref()).prop_map(|(src, dst)| Effect::CopiesTo { src, dst }),
        (operand_ref(), operand_ref()).prop_map(|(src, dst)| Effect::MovesTo { src, dst }),
        operand_ref().prop_map(Effect::ChangesCwdTo),
        Just(Effect::WritesStdout),
        Just(Effect::WritesStderr),
    ]
}

fn exit_spec() -> impl Strategy<Value = ExitSpec> {
    prop_oneof![
        Just(ExitSpec::Success),
        Just(ExitSpec::Failure),
        Just(ExitSpec::Unknown)
    ]
}

fn case(available_flags: Vec<char>) -> impl Strategy<Value = SpecCase> {
    let flags = prop::sample::subsequence(available_flags.clone(), 0..=available_flags.len());
    let forbids = prop::sample::subsequence(available_flags.clone(), 0..=available_flags.len());
    (
        flags,
        forbids,
        prop::option::of((0usize..3, prop::option::of(0usize..3))),
        prop::collection::vec((operand_ref(), node_req()), 0..3),
        prop::collection::vec(effect(), 0..4),
        exit_spec(),
        prop::option::of("[a-zA-Z0-9*+.()|\\[\\]-]{1,16}"),
    )
        .prop_map(|(req, mut forbid, count, pre, effects, exit, stdout)| {
            forbid.retain(|f| !req.contains(f));
            SpecCase {
                guard: Guard {
                    requires_flags: req,
                    forbids_flags: forbid,
                    operand_count: count.map(|(min, extra)| (min, extra.map(|e| min + e))),
                },
                pre: pre
                    .into_iter()
                    .map(|(op, r)| Cond::OperandIs(op, r))
                    .collect(),
                effects,
                exit,
                stdout_line: stdout,
            }
        })
}

fn spec() -> impl Strategy<Value = CommandSpec> {
    syntax().prop_flat_map(|syn| {
        let flags: Vec<char> = syn.flags.iter().map(|f| f.flag).collect();
        prop::collection::vec(case(flags), 0..4).prop_map(move |cases| CommandSpec {
            syntax: syn.clone(),
            cases,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn render_parse_roundtrip(s in spec()) {
        let text = render_spec(&s);
        let parsed = parse_specs(&text).map_err(|e| {
            TestCaseError::fail(format!("rendered spec failed to parse: {e}\n---\n{text}"))
        })?;
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0], &s, "round-trip changed the spec\n---\n{}", text);
    }

    #[test]
    fn rendering_two_specs_concatenates(a in spec(), b in spec()) {
        let text = format!("{}\n{}", render_spec(&a), render_spec(&b));
        let parsed = parse_specs(&text).map_err(|e| {
            TestCaseError::fail(format!("concatenated specs failed: {e}"))
        })?;
        prop_assert_eq!(parsed.len(), 2);
        prop_assert_eq!(&parsed[0], &a);
        prop_assert_eq!(&parsed[1], &b);
    }
}
