//! Property-based round-trip tests for the spec text format (on the
//! in-repo seeded harness): any well-formed specification renders to
//! text that parses back to the identical specification. This is what
//! makes the format safe as the community-maintained interchange the
//! paper calls for (§4).

use shoal_obs::prop::{run_cases, Gen};
use shoal_spec::hoare::{Cond, Effect, ExitSpec, Guard, NodeReq, SpecCase, EACH, REST};
use shoal_spec::text::{parse_specs, render_spec};
use shoal_spec::{ArgKind, CmdSyntax, CommandSpec};

fn name(g: &mut Gen) -> String {
    let mut s = g.string_of("abcdefghijklmnopqrstuvwxyz", 1..2);
    s.push_str(&g.string_of("abcdefghijklmnopqrstuvwxyz0123456789_-", 0..7));
    s
}

fn flag_char(g: &mut Gen) -> char {
    *g.pick(
        &"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
            .chars()
            .collect::<Vec<char>>(),
    )
}

/// Single-line descriptions without format-significant characters.
fn description(g: &mut Gen) -> String {
    g.string_of("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,.()-", 0..25)
        .trim()
        .to_string()
}

fn arg_kind(g: &mut Gen) -> ArgKind {
    *g.pick(&[ArgKind::Path, ArgKind::Str, ArgKind::Number, ArgKind::Pattern])
}

fn syntax(g: &mut Gen) -> CmdSyntax {
    let name = name(g);
    // A sorted de-duplicated flag set (mirrors the old btree_set strategy).
    let mut flags: Vec<char> = g.vec_of(0..4, flag_char);
    flags.sort_unstable();
    flags.dedup();
    let descs: Vec<String> = (0..4).map(|_| description(g)).collect();
    let min = g.usize(0..3);
    let max_extra = g.option(0.5, |g| g.usize(0..4));
    let kind = arg_kind(g);
    let mut syn = CmdSyntax::simple(&name, min, None);
    for (i, f) in flags.into_iter().enumerate() {
        syn = syn.flag(f, &descs[i % descs.len()]);
    }
    syn.max_operands = max_extra.map(|e| min + e);
    syn.operand_kind = kind;
    syn
}

fn node_req(g: &mut Gen) -> NodeReq {
    *g.pick(&[
        NodeReq::File,
        NodeReq::Dir,
        NodeReq::Exists,
        NodeReq::Absent,
        NodeReq::Any,
    ])
}

fn operand_ref(g: &mut Gen) -> usize {
    match g.usize(0..3) {
        0 => EACH,
        1 => REST,
        _ => g.usize(0..4),
    }
}

fn effect(g: &mut Gen) -> Effect {
    match g.usize(0..12) {
        0 => Effect::Deletes(operand_ref(g)),
        1 => Effect::DeletesChildren(operand_ref(g)),
        2 => Effect::CreatesFile(operand_ref(g)),
        3 => Effect::CreatesDir(operand_ref(g)),
        4 => Effect::CreatesDirChain(operand_ref(g)),
        5 => Effect::Reads(operand_ref(g)),
        6 => Effect::Writes(operand_ref(g)),
        7 => Effect::CopiesTo {
            src: operand_ref(g),
            dst: operand_ref(g),
        },
        8 => Effect::MovesTo {
            src: operand_ref(g),
            dst: operand_ref(g),
        },
        9 => Effect::ChangesCwdTo(operand_ref(g)),
        10 => Effect::WritesStdout,
        _ => Effect::WritesStderr,
    }
}

fn exit_spec(g: &mut Gen) -> ExitSpec {
    *g.pick(&[ExitSpec::Success, ExitSpec::Failure, ExitSpec::Unknown])
}

fn case(g: &mut Gen, available_flags: &[char]) -> SpecCase {
    let req = g.subsequence(available_flags);
    let mut forbid = g.subsequence(available_flags);
    let count = g.option(0.5, |g| {
        let min = g.usize(0..3);
        (min, g.option(0.5, |g| g.usize(0..3)))
    });
    let pre = g.vec_of(0..3, |g| (operand_ref(g), node_req(g)));
    let effects = g.vec_of(0..4, effect);
    let exit = exit_spec(g);
    let stdout = g.option(0.5, |g| {
        g.string_of("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789*+.()|[]-", 1..17)
    });
    forbid.retain(|f| !req.contains(f));
    SpecCase {
        guard: Guard {
            requires_flags: req,
            forbids_flags: forbid,
            operand_count: count.map(|(min, extra)| (min, extra.map(|e| min + e))),
        },
        pre: pre.into_iter().map(|(op, r)| Cond::OperandIs(op, r)).collect(),
        effects,
        exit,
        stdout_line: stdout,
    }
}

fn spec(g: &mut Gen) -> CommandSpec {
    let syn = syntax(g);
    let flags: Vec<char> = syn.flags.iter().map(|f| f.flag).collect();
    let cases = g.vec_of(0..4, |g| case(g, &flags));
    CommandSpec { syntax: syn, cases }
}

#[test]
fn render_parse_roundtrip() {
    run_cases("render_parse_roundtrip", 192, |g| {
        let s = spec(g);
        let text = render_spec(&s);
        let parsed = parse_specs(&text)
            .unwrap_or_else(|e| panic!("rendered spec failed to parse: {e}\n---\n{text}"));
        assert_eq!(parsed.len(), 1);
        assert_eq!(&parsed[0], &s, "round-trip changed the spec\n---\n{text}");
    });
}

#[test]
fn rendering_two_specs_concatenates() {
    run_cases("rendering_two_specs_concatenates", 192, |g| {
        let a = spec(g);
        let b = spec(g);
        let text = format!("{}\n{}", render_spec(&a), render_spec(&b));
        let parsed =
            parse_specs(&text).unwrap_or_else(|e| panic!("concatenated specs failed: {e}"));
        assert_eq!(parsed.len(), 2);
        assert_eq!(&parsed[0], &a);
        assert_eq!(&parsed[1], &b);
    });
}
