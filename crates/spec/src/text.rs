//! Textual serialization of command specifications.
//!
//! Specs are data the community should be able to read, diff, and
//! contribute (§4 "Ergonomic annotations"); this module defines a
//! line-oriented format and a parser for it. The miner writes this
//! format; experiment E4 diffs mined files against the ground truth.
//!
//! ```text
//! command rm
//!   flag f ignore nonexistent files, never prompt
//!   flag r remove directories and their contents recursively
//!   operands 1..* path
//!   case [+f +r] { each:any } => deletes(each) ; exit 0
//!   case [+r -f] { each:exists } => deletes(each) ; exit 0
//!   case [-r -f] { each:dir } => stderr ; fails
//! end
//! ```

use crate::hoare::{CommandSpec, Cond, Effect, ExitSpec, Guard, NodeReq, SpecCase, EACH, REST};
use crate::syntax::{ArgKind, CmdSyntax};
use std::fmt;
use std::fmt::Write as _;

/// Errors from the spec-text parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecParseError {}

fn operand_ref_to_text(i: usize) -> String {
    match i {
        EACH => "each".to_string(),
        REST => "rest".to_string(),
        n => n.to_string(),
    }
}

fn operand_ref_from_text(s: &str) -> Option<usize> {
    match s {
        "each" => Some(EACH),
        "rest" => Some(REST),
        n => n.parse().ok(),
    }
}

/// Renders one spec in the textual format.
pub fn render_spec(spec: &CommandSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "command {}", spec.syntax.name);
    for f in &spec.syntax.flags {
        let _ = writeln!(out, "  flag {} {}", f.flag, f.description);
    }
    for o in &spec.syntax.options {
        let _ = writeln!(out, "  opt {} {} {}", o.flag, o.arg, o.description);
    }
    let max = match spec.syntax.max_operands {
        None => "*".to_string(),
        Some(m) => m.to_string(),
    };
    let _ = writeln!(
        out,
        "  operands {}..{} {}",
        spec.syntax.min_operands, max, spec.syntax.operand_kind
    );
    for c in &spec.cases {
        let _ = write!(out, "  case [");
        let mut first = true;
        for f in &c.guard.requires_flags {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "+{f}");
            first = false;
        }
        for f in &c.guard.forbids_flags {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "-{f}");
            first = false;
        }
        if let Some((min, max)) = c.guard.operand_count {
            if !first {
                out.push(' ');
            }
            let max = match max {
                None => "*".to_string(),
                Some(m) => m.to_string(),
            };
            let _ = write!(out, "#{min}..{max}");
        }
        let _ = write!(out, "] {{ ");
        for (i, p) in c.pre.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ", ");
            }
            let Cond::OperandIs(op, req) = p;
            let _ = write!(out, "{}:{req}", operand_ref_to_text(*op));
        }
        let _ = write!(out, " }} => ");
        if c.effects.is_empty() {
            let _ = write!(out, "nothing");
        }
        for (i, e) in c.effects.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ", ");
            }
            let _ = match e {
                Effect::Deletes(i) => write!(out, "deletes({})", operand_ref_to_text(*i)),
                Effect::DeletesChildren(i) => {
                    write!(out, "deletes-children({})", operand_ref_to_text(*i))
                }
                Effect::CreatesFile(i) => {
                    write!(out, "creates-file({})", operand_ref_to_text(*i))
                }
                Effect::CreatesDir(i) => write!(out, "creates-dir({})", operand_ref_to_text(*i)),
                Effect::CreatesDirChain(i) => {
                    write!(out, "creates-dir-chain({})", operand_ref_to_text(*i))
                }
                Effect::Reads(i) => write!(out, "reads({})", operand_ref_to_text(*i)),
                Effect::Writes(i) => write!(out, "writes({})", operand_ref_to_text(*i)),
                Effect::CopiesTo { src, dst } => write!(
                    out,
                    "copies({}->{})",
                    operand_ref_to_text(*src),
                    operand_ref_to_text(*dst)
                ),
                Effect::MovesTo { src, dst } => write!(
                    out,
                    "moves({}->{})",
                    operand_ref_to_text(*src),
                    operand_ref_to_text(*dst)
                ),
                Effect::ChangesCwdTo(i) => write!(out, "cd({})", operand_ref_to_text(*i)),
                Effect::WritesStdout => write!(out, "stdout"),
                Effect::WritesStderr => write!(out, "stderr"),
            };
        }
        let _ = match c.exit {
            ExitSpec::Success => write!(out, " ; exit 0"),
            ExitSpec::Failure => write!(out, " ; fails"),
            ExitSpec::Unknown => write!(out, " ; exit ?"),
        };
        if let Some(pat) = &c.stdout_line {
            let _ = write!(out, " ; type {pat}");
        }
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Renders a whole library, sorted by command name.
pub fn render_library(lib: &crate::library::SpecLibrary) -> String {
    let mut out = String::new();
    for name in lib.names() {
        out.push_str(&render_spec(lib.get(name).expect("listed name")));
        out.push('\n');
    }
    out
}

/// Parses one or more specs in the textual format.
///
/// # Errors
///
/// Returns the first syntax error with its line number.
pub fn parse_specs(text: &str) -> Result<Vec<CommandSpec>, SpecParseError> {
    let mut specs = Vec::new();
    let mut current: Option<CommandSpec> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        let err = |m: String| SpecParseError {
            message: m,
            line: lineno,
        };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("command ") {
            if current.is_some() {
                return Err(err("nested `command` (missing `end`?)".into()));
            }
            current = Some(CommandSpec {
                syntax: CmdSyntax::simple(name.trim(), 0, None),
                cases: Vec::new(),
            });
            continue;
        }
        if line == "end" {
            match current.take() {
                Some(s) => specs.push(s),
                None => return Err(err("`end` without `command`".into())),
            }
            continue;
        }
        let Some(spec) = current.as_mut() else {
            return Err(err(format!("unexpected {line:?} outside a command block")));
        };
        if let Some(rest) = line.strip_prefix("flag ") {
            let mut it = rest.splitn(2, ' ');
            let c = it
                .next()
                .and_then(|s| s.chars().next())
                .ok_or_else(|| err("flag needs a character".into()))?;
            let desc = it.next().unwrap_or("").to_string();
            spec.syntax = spec.syntax.clone().flag(c, &desc);
        } else if let Some(rest) = line.strip_prefix("opt ") {
            let mut it = rest.splitn(3, ' ');
            let c = it
                .next()
                .and_then(|s| s.chars().next())
                .ok_or_else(|| err("opt needs a character".into()))?;
            let kind = it
                .next()
                .and_then(ArgKind::parse)
                .ok_or_else(|| err("opt needs an argument kind".into()))?;
            let desc = it.next().unwrap_or("").to_string();
            spec.syntax = spec.syntax.clone().option(c, kind, &desc);
        } else if let Some(rest) = line.strip_prefix("operands ") {
            let mut it = rest.split_whitespace();
            let range = it
                .next()
                .ok_or_else(|| err("operands needs a range".into()))?;
            let (min, max) = range
                .split_once("..")
                .ok_or_else(|| err("operand range must be min..max".into()))?;
            spec.syntax.min_operands =
                min.parse().map_err(|_| err("bad operand minimum".into()))?;
            spec.syntax.max_operands = if max == "*" {
                None
            } else {
                Some(max.parse().map_err(|_| err("bad operand maximum".into()))?)
            };
            if let Some(kind) = it.next() {
                spec.syntax.operand_kind =
                    ArgKind::parse(kind).ok_or_else(|| err("bad operand kind".into()))?;
            }
        } else if let Some(rest) = line.strip_prefix("case ") {
            spec.cases.push(parse_case(rest, lineno)?);
        } else {
            return Err(err(format!("unrecognized line {line:?}")));
        }
    }
    if current.is_some() {
        return Err(SpecParseError {
            message: "missing `end` at end of input".into(),
            line: text.lines().count(),
        });
    }
    Ok(specs)
}

fn parse_case(rest: &str, lineno: usize) -> Result<SpecCase, SpecParseError> {
    let err = |m: String| SpecParseError {
        message: m,
        line: lineno,
    };
    // `[guard] { pre } => effects ; exit ; type pattern`
    let rest = rest.trim();
    let close = rest
        .find(']')
        .ok_or_else(|| err("case guard must be `[…]`".into()))?;
    if !rest.starts_with('[') {
        return Err(err("case guard must be `[…]`".into()));
    }
    let mut guard = Guard::always();
    for tok in rest[1..close].split_whitespace() {
        if let Some(f) = tok.strip_prefix('+') {
            guard
                .requires_flags
                .push(f.chars().next().ok_or_else(|| err("empty +flag".into()))?);
        } else if let Some(f) = tok.strip_prefix('-') {
            guard
                .forbids_flags
                .push(f.chars().next().ok_or_else(|| err("empty -flag".into()))?);
        } else if let Some(range) = tok.strip_prefix('#') {
            let (min, max) = range
                .split_once("..")
                .ok_or_else(|| err("count guard must be #min..max".into()))?;
            let min = min.parse().map_err(|_| err("bad count minimum".into()))?;
            let max = if max == "*" {
                None
            } else {
                Some(max.parse().map_err(|_| err("bad count maximum".into()))?)
            };
            guard.operand_count = Some((min, max));
        } else {
            return Err(err(format!("bad guard token {tok:?}")));
        }
    }
    let after = rest[close + 1..].trim();
    let open = after
        .find('{')
        .ok_or_else(|| err("case needs `{ pre }`".into()))?;
    let close_brace = after
        .find('}')
        .ok_or_else(|| err("unclosed `{ pre }`".into()))?;
    let mut case = SpecCase::new(guard);
    let pre = after[open + 1..close_brace].trim();
    if !pre.is_empty() {
        for tok in pre.split(',') {
            let tok = tok.trim();
            let (op, req) = tok
                .split_once(':')
                .ok_or_else(|| err(format!("bad precondition {tok:?}")))?;
            let op = operand_ref_from_text(op.trim())
                .ok_or_else(|| err(format!("bad operand ref {op:?}")))?;
            let req = NodeReq::parse(req.trim())
                .ok_or_else(|| err(format!("bad node requirement {req:?}")))?;
            case.pre.push(Cond::OperandIs(op, req));
        }
    }
    let after = after[close_brace + 1..].trim();
    let after = after
        .strip_prefix("=>")
        .ok_or_else(|| err("case needs `=>` after preconditions".into()))?
        .trim();
    let mut sections = after.split(';');
    let effects_text = sections.next().unwrap_or("").trim();
    if effects_text != "nothing" && !effects_text.is_empty() {
        for tok in effects_text.split(',') {
            case.effects.push(parse_effect(tok.trim(), lineno)?);
        }
    }
    let exit_text = sections
        .next()
        .ok_or_else(|| err("case needs an exit clause".into()))?
        .trim();
    case.exit = match exit_text {
        "exit 0" => ExitSpec::Success,
        "fails" => ExitSpec::Failure,
        "exit ?" => ExitSpec::Unknown,
        other => return Err(err(format!("bad exit clause {other:?}"))),
    };
    if let Some(ty) = sections.next() {
        let ty = ty.trim();
        let pat = ty
            .strip_prefix("type ")
            .ok_or_else(|| err("trailing clause must be `type <pattern>`".into()))?;
        case.stdout_line = Some(pat.to_string());
    }
    Ok(case)
}

fn parse_effect(tok: &str, lineno: usize) -> Result<Effect, SpecParseError> {
    let err = |m: String| SpecParseError {
        message: m,
        line: lineno,
    };
    if tok == "stdout" {
        return Ok(Effect::WritesStdout);
    }
    if tok == "stderr" {
        return Ok(Effect::WritesStderr);
    }
    let open = tok
        .find('(')
        .ok_or_else(|| err(format!("bad effect {tok:?}")))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| err(format!("bad effect {tok:?}")))?;
    let head = &tok[..open];
    let arg = &tok[open + 1..close];
    let single = |arg: &str| {
        operand_ref_from_text(arg).ok_or_else(|| err(format!("bad operand ref {arg:?}")))
    };
    Ok(match head {
        "deletes" => Effect::Deletes(single(arg)?),
        "deletes-children" => Effect::DeletesChildren(single(arg)?),
        "creates-file" => Effect::CreatesFile(single(arg)?),
        "creates-dir" => Effect::CreatesDir(single(arg)?),
        "creates-dir-chain" => Effect::CreatesDirChain(single(arg)?),
        "reads" => Effect::Reads(single(arg)?),
        "writes" => Effect::Writes(single(arg)?),
        "cd" => Effect::ChangesCwdTo(single(arg)?),
        "copies" | "moves" => {
            let (src, dst) = arg
                .split_once("->")
                .ok_or_else(|| err(format!("bad pair effect {tok:?}")))?;
            let src = single(src.trim())?;
            let dst = single(dst.trim())?;
            if head == "copies" {
                Effect::CopiesTo { src, dst }
            } else {
                Effect::MovesTo { src, dst }
            }
        }
        other => return Err(err(format!("unknown effect {other:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::SpecLibrary;

    #[test]
    fn whole_library_roundtrips() {
        let lib = SpecLibrary::builtin();
        let text = render_library(&lib);
        let parsed = parse_specs(&text).expect("library text parses");
        assert_eq!(parsed.len(), lib.len());
        for spec in parsed {
            let original = lib.get(spec.name()).expect("known command");
            assert_eq!(
                &spec,
                original,
                "round-trip changed spec for {}",
                spec.name()
            );
        }
    }

    #[test]
    fn parse_minimal_spec() {
        let text = "command zap\n  flag q quiet\n  operands 1..* path\n  case [+q] { 0:file } => deletes(0) ; exit 0\nend\n";
        let specs = parse_specs(text).unwrap();
        assert_eq!(specs.len(), 1);
        let s = &specs[0];
        assert_eq!(s.name(), "zap");
        assert!(s.syntax.has_flag('q'));
        assert_eq!(s.cases.len(), 1);
        assert_eq!(s.cases[0].effects, vec![Effect::Deletes(0)]);
    }

    #[test]
    fn parse_case_variants() {
        let text = "command x\n  operands 0..* path\n  case [#2..*] { rest:file } => reads(rest), stdout ; exit ?\n  case [] {  } => nothing ; fails ; type [0-9]+\nend\n";
        let specs = parse_specs(text).unwrap();
        let s = &specs[0];
        assert_eq!(s.cases[0].guard.operand_count, Some((2, None)));
        assert_eq!(s.cases[0].pre, vec![Cond::OperandIs(REST, NodeReq::File)]);
        assert_eq!(s.cases[0].exit, ExitSpec::Unknown);
        assert_eq!(s.cases[1].effects, vec![]);
        assert_eq!(s.cases[1].exit, ExitSpec::Failure);
        assert_eq!(s.cases[1].stdout_line.as_deref(), Some("[0-9]+"));
    }

    #[test]
    fn parse_errors_have_lines() {
        let bad = "command x\n  bogus line\nend\n";
        let e = parse_specs(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse_specs("end\n").is_err());
        assert!(parse_specs("command a\ncommand b\n").is_err());
        assert!(parse_specs("command a\n").is_err(), "missing end");
        assert!(parse_specs("command a\n case { } => nothing ; exit 0\nend").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a library\n\ncommand noop\n  operands 0..0 path\n  # trivial case\n  case [] { } => nothing ; exit 0\nend\n";
        let specs = parse_specs(text).unwrap();
        assert_eq!(specs[0].name(), "noop");
    }
}
