//! `shoal-spec`: command specifications as data.
//!
//! Commands are "fundamentally opaque, written by different developers
//! and in arbitrary languages" (§3); the analysis therefore consumes
//! *specifications* of their behavior from a queryable library. This
//! crate defines:
//!
//! * [`syntax`] — the invocation-syntax DSL: which flags a command takes,
//!   which options carry arguments, how many operands it accepts and of
//!   what kind. This is the paper's "domain-specific language designed to
//!   express only legitimate invocations" (Fig. 4, left), following the
//!   XBD utility argument conventions. It also provides the argv parser
//!   that classifies a concrete invocation against the DSL.
//! * [`hoare`] — Hoare-style specification cases: a guard (which
//!   invocation shape the case covers), preconditions over the file
//!   system, postcondition effects, an exit status, and optional stream
//!   output shape. The paper's example
//!   `{(∃ $p) ∧ (arg 0 $p path.FD)} rm -f -r $p {(∄ $p) ∧ exit 0}`
//!   is [`hoare::SpecCase`] number 0 of `rm` in the library.
//! * [`library`] — the hand-written ground-truth library for the core
//!   utilities the paper's examples use (`rm`, `cp`, `mv`, `mkdir`,
//!   `touch`, `cat`, `ls`, `realpath`, `grep`, `sed`, `cut`, `sort`, …).
//!   The miner (shoal-miner) reconstructs these from documentation +
//!   probing; experiment E4 diffs the two.
//! * [`text`] — a line-oriented textual serialization with a parser, so
//!   specs can live in files, be diffed, and be community-maintained
//!   ("a community-sourced repository of annotations à la TypeScript",
//!   §4).

pub mod hoare;
pub mod library;
pub mod syntax;
pub mod text;

pub use hoare::{CommandSpec, Cond, Effect, ExitSpec, Guard, NodeReq, SpecCase};
pub use library::SpecLibrary;
pub use syntax::{ArgKind, CmdSyntax, FlagSpec, Invocation, InvocationError, OptSpec};
