//! The hand-written ground-truth specification library.
//!
//! These specifications are the "queryable specification library
//! accompanying the analysis engine" (§3). They are hand-written from
//! the POSIX descriptions of each utility and serve three purposes:
//!
//! 1. the symbolic engine consumes them as transfer functions for
//!    external commands;
//! 2. the miner's output is evaluated against them (experiment E4);
//! 3. they document, in one auditable place, exactly which behaviors the
//!    analysis believes in.
//!
//! Coverage focuses on the utilities the paper's examples exercise, plus
//! the common file-manipulation and filter utilities any real script
//! corpus hits.

use crate::hoare::{CommandSpec, Cond, Effect, ExitSpec, Guard, NodeReq, SpecCase, EACH, REST};
use crate::syntax::{ArgKind, CmdSyntax};
use std::collections::BTreeMap;

/// The queryable spec library.
#[derive(Debug, Clone, Default)]
pub struct SpecLibrary {
    specs: BTreeMap<String, CommandSpec>,
}

impl SpecLibrary {
    /// An empty library.
    pub fn new() -> SpecLibrary {
        SpecLibrary::default()
    }

    /// The built-in ground-truth library.
    pub fn builtin() -> SpecLibrary {
        let mut lib = SpecLibrary::new();
        for spec in builtin_specs() {
            lib.insert(spec);
        }
        lib
    }

    /// Adds or replaces a spec.
    pub fn insert(&mut self, spec: CommandSpec) {
        self.specs.insert(spec.name().to_string(), spec);
    }

    /// Looks up a utility by name.
    pub fn get(&self, name: &str) -> Option<&CommandSpec> {
        self.specs.get(name)
    }

    /// All specified utility names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.specs.keys().map(String::as_str).collect()
    }

    /// Number of specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the library is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// A stable fingerprint of the whole spec database, for cache
    /// invalidation: any observable change to any spec — a new utility,
    /// a changed guard, a different exit code — changes the rendered
    /// text ([`crate::text::render_spec`]) and therefore the hash. The
    /// `BTreeMap` iterates in sorted name order, so the fingerprint is
    /// independent of insertion order.
    pub fn fingerprint(&self) -> u64 {
        let mut buf = String::new();
        for (name, spec) in &self.specs {
            buf.push_str(name);
            buf.push('\0');
            buf.push_str(&crate::text::render_spec(spec));
            buf.push('\0');
        }
        shoal_obs::hash::fnv1a64(buf.as_bytes())
    }
}

/// Shorthand constructors used throughout the library definition.
fn case(guard: Guard) -> SpecCase {
    SpecCase::new(guard)
}

fn builtin_specs() -> Vec<CommandSpec> {
    vec![
        rm_spec(),
        rmdir_spec(),
        mkdir_spec(),
        touch_spec(),
        cat_spec(),
        cp_spec(),
        mv_spec(),
        ls_spec(),
        realpath_spec(),
        cd_spec(),
        grep_spec(),
        sed_spec(),
        cut_spec(),
        sort_spec(),
        head_spec(),
        tail_spec(),
        tr_spec(),
        uniq_spec(),
        wc_spec(),
        echo_spec(),
        lsb_release_spec(),
        uname_spec(),
        curl_spec(),
        tee_spec(),
        ln_spec(),
        chmod_spec(),
        find_spec(),
        basename_spec(),
        dirname_spec(),
        date_spec(),
    ]
}

/// `rm` — the paper's running example. The first `[f r]` case is the
/// paper's displayed triple.
fn rm_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("rm", 1, None)
            .flag('f', "ignore nonexistent files, never prompt")
            .flag('r', "remove directories and their contents recursively")
            .flag('R', "equivalent to -r")
            .flag('i', "prompt before every removal")
            .flag('v', "explain what is being done"),
        cases: vec![
            // {(∃ $p) ∧ (arg 0 $p path.FD)} rm -f -r $p {(∄ $p) ∧ exit 0}
            case(Guard::with_flags(&['f', 'r']))
                .pre(Cond::OperandIs(EACH, NodeReq::Any))
                .effect(Effect::Deletes(EACH))
                .exit(ExitSpec::Success),
            case(Guard {
                requires_flags: vec!['r'],
                forbids_flags: vec!['f'],
                operand_count: None,
            })
            .pre(Cond::OperandIs(EACH, NodeReq::Exists))
            .effect(Effect::Deletes(EACH))
            .exit(ExitSpec::Success),
            case(Guard {
                requires_flags: vec!['r'],
                forbids_flags: vec!['f'],
                operand_count: None,
            })
            .pre(Cond::OperandIs(EACH, NodeReq::Absent))
            .effect(Effect::WritesStderr)
            .exit(ExitSpec::Failure),
            case(Guard {
                requires_flags: vec!['f'],
                forbids_flags: vec!['r'],
                operand_count: None,
            })
            .pre(Cond::OperandIs(EACH, NodeReq::File))
            .effect(Effect::Deletes(EACH))
            .exit(ExitSpec::Success),
            case(Guard {
                requires_flags: vec!['f'],
                forbids_flags: vec!['r'],
                operand_count: None,
            })
            .pre(Cond::OperandIs(EACH, NodeReq::Absent))
            .exit(ExitSpec::Success),
            case(Guard::without_flags(&['r', 'f']))
                .pre(Cond::OperandIs(EACH, NodeReq::File))
                .effect(Effect::Deletes(EACH))
                .exit(ExitSpec::Success),
            case(Guard::without_flags(&['r', 'f']))
                .pre(Cond::OperandIs(EACH, NodeReq::Absent))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
            // A directory without -r always fails, -f or not.
            case(Guard::without_flags(&['r']))
                .pre(Cond::OperandIs(EACH, NodeReq::Dir))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
        ],
    }
}

fn rmdir_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("rmdir", 1, None).flag('p', "remove ancestors too"),
        cases: vec![
            case(Guard::always())
                .pre(Cond::OperandIs(EACH, NodeReq::Dir))
                .effect(Effect::Deletes(EACH))
                .exit(ExitSpec::Success),
            case(Guard::always())
                .pre(Cond::OperandIs(EACH, NodeReq::Absent))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
            case(Guard::always())
                .pre(Cond::OperandIs(EACH, NodeReq::File))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
        ],
    }
}

fn mkdir_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("mkdir", 1, None)
            .flag('p', "make parents as needed; no error if existing")
            .option('m', ArgKind::Str, "set file mode"),
        cases: vec![
            case(Guard::with_flags(&['p']))
                .effect(Effect::CreatesDirChain(EACH))
                .exit(ExitSpec::Success),
            case(Guard::without_flags(&['p']))
                .pre(Cond::OperandIs(EACH, NodeReq::Absent))
                .effect(Effect::CreatesDir(EACH))
                .exit(ExitSpec::Success),
            case(Guard::without_flags(&['p']))
                .pre(Cond::OperandIs(EACH, NodeReq::Exists))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
        ],
    }
}

fn touch_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("touch", 1, None)
            .flag('a', "change access time only")
            .flag('m', "change modification time only")
            .flag('c', "do not create"),
        cases: vec![
            case(Guard::without_flags(&['c']))
                .pre(Cond::OperandIs(EACH, NodeReq::Absent))
                .effect(Effect::CreatesFile(EACH))
                .exit(ExitSpec::Success),
            case(Guard::always())
                .pre(Cond::OperandIs(EACH, NodeReq::Exists))
                .effect(Effect::Writes(EACH))
                .exit(ExitSpec::Success),
            case(Guard::with_flags(&['c']))
                .pre(Cond::OperandIs(EACH, NodeReq::Absent))
                .exit(ExitSpec::Success),
        ],
    }
}

fn cat_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("cat", 0, None)
            .flag('u', "unbuffered")
            .flag('n', "number output lines"),
        cases: vec![
            case(Guard {
                operand_count: Some((1, None)),
                ..Guard::default()
            })
            .pre(Cond::OperandIs(EACH, NodeReq::File))
            .effect(Effect::Reads(EACH))
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Success),
            case(Guard {
                operand_count: Some((1, None)),
                ..Guard::default()
            })
            .pre(Cond::OperandIs(EACH, NodeReq::Absent))
            .effect(Effect::WritesStderr)
            .exit(ExitSpec::Failure),
            case(Guard {
                operand_count: Some((1, None)),
                ..Guard::default()
            })
            .pre(Cond::OperandIs(EACH, NodeReq::Dir))
            .effect(Effect::WritesStderr)
            .exit(ExitSpec::Failure),
            // No operands: a pure stdin→stdout filter.
            case(Guard {
                operand_count: Some((0, Some(0))),
                ..Guard::default()
            })
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Success),
        ],
    }
}

fn cp_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("cp", 2, None)
            .flag('r', "copy directories recursively")
            .flag('R', "copy directories recursively")
            .flag('f', "force")
            .flag('p', "preserve attributes"),
        cases: vec![
            case(Guard::with_flags(&['r']))
                .pre(Cond::OperandIs(0, NodeReq::Exists))
                .effect(Effect::CopiesTo { src: 0, dst: 1 })
                .exit(ExitSpec::Success),
            case(Guard::without_flags(&['r', 'R']))
                .pre(Cond::OperandIs(0, NodeReq::File))
                .effect(Effect::CopiesTo { src: 0, dst: 1 })
                .exit(ExitSpec::Success),
            case(Guard::without_flags(&['r', 'R']))
                .pre(Cond::OperandIs(0, NodeReq::Dir))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
            case(Guard::always())
                .pre(Cond::OperandIs(0, NodeReq::Absent))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
        ],
    }
}

fn mv_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("mv", 2, None)
            .flag('f', "force")
            .flag('i', "interactive"),
        cases: vec![
            case(Guard::always())
                .pre(Cond::OperandIs(0, NodeReq::Exists))
                .effect(Effect::MovesTo { src: 0, dst: 1 })
                .exit(ExitSpec::Success),
            case(Guard::always())
                .pre(Cond::OperandIs(0, NodeReq::Absent))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
        ],
    }
}

fn ls_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("ls", 0, None)
            .flag('l', "long listing format")
            .flag('a', "include entries starting with .")
            .flag('1', "one entry per line"),
        cases: vec![
            case(Guard::with_flags(&['l']))
                .pre(Cond::OperandIs(EACH, NodeReq::Exists))
                .effect(Effect::Reads(EACH))
                .effect(Effect::WritesStdout)
                .exit(ExitSpec::Success)
                // The `longlist` descriptive type (§4 "Ergonomic
                // annotations"): mode, links, owner, group, size, date,
                // name.
                .stdout("[-dlbcps][-rwxsStT]{9} +[0-9]+ +[^ ]+ +[^ ]+ +[0-9]+ .*"),
            case(Guard::without_flags(&['l']))
                .pre(Cond::OperandIs(EACH, NodeReq::Exists))
                .effect(Effect::Reads(EACH))
                .effect(Effect::WritesStdout)
                .exit(ExitSpec::Success),
            case(Guard::always())
                .pre(Cond::OperandIs(EACH, NodeReq::Absent))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
        ],
    }
}

fn realpath_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("realpath", 1, None)
            .flag('e', "all components must exist")
            .flag('m', "no components need exist"),
        cases: vec![
            case(Guard::without_flags(&['m']))
                .pre(Cond::OperandIs(EACH, NodeReq::Exists))
                .effect(Effect::WritesStdout)
                .exit(ExitSpec::Success)
                .stdout(r"/([^/\n]+(/[^/\n]+)*)?"),
            case(Guard::without_flags(&['m']))
                .pre(Cond::OperandIs(EACH, NodeReq::Absent))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
            case(Guard::with_flags(&['m']))
                .effect(Effect::WritesStdout)
                .exit(ExitSpec::Success)
                .stdout(r"/([^/\n]+(/[^/\n]+)*)?"),
        ],
    }
}

/// `cd` is a shell built-in; the engine implements it natively, but the
/// spec records the same behavior for the miner to rediscover.
fn cd_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("cd", 0, Some(1)),
        cases: vec![
            case(Guard {
                operand_count: Some((1, Some(1))),
                ..Guard::default()
            })
            .pre(Cond::OperandIs(0, NodeReq::Dir))
            .effect(Effect::ChangesCwdTo(0))
            .exit(ExitSpec::Success),
            case(Guard {
                operand_count: Some((1, Some(1))),
                ..Guard::default()
            })
            .pre(Cond::OperandIs(0, NodeReq::Absent))
            .effect(Effect::WritesStderr)
            .exit(ExitSpec::Failure),
            case(Guard {
                operand_count: Some((1, Some(1))),
                ..Guard::default()
            })
            .pre(Cond::OperandIs(0, NodeReq::File))
            .effect(Effect::WritesStderr)
            .exit(ExitSpec::Failure),
        ],
    }
}

fn grep_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("grep", 1, None)
            .operands_of(ArgKind::Pattern)
            .flag('q', "quiet: exit status only")
            .flag('i', "case-insensitive")
            .flag('v', "invert match")
            .flag('c', "count matching lines")
            .flag('n', "prefix line numbers")
            .flag('o', "print only matching parts")
            .flag('E', "extended regular expressions")
            .flag('F', "fixed strings")
            .option('e', ArgKind::Pattern, "pattern"),
        cases: vec![
            // With file operands (pattern is operand 0, files follow).
            case(Guard {
                operand_count: Some((2, None)),
                ..Guard::default()
            })
            .pre(Cond::OperandIs(REST, NodeReq::File))
            .effect(Effect::Reads(REST))
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Unknown),
            case(Guard {
                operand_count: Some((2, None)),
                ..Guard::default()
            })
            .pre(Cond::OperandIs(REST, NodeReq::Absent))
            .effect(Effect::WritesStderr)
            .exit(ExitSpec::Failure),
            // Pure filter form. Stream types come from shoal-streamty.
            case(Guard {
                operand_count: Some((1, Some(1))),
                ..Guard::default()
            })
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Unknown),
        ],
    }
}

fn sed_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("sed", 1, None)
            .operands_of(ArgKind::Pattern)
            .flag('n', "suppress automatic printing")
            .option('e', ArgKind::Pattern, "script")
            .option('i', ArgKind::Str, "edit in place"),
        cases: vec![
            case(Guard {
                operand_count: Some((2, None)),
                ..Guard::default()
            })
            .pre(Cond::OperandIs(REST, NodeReq::File))
            .effect(Effect::Reads(REST))
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Success),
            case(Guard {
                operand_count: Some((1, Some(1))),
                ..Guard::default()
            })
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Success),
        ],
    }
}

/// A plain stdin→stdout filter with optional file operands.
fn filter_spec(name: &str, syntax: CmdSyntax) -> CommandSpec {
    CommandSpec {
        syntax,
        cases: vec![
            case(Guard {
                operand_count: Some((1, None)),
                ..Guard::default()
            })
            .pre(Cond::OperandIs(EACH, NodeReq::File))
            .effect(Effect::Reads(EACH))
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Success),
            case(Guard {
                operand_count: Some((1, None)),
                ..Guard::default()
            })
            .pre(Cond::OperandIs(EACH, NodeReq::Absent))
            .effect(Effect::WritesStderr)
            .exit(ExitSpec::Failure),
            case(Guard {
                operand_count: Some((0, Some(0))),
                ..Guard::default()
            })
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Success),
        ],
    }
    .rename(name)
}

impl CommandSpec {
    /// Renames the spec (used by the shared filter constructor).
    fn rename(mut self, name: &str) -> CommandSpec {
        self.syntax.name = name.to_string();
        self
    }
}

fn cut_spec() -> CommandSpec {
    filter_spec(
        "cut",
        CmdSyntax::simple("cut", 0, None)
            .option('f', ArgKind::Number, "select fields")
            .option('c', ArgKind::Number, "select characters")
            .option('d', ArgKind::Str, "field delimiter"),
    )
}

fn sort_spec() -> CommandSpec {
    filter_spec(
        "sort",
        CmdSyntax::simple("sort", 0, None)
            .flag('g', "general numeric sort")
            .flag('n', "numeric sort")
            .flag('r', "reverse")
            .flag('u', "unique")
            .option('k', ArgKind::Str, "sort key")
            .option('t', ArgKind::Str, "field separator"),
    )
}

fn head_spec() -> CommandSpec {
    filter_spec(
        "head",
        CmdSyntax::simple("head", 0, None).option('n', ArgKind::Number, "line count"),
    )
}

fn tail_spec() -> CommandSpec {
    filter_spec(
        "tail",
        CmdSyntax::simple("tail", 0, None)
            .flag('f', "follow appended data")
            .option('n', ArgKind::Number, "line count"),
    )
}

fn tr_spec() -> CommandSpec {
    filter_spec(
        "tr",
        CmdSyntax::simple("tr", 0, Some(2))
            .operands_of(ArgKind::Str)
            .flag('d', "delete characters")
            .flag('s', "squeeze repeats"),
    )
}

fn uniq_spec() -> CommandSpec {
    filter_spec(
        "uniq",
        CmdSyntax::simple("uniq", 0, Some(2))
            .flag('c', "prefix counts")
            .flag('d', "only duplicates")
            .flag('u', "only unique lines"),
    )
}

fn wc_spec() -> CommandSpec {
    let mut spec = filter_spec(
        "wc",
        CmdSyntax::simple("wc", 0, None)
            .flag('l', "count lines")
            .flag('w', "count words")
            .flag('c', "count bytes"),
    );
    // Filter form of `wc -l` emits a single number.
    if let Some(c) = spec.cases.last_mut() {
        c.stdout_line = Some(" *[0-9]+".to_string());
    }
    spec
}

fn echo_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("echo", 0, None)
            .operands_of(ArgKind::Str)
            .flag('n', "no trailing newline"),
        cases: vec![case(Guard::always())
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Success)],
    }
}

fn lsb_release_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("lsb_release", 0, Some(0))
            .flag('a', "all information")
            .flag('d', "description only")
            .flag('r', "release only")
            .flag('i', "distributor id only")
            .flag('c', "codename only")
            .flag('s', "short output"),
        cases: vec![
            // The paper's Fig. 5 input: "lines of label-value pairs
            // separated by tabs".
            case(Guard::with_flags(&['a']))
                .effect(Effect::WritesStdout)
                .exit(ExitSpec::Success)
                .stdout(r"(Distributor ID|Description|Release|Codename):\t.*"),
            case(Guard::without_flags(&['a']))
                .effect(Effect::WritesStdout)
                .exit(ExitSpec::Success),
        ],
    }
}

fn uname_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("uname", 0, Some(0))
            .flag('s', "kernel name")
            .flag('a', "all")
            .flag('r', "release")
            .flag('m', "machine"),
        cases: vec![case(Guard::always())
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Success)
            // Platform-dependent output (E12).
            .stdout("(Linux|Darwin|FreeBSD).*")],
    }
}

fn curl_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("curl", 1, None)
            .operands_of(ArgKind::Str)
            .flag('s', "silent")
            .flag('L', "follow redirects")
            .flag('f', "fail on HTTP errors")
            .option('o', ArgKind::Path, "write output to file"),
        cases: vec![case(Guard::always())
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Unknown)],
    }
}

fn tee_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("tee", 0, None).flag('a', "append"),
        cases: vec![case(Guard::always())
            .effect(Effect::CreatesFile(EACH))
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Success)],
    }
}

fn ln_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("ln", 2, Some(2))
            .flag('s', "symbolic link")
            .flag('f', "force"),
        cases: vec![
            case(Guard::always())
                .pre(Cond::OperandIs(0, NodeReq::Exists))
                .effect(Effect::CreatesFile(1))
                .exit(ExitSpec::Success),
            case(Guard::without_flags(&['s']))
                .pre(Cond::OperandIs(0, NodeReq::Absent))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
        ],
    }
}

fn chmod_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("chmod", 2, None).flag('R', "recursive"),
        cases: vec![
            case(Guard::always())
                .pre(Cond::OperandIs(REST, NodeReq::Exists))
                .effect(Effect::Writes(REST))
                .exit(ExitSpec::Success),
            case(Guard::always())
                .pre(Cond::OperandIs(REST, NodeReq::Absent))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
        ],
    }
}

fn find_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("find", 1, None).operands_of(ArgKind::Str),
        cases: vec![
            case(Guard::always())
                .pre(Cond::OperandIs(0, NodeReq::Exists))
                .effect(Effect::Reads(0))
                .effect(Effect::WritesStdout)
                .exit(ExitSpec::Success),
            case(Guard::always())
                .pre(Cond::OperandIs(0, NodeReq::Absent))
                .effect(Effect::WritesStderr)
                .exit(ExitSpec::Failure),
        ],
    }
}

fn basename_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("basename", 1, Some(2)).operands_of(ArgKind::Str),
        cases: vec![case(Guard::always())
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Success)
            .stdout(r"[^/\n]*")],
    }
}

fn dirname_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("dirname", 1, Some(1)).operands_of(ArgKind::Str),
        cases: vec![case(Guard::always())
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Success)],
    }
}

fn date_spec() -> CommandSpec {
    CommandSpec {
        syntax: CmdSyntax::simple("date", 0, Some(1))
            .operands_of(ArgKind::Str)
            .flag('u', "UTC"),
        cases: vec![case(Guard::always())
            .effect(Effect::WritesStdout)
            .exit(ExitSpec::Success)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Invocation;

    #[test]
    fn library_has_core_utilities() {
        let lib = SpecLibrary::builtin();
        for name in [
            "rm",
            "mkdir",
            "cat",
            "cp",
            "mv",
            "cd",
            "grep",
            "sed",
            "cut",
            "sort",
            "lsb_release",
            "realpath",
            "ls",
            "touch",
            "curl",
            "uname",
        ] {
            assert!(lib.get(name).is_some(), "missing spec for {name}");
        }
        assert!(lib.len() >= 25);
    }

    #[test]
    fn fingerprint_is_stable_and_change_sensitive() {
        let lib = SpecLibrary::builtin();
        let fp = lib.fingerprint();
        assert_eq!(fp, SpecLibrary::builtin().fingerprint(), "deterministic");
        // Any spec change must move the fingerprint: drop one utility.
        let mut smaller = lib.clone();
        smaller.specs.remove("rm");
        assert_ne!(fp, smaller.fingerprint());
        assert_ne!(SpecLibrary::new().fingerprint(), fp);
    }

    #[test]
    fn rm_paper_triple() {
        // The paper's displayed triple: rm -f -r on an existing path
        // deletes it and exits 0.
        let lib = SpecLibrary::builtin();
        let rm = lib.get("rm").unwrap();
        let inv = Invocation::new("rm", &['f', 'r'], &["/some/dir"]);
        let cases: Vec<_> = rm.applicable(&inv).collect();
        assert_eq!(cases.len(), 1, "rm -fr has exactly one applicable case");
        let c = cases[0];
        assert!(c.effects.contains(&Effect::Deletes(EACH)));
        assert_eq!(c.exit, ExitSpec::Success);
    }

    #[test]
    fn rm_without_r_on_dir_fails() {
        let lib = SpecLibrary::builtin();
        let rm = lib.get("rm").unwrap();
        let inv = Invocation::new("rm", &['f'], &["/some/dir"]);
        let dir_case = rm
            .applicable(&inv)
            .find(|c| c.pre.contains(&Cond::OperandIs(EACH, NodeReq::Dir)))
            .expect("dir case applies");
        assert_eq!(dir_case.exit, ExitSpec::Failure);
    }

    #[test]
    fn rm_f_on_missing_succeeds_quietly() {
        let lib = SpecLibrary::builtin();
        let rm = lib.get("rm").unwrap();
        let inv = Invocation::new("rm", &['f'], &["/nope"]);
        let absent_ok = rm.applicable(&inv).any(|c| {
            c.pre.contains(&Cond::OperandIs(EACH, NodeReq::Absent)) && c.exit == ExitSpec::Success
        });
        assert!(absent_ok);
        // But without -f, missing operands fail.
        let inv2 = Invocation::new("rm", &[], &["/nope"]);
        let absent_fails = rm.applicable(&inv2).any(|c| {
            c.pre.contains(&Cond::OperandIs(EACH, NodeReq::Absent)) && c.exit == ExitSpec::Failure
        });
        assert!(absent_fails);
    }

    #[test]
    fn cd_cases_split_on_target_kind() {
        let lib = SpecLibrary::builtin();
        let cd = lib.get("cd").unwrap();
        let inv = Invocation::new("cd", &[], &["/somewhere"]);
        let cases: Vec<_> = cd.applicable(&inv).collect();
        assert_eq!(cases.len(), 3);
        assert!(cases.iter().any(|c| c.exit == ExitSpec::Success));
        assert!(cases.iter().any(|c| c.exit == ExitSpec::Failure));
    }

    #[test]
    fn lsb_release_stream_type_is_the_fig5_one() {
        let lib = SpecLibrary::builtin();
        let lsb = lib.get("lsb_release").unwrap();
        let inv = Invocation::new("lsb_release", &['a'], &[]);
        let c = lsb.applicable(&inv).next().unwrap();
        assert_eq!(
            c.stdout_line.as_deref(),
            Some(r"(Distributor ID|Description|Release|Codename):\t.*")
        );
    }

    #[test]
    fn operand_marker_expansion() {
        use crate::hoare::operand_indices;
        assert_eq!(operand_indices(EACH, 3), vec![0, 1, 2]);
        assert_eq!(operand_indices(REST, 3), vec![1, 2]);
        assert_eq!(operand_indices(REST, 1), Vec::<usize>::new());
        assert_eq!(operand_indices(1, 3), vec![1]);
        assert_eq!(operand_indices(5, 3), Vec::<usize>::new());
    }

    #[test]
    fn classify_through_library() {
        let lib = SpecLibrary::builtin();
        let rm = lib.get("rm").unwrap();
        let argv: Vec<String> = vec!["-fr".into(), "/steam".into()];
        let inv = rm.syntax.classify(&argv).unwrap();
        assert!(inv.has_flag('f') && inv.has_flag('r'));
    }
}
