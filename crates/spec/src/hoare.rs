//! Hoare-style specification cases.
//!
//! A [`CommandSpec`] bundles a utility's invocation syntax with a list of
//! [`SpecCase`]s. Each case is a Hoare triple specialized to one
//! invocation shape and one file-system situation:
//!
//! ```text
//! { guard(invocation) ∧ pre(world) }  cmd args  { effects(world') ∧ exit }
//! ```
//!
//! The paper's worked example is `rm`'s first case:
//! `{(∃ $p) ∧ (arg 0 $p path.FD)} rm -f -r $p {(∄ $p) ∧ exit 0}`.
//!
//! Cases are checked in order; *all* cases whose guard matches the
//! invocation are candidate behaviors, and the symbolic engine forks one
//! world per candidate whose precondition is satisfiable. The final
//! catch-all failure case is how "anything else fails" is expressed.

use crate::syntax::{CmdSyntax, Invocation};
use std::fmt;

/// Operand marker meaning "every operand" in [`Cond`]s and [`Effect`]s
/// of variadic utilities (`rm a b c` deletes each operand).
pub const EACH: usize = usize::MAX;

/// Operand marker meaning "every operand after the first" — for
/// utilities whose first operand is not a path (`grep pattern file…`).
pub const REST: usize = usize::MAX - 1;

/// Expands an operand marker to the concrete indices it denotes for an
/// invocation with `count` operands.
pub fn operand_indices(marker: usize, count: usize) -> Vec<usize> {
    match marker {
        EACH => (0..count).collect(),
        REST => (1..count).collect(),
        i if i < count => vec![i],
        _ => Vec::new(),
    }
}

/// Requirement on the node an operand resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeReq {
    /// Must be a regular file.
    File,
    /// Must be a directory.
    Dir,
    /// Must exist (any kind).
    Exists,
    /// Must not exist.
    Absent,
    /// No requirement.
    Any,
}

impl fmt::Display for NodeReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeReq::File => "file",
            NodeReq::Dir => "dir",
            NodeReq::Exists => "exists",
            NodeReq::Absent => "absent",
            NodeReq::Any => "any",
        };
        write!(f, "{s}")
    }
}

impl NodeReq {
    /// Parses the textual form used by [`crate::text`].
    pub fn parse(s: &str) -> Option<NodeReq> {
        Some(match s {
            "file" => NodeReq::File,
            "dir" => NodeReq::Dir,
            "exists" => NodeReq::Exists,
            "absent" => NodeReq::Absent,
            "any" => NodeReq::Any,
            _ => return None,
        })
    }
}

/// A precondition over the file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Operand `i` must resolve to a node satisfying the requirement.
    OperandIs(usize, NodeReq),
}

/// A postcondition effect on the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Operand `i` and its subtree are removed.
    Deletes(usize),
    /// The *children* of operand `i` are removed, not the node itself.
    DeletesChildren(usize),
    /// Operand `i` becomes a regular file (created or truncated).
    CreatesFile(usize),
    /// Operand `i` becomes a directory.
    CreatesDir(usize),
    /// Operand `i` and any missing ancestors become directories
    /// (`mkdir -p`).
    CreatesDirChain(usize),
    /// Operand `i` is read (content dependency, no mutation).
    Reads(usize),
    /// Operand `i` is written/appended (content mutation, node remains).
    Writes(usize),
    /// The tree at operand `src` is copied to operand `dst`.
    CopiesTo {
        /// Source operand index.
        src: usize,
        /// Destination operand index.
        dst: usize,
    },
    /// The tree at operand `src` is moved to operand `dst`.
    MovesTo {
        /// Source operand index.
        src: usize,
        /// Destination operand index.
        dst: usize,
    },
    /// The process working directory becomes operand `i` (`cd`).
    ChangesCwdTo(usize),
    /// The command writes to stdout.
    WritesStdout,
    /// The command writes a diagnostic to stderr.
    WritesStderr,
}

/// Exit-status component of the postcondition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitSpec {
    /// Exit code 0.
    Success,
    /// Any non-zero exit code.
    Failure,
    /// Either outcome is possible.
    Unknown,
}

impl fmt::Display for ExitSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExitSpec::Success => "exit 0",
            ExitSpec::Failure => "fails",
            ExitSpec::Unknown => "exit ?",
        };
        write!(f, "{s}")
    }
}

/// Which invocation shapes a case covers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Guard {
    /// Flags that must be present.
    pub requires_flags: Vec<char>,
    /// Flags that must be absent.
    pub forbids_flags: Vec<char>,
    /// Operand-count bounds (min, optional max).
    pub operand_count: Option<(usize, Option<usize>)>,
}

impl Guard {
    /// The unconditional guard.
    pub fn always() -> Guard {
        Guard::default()
    }

    /// Guard requiring the given flags.
    pub fn with_flags(flags: &[char]) -> Guard {
        Guard {
            requires_flags: flags.to_vec(),
            ..Guard::default()
        }
    }

    /// Guard forbidding the given flags.
    pub fn without_flags(flags: &[char]) -> Guard {
        Guard {
            forbids_flags: flags.to_vec(),
            ..Guard::default()
        }
    }

    /// Does the guard cover this invocation?
    pub fn matches(&self, inv: &Invocation) -> bool {
        self.requires_flags.iter().all(|f| inv.has_flag(*f))
            && self.forbids_flags.iter().all(|f| !inv.has_flag(*f))
            && match self.operand_count {
                None => true,
                Some((min, max)) => {
                    inv.operands.len() >= min && max.is_none_or(|m| inv.operands.len() <= m)
                }
            }
    }
}

/// One Hoare-style case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecCase {
    /// Which invocations this case covers.
    pub guard: Guard,
    /// Preconditions (conjunction).
    pub pre: Vec<Cond>,
    /// Effects on success of the precondition.
    pub effects: Vec<Effect>,
    /// Exit status.
    pub exit: ExitSpec,
    /// Output line shape on stdout as an ERE (exact-match type), if the
    /// case specifies one. Stored as text to keep this crate independent
    /// of the regex engine; `shoal-streamty` compiles it.
    pub stdout_line: Option<String>,
}

impl SpecCase {
    /// A new case with the given guard.
    pub fn new(guard: Guard) -> SpecCase {
        SpecCase {
            guard,
            pre: Vec::new(),
            effects: Vec::new(),
            exit: ExitSpec::Success,
            stdout_line: None,
        }
    }

    /// Adds a precondition (builder style).
    pub fn pre(mut self, c: Cond) -> SpecCase {
        self.pre.push(c);
        self
    }

    /// Adds an effect (builder style).
    pub fn effect(mut self, e: Effect) -> SpecCase {
        self.effects.push(e);
        self
    }

    /// Sets the exit status (builder style).
    pub fn exit(mut self, e: ExitSpec) -> SpecCase {
        self.exit = e;
        self
    }

    /// Sets the stdout line type (builder style).
    pub fn stdout(mut self, pattern: &str) -> SpecCase {
        self.stdout_line = Some(pattern.to_string());
        self
    }
}

/// A utility's full specification: syntax plus behavior cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandSpec {
    /// Invocation syntax.
    pub syntax: CmdSyntax,
    /// Behavior cases, in order.
    pub cases: Vec<SpecCase>,
}

impl CommandSpec {
    /// The cases applicable to one classified invocation.
    pub fn applicable<'a>(&'a self, inv: &'a Invocation) -> impl Iterator<Item = &'a SpecCase> {
        self.cases.iter().filter(move |c| c.guard.matches(inv))
    }

    /// The utility name.
    pub fn name(&self) -> &str {
        &self.syntax.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Invocation;

    #[test]
    fn guard_matching() {
        let inv = Invocation::new("rm", &['f', 'r'], &["/x"]);
        assert!(Guard::always().matches(&inv));
        assert!(Guard::with_flags(&['f']).matches(&inv));
        assert!(Guard::with_flags(&['f', 'r']).matches(&inv));
        assert!(!Guard::with_flags(&['i']).matches(&inv));
        assert!(!Guard::without_flags(&['r']).matches(&inv));
        let counted = Guard {
            operand_count: Some((2, Some(3))),
            ..Guard::default()
        };
        assert!(!counted.matches(&inv));
        let counted1 = Guard {
            operand_count: Some((1, None)),
            ..Guard::default()
        };
        assert!(counted1.matches(&inv));
    }

    #[test]
    fn node_req_compat_roundtrip() {
        for r in [
            NodeReq::File,
            NodeReq::Dir,
            NodeReq::Exists,
            NodeReq::Absent,
            NodeReq::Any,
        ] {
            assert_eq!(NodeReq::parse(&r.to_string()), Some(r));
        }
        assert_eq!(NodeReq::parse("garbage"), None);
    }

    #[test]
    fn case_builder_and_applicability() {
        let spec = CommandSpec {
            syntax: crate::syntax::CmdSyntax::simple("rm", 1, None)
                .flag('f', "force")
                .flag('r', "recursive"),
            cases: vec![
                SpecCase::new(Guard::with_flags(&['r']))
                    .pre(Cond::OperandIs(0, NodeReq::Exists))
                    .effect(Effect::Deletes(0))
                    .exit(ExitSpec::Success),
                SpecCase::new(Guard::without_flags(&['r']))
                    .pre(Cond::OperandIs(0, NodeReq::Dir))
                    .effect(Effect::WritesStderr)
                    .exit(ExitSpec::Failure),
            ],
        };
        let recursive = Invocation::new("rm", &['r'], &["/x"]);
        let plain = Invocation::new("rm", &[], &["/x"]);
        assert_eq!(spec.applicable(&recursive).count(), 1);
        let plain_cases: Vec<_> = spec.applicable(&plain).collect();
        assert_eq!(plain_cases.len(), 1);
        assert_eq!(plain_cases[0].exit, ExitSpec::Failure);
    }
}
