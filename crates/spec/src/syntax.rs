//! The invocation-syntax DSL and the argv classifier.
//!
//! A [`CmdSyntax`] describes the *legitimate invocations* of one utility
//! in the XBD utility-argument-conventions style: Boolean flags (which
//! may cluster: `rm -fr` ≡ `rm -f -r`), options with arguments, and a
//! bounded number of typed operands. [`CmdSyntax::classify`] parses a
//! concrete argv against the DSL, producing an [`Invocation`] — the
//! normal form every downstream consumer (spec cases, the miner's
//! invocation enumerator, the analyzer) works with.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What kind of value an option argument or operand is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArgKind {
    /// A file-system path.
    Path,
    /// An uninterpreted string.
    Str,
    /// A decimal number.
    Number,
    /// A regular-expression or glob pattern.
    Pattern,
}

impl fmt::Display for ArgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArgKind::Path => "path",
            ArgKind::Str => "str",
            ArgKind::Number => "number",
            ArgKind::Pattern => "pattern",
        };
        write!(f, "{s}")
    }
}

impl ArgKind {
    /// Parses the textual form used by [`crate::text`].
    pub fn parse(s: &str) -> Option<ArgKind> {
        Some(match s {
            "path" => ArgKind::Path,
            "str" => ArgKind::Str,
            "number" => ArgKind::Number,
            "pattern" => ArgKind::Pattern,
            _ => return None,
        })
    }
}

/// A Boolean flag (`-f`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagSpec {
    /// The flag character.
    pub flag: char,
    /// One-line description (from documentation).
    pub description: String,
}

/// An option that carries an argument (`-o FILE`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptSpec {
    /// The option character.
    pub flag: char,
    /// The kind of its argument.
    pub arg: ArgKind,
    /// One-line description (from documentation).
    pub description: String,
}

/// The invocation syntax of one utility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdSyntax {
    /// Utility name.
    pub name: String,
    /// Boolean flags.
    pub flags: Vec<FlagSpec>,
    /// Argument-carrying options.
    pub options: Vec<OptSpec>,
    /// Minimum number of operands.
    pub min_operands: usize,
    /// Maximum number of operands (`None` = unbounded).
    pub max_operands: Option<usize>,
    /// The kind of the operands.
    pub operand_kind: ArgKind,
}

/// A classified invocation: the normal form of one concrete command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// Utility name.
    pub name: String,
    /// Flags present (deduplicated, sorted).
    pub flags: BTreeSet<char>,
    /// Options present with their argument values.
    pub options: BTreeMap<char, String>,
    /// Positional operands in order.
    pub operands: Vec<String>,
}

/// Why an argv failed to classify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvocationError {
    /// A flag/option character the syntax does not define.
    UnknownFlag(char),
    /// An option that requires an argument appeared last.
    MissingOptionArg(char),
    /// Fewer operands than `min_operands`.
    TooFewOperands { got: usize, min: usize },
    /// More operands than `max_operands`.
    TooManyOperands { got: usize, max: usize },
}

impl fmt::Display for InvocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvocationError::UnknownFlag(c) => write!(f, "unknown flag -{c}"),
            InvocationError::MissingOptionArg(c) => {
                write!(f, "option -{c} requires an argument")
            }
            InvocationError::TooFewOperands { got, min } => {
                write!(f, "expected at least {min} operand(s), got {got}")
            }
            InvocationError::TooManyOperands { got, max } => {
                write!(f, "expected at most {max} operand(s), got {got}")
            }
        }
    }
}

impl std::error::Error for InvocationError {}

impl CmdSyntax {
    /// A syntax with no flags/options and `min..=max` path operands.
    pub fn simple(name: &str, min: usize, max: Option<usize>) -> CmdSyntax {
        CmdSyntax {
            name: name.to_string(),
            flags: Vec::new(),
            options: Vec::new(),
            min_operands: min,
            max_operands: max,
            operand_kind: ArgKind::Path,
        }
    }

    /// Adds a Boolean flag (builder style).
    pub fn flag(mut self, c: char, description: &str) -> CmdSyntax {
        self.flags.push(FlagSpec {
            flag: c,
            description: description.to_string(),
        });
        self
    }

    /// Adds an option with argument (builder style).
    pub fn option(mut self, c: char, arg: ArgKind, description: &str) -> CmdSyntax {
        self.options.push(OptSpec {
            flag: c,
            arg,
            description: description.to_string(),
        });
        self
    }

    /// Sets the operand kind (builder style).
    pub fn operands_of(mut self, kind: ArgKind) -> CmdSyntax {
        self.operand_kind = kind;
        self
    }

    /// Is `c` a defined Boolean flag?
    pub fn has_flag(&self, c: char) -> bool {
        self.flags.iter().any(|f| f.flag == c)
    }

    /// Is `c` a defined argument-carrying option?
    pub fn has_option(&self, c: char) -> bool {
        self.options.iter().any(|o| o.flag == c)
    }

    /// Classifies `args` (argv without the command name) against this
    /// syntax: flag clustering, `--` end-of-options, option arguments
    /// either attached (`-oX`) or separate (`-o X`).
    ///
    /// # Errors
    ///
    /// Returns an [`InvocationError`] when the argv is not a legitimate
    /// invocation per the syntax.
    pub fn classify(&self, args: &[String]) -> Result<Invocation, InvocationError> {
        let mut flags = BTreeSet::new();
        let mut options = BTreeMap::new();
        let mut operands = Vec::new();
        let mut no_more_options = false;
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if no_more_options || !arg.starts_with('-') || arg == "-" {
                operands.push(arg.clone());
                continue;
            }
            if arg == "--" {
                no_more_options = true;
                continue;
            }
            let mut chars = arg[1..].chars();
            while let Some(c) = chars.next() {
                if self.has_flag(c) {
                    flags.insert(c);
                } else if self.has_option(c) {
                    let rest: String = chars.collect();
                    let value = if !rest.is_empty() {
                        rest
                    } else {
                        match it.next() {
                            Some(v) => v.clone(),
                            None => return Err(InvocationError::MissingOptionArg(c)),
                        }
                    };
                    options.insert(c, value);
                    break;
                } else {
                    return Err(InvocationError::UnknownFlag(c));
                }
            }
        }
        if operands.len() < self.min_operands {
            return Err(InvocationError::TooFewOperands {
                got: operands.len(),
                min: self.min_operands,
            });
        }
        if let Some(max) = self.max_operands {
            if operands.len() > max {
                return Err(InvocationError::TooManyOperands {
                    got: operands.len(),
                    max,
                });
            }
        }
        Ok(Invocation {
            name: self.name.clone(),
            flags,
            options,
            operands,
        })
    }

    /// Enumerates every *flag subset* invocation shape with the given
    /// placeholder operands — the miner's sweep (Fig. 4, mid). Options
    /// with arguments are left out of the power set (probed separately)
    /// to keep the sweep linear in practice.
    pub fn enumerate_flag_sets(&self) -> Vec<BTreeSet<char>> {
        let flags: Vec<char> = self.flags.iter().map(|f| f.flag).collect();
        let n = flags.len().min(12); // Cap the power set defensively.
        let mut out = Vec::with_capacity(1 << n);
        for mask in 0u32..(1 << n) {
            let mut set = BTreeSet::new();
            for (i, &f) in flags.iter().take(n).enumerate() {
                if mask & (1 << i) != 0 {
                    set.insert(f);
                }
            }
            out.push(set);
        }
        out
    }
}

impl Invocation {
    /// Builds an invocation directly (tests, the miner).
    pub fn new(name: &str, flags: &[char], operands: &[&str]) -> Invocation {
        Invocation {
            name: name.to_string(),
            flags: flags.iter().copied().collect(),
            options: BTreeMap::new(),
            operands: operands.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Does the invocation carry flag `c`?
    pub fn has_flag(&self, c: char) -> bool {
        self.flags.contains(&c)
    }

    /// Renders back to an argv (canonical order: flags, options,
    /// operands).
    pub fn to_argv(&self) -> Vec<String> {
        let mut out = Vec::new();
        for f in &self.flags {
            out.push(format!("-{f}"));
        }
        for (o, v) in &self.options {
            out.push(format!("-{o}"));
            out.push(v.clone());
        }
        out.extend(self.operands.iter().cloned());
        out
    }
}

impl fmt::Display for Invocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for a in self.to_argv() {
            write!(f, " {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm_syntax() -> CmdSyntax {
        CmdSyntax::simple("rm", 1, None)
            .flag('f', "force")
            .flag('r', "recursive")
            .flag('i', "interactive")
            .flag('v', "verbose")
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn classify_separate_flags() {
        let inv = rm_syntax()
            .classify(&argv(&["-f", "-r", "a", "b"]))
            .unwrap();
        assert!(inv.has_flag('f') && inv.has_flag('r'));
        assert_eq!(inv.operands, vec!["a", "b"]);
    }

    #[test]
    fn classify_clustered_flags() {
        // The paper's `rm -fr` — clustering per XBD conventions.
        let inv = rm_syntax().classify(&argv(&["-fr", "x"])).unwrap();
        assert!(inv.has_flag('f') && inv.has_flag('r'));
        assert_eq!(
            inv,
            rm_syntax().classify(&argv(&["-f", "-r", "x"])).unwrap(),
            "-fr and -f -r are the same invocation"
        );
    }

    #[test]
    fn classify_double_dash() {
        let inv = rm_syntax().classify(&argv(&["--", "-f"])).unwrap();
        assert!(inv.flags.is_empty());
        assert_eq!(inv.operands, vec!["-f"]);
    }

    #[test]
    fn classify_dash_operand() {
        let syn = CmdSyntax::simple("cat", 0, None);
        let inv = syn.classify(&argv(&["-"])).unwrap();
        assert_eq!(inv.operands, vec!["-"]);
    }

    #[test]
    fn classify_errors() {
        assert_eq!(
            rm_syntax().classify(&argv(&["-z", "x"])),
            Err(InvocationError::UnknownFlag('z'))
        );
        assert_eq!(
            rm_syntax().classify(&argv(&[])),
            Err(InvocationError::TooFewOperands { got: 0, min: 1 })
        );
        let one = CmdSyntax::simple("realpath", 1, Some(1));
        assert_eq!(
            one.classify(&argv(&["a", "b"])),
            Err(InvocationError::TooManyOperands { got: 2, max: 1 })
        );
    }

    #[test]
    fn options_with_arguments() {
        let syn = CmdSyntax::simple("cut", 0, None)
            .option('f', ArgKind::Number, "fields")
            .option('d', ArgKind::Str, "delimiter");
        let attached = syn.classify(&argv(&["-f2"])).unwrap();
        assert_eq!(attached.options.get(&'f').map(String::as_str), Some("2"));
        let separate = syn.classify(&argv(&["-f", "2", "-d", ":"])).unwrap();
        assert_eq!(separate.options.get(&'f').map(String::as_str), Some("2"));
        assert_eq!(separate.options.get(&'d').map(String::as_str), Some(":"));
        assert_eq!(
            syn.classify(&argv(&["-f"])),
            Err(InvocationError::MissingOptionArg('f'))
        );
    }

    #[test]
    fn flag_set_enumeration() {
        let sets = rm_syntax().enumerate_flag_sets();
        assert_eq!(sets.len(), 16); // 2^4 subsets.
        assert!(sets.iter().any(|s| s.is_empty()));
        assert!(sets.iter().any(|s| s.len() == 4));
        // The paper's enumeration: rm { , -f, -r, -f -r } $p is a subset.
        for want in [vec![], vec!['f'], vec!['r'], vec!['f', 'r']] {
            let want: BTreeSet<char> = want.into_iter().collect();
            assert!(sets.contains(&want));
        }
    }

    #[test]
    fn invocation_display_and_argv() {
        let inv = Invocation::new("rm", &['r', 'f'], &["/tmp/x"]);
        assert_eq!(inv.to_string(), "rm -f -r /tmp/x");
        let back = rm_syntax().classify(&inv.to_argv()).unwrap();
        assert_eq!(back, inv);
    }
}
