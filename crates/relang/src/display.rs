//! Rendering regexes back to a readable ERE-like syntax.
//!
//! Diagnostics quote constraints at users ("`$STEAMROOT` is constrained to
//! `/?([^/]*/)*[^/]+`"), so the printer aims for the notation Unix
//! developers already read, falling back to explicit `∅`, `ε`, `&` and
//! `!` for the extended operators that plain ERE cannot express.

use crate::ast::Regex;
use crate::class::ByteClass;
use std::fmt;

/// Operator precedence levels for parenthesization.
#[derive(PartialEq, PartialOrd, Clone, Copy)]
enum Prec {
    Alt = 0,
    And = 1,
    Concat = 2,
    Repeat = 3,
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_prec(f, self, Prec::Alt)
    }
}

fn write_class(f: &mut fmt::Formatter<'_>, c: &ByteClass) -> fmt::Result {
    if *c == ByteClass::ALL {
        return write!(f, "(.|\\n)");
    }
    if *c == ByteClass::dot() {
        return write!(f, ".");
    }
    if c.len() == 1 {
        return write_byte(f, c.min_byte().expect("len 1"), false);
    }
    // Prefer the shorter of the class and its complement.
    let comp = c.complement();
    let (neg, show) = if comp.ranges().len() < c.ranges().len() && !comp.is_empty() {
        (true, comp)
    } else {
        (false, *c)
    };
    write!(f, "[{}", if neg { "^" } else { "" })?;
    for (lo, hi) in show.ranges() {
        if lo == hi {
            write_byte(f, lo, true)?;
        } else if hi == lo + 1 {
            write_byte(f, lo, true)?;
            write_byte(f, hi, true)?;
        } else {
            write_byte(f, lo, true)?;
            write!(f, "-")?;
            write_byte(f, hi, true)?;
        }
    }
    write!(f, "]")
}

fn write_byte(f: &mut fmt::Formatter<'_>, b: u8, in_class: bool) -> fmt::Result {
    let metas: &[u8] = if in_class {
        b"]\\^-"
    } else {
        b".[]()*+?{}|^$\\"
    };
    match b {
        b'\t' => write!(f, "\\t"),
        b'\n' => write!(f, "\\n"),
        b'\r' => write!(f, "\\r"),
        0x20..=0x7e => {
            if metas.contains(&b) {
                write!(f, "\\{}", b as char)
            } else {
                write!(f, "{}", b as char)
            }
        }
        other => write!(f, "\\x{other:02x}"),
    }
}

/// Is `r` an alternation of the form `x|ε`, printable as `x?`?
fn as_opt(r: &Regex) -> Option<&Regex> {
    if let Regex::Alt(parts) = r {
        if parts.len() == 2 && parts.contains(&Regex::Eps) {
            return parts.iter().find(|p| **p != Regex::Eps);
        }
    }
    None
}

fn write_prec(f: &mut fmt::Formatter<'_>, r: &Regex, prec: Prec) -> fmt::Result {
    if let Some(inner) = as_opt(r) {
        // `x?` binds like a repetition, not like an alternation.
        write_prec(f, inner, Prec::Repeat)?;
        return write!(f, "?");
    }
    let own = match r {
        Regex::Alt(_) => Prec::Alt,
        Regex::And(_) => Prec::And,
        Regex::Concat(_) => Prec::Concat,
        _ => Prec::Repeat,
    };
    let need_parens = (own as u8) < (prec as u8);
    if need_parens {
        write!(f, "(")?;
    }
    match r {
        Regex::Empty => write!(f, "∅")?,
        Regex::Eps => write!(f, "()")?,
        Regex::Class(c) => write_class(f, c)?,
        Regex::Concat(parts) => {
            for p in parts.iter() {
                write_prec(f, p, Prec::Repeat)?;
            }
        }
        Regex::Alt(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, "|")?;
                }
                write_prec(f, p, Prec::And)?;
            }
        }
        Regex::And(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, "&")?;
                }
                write_prec(f, p, Prec::Concat)?;
            }
        }
        Regex::Star(inner) => {
            write_prec(f, inner, Prec::Repeat)?;
            // Atoms never need parens; composites got them above via prec.
            write!(f, "*")?;
        }
        Regex::Not(inner) => {
            write!(f, "!")?;
            write_prec(f, inner, Prec::Repeat)?;
        }
    }
    if need_parens {
        write!(f, ")")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(pat: &str) -> String {
        Regex::parse(pat).unwrap().to_string()
    }

    #[test]
    fn simple_roundtrips() {
        assert_eq!(rt("abc"), "abc");
        assert_eq!(rt("a|b"), "[ab]");
        assert_eq!(rt("(ab|cd)e"), "(ab|cd)e");
        assert_eq!(rt("[0-9]+"), "[0-9][0-9]*");
        assert_eq!(rt("."), ".");
    }

    #[test]
    fn extended_operators() {
        let r = Regex::lit("a").intersect(&Regex::any_line());
        assert!(r.to_string().contains('&'));
        let n = Regex::lit("a").complement();
        assert_eq!(n.to_string(), "!a");
        assert_eq!(Regex::Empty.to_string(), "∅");
        assert_eq!(Regex::Eps.to_string(), "()");
    }

    #[test]
    fn escaping() {
        assert_eq!(Regex::lit("a.b").to_string(), "a\\.b");
        assert_eq!(Regex::lit("x\ty").to_string(), "x\\ty");
        assert_eq!(Regex::byte(0x07).to_string(), "\\x07");
    }

    #[test]
    fn opt_pretty() {
        assert_eq!(rt("ab?"), "ab?");
    }

    #[test]
    fn printed_form_reparses_to_same_language() {
        for pat in ["abc", "(a|bc)*", "[a-f0-9]+", "a?b+c{2,3}", "x|yz|w*"] {
            let r = Regex::parse(pat).unwrap();
            let printed = r.to_string();
            let re = Regex::parse(&printed)
                .unwrap_or_else(|e| panic!("printed form {printed:?} failed: {e}"));
            assert!(r.equiv(&re), "{pat} printed as {printed} changed language");
        }
    }
}
