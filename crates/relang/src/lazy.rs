//! Lazy on-the-fly product decision procedures.
//!
//! The eager pipeline answered every binary language question —
//! containment, equivalence, disjointness — by materializing a full
//! product DFA and minimizing it before asking a reachability question
//! of the result. That does O(|A|·|B|) work even when a counterexample
//! sits two transitions from the start pair. The searches here explore
//! `(state, state)` pairs of the *implicit* product breadth-first and
//! stop at the first pair whose acceptance combination witnesses the
//! answer; the full product is never built. BFS order means a returned
//! counterexample is shortest (ties broken by class discovery order).
//!
//! The combined alphabet partition ([`PairAlphabet`]) is computed once
//! per operand pair and reused for every step of the search, so each
//! explored pair costs O(combined classes), not O(256).
//!
//! Cap contract: explored pairs are charged against the same
//! [`crate::dfa::dfa_state_cap`] the eager constructions use. A search
//! that would explore more pairs than the cap records an
//! [`crate::dfa::ApproxReason`] hit (site `lazy_*`) and degrades to the
//! conservative verdict — `false` for subset/equiv/disjoint/emptiness
//! ("cannot prove"), `Some(ε)` for a witness (ε is the ⊤ automaton's
//! shortest member) — exactly the verdicts the eager pipeline's ⊤
//! fallback produced.
//!
//! Observability: `relang.lazy_pairs_explored` counts pairs actually
//! visited, `relang.lazy_early_exit` counts searches that stopped at a
//! counterexample, and the `relang.lazy_product_bound` gauge keeps the
//! high-water mark of |A|·|B| — the size of the product the eager
//! pipeline would have built.

use crate::class::ByteClass;
use crate::dfa::{dfa_state_cap, record_cap, Dfa};
use std::collections::{HashMap, VecDeque};

/// Combined alphabet partition of two automata: the coarsest partition
/// refining both operands' byte classes. Computed once per operand
/// pair; every search step then walks class-index pairs directly.
pub(crate) struct PairAlphabet {
    /// Combined classes (disjoint, cover all 256 bytes).
    pub classes: Vec<ByteClass>,
    /// Byte → combined class index.
    pub byte_map: Vec<u16>,
    /// Per combined class: (left operand class, right operand class).
    pub pairs: Vec<(u16, u16)>,
}

impl PairAlphabet {
    pub fn new(a: &Dfa, b: &Dfa) -> PairAlphabet {
        // Dense (left class × right class) → combined id table; ids
        // are assigned in first-occurrence byte order, which keeps
        // combined alphabets (and so everything built on them)
        // deterministic and identical to the old HashMap assignment.
        let kb = b.classes.len();
        let mut table = vec![u16::MAX; a.classes.len() * kb];
        let mut byte_map = vec![0u16; 256];
        let mut classes: Vec<ByteClass> = Vec::new();
        let mut pairs: Vec<(u16, u16)> = Vec::new();
        for (byte, slot_out) in byte_map.iter_mut().enumerate() {
            let ca = a.byte_map[byte];
            let cb = b.byte_map[byte];
            let slot = &mut table[ca as usize * kb + cb as usize];
            if *slot == u16::MAX {
                *slot = classes.len() as u16;
                classes.push(ByteClass::EMPTY);
                pairs.push((ca, cb));
            }
            let id = *slot;
            classes[id as usize].insert(byte as u8);
            *slot_out = id;
        }
        PairAlphabet {
            classes,
            byte_map,
            pairs,
        }
    }
}

/// Outcome of a lazy pair search.
enum Search {
    /// A pair satisfying the acceptance combination was reached; the
    /// byte string labels a shortest path to it.
    Counterexample(Vec<u8>),
    /// The whole reachable pair space was explored without a hit.
    Exhausted,
    /// The search exceeded the state cap (an ApproxReason was
    /// recorded); the answer must degrade conservatively.
    Capped,
}

/// BFS over reachable `(a_state, b_state)` pairs, stopping at the
/// first pair where `accepts(a_accept, b_accept)` holds.
fn product_search(
    a: &Dfa,
    b: &Dfa,
    accepts: impl Fn(bool, bool) -> bool,
    site: &'static str,
) -> Search {
    let alpha = PairAlphabet::new(a, b);
    shoal_obs::gauge_max(
        "relang.lazy_product_bound",
        (a.num_states() as u64).saturating_mul(b.num_states() as u64),
    );
    let cap = dfa_state_cap();
    let acc = |q: u32, p: u32| accepts(a.accept[q as usize], b.accept[p as usize]);

    let done = |explored: usize, early: bool| {
        shoal_obs::counter_add("relang.lazy_pairs_explored", explored as u64);
        if early {
            shoal_obs::counter_add("relang.lazy_early_exit", 1);
        }
    };

    if acc(a.start, b.start) {
        done(1, true);
        return Search::Counterexample(Vec::new());
    }
    let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
    let mut order: Vec<(u32, u32)> = Vec::new();
    // Parent pair id + edge byte, for counterexample reconstruction.
    let mut prev: Vec<(u32, u8)> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    ids.insert((a.start, b.start), 0);
    order.push((a.start, b.start));
    prev.push((0, 0));
    queue.push_back(0);

    while let Some(id) = queue.pop_front() {
        let (q, p) = order[id as usize];
        for (ci, &(ca, cb)) in alpha.pairs.iter().enumerate() {
            let nq = a.trans[q as usize][ca as usize];
            let np = b.trans[p as usize][cb as usize];
            if ids.contains_key(&(nq, np)) {
                continue;
            }
            if order.len() >= cap {
                done(order.len(), false);
                record_cap(site);
                return Search::Capped;
            }
            // Combined classes are built from actual bytes, so a
            // representative always exists; stay total regardless.
            let Some(rep) = alpha.classes[ci].representative() else {
                continue;
            };
            let nid = order.len() as u32;
            ids.insert((nq, np), nid);
            order.push((nq, np));
            prev.push((id, rep));
            if acc(nq, np) {
                done(order.len(), true);
                let mut cur = nid;
                let mut out = Vec::new();
                while cur != 0 {
                    let (parent, byte) = prev[cur as usize];
                    out.push(byte);
                    cur = parent;
                }
                out.reverse();
                return Search::Counterexample(out);
            }
            queue.push_back(nid);
        }
    }
    done(order.len(), false);
    Search::Exhausted
}

/// Is `L(a) ⊆ L(b)`? Searches for a string in `a` but not `b`; a cap
/// hit degrades to `false` (containment not proven).
pub fn subset(a: &Dfa, b: &Dfa) -> bool {
    matches!(
        product_search(a, b, |x, y| x && !y, "lazy_subset"),
        Search::Exhausted
    )
}

/// Is `L(a) = L(b)`? One symmetric-difference search (not two
/// containment passes); a cap hit degrades to `false`.
pub fn equiv(a: &Dfa, b: &Dfa) -> bool {
    matches!(
        product_search(a, b, |x, y| x != y, "lazy_equiv"),
        Search::Exhausted
    )
}

/// Is `L(a) ∩ L(b) = ∅`? A cap hit degrades to `false` (disjointness
/// not proven).
pub fn disjoint(a: &Dfa, b: &Dfa) -> bool {
    matches!(
        product_search(a, b, |x, y| x && y, "lazy_disjoint"),
        Search::Exhausted
    )
}

/// A shortest string in `{ s : op(s ∈ L(a), s ∈ L(b)) }`, or `None` if
/// there is none. A cap hit degrades to `Some(ε)` — the shortest
/// member of the ⊤ automaton the eager pipeline would have returned.
pub fn witness(a: &Dfa, b: &Dfa, op: impl Fn(bool, bool) -> bool) -> Option<Vec<u8>> {
    match product_search(a, b, op, "lazy_witness") {
        Search::Counterexample(w) => Some(w),
        Search::Exhausted => None,
        Search::Capped => Some(Vec::new()),
    }
}

/// Is `⋂ᵢ L(dfaᵢ)` empty? N-way generalization of the pair search
/// (state tuples instead of pairs), used for emptiness of `And` terms
/// without compiling the conjunction into one derivative automaton.
/// An empty slice denotes the empty conjunction, i.e. Σ* — not empty.
/// A cap hit degrades to `false` (emptiness not proven).
pub fn intersection_empty(dfas: &[&Dfa]) -> bool {
    match dfas {
        [] => false,
        [d] => d.is_empty_lang(),
        [a, b] => disjoint(a, b),
        _ => tuple_intersection_empty(dfas),
    }
}

fn tuple_intersection_empty(dfas: &[&Dfa]) -> bool {
    // Combined alphabet: distinct tuples of per-operand class indices.
    let mut tuple_ids: HashMap<Vec<u16>, u16> = HashMap::new();
    let mut tuples: Vec<Vec<u16>> = Vec::new();
    for byte in 0usize..256 {
        let key: Vec<u16> = dfas.iter().map(|d| d.byte_map[byte]).collect();
        if !tuple_ids.contains_key(&key) {
            tuple_ids.insert(key.clone(), tuples.len() as u16);
            tuples.push(key);
        }
    }
    shoal_obs::gauge_max(
        "relang.lazy_product_bound",
        dfas.iter()
            .map(|d| d.num_states() as u64)
            .fold(1u64, u64::saturating_mul),
    );
    let cap = dfa_state_cap();
    let all_accept =
        |tuple: &[u32]| tuple.iter().zip(dfas).all(|(&s, d)| d.accept[s as usize]);

    let start: Vec<u32> = dfas.iter().map(|d| d.start).collect();
    if all_accept(&start) {
        shoal_obs::counter_add("relang.lazy_pairs_explored", 1);
        shoal_obs::counter_add("relang.lazy_early_exit", 1);
        return false;
    }
    let mut seen: std::collections::HashSet<Vec<u32>> = std::collections::HashSet::new();
    let mut queue: VecDeque<Vec<u32>> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back(start);
    while let Some(tuple) = queue.pop_front() {
        for classes in &tuples {
            let next: Vec<u32> = tuple
                .iter()
                .zip(classes)
                .zip(dfas)
                .map(|((&s, &c), d)| d.trans[s as usize][c as usize])
                .collect();
            if seen.contains(&next) {
                continue;
            }
            if seen.len() >= cap {
                shoal_obs::counter_add("relang.lazy_pairs_explored", seen.len() as u64);
                record_cap("lazy_intersection");
                return false;
            }
            if all_accept(&next) {
                shoal_obs::counter_add("relang.lazy_pairs_explored", seen.len() as u64 + 1);
                shoal_obs::counter_add("relang.lazy_early_exit", 1);
                return false;
            }
            seen.insert(next.clone());
            queue.push_back(next);
        }
    }
    shoal_obs::counter_add("relang.lazy_pairs_explored", seen.len() as u64);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Regex;

    fn dfa(pat: &str) -> Dfa {
        Dfa::from_regex(&Regex::parse_must(pat))
    }

    #[test]
    fn lazy_matches_eager_products() {
        let cases = [
            ("abc", "ab.*"),
            ("ab.*", "abc"),
            ("[0-9]+", "[0-9a-f]+"),
            ("(a|b)*abb", "(a|b)*"),
            ("x", "y"),
            ("", ""),
        ];
        for (pa, pb) in cases {
            let a = dfa(pa);
            let b = dfa(pb);
            assert_eq!(
                subset(&a, &b),
                a.difference(&b).is_empty_lang(),
                "subset {pa:?} ⊆ {pb:?}"
            );
            assert_eq!(
                equiv(&a, &b),
                a.product(&b, |x, y| x != y).is_empty_lang(),
                "equiv {pa:?} = {pb:?}"
            );
            assert_eq!(
                disjoint(&a, &b),
                a.intersect(&b).is_empty_lang(),
                "disjoint {pa:?} ∥ {pb:?}"
            );
        }
    }

    #[test]
    fn counterexample_is_shortest_and_valid() {
        let a = dfa("ab.*");
        let b = dfa("abc");
        let w = witness(&a, &b, |x, y| x && !y).expect("not a subset");
        assert!(a.matches(&w) && !b.matches(&w));
        assert_eq!(w.len(), 2, "shortest counterexample is \"ab\"");
    }

    #[test]
    fn nway_intersection_matches_pairwise() {
        let a = dfa("[0-9a-f]+");
        let b = dfa("[0-9]+");
        let c = dfa("...");
        assert!(!intersection_empty(&[&a, &b, &c]));
        let d = dfa("[g-z]+");
        assert!(intersection_empty(&[&a, &b, &d]));
        assert!(intersection_empty(&[&dfa("x"), &dfa("y")]));
        assert!(!intersection_empty(&[]));
        assert!(intersection_empty(&[&Dfa::from_regex(&Regex::Empty)]));
    }

    #[test]
    fn capped_search_degrades_conservatively() {
        use crate::dfa::{dfa_state_cap, set_dfa_state_cap, take_approx_hits};
        let saved = dfa_state_cap();
        let _ = take_approx_hits();
        let a = dfa("(a|b)*abb(a|b)*");
        let b = dfa("(a|b)*aab(a|b)*");
        set_dfa_state_cap(2);
        // Any answer must be the conservative false, with a hit recorded.
        assert!(!subset(&a, &b));
        assert!(!equiv(&a, &b));
        assert!(!disjoint(&a, &b));
        assert_eq!(witness(&a, &b, |x, y| x && !y), Some(vec![]));
        set_dfa_state_cap(saved);
        let hits = take_approx_hits();
        assert_eq!(hits.len(), 4, "every capped search records its site");
        assert!(hits.iter().all(|h| h.site().starts_with("lazy_")));
    }
}
