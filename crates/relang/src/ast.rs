//! The regular-expression AST and its high-level algebra.
//!
//! [`Regex`] is an *extended* regular expression: besides the classical
//! operators (class, concatenation, alternation, Kleene star) it has
//! first-class intersection ([`Regex::And`]) and complement
//! ([`Regex::Not`]). Extended operators are what make the type- and
//! constraint-algebra pleasant: conjoining two constraints on a variable is
//! just `And`, and refinement along a failure branch is `And` with a `Not`.
//!
//! All constructors are *smart*: they canonicalize as they build
//! (flattening, identity/annihilator laws, ACI normalization of `Alt` and
//! `And`). Canonical forms matter for two reasons: they keep constraints
//! readable in diagnostics, and they guarantee that Brzozowski-derivative
//! construction (see [`crate::deriv`]) reaches only finitely many distinct
//! states.

use crate::class::ByteClass;
use std::cmp::Ordering;
use std::sync::Arc;

/// An extended regular expression over the byte alphabet.
///
/// Use the associated constructor functions ([`Regex::lit`],
/// [`Regex::concat`], [`Regex::alt`], …) rather than building variants
/// directly; the constructors maintain the canonical form the rest of the
/// engine relies on.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The language containing only the empty string, `ε`.
    Eps,
    /// One byte drawn from a class.
    Class(ByteClass),
    /// Concatenation `r₁ r₂ … rₙ` (n ≥ 2, no `Eps` members, flattened).
    Concat(Arc<Vec<Regex>>),
    /// Alternation `r₁ | r₂ | … | rₙ` (n ≥ 2, sorted, deduplicated).
    Alt(Arc<Vec<Regex>>),
    /// Intersection `r₁ & r₂ & … & rₙ` (n ≥ 2, sorted, deduplicated).
    And(Arc<Vec<Regex>>),
    /// Kleene star `r*`.
    Star(Arc<Regex>),
    /// Complement `¬r` with respect to all byte strings.
    Not(Arc<Regex>),
}

impl Regex {
    // ---------------------------------------------------------------
    // Smart constructors
    // ---------------------------------------------------------------

    /// The empty language.
    pub fn empty() -> Regex {
        Regex::Empty
    }

    /// The empty string.
    pub fn eps() -> Regex {
        Regex::Eps
    }

    /// A single byte.
    pub fn byte(b: u8) -> Regex {
        Regex::Class(ByteClass::single(b))
    }

    /// One byte from `class`; an empty class yields `∅`.
    pub fn class(class: ByteClass) -> Regex {
        if class.is_empty() {
            Regex::Empty
        } else {
            Regex::Class(class)
        }
    }

    /// The literal string `s`.
    pub fn lit(s: &str) -> Regex {
        Regex::lit_bytes(s.as_bytes())
    }

    /// The literal byte string `s`.
    pub fn lit_bytes(s: &[u8]) -> Regex {
        Regex::concat(s.iter().map(|&b| Regex::byte(b)).collect())
    }

    /// Any single byte.
    pub fn any_byte() -> Regex {
        Regex::Class(ByteClass::ALL)
    }

    /// Any string of bytes (`Σ*`), including strings with newlines.
    pub fn anything() -> Regex {
        Regex::any_byte().star()
    }

    /// Any byte except newline (the regex `.`).
    pub fn dot() -> Regex {
        Regex::Class(ByteClass::dot())
    }

    /// Any newline-free string (`.*` read as a *line* type).
    pub fn any_line() -> Regex {
        Regex::dot().star()
    }

    /// Concatenation of `parts`, normalized.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => return Regex::Empty,
                Regex::Eps => {}
                Regex::Concat(inner) => out.extend(inner.iter().cloned()),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Eps,
            1 => out.pop().expect("len checked"),
            _ => Regex::Concat(Arc::new(out)),
        }
    }

    /// `self` followed by `other`.
    pub fn then(&self, other: &Regex) -> Regex {
        Regex::concat(vec![self.clone(), other.clone()])
    }

    /// Alternation of `parts`, normalized (flattened, sorted, deduplicated;
    /// `∅` is the identity; a top `¬∅` absorbs everything).
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::with_capacity(parts.len());
        let mut class_acc = ByteClass::EMPTY;
        let mut saw_class = false;
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => {
                    for q in inner.iter() {
                        if let Regex::Class(c) = q {
                            class_acc = class_acc.union(c);
                            saw_class = true;
                        } else {
                            out.push(q.clone());
                        }
                    }
                }
                Regex::Class(c) => {
                    class_acc = class_acc.union(&c);
                    saw_class = true;
                }
                other => out.push(other),
            }
        }
        if saw_class {
            out.push(Regex::class(class_acc));
        }
        out.sort();
        out.dedup();
        // `¬∅` (all strings) absorbs the alternation.
        if out
            .iter()
            .any(|r| matches!(r, Regex::Not(n) if **n == Regex::Empty))
        {
            return Regex::Not(Arc::new(Regex::Empty));
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len checked"),
            _ => Regex::Alt(Arc::new(out)),
        }
    }

    /// `self | other`.
    pub fn or(&self, other: &Regex) -> Regex {
        Regex::alt(vec![self.clone(), other.clone()])
    }

    /// Intersection of `parts`, normalized (flattened, sorted,
    /// deduplicated; `¬∅` is the identity; `∅` annihilates).
    pub fn and(parts: Vec<Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => return Regex::Empty,
                Regex::Not(n) if *n == Regex::Empty => {}
                Regex::And(inner) => out.extend(inner.iter().cloned()),
                other => out.push(other),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => Regex::Not(Arc::new(Regex::Empty)),
            1 => out.pop().expect("len checked"),
            _ => Regex::And(Arc::new(out)),
        }
    }

    /// `self & other` — the conjunction of two constraints.
    pub fn intersect(&self, other: &Regex) -> Regex {
        Regex::and(vec![self.clone(), other.clone()])
    }

    /// Kleene star, normalized (`∅* = ε* = ε`, `(r*)* = r*`).
    pub fn star(&self) -> Regex {
        match self {
            Regex::Empty | Regex::Eps => Regex::Eps,
            Regex::Star(_) => self.clone(),
            r => Regex::Star(Arc::new(r.clone())),
        }
    }

    /// One or more repetitions (`r+ = r r*`).
    pub fn plus(&self) -> Regex {
        self.then(&self.star())
    }

    /// Zero or one occurrence (`r?`).
    pub fn opt(&self) -> Regex {
        self.or(&Regex::Eps)
    }

    /// Complement, normalized (`¬¬r = r`).
    pub fn complement(&self) -> Regex {
        match self {
            Regex::Not(inner) => (**inner).clone(),
            r => Regex::Not(Arc::new(r.clone())),
        }
    }

    /// Language difference `self \ other`.
    pub fn difference(&self, other: &Regex) -> Regex {
        self.intersect(&other.complement())
    }

    /// Bounded repetition `r{min,max}`; `max = None` means unbounded.
    pub fn repeat(&self, min: u32, max: Option<u32>) -> Regex {
        let mut parts: Vec<Regex> = (0..min).map(|_| self.clone()).collect();
        match max {
            None => parts.push(self.star()),
            Some(max) => {
                for _ in min..max {
                    parts.push(self.opt());
                }
            }
        }
        Regex::concat(parts)
    }

    // ---------------------------------------------------------------
    // Structural queries
    // ---------------------------------------------------------------

    /// Does the language contain the empty string?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Class(_) => false,
            Regex::Eps | Regex::Star(_) => true,
            Regex::Concat(ps) | Regex::And(ps) => ps.iter().all(|p| p.nullable()),
            Regex::Alt(ps) => ps.iter().any(|p| p.nullable()),
            Regex::Not(r) => !r.nullable(),
        }
    }

    /// If the language is exactly one literal string, returns it.
    pub fn as_literal(&self) -> Option<Vec<u8>> {
        match self {
            Regex::Eps => Some(Vec::new()),
            Regex::Class(c) if c.len() == 1 => Some(vec![c.min_byte().expect("len 1")]),
            Regex::Concat(ps) => {
                let mut out = Vec::new();
                for p in ps.iter() {
                    out.extend(p.as_literal()?);
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Like [`Regex::as_literal`] but *semantic*: returns the single
    /// string of a singleton language even when the syntax hides it
    /// (e.g. after intersections). More expensive — it runs the
    /// emptiness/equivalence machinery.
    pub fn exact_literal(&self) -> Option<Vec<u8>> {
        if let Some(l) = self.as_literal() {
            return Some(l);
        }
        // Only worth attempting on constraint-shaped regexes.
        let w = self.witness()?;
        if self.equiv(&Regex::lit_bytes(&w)) {
            Some(w)
        } else {
            None
        }
    }

    /// A rough size measure (number of AST nodes), used to bound
    /// widening decisions in the analyzer.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Eps | Regex::Class(_) => 1,
            Regex::Concat(ps) | Regex::Alt(ps) | Regex::And(ps) => {
                1 + ps.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(r) | Regex::Not(r) => 1 + r.size(),
        }
    }

    /// Applies `f` to every byte class in the regex (structure-preserving).
    pub fn map_classes(&self, f: &impl Fn(&ByteClass) -> ByteClass) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Eps => Regex::Eps,
            Regex::Class(c) => Regex::class(f(c)),
            Regex::Concat(ps) => Regex::concat(ps.iter().map(|p| p.map_classes(f)).collect()),
            Regex::Alt(ps) => Regex::alt(ps.iter().map(|p| p.map_classes(f)).collect()),
            Regex::And(ps) => Regex::and(ps.iter().map(|p| p.map_classes(f)).collect()),
            Regex::Star(r) => r.map_classes(f).star(),
            Regex::Not(r) => r.map_classes(f).complement(),
        }
    }

    /// The case-insensitive version: every ASCII letter also matches its
    /// other case (how `grep -i` reads a pattern).
    ///
    /// Note this widens classes pointwise, which is exact for the
    /// `Not`-free fragment; under a complement it is an approximation
    /// (negated classes widen rather than shrink), which is the safe
    /// direction for filter typing.
    pub fn case_insensitive(&self) -> Regex {
        self.map_classes(&|c: &ByteClass| {
            let mut out = *c;
            for b in c.iter() {
                if b.is_ascii_alphabetic() {
                    out.insert(b ^ 0x20);
                }
            }
            out
        })
    }

    // ---------------------------------------------------------------
    // Decision procedures (delegating to the derivative-DFA backend)
    // ---------------------------------------------------------------

    /// Does the (possibly extended) regex match `input` exactly?
    pub fn matches(&self, input: &[u8]) -> bool {
        shoal_obs::counter_add("relang.matches", 1);
        let mut r = self.clone();
        for &b in input {
            r = crate::deriv::deriv(&r, b);
            if r == Regex::Empty {
                return false;
            }
        }
        r.nullable()
    }

    /// The interned hash-consing id of this term on the current thread
    /// (structurally equal terms — which, thanks to the canonicalizing
    /// smart constructors, means equal-by-construction terms — share an
    /// id). The memoized decision procedures key their caches on these.
    pub fn term_id(&self) -> crate::memo::TermId {
        crate::memo::intern(self)
    }

    /// Is the language empty? Memoized per interned term; `And` terms
    /// are answered by the lazy n-way intersection search without
    /// compiling the conjunction (see [`crate::lazy`]).
    pub fn is_empty(&self) -> bool {
        crate::memo::is_empty(self)
    }

    /// Is the language exactly `{ε}` or `∅`… i.e. does it contain no
    /// non-empty string?
    pub fn is_trivial(&self) -> bool {
        self.difference(&Regex::Eps).is_empty()
    }

    /// Is `self ⊆ other`? Memoized per interned term pair; the miss
    /// path is a lazy product search that exits at the first
    /// counterexample string (see [`crate::lazy`]).
    pub fn is_subset_of(&self, other: &Regex) -> bool {
        shoal_obs::counter_add("relang.subset_checks", 1);
        crate::memo::is_subset_of(self, other)
    }

    /// Do the two languages coincide? Memoized per interned term pair;
    /// one lazy symmetric-difference search on the miss path.
    pub fn equiv(&self, other: &Regex) -> bool {
        shoal_obs::counter_add("relang.equiv_checks", 1);
        crate::memo::equiv(self, other)
    }

    /// Are the two languages disjoint (emptiness of intersection)?
    /// Memoized per interned term pair; lazy search on the miss path.
    pub fn disjoint(&self, other: &Regex) -> bool {
        crate::memo::disjoint(self, other)
    }

    /// A shortest string in the language, if the language is non-empty.
    /// Memoized per interned term.
    pub fn witness(&self) -> Option<Vec<u8>> {
        crate::memo::witness(self)
    }

    /// A witness rendered for diagnostics (lossy UTF-8).
    pub fn witness_string(&self) -> Option<String> {
        self.witness()
            .map(|w| String::from_utf8_lossy(&w).into_owned())
    }
}

/// Total order used for canonical sorting inside `Alt`/`And`. Derived
/// `Ord` on the enum is sufficient: it is a strict total order on the
/// canonical forms, which is all ACI normalization needs.
impl Regex {
    /// Compares structurally; exposed for deterministic container use.
    pub fn cmp_canonical(&self, other: &Regex) -> Ordering {
        self.cmp(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_matching() {
        let r = Regex::lit("steam");
        assert!(r.matches(b"steam"));
        assert!(!r.matches(b"Steam"));
        assert!(!r.matches(b"steam "));
        assert!(!r.matches(b""));
    }

    #[test]
    fn smart_concat_identities() {
        let r = Regex::concat(vec![Regex::Eps, Regex::lit("a"), Regex::Eps]);
        assert_eq!(r, Regex::byte(b'a'));
        let e = Regex::concat(vec![Regex::lit("a"), Regex::Empty]);
        assert_eq!(e, Regex::Empty);
        assert_eq!(Regex::concat(vec![]), Regex::Eps);
    }

    #[test]
    fn smart_alt_identities() {
        assert_eq!(Regex::alt(vec![]), Regex::Empty);
        assert_eq!(
            Regex::alt(vec![Regex::Empty, Regex::lit("x")]),
            Regex::byte(b'x')
        );
        // Deduplication and class merging.
        let r = Regex::alt(vec![
            Regex::byte(b'a'),
            Regex::byte(b'b'),
            Regex::byte(b'a'),
        ]);
        assert_eq!(r, Regex::Class(ByteClass::from_bytes(b"ab")));
    }

    #[test]
    fn smart_star_identities() {
        assert_eq!(Regex::Empty.star(), Regex::Eps);
        assert_eq!(Regex::Eps.star(), Regex::Eps);
        let s = Regex::lit("a").star();
        assert_eq!(s.star(), s);
    }

    #[test]
    fn and_not_identities() {
        let top = Regex::Empty.complement();
        assert_eq!(Regex::and(vec![]), top);
        assert_eq!(
            Regex::and(vec![Regex::lit("a"), Regex::Empty]),
            Regex::Empty
        );
        assert_eq!(top.complement(), Regex::Empty);
        let a = Regex::lit("a");
        assert_eq!(Regex::and(vec![a.clone(), top.clone()]), a);
    }

    #[test]
    fn nullability() {
        assert!(Regex::eps().nullable());
        assert!(!Regex::lit("x").nullable());
        assert!(Regex::lit("x").star().nullable());
        assert!(Regex::lit("x").opt().nullable());
        assert!(Regex::Empty.complement().nullable());
        assert!(!Regex::eps().complement().nullable());
    }

    #[test]
    fn star_and_plus_matching() {
        let r = Regex::lit("ab").plus();
        assert!(r.matches(b"ab"));
        assert!(r.matches(b"abab"));
        assert!(!r.matches(b""));
        assert!(!r.matches(b"aba"));
        assert!(Regex::lit("ab").star().matches(b""));
    }

    #[test]
    fn repeat_bounds() {
        let r = Regex::byte(b'x').repeat(2, Some(4));
        assert!(!r.matches(b"x"));
        assert!(r.matches(b"xx"));
        assert!(r.matches(b"xxxx"));
        assert!(!r.matches(b"xxxxx"));
        let unb = Regex::byte(b'x').repeat(2, None);
        assert!(unb.matches(&[b'x'; 17]));
        assert!(!unb.matches(b"x"));
    }

    #[test]
    fn intersection_matching() {
        // Strings of a/b with even length AND starting with a.
        let ab = Regex::class(ByteClass::from_bytes(b"ab"));
        let even = ab.then(&ab).star();
        let starts_a = Regex::byte(b'a').then(&ab.star());
        let both = even.intersect(&starts_a);
        assert!(both.matches(b"ab"));
        assert!(both.matches(b"aa"));
        assert!(!both.matches(b"a"));
        assert!(!both.matches(b"ba"));
    }

    #[test]
    fn complement_matching() {
        let not_steam = Regex::lit("steam").complement();
        assert!(not_steam.matches(b"stream"));
        assert!(not_steam.matches(b""));
        assert!(!not_steam.matches(b"steam"));
    }

    #[test]
    fn emptiness_decisions() {
        assert!(Regex::Empty.is_empty());
        assert!(!Regex::eps().is_empty());
        let a = Regex::lit("a");
        assert!(a.intersect(&Regex::lit("b")).is_empty());
        assert!(!a.or(&Regex::lit("b")).is_empty());
        // ¬(Σ*) is empty.
        assert!(Regex::anything().complement().is_empty());
    }

    #[test]
    fn subset_decisions() {
        let hex = Regex::class(ByteClass::from_bytes(b"0123456789abcdef")).plus();
        let digits = Regex::class(ByteClass::range(b'0', b'9')).plus();
        assert!(digits.is_subset_of(&hex));
        assert!(!hex.is_subset_of(&digits));
        assert!(hex.equiv(&hex));
    }

    #[test]
    fn paper_hex_pipeline_subset() {
        // 0x[0-9a-f]+ ⊆ 0x[0-9a-f]+.*  (§4 "Richer types").
        let hex = Regex::lit("0x").then(
            &Regex::class({
                let mut c = ByteClass::range(b'0', b'9');
                c.insert_range(b'a', b'f');
                c
            })
            .plus(),
        );
        let sortable = hex.then(&Regex::any_line());
        assert!(hex.is_subset_of(&sortable));
    }

    #[test]
    fn witness_generation() {
        assert_eq!(Regex::lit("ok").witness(), Some(b"ok".to_vec()));
        assert_eq!(Regex::Empty.witness(), None);
        let w = Regex::lit("a").plus().witness().unwrap();
        assert_eq!(w, b"a".to_vec());
        // Witness of a star is the shortest string: ε.
        assert_eq!(Regex::lit("xy").star().witness(), Some(vec![]));
    }

    #[test]
    fn as_literal_extraction() {
        assert_eq!(Regex::lit("abc").as_literal(), Some(b"abc".to_vec()));
        assert_eq!(Regex::eps().as_literal(), Some(vec![]));
        assert_eq!(Regex::lit("a").star().as_literal(), None);
        assert_eq!(Regex::any_byte().as_literal(), None);
    }

    #[test]
    fn difference_and_disjoint() {
        let all = Regex::any_line();
        let d = all.difference(&Regex::eps());
        assert!(!d.matches(b""));
        assert!(d.matches(b"x"));
        assert!(Regex::lit("a").disjoint(&Regex::lit("b")));
        assert!(!Regex::lit("a").disjoint(&Regex::any_line()));
    }

    #[test]
    fn trivial_language() {
        assert!(Regex::eps().is_trivial());
        assert!(Regex::Empty.is_trivial());
        assert!(!Regex::lit("x").is_trivial());
        assert!(!Regex::lit("x").opt().is_trivial());
    }
}

#[cfg(test)]
mod ci_tests {
    use super::*;

    #[test]
    fn case_insensitive_matches_both_cases() {
        let r = Regex::lit("Desc").case_insensitive();
        assert!(r.matches(b"desc"));
        assert!(r.matches(b"DESC"));
        assert!(r.matches(b"dEsC"));
        assert!(!r.matches(b"dsc"));
    }

    #[test]
    fn map_classes_preserves_structure() {
        let r = Regex::parse_must("[a-c]+x|y*");
        let mapped = r.map_classes(&|c| *c);
        assert_eq!(r, mapped);
    }
}
