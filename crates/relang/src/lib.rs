//! `shoal-relang`: a self-contained regular-language engine.
//!
//! This crate is the constraint workhorse of the shoal analyzer. The paper
//! argues (§3) that constraints on shell state — variable contents, path
//! shapes, and the per-line shape of Unix streams — are naturally expressed
//! as regular languages, because regular languages are computationally
//! tractable and familiar to Unix developers. Everything downstream
//! (symbolic execution, stream types, runtime monitoring) reduces its
//! questions to the decision procedures implemented here:
//!
//! * **emptiness** — is the language of a constraint empty? (dead-pipe
//!   detection, UNSAT path conditions);
//! * **containment** — `A ⊆ B`? (type compatibility between pipeline
//!   stages, polymorphic instantiation checks);
//! * **intersection / union / complement / difference** — constraint
//!   conjunction and refinement along success/failure branches;
//! * **witness generation** — a concrete string demonstrating a behavior,
//!   used in diagnostics ("e.g. `STEAMROOT` may be `\"\"`").
//!
//! The engine works over the full byte alphabet (shell streams are raw
//! bytes), parses a practical POSIX-ERE subset, compiles via Thompson NFA
//! and subset-construction DFA with byte-class compression, minimizes with
//! Hopcroft's worklist algorithm, and additionally offers Brzozowski
//! derivatives for allocation-light online matching (used by the runtime
//! monitor and cross-checked against the automata in tests). The binary
//! decision procedures are *lazy*: they explore the implicit product
//! automaton on the fly ([`lazy`]) and exit at the first counterexample
//! instead of materializing and minimizing the product.
//!
//! # Examples
//!
//! ```
//! use shoal_relang::Regex;
//!
//! // The paper's Fig. 5 bug: `grep '^desc'` over `lsb_release -a` output.
//! let lsb = Regex::parse("(Distributor ID|Description|Release|Codename):\t.*").unwrap();
//! let grep_out = Regex::grep_pattern("^desc").unwrap();
//! assert!(lsb.intersect(&grep_out).is_empty()); // the filter passes nothing
//!
//! // The corrected filter passes something.
//! let fixed = Regex::grep_pattern("^Desc").unwrap();
//! assert!(!lsb.intersect(&fixed).is_empty());
//! ```

pub mod ast;
pub mod class;
pub mod deriv;
pub mod dfa;
pub mod display;
pub mod lazy;
pub mod memo;
pub mod nfa;
pub mod parser;

pub use ast::Regex;
pub use class::ByteClass;
pub use deriv::DerivMatcher;
pub use dfa::{
    dfa_state_cap, set_dfa_state_cap, take_approx_hits, ApproxReason, Dfa, DEFAULT_DFA_STATE_CAP,
};
pub use memo::{memo_flush, set_memo_enabled, TermId, INTERN_CAP};
pub use nfa::Nfa;
pub use parser::ParseError;
