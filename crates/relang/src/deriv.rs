//! Brzozowski derivatives for extended regular expressions.
//!
//! The derivative of a language `L` with respect to a byte `b` is
//! `{ w | b·w ∈ L }`. Derivatives extend smoothly to intersection and
//! complement, which is exactly why the engine's decision procedures are
//! derivative-based: `And`/`Not` constraints never need to be lowered to
//! plain regexes first.
//!
//! Because the smart constructors in [`crate::ast`] maintain ACI-canonical
//! forms, iterated derivation produces only finitely many distinct regexes
//! (Brzozowski's similarity theorem), so the derivative-state DFA built in
//! [`crate::dfa`] always terminates.
//!
//! [`local_classes`] implements Owens–Reppy *derivative classes*: a
//! partition of the byte alphabet such that all bytes in one block yield
//! the same derivative. Deriving once per block instead of 256 times keeps
//! DFA construction fast even though the alphabet is the full byte range.

use crate::ast::Regex;
use crate::class::ByteClass;
use std::collections::HashMap;

/// The derivative of `r` with respect to byte `b`.
pub fn deriv(r: &Regex, b: u8) -> Regex {
    match r {
        Regex::Empty | Regex::Eps => Regex::Empty,
        Regex::Class(c) => {
            if c.contains(b) {
                Regex::Eps
            } else {
                Regex::Empty
            }
        }
        Regex::Concat(parts) => {
            // d(r₁ r₂ … ) = d(r₁)·rest  |  (if r₁ nullable) d(rest).
            let mut alts = Vec::new();
            let mut prefix_nullable = true;
            for (i, part) in parts.iter().enumerate() {
                if !prefix_nullable {
                    break;
                }
                let mut branch = vec![deriv(part, b)];
                branch.extend(parts[i + 1..].iter().cloned());
                alts.push(Regex::concat(branch));
                prefix_nullable = part.nullable();
            }
            Regex::alt(alts)
        }
        Regex::Alt(parts) => Regex::alt(parts.iter().map(|p| deriv(p, b)).collect()),
        Regex::And(parts) => Regex::and(parts.iter().map(|p| deriv(p, b)).collect()),
        Regex::Star(inner) => deriv(inner, b).then(&inner.star()),
        Regex::Not(inner) => deriv(inner, b).complement(),
    }
}

/// A partition of the byte alphabet into *derivative classes* of `r`:
/// bytes in the same class are guaranteed to produce identical
/// derivatives. The result is a list of disjoint, non-empty classes whose
/// union is the full alphabet.
pub fn local_classes(r: &Regex) -> Vec<ByteClass> {
    let mut partition = vec![ByteClass::ALL];
    refine(r, &mut partition);
    partition
}

/// Refines `partition` so that every transition class of `r` is a union
/// of partition blocks.
fn refine(r: &Regex, partition: &mut Vec<ByteClass>) {
    match r {
        Regex::Empty | Regex::Eps => {}
        Regex::Class(c) => split(partition, c),
        Regex::Concat(parts) => {
            // Only the derivable prefix matters, mirroring `deriv`.
            let mut prefix_nullable = true;
            for part in parts.iter() {
                if !prefix_nullable {
                    break;
                }
                refine(part, partition);
                prefix_nullable = part.nullable();
            }
        }
        Regex::Alt(parts) | Regex::And(parts) => {
            for p in parts.iter() {
                refine(p, partition);
            }
        }
        Regex::Star(inner) | Regex::Not(inner) => refine(inner, partition),
    }
}

/// Splits every block of `partition` along the boundary of `c`.
fn split(partition: &mut Vec<ByteClass>, c: &ByteClass) {
    let mut next = Vec::with_capacity(partition.len() + 1);
    for block in partition.iter() {
        let inside = block.intersect(c);
        let outside = block.difference(c);
        if !inside.is_empty() {
            next.push(inside);
        }
        if !outside.is_empty() {
            next.push(outside);
        }
    }
    *partition = next;
}

/// An online matcher that feeds bytes one at a time, memoizing derivative
/// states. This is what the runtime monitor uses per line: feeding is
/// amortized O(1) once the reachable derivative states are cached.
#[derive(Debug, Clone)]
pub struct DerivMatcher {
    start: Regex,
    current: Regex,
    cache: HashMap<(Regex, u8), Regex>,
}

impl DerivMatcher {
    /// Creates a matcher for `r`, positioned at the start of input.
    pub fn new(r: Regex) -> Self {
        DerivMatcher {
            current: r.clone(),
            start: r,
            cache: HashMap::new(),
        }
    }

    /// Feeds one byte.
    pub fn feed(&mut self, b: u8) {
        let key = (self.current.clone(), b);
        if let Some(next) = self.cache.get(&key) {
            self.current = next.clone();
            return;
        }
        let next = deriv(&self.current, b);
        self.cache.insert(key, next.clone());
        self.current = next;
    }

    /// Feeds a slice of bytes.
    pub fn feed_all(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.feed(b);
        }
    }

    /// Would accepting stop here, i.e. is the input seen so far in the
    /// language?
    pub fn is_match(&self) -> bool {
        self.current.nullable()
    }

    /// Can any continuation of the input seen so far still match?
    pub fn can_still_match(&self) -> bool {
        !self.current.is_empty()
    }

    /// Resets to the start of input (cache is retained).
    pub fn reset(&mut self) {
        self.current = self.start.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_derivatives() {
        let r = Regex::lit("ab");
        assert_eq!(deriv(&r, b'a'), Regex::byte(b'b'));
        assert_eq!(deriv(&r, b'b'), Regex::Empty);
        assert_eq!(deriv(&Regex::Eps, b'a'), Regex::Empty);
    }

    #[test]
    fn star_derivative() {
        let r = Regex::lit("ab").star();
        let d = deriv(&r, b'a');
        assert!(d.matches(b"b"));
        assert!(d.matches(b"bab"));
        assert!(!d.matches(b""));
    }

    #[test]
    fn concat_with_nullable_head() {
        // (a?)b — derivative by 'b' must skip the nullable head.
        let r = Regex::byte(b'a').opt().then(&Regex::byte(b'b'));
        assert!(deriv(&r, b'b').nullable());
        assert!(deriv(&r, b'a').matches(b"b"));
    }

    #[test]
    fn not_derivative() {
        let r = Regex::lit("ab").complement();
        // After 'a', the remaining language is ¬"b".
        let d = deriv(&r, b'a');
        assert!(d.matches(b""));
        assert!(d.matches(b"bb"));
        assert!(!d.matches(b"b"));
    }

    #[test]
    fn and_derivative() {
        let a_star = Regex::byte(b'a').star();
        let len2 = Regex::any_byte().then(&Regex::any_byte());
        let r = a_star.intersect(&len2);
        let d = deriv(&r, b'a');
        assert!(d.matches(b"a"));
        assert!(!d.matches(b""));
        assert!(!d.matches(b"aa"));
    }

    #[test]
    fn local_classes_partition_alphabet() {
        let r = Regex::parse_must("[a-f]+x|[0-9]*");
        let classes = local_classes(&r);
        let mut total = 0;
        for (i, a) in classes.iter().enumerate() {
            total += a.len();
            for b in classes.iter().skip(i + 1) {
                assert!(a.intersect(b).is_empty(), "blocks must be disjoint");
            }
        }
        assert_eq!(total, 256);
        // All bytes in one block derive identically.
        for block in &classes {
            let rep = block.min_byte().unwrap();
            let d = deriv(&r, rep);
            for b in block.iter().take(8) {
                assert_eq!(deriv(&r, b), d);
            }
        }
    }

    #[test]
    fn matcher_online() {
        let mut m = DerivMatcher::new(Regex::lit("abc").plus());
        m.feed_all(b"abc");
        assert!(m.is_match());
        m.feed_all(b"ab");
        assert!(!m.is_match());
        assert!(m.can_still_match());
        m.feed(b'z');
        assert!(!m.can_still_match());
        m.reset();
        m.feed_all(b"abcabc");
        assert!(m.is_match());
    }
}
