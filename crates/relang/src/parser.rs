//! A parser for a practical POSIX-ERE subset.
//!
//! Two readings of a pattern are offered, matching the two ways the paper
//! uses regular expressions:
//!
//! * [`Regex::parse`] — the *type* reading: the pattern denotes exactly
//!   the strings it matches in full. This is how stream types such as
//!   `desc.*` or `0x[0-9a-f]+` are written (§3, §4).
//! * [`Regex::grep_pattern`] — the *selection* reading: the pattern
//!   denotes the set of lines `grep -E` would select, i.e. lines
//!   containing a match, with `^`/`$` anchors interpreted as in grep.
//!   This is how the engine types `grep '^desc'` in Fig. 5.
//!
//! Supported syntax: literals, `.`, bracket expressions (`[a-z]`,
//! `[^…]`, `[[:digit:]]`), grouping, alternation, `*`, `+`, `?`,
//! `{m}`/`{m,}`/`{m,n}`, escapes (`\t`, `\n`, `\r`, `\\`, escaped
//! punctuation) and the common convenience classes `\d`, `\w`, `\s` and
//! their negations. Anchors are accepted at the edges of top-level
//! alternatives (the overwhelmingly common case); anchors elsewhere are
//! reported as [`ParseError::UnsupportedAnchor`].

use crate::ast::Regex;
use crate::class::{named_class, ByteClass};
use std::fmt;

/// Errors produced by the pattern parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Unexpected end of pattern.
    UnexpectedEnd,
    /// An unexpected character at the given byte offset.
    Unexpected(char, usize),
    /// `*`, `+`, `?` or `{` with nothing to repeat.
    NothingToRepeat(usize),
    /// Malformed `{m,n}` repetition.
    BadRepeat(usize),
    /// Malformed bracket expression.
    BadBracket(usize),
    /// Unknown `[[:name:]]` class.
    UnknownClass(String),
    /// Unbalanced parenthesis.
    UnbalancedParen(usize),
    /// `^`/`$` in a position the engine does not model.
    UnsupportedAnchor(usize),
    /// Repetition bounds out of supported range.
    RepeatTooLarge(usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEnd => write!(f, "unexpected end of pattern"),
            ParseError::Unexpected(c, at) => write!(f, "unexpected {c:?} at offset {at}"),
            ParseError::NothingToRepeat(at) => write!(f, "nothing to repeat at offset {at}"),
            ParseError::BadRepeat(at) => write!(f, "malformed repetition at offset {at}"),
            ParseError::BadBracket(at) => write!(f, "malformed bracket expression at offset {at}"),
            ParseError::UnknownClass(n) => write!(f, "unknown character class [:{n}:]"),
            ParseError::UnbalancedParen(at) => write!(f, "unbalanced parenthesis at offset {at}"),
            ParseError::UnsupportedAnchor(at) => {
                write!(f, "anchor at offset {at} is only supported at the edges of a top-level alternative")
            }
            ParseError::RepeatTooLarge(at) => {
                write!(f, "repetition bound too large at offset {at}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Intermediate parse tree retaining anchors.
#[derive(Debug, Clone)]
enum P {
    Class(ByteClass),
    Bol,
    Eol,
    Concat(Vec<P>),
    Alt(Vec<P>),
    Star(Box<P>),
    Plus(Box<P>),
    Opt(Box<P>),
    Repeat(Box<P>, u32, Option<u32>),
    Eps,
}

const MAX_REPEAT: u32 = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn parse_alt(&mut self) -> Result<P, ParseError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("len 1")
        } else {
            P::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<P, ParseError> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                None | Some(b'|') | Some(b')') => break,
                _ => parts.push(self.parse_repeat()?),
            }
        }
        Ok(match parts.len() {
            0 => P::Eps,
            1 => parts.pop().expect("len 1"),
            _ => P::Concat(parts),
        })
    }

    fn parse_repeat(&mut self) -> Result<P, ParseError> {
        let at = self.pos;
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.check_repeatable(&atom, at)?;
                    self.bump();
                    atom = P::Star(Box::new(atom));
                }
                Some(b'+') => {
                    self.check_repeatable(&atom, at)?;
                    self.bump();
                    atom = P::Plus(Box::new(atom));
                }
                Some(b'?') => {
                    self.check_repeatable(&atom, at)?;
                    self.bump();
                    atom = P::Opt(Box::new(atom));
                }
                Some(b'{') => {
                    self.check_repeatable(&atom, at)?;
                    let (min, max) = self.parse_braces()?;
                    atom = P::Repeat(Box::new(atom), min, max);
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn check_repeatable(&self, atom: &P, at: usize) -> Result<(), ParseError> {
        match atom {
            P::Bol | P::Eol => Err(ParseError::NothingToRepeat(at)),
            _ => Ok(()),
        }
    }

    fn parse_braces(&mut self) -> Result<(u32, Option<u32>), ParseError> {
        let at = self.pos;
        self.bump(); // `{`
        let min = self.parse_number(at)?;
        match self.bump() {
            Some(b'}') => Ok((min, Some(min))),
            Some(b',') => {
                if self.peek() == Some(b'}') {
                    self.bump();
                    Ok((min, None))
                } else {
                    let max = self.parse_number(at)?;
                    if self.bump() != Some(b'}') || max < min {
                        return Err(ParseError::BadRepeat(at));
                    }
                    Ok((min, Some(max)))
                }
            }
            _ => Err(ParseError::BadRepeat(at)),
        }
    }

    fn parse_number(&mut self, at: usize) -> Result<u32, ParseError> {
        let mut n: u32 = 0;
        let mut any = false;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                self.bump();
                any = true;
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add((b - b'0') as u32))
                    .ok_or(ParseError::RepeatTooLarge(at))?;
                if n > MAX_REPEAT {
                    return Err(ParseError::RepeatTooLarge(at));
                }
            } else {
                break;
            }
        }
        if any {
            Ok(n)
        } else {
            Err(ParseError::BadRepeat(at))
        }
    }

    fn parse_atom(&mut self) -> Result<P, ParseError> {
        let at = self.pos;
        match self.bump().ok_or(ParseError::UnexpectedEnd)? {
            b'(' => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return Err(ParseError::UnbalancedParen(at));
                }
                Ok(inner)
            }
            b')' => Err(ParseError::UnbalancedParen(at)),
            b'[' => self.parse_bracket(at),
            b'.' => Ok(P::Class(ByteClass::dot())),
            b'^' => Ok(P::Bol),
            b'$' => Ok(P::Eol),
            b'\\' => {
                let e = self.bump().ok_or(ParseError::UnexpectedEnd)?;
                if e == b'x' {
                    return Ok(P::Class(ByteClass::single(self.parse_hex_escape(at)?)));
                }
                Ok(P::Class(escape_class(e)))
            }
            b'*' | b'+' | b'?' => Err(ParseError::NothingToRepeat(at)),
            b'{' => {
                // A `{` that does not follow an atom is taken literally,
                // as grep does in practice.
                Ok(P::Class(ByteClass::single(b'{')))
            }
            other => Ok(P::Class(ByteClass::single(other))),
        }
    }

    /// Parses the two hex digits of a `\xNN` escape (the `\x` is already
    /// consumed).
    fn parse_hex_escape(&mut self, at: usize) -> Result<u8, ParseError> {
        let hi = self.bump().ok_or(ParseError::UnexpectedEnd)?;
        let lo = self.bump().ok_or(ParseError::UnexpectedEnd)?;
        let digit = |b: u8| -> Result<u8, ParseError> {
            match b {
                b'0'..=b'9' => Ok(b - b'0'),
                b'a'..=b'f' => Ok(b - b'a' + 10),
                b'A'..=b'F' => Ok(b - b'A' + 10),
                _ => Err(ParseError::Unexpected(b as char, at)),
            }
        };
        Ok(digit(hi)? * 16 + digit(lo)?)
    }

    fn parse_bracket(&mut self, at: usize) -> Result<P, ParseError> {
        let negate = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut class = ByteClass::new();
        let mut first = true;
        loop {
            let b = self.bump().ok_or(ParseError::BadBracket(at))?;
            match b {
                b']' if !first => break,
                b'[' if self.peek() == Some(b':') => {
                    self.bump(); // `:`
                    let mut name = String::new();
                    loop {
                        match self.bump().ok_or(ParseError::BadBracket(at))? {
                            b':' => {
                                if self.bump() != Some(b']') {
                                    return Err(ParseError::BadBracket(at));
                                }
                                break;
                            }
                            c => name.push(c as char),
                        }
                    }
                    let named = named_class(&name).ok_or(ParseError::UnknownClass(name.clone()))?;
                    class = class.union(&named);
                }
                mut lo => {
                    if lo == b'\\' {
                        let e = self.bump().ok_or(ParseError::BadBracket(at))?;
                        lo = if e == b'x' {
                            self.parse_hex_escape(at)?
                        } else {
                            escaped_literal(e)
                        };
                    }
                    if self.peek() == Some(b'-')
                        && self.bytes.get(self.pos + 1).is_some_and(|&n| n != b']')
                    {
                        self.bump(); // `-`
                        let mut hi = self.bump().ok_or(ParseError::BadBracket(at))?;
                        if hi == b'\\' {
                            let e = self.bump().ok_or(ParseError::BadBracket(at))?;
                            hi = if e == b'x' {
                                self.parse_hex_escape(at)?
                            } else {
                                escaped_literal(e)
                            };
                        }
                        if hi < lo {
                            return Err(ParseError::BadBracket(at));
                        }
                        class.insert_range(lo, hi);
                    } else {
                        class.insert(lo);
                    }
                }
            }
            first = false;
        }
        if negate {
            class = class.complement();
            // Like grep, a negated class still never matches newline when
            // used as a line pattern; keep `\n` out so line types compose.
            class.remove(b'\n');
        }
        Ok(P::Class(class))
    }
}

/// Class denoted by `\x` escapes outside brackets.
fn escape_class(e: u8) -> ByteClass {
    match e {
        b'd' => ByteClass::range(b'0', b'9'),
        b'D' => {
            let mut c = ByteClass::range(b'0', b'9').complement();
            c.remove(b'\n');
            c
        }
        b'w' => {
            let mut c = ByteClass::range(b'a', b'z');
            c.insert_range(b'A', b'Z');
            c.insert_range(b'0', b'9');
            c.insert(b'_');
            c
        }
        b'W' => {
            let mut c = escape_class(b'w').complement();
            c.remove(b'\n');
            c
        }
        b's' => ByteClass::from_bytes(b" \t\r\x0b\x0c\n"),
        b'S' => {
            let mut c = ByteClass::from_bytes(b" \t\r\x0b\x0c").complement();
            c.remove(b'\n');
            c
        }
        other => ByteClass::single(escaped_literal(other)),
    }
}

/// Literal byte denoted by `\x` escapes (shared with bracket parsing).
fn escaped_literal(e: u8) -> u8 {
    match e {
        b't' => b'\t',
        b'n' => b'\n',
        b'r' => b'\r',
        b'0' => 0,
        other => other,
    }
}

/// Lowers in *exact* (type) mode: edge anchors are redundant and dropped,
/// interior anchors are errors.
fn lower_exact(p: &P, at_start: bool, at_end: bool) -> Result<Regex, ParseError> {
    match p {
        P::Eps => Ok(Regex::Eps),
        P::Class(c) => Ok(Regex::class(*c)),
        P::Bol => {
            if at_start {
                Ok(Regex::Eps)
            } else {
                Err(ParseError::UnsupportedAnchor(0))
            }
        }
        P::Eol => {
            if at_end {
                Ok(Regex::Eps)
            } else {
                Err(ParseError::UnsupportedAnchor(0))
            }
        }
        P::Concat(parts) => {
            let n = parts.len();
            let mut out = Vec::with_capacity(n);
            for (i, part) in parts.iter().enumerate() {
                out.push(lower_exact(part, at_start && i == 0, at_end && i == n - 1)?);
            }
            Ok(Regex::concat(out))
        }
        P::Alt(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for part in parts {
                out.push(lower_exact(part, at_start, at_end)?);
            }
            Ok(Regex::alt(out))
        }
        P::Star(inner) => Ok(lower_exact(inner, false, false)?.star()),
        P::Plus(inner) => Ok(lower_exact(inner, false, false)?.plus()),
        P::Opt(inner) => Ok(lower_exact(inner, false, false)?.opt()),
        P::Repeat(inner, min, max) => Ok(lower_exact(inner, false, false)?.repeat(*min, *max)),
    }
}

/// Lowers in *grep* (selection) mode: returns the language of lines
/// containing a match, with edge anchors removing the corresponding pad.
fn lower_grep(p: &P) -> Result<Regex, ParseError> {
    // Split top-level alternation; each branch pads independently.
    let branches: Vec<&P> = match p {
        P::Alt(parts) => parts.iter().collect(),
        other => vec![other],
    };
    let mut langs = Vec::with_capacity(branches.len());
    for branch in branches {
        let parts: Vec<&P> = match branch {
            P::Concat(parts) => parts.iter().collect(),
            other => vec![other],
        };
        let mut bol = false;
        let mut eol = false;
        let mut inner: Vec<&P> = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            match part {
                P::Bol if i == 0 => bol = true,
                P::Eol if i == parts.len() - 1 => eol = true,
                _ => inner.push(part),
            }
        }
        let mut seq = Vec::new();
        if !bol {
            seq.push(Regex::any_line());
        }
        for part in inner {
            seq.push(lower_exact(part, false, false)?);
        }
        if !eol {
            seq.push(Regex::any_line());
        }
        langs.push(Regex::concat(seq));
    }
    Ok(Regex::alt(langs))
}

impl Regex {
    /// Parses `pattern` in the exact (type) reading. See the module docs.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed syntax or anchors in
    /// unsupported positions.
    pub fn parse(pattern: &str) -> Result<Regex, ParseError> {
        let mut p = Parser {
            bytes: pattern.as_bytes(),
            pos: 0,
        };
        let ast = p.parse_alt()?;
        if p.pos != p.bytes.len() {
            return Err(ParseError::Unexpected(p.bytes[p.pos] as char, p.pos));
        }
        lower_exact(&ast, true, true)
    }

    /// Parses `pattern` in the grep (line-selection) reading: the result
    /// is the language of lines `grep -E pattern` selects.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed syntax or anchors in
    /// unsupported positions.
    pub fn grep_pattern(pattern: &str) -> Result<Regex, ParseError> {
        let mut p = Parser {
            bytes: pattern.as_bytes(),
            pos: 0,
        };
        let ast = p.parse_alt()?;
        if p.pos != p.bytes.len() {
            return Err(ParseError::Unexpected(p.bytes[p.pos] as char, p.pos));
        }
        lower_grep(&ast)
    }

    /// Like [`Regex::parse`] but panics on error; for statically known
    /// patterns inside the analyzer and tests.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` does not parse.
    pub fn parse_must(pattern: &str) -> Regex {
        match Regex::parse(pattern) {
            Ok(r) => r,
            Err(e) => panic!("bad builtin pattern {pattern:?}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_classes() {
        let r = Regex::parse("ab[0-9]c").unwrap();
        assert!(r.matches(b"ab7c"));
        assert!(!r.matches(b"abxc"));
    }

    #[test]
    fn alternation_precedence() {
        let r = Regex::parse("ab|cd").unwrap();
        assert!(r.matches(b"ab"));
        assert!(r.matches(b"cd"));
        assert!(!r.matches(b"ad"));
        let g = Regex::parse("a(b|c)d").unwrap();
        assert!(g.matches(b"abd"));
        assert!(g.matches(b"acd"));
    }

    #[test]
    fn postfix_operators() {
        assert!(Regex::parse("a*").unwrap().matches(b""));
        assert!(Regex::parse("a+").unwrap().matches(b"aaa"));
        assert!(!Regex::parse("a+").unwrap().matches(b""));
        assert!(Regex::parse("ab?c").unwrap().matches(b"ac"));
        let r = Regex::parse("a{2,3}").unwrap();
        assert!(!r.matches(b"a"));
        assert!(r.matches(b"aa"));
        assert!(r.matches(b"aaa"));
        assert!(!r.matches(b"aaaa"));
        assert!(Regex::parse("a{2}").unwrap().matches(b"aa"));
        assert!(Regex::parse("a{2,}").unwrap().matches(b"aaaaa"));
    }

    #[test]
    fn bracket_expressions() {
        let r = Regex::parse("[a-cx]").unwrap();
        assert!(r.matches(b"b"));
        assert!(r.matches(b"x"));
        assert!(!r.matches(b"d"));
        let neg = Regex::parse("[^a-c]").unwrap();
        assert!(neg.matches(b"z"));
        assert!(!neg.matches(b"a"));
        assert!(!neg.matches(b"\n"));
        let lit_bracket = Regex::parse("[]x]").unwrap();
        assert!(lit_bracket.matches(b"]"));
        assert!(lit_bracket.matches(b"x"));
        let dash = Regex::parse("[a-]").unwrap();
        assert!(dash.matches(b"-"));
        let named = Regex::parse("[[:digit:]]+").unwrap();
        assert!(named.matches(b"123"));
        assert!(!named.matches(b"12a"));
    }

    #[test]
    fn escapes() {
        assert!(Regex::parse("a\\.b").unwrap().matches(b"a.b"));
        assert!(!Regex::parse("a\\.b").unwrap().matches(b"axb"));
        assert!(Regex::parse("\\d+").unwrap().matches(b"42"));
        assert!(Regex::parse("\\w+").unwrap().matches(b"a_1"));
        assert!(Regex::parse("x\\ty").unwrap().matches(b"x\ty"));
        assert!(Regex::parse("\\s").unwrap().matches(b" "));
        assert!(!Regex::parse("\\S").unwrap().matches(b" "));
    }

    #[test]
    fn anchors_exact_mode() {
        // Edge anchors are tolerated and meaningless in exact mode.
        assert!(Regex::parse("^abc$").unwrap().matches(b"abc"));
        assert!(Regex::parse("^a|b$").unwrap().matches(b"a"));
        // Interior anchors are rejected.
        assert!(matches!(
            Regex::parse("a^b"),
            Err(ParseError::UnsupportedAnchor(_))
        ));
        assert!(matches!(
            Regex::parse("a$b"),
            Err(ParseError::UnsupportedAnchor(_))
        ));
    }

    #[test]
    fn grep_mode_padding() {
        let r = Regex::grep_pattern("desc").unwrap();
        assert!(r.matches(b"xdescy"));
        assert!(r.matches(b"desc"));
        assert!(!r.matches(b"des"));
        let anchored = Regex::grep_pattern("^desc").unwrap();
        assert!(anchored.matches(b"description"));
        assert!(!anchored.matches(b"xdesc"));
        let tail = Regex::grep_pattern("desc$").unwrap();
        assert!(tail.matches(b"my desc"));
        assert!(!tail.matches(b"desc !"));
        let exact = Regex::grep_pattern("^desc$").unwrap();
        assert!(exact.matches(b"desc"));
        assert!(!exact.matches(b"descx"));
    }

    #[test]
    fn grep_mode_mixed_anchor_alternation() {
        let r = Regex::grep_pattern("^a|b$").unwrap();
        assert!(r.matches(b"aXX"));
        assert!(r.matches(b"XXb"));
        assert!(!r.matches(b"XaX"));
        assert!(r.matches(b"ab"));
    }

    #[test]
    fn fig5_bug_reproduction() {
        // The paper's Fig. 5: `grep '^desc'` over `lsb_release -a` output
        // passes nothing; `^Desc` passes the Description line.
        let lsb = Regex::parse("(Distributor ID|Description|Release|Codename):\t.*").unwrap();
        let bad = Regex::grep_pattern("^desc").unwrap();
        let good = Regex::grep_pattern("^Desc").unwrap();
        assert!(lsb.intersect(&bad).is_empty());
        let inter = lsb.intersect(&good);
        assert!(!inter.is_empty());
        assert!(inter.witness_string().unwrap().starts_with("Description:"));
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            Regex::parse("*a"),
            Err(ParseError::NothingToRepeat(_))
        ));
        assert!(matches!(
            Regex::parse("(a"),
            Err(ParseError::UnbalancedParen(_))
        ));
        assert!(matches!(
            Regex::parse("a)"),
            Err(ParseError::Unexpected(')', _))
        ));
        assert!(matches!(Regex::parse("[a"), Err(ParseError::BadBracket(_))));
        assert!(matches!(
            Regex::parse("a{3,1}"),
            Err(ParseError::BadRepeat(_))
        ));
        assert!(matches!(
            Regex::parse("a{9999}"),
            Err(ParseError::RepeatTooLarge(_))
        ));
        assert!(matches!(
            Regex::parse("[[:bogus:]]"),
            Err(ParseError::UnknownClass(_))
        ));
        assert!(matches!(
            Regex::parse("a\\"),
            Err(ParseError::UnexpectedEnd)
        ));
    }

    #[test]
    fn literal_brace() {
        assert!(Regex::parse("{x}").unwrap().matches(b"{x}"));
    }

    #[test]
    fn empty_pattern_is_epsilon() {
        let r = Regex::parse("").unwrap();
        assert!(r.matches(b""));
        assert!(!r.matches(b"a"));
        // In grep mode the empty pattern selects every line.
        let g = Regex::grep_pattern("").unwrap();
        assert!(g.matches(b"anything"));
    }
}
