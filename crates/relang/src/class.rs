//! Byte classes: sets of bytes represented as 256-bit bitmaps.
//!
//! The engine's alphabet is the full byte range `0..=255` because shell
//! streams and filenames are raw bytes, not text. A [`ByteClass`] is a set
//! of bytes; regex character classes, `.`, and literals all compile to one.

use std::fmt;

/// A set of bytes, stored as a 256-bit bitmap.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ByteClass {
    bits: [u64; 4],
}

impl ByteClass {
    /// The empty set.
    pub const EMPTY: ByteClass = ByteClass { bits: [0; 4] };

    /// The full set (all 256 bytes).
    pub const ALL: ByteClass = ByteClass {
        bits: [u64::MAX; 4],
    };

    /// Creates an empty class.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Creates a class containing a single byte.
    pub fn single(b: u8) -> Self {
        let mut c = Self::EMPTY;
        c.insert(b);
        c
    }

    /// Creates a class containing an inclusive byte range.
    pub fn range(lo: u8, hi: u8) -> Self {
        let mut c = Self::EMPTY;
        c.insert_range(lo, hi);
        c
    }

    /// Creates a class from every byte in `bytes`.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut c = Self::EMPTY;
        for &b in bytes {
            c.insert(b);
        }
        c
    }

    /// The class matched by `.` in POSIX regexes: every byte except `\n`.
    pub fn dot() -> Self {
        let mut c = Self::ALL;
        c.remove(b'\n');
        c
    }

    /// Inserts a byte.
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Inserts an inclusive range of bytes.
    pub fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    /// Removes a byte.
    pub fn remove(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] &= !(1u64 << (b & 63));
    }

    /// Tests membership.
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Returns true if the class has no members.
    pub fn is_empty(&self) -> bool {
        self.bits == [0; 4]
    }

    /// Number of member bytes.
    pub fn len(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
        ByteClass { bits }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Self) -> Self {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits.iter()) {
            *a &= *b;
        }
        ByteClass { bits }
    }

    /// Set complement with respect to the full byte alphabet.
    pub fn complement(&self) -> Self {
        let mut bits = self.bits;
        for w in bits.iter_mut() {
            *w = !*w;
        }
        ByteClass { bits }
    }

    /// Set difference (`self \ other`).
    pub fn difference(&self, other: &Self) -> Self {
        self.intersect(&other.complement())
    }

    /// Returns the smallest member byte, if any.
    pub fn min_byte(&self) -> Option<u8> {
        self.iter().next()
    }

    /// Picks a "nice" representative byte for diagnostics: prefers
    /// printable ASCII, then any member.
    pub fn representative(&self) -> Option<u8> {
        // Prefer lowercase letters, then digits, then any printable, then any.
        for range in [(b'a', b'z'), (b'0', b'9'), (b'A', b'Z'), (0x20, 0x7e)] {
            for b in range.0..=range.1 {
                if self.contains(b) {
                    return Some(b);
                }
            }
        }
        self.min_byte()
    }

    /// Iterates over the member bytes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).filter_map(move |b| {
            let b = b as u8;
            if self.contains(b) {
                Some(b)
            } else {
                None
            }
        })
    }

    /// Iterates over the maximal contiguous ranges of member bytes.
    pub fn ranges(&self) -> Vec<(u8, u8)> {
        let mut out = Vec::new();
        let mut cur: Option<(u8, u8)> = None;
        for b in self.iter() {
            match cur {
                Some((lo, hi)) if hi as u16 + 1 == b as u16 => cur = Some((lo, b)),
                Some(r) => {
                    out.push(r);
                    cur = Some((b, b));
                }
                None => cur = Some((b, b)),
            }
        }
        if let Some(r) = cur {
            out.push(r);
        }
        out
    }
}

impl Default for ByteClass {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl fmt::Debug for ByteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Self::ALL {
            return write!(f, "ByteClass(ALL)");
        }
        write!(f, "ByteClass[")?;
        for (i, (lo, hi)) in self.ranges().into_iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if lo == hi {
                write!(f, "{:#04x}", lo)?;
            } else {
                write!(f, "{:#04x}-{:#04x}", lo, hi)?;
            }
        }
        write!(f, "]")
    }
}

/// Refines an alphabet partition by one class: every block is replaced
/// by its intersection with `c` and its remainder (empty pieces are
/// dropped). Starting from `[ByteClass::ALL]` and refining by every
/// transition class of an automaton yields the coarsest partition on
/// which the automaton's transitions are constant — the alphabet
/// compression both DFA construction routes rely on.
///
/// Block order is deterministic (inside piece before outside piece, in
/// the order of the input partition); downstream construction relies on
/// this to keep compiled automata reproducible.
pub fn refine_partition(partition: &mut Vec<ByteClass>, c: &ByteClass) {
    let mut next = Vec::with_capacity(partition.len() + 1);
    for block in partition.iter() {
        let inside = block.intersect(c);
        let outside = block.difference(c);
        if !inside.is_empty() {
            next.push(inside);
        }
        if !outside.is_empty() {
            next.push(outside);
        }
    }
    *partition = next;
}

/// Named POSIX character classes usable inside bracket expressions,
/// e.g. `[[:digit:]]`.
pub fn named_class(name: &str) -> Option<ByteClass> {
    let mut c = ByteClass::new();
    match name {
        "alpha" => {
            c.insert_range(b'a', b'z');
            c.insert_range(b'A', b'Z');
        }
        "digit" => c.insert_range(b'0', b'9'),
        "alnum" => {
            c.insert_range(b'a', b'z');
            c.insert_range(b'A', b'Z');
            c.insert_range(b'0', b'9');
        }
        "upper" => c.insert_range(b'A', b'Z'),
        "lower" => c.insert_range(b'a', b'z'),
        "space" => {
            for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                c.insert(b);
            }
        }
        "blank" => {
            c.insert(b' ');
            c.insert(b'\t');
        }
        "punct" => {
            for b in 0x21..=0x7eu8 {
                if !b.is_ascii_alphanumeric() {
                    c.insert(b);
                }
            }
        }
        "xdigit" => {
            c.insert_range(b'0', b'9');
            c.insert_range(b'a', b'f');
            c.insert_range(b'A', b'F');
        }
        "print" => c.insert_range(0x20, 0x7e),
        "graph" => c.insert_range(0x21, 0x7e),
        "cntrl" => {
            c.insert_range(0, 0x1f);
            c.insert(0x7f);
        }
        _ => return None,
    }
    Some(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_contains() {
        let c = ByteClass::single(b'x');
        assert!(c.contains(b'x'));
        assert!(!c.contains(b'y'));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn range_membership() {
        let c = ByteClass::range(b'a', b'f');
        for b in b'a'..=b'f' {
            assert!(c.contains(b));
        }
        assert!(!c.contains(b'g'));
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn boundary_bytes() {
        let c = ByteClass::range(0, 255);
        assert_eq!(c, ByteClass::ALL);
        assert!(c.contains(0));
        assert!(c.contains(255));
        assert!(c.contains(63));
        assert!(c.contains(64));
        assert!(c.contains(127));
        assert!(c.contains(128));
    }

    #[test]
    fn complement_roundtrip() {
        let c = ByteClass::range(b'0', b'9');
        let cc = c.complement();
        assert!(!cc.contains(b'5'));
        assert!(cc.contains(b'a'));
        assert_eq!(cc.complement(), c);
        assert_eq!(c.len() + cc.len(), 256);
    }

    #[test]
    fn union_intersect_difference() {
        let a = ByteClass::range(b'a', b'm');
        let b = ByteClass::range(b'h', b'z');
        let u = a.union(&b);
        let i = a.intersect(&b);
        let d = a.difference(&b);
        assert!(u.contains(b'a') && u.contains(b'z'));
        assert!(i.contains(b'h') && i.contains(b'm') && !i.contains(b'n'));
        assert!(d.contains(b'a') && !d.contains(b'h'));
        assert_eq!(u.len(), 26);
        assert_eq!(i.len(), 6);
        assert_eq!(d.len(), 7);
    }

    #[test]
    fn dot_excludes_newline() {
        let d = ByteClass::dot();
        assert!(!d.contains(b'\n'));
        assert!(d.contains(b'\r'));
        assert_eq!(d.len(), 255);
    }

    #[test]
    fn ranges_reconstruct() {
        let mut c = ByteClass::new();
        c.insert_range(b'a', b'c');
        c.insert(b'x');
        c.insert_range(0, 1);
        assert_eq!(c.ranges(), vec![(0, 1), (b'a', b'c'), (b'x', b'x')]);
    }

    #[test]
    fn representative_prefers_printable() {
        let mut c = ByteClass::new();
        c.insert(0x01);
        c.insert(b'q');
        assert_eq!(c.representative(), Some(b'q'));
        let ctrl = ByteClass::single(0x02);
        assert_eq!(ctrl.representative(), Some(0x02));
        assert_eq!(ByteClass::EMPTY.representative(), None);
    }

    #[test]
    fn named_classes() {
        assert!(named_class("digit").unwrap().contains(b'7'));
        assert!(named_class("xdigit").unwrap().contains(b'F'));
        assert!(named_class("space").unwrap().contains(b'\t'));
        assert!(named_class("punct").unwrap().contains(b'/'));
        assert!(!named_class("punct").unwrap().contains(b'a'));
        assert!(named_class("bogus").is_none());
    }

    #[test]
    fn refine_partition_is_disjoint_cover() {
        let mut p = vec![ByteClass::ALL];
        refine_partition(&mut p, &ByteClass::range(b'a', b'm'));
        refine_partition(&mut p, &ByteClass::range(b'h', b'z'));
        refine_partition(&mut p, &ByteClass::EMPTY); // no-op, drops nothing
        // Blocks are pairwise disjoint and cover all 256 bytes.
        let mut total = 0;
        for (i, a) in p.iter().enumerate() {
            total += a.len();
            for b in p.iter().skip(i + 1) {
                assert!(a.intersect(b).is_empty());
            }
        }
        assert_eq!(total, 256);
        // a..m splits h..z: expect a-g | h-m | n-z | rest.
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn iter_ascending() {
        let c = ByteClass::from_bytes(b"zax");
        let v: Vec<u8> = c.iter().collect();
        assert_eq!(v, vec![b'a', b'x', b'z']);
    }
}
