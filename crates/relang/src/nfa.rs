//! Thompson construction of nondeterministic finite automata.
//!
//! The NFA backend covers the classical regex fragment (no `And`/`Not`;
//! those are handled by the derivative backend in [`crate::deriv`] and the
//! DFA product constructions in [`crate::dfa`]). It exists for two
//! reasons: subset construction from a Thompson NFA is the textbook
//! compilation route and is measurably faster on large classical regexes,
//! and having two independent backends lets the test suite cross-check
//! them against each other.

use crate::ast::Regex;
use crate::class::ByteClass;

/// State identifier within an [`Nfa`].
pub type StateId = usize;

/// A transition on a byte class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Bytes this transition consumes.
    pub on: ByteClass,
    /// Destination state.
    pub to: StateId,
}

/// One NFA state: byte-class transitions plus ε-transitions.
#[derive(Debug, Clone, Default)]
pub struct State {
    /// Consuming transitions.
    pub trans: Vec<Transition>,
    /// Non-consuming (ε) transitions.
    pub eps: Vec<StateId>,
}

/// A Thompson NFA with a single start and a single accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// All states; indices are [`StateId`]s.
    pub states: Vec<State>,
    /// The start state.
    pub start: StateId,
    /// The unique accepting state.
    pub accept: StateId,
}

/// Error returned when asked to compile an extended operator the Thompson
/// backend does not support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedExtended;

impl std::fmt::Display for UnsupportedExtended {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Thompson NFA backend does not support And/Not; use the derivative backend"
        )
    }
}

impl std::error::Error for UnsupportedExtended {}

impl Nfa {
    /// Compiles a classical regex to a Thompson NFA.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedExtended`] if the regex contains `And` or
    /// `Not` nodes.
    pub fn compile(r: &Regex) -> Result<Nfa, UnsupportedExtended> {
        let mut nfa = Nfa {
            states: Vec::new(),
            start: 0,
            accept: 0,
        };
        let (s, a) = nfa.build(r)?;
        nfa.start = s;
        nfa.accept = a;
        Ok(nfa)
    }

    fn new_state(&mut self) -> StateId {
        self.states.push(State::default());
        self.states.len() - 1
    }

    /// The coarsest alphabet partition on which every outgoing
    /// transition of the states in `set` is constant. Subset
    /// construction steps once per block instead of once per byte —
    /// the NFA-side half of the engine's alphabet compression.
    pub fn local_classes(&self, set: &[StateId]) -> Vec<ByteClass> {
        let mut partition = vec![ByteClass::ALL];
        for &s in set {
            for t in &self.states[s].trans {
                crate::class::refine_partition(&mut partition, &t.on);
            }
        }
        partition
    }

    fn build(&mut self, r: &Regex) -> Result<(StateId, StateId), UnsupportedExtended> {
        match r {
            Regex::Empty => {
                let s = self.new_state();
                let a = self.new_state();
                Ok((s, a))
            }
            Regex::Eps => {
                let s = self.new_state();
                let a = self.new_state();
                self.states[s].eps.push(a);
                Ok((s, a))
            }
            Regex::Class(c) => {
                let s = self.new_state();
                let a = self.new_state();
                self.states[s].trans.push(Transition { on: *c, to: a });
                Ok((s, a))
            }
            Regex::Concat(parts) => {
                let mut first: Option<StateId> = None;
                let mut prev_accept: Option<StateId> = None;
                for p in parts.iter() {
                    let (s, a) = self.build(p)?;
                    if let Some(pa) = prev_accept {
                        self.states[pa].eps.push(s);
                    } else {
                        first = Some(s);
                    }
                    prev_accept = Some(a);
                }
                Ok((
                    first.expect("concat has >= 2 parts"),
                    prev_accept.expect("nonempty"),
                ))
            }
            Regex::Alt(parts) => {
                let s = self.new_state();
                let a = self.new_state();
                for p in parts.iter() {
                    let (ps, pa) = self.build(p)?;
                    self.states[s].eps.push(ps);
                    self.states[pa].eps.push(a);
                }
                Ok((s, a))
            }
            Regex::Star(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (is, ia) = self.build(inner)?;
                self.states[s].eps.push(is);
                self.states[s].eps.push(a);
                self.states[ia].eps.push(is);
                self.states[ia].eps.push(a);
                Ok((s, a))
            }
            Regex::And(_) | Regex::Not(_) => Err(UnsupportedExtended),
        }
    }

    /// The ε-closure of a set of states, returned sorted and deduplicated.
    pub fn eps_closure(&self, seeds: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = Vec::new();
        for &s in seeds {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            out.push(s);
            for &t in &self.states[s].eps {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Simulates the NFA on `input` (exact match).
    pub fn matches(&self, input: &[u8]) -> bool {
        let mut current = self.eps_closure(&[self.start]);
        for &b in input {
            let mut next = Vec::new();
            for &s in &current {
                for t in &self.states[s].trans {
                    if t.on.contains(b) {
                        next.push(t.to);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            current = self.eps_closure(&next);
        }
        current.contains(&self.accept)
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the automaton has no states (never produced by
    /// [`Nfa::compile`], which always allocates at least two).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nfa(pat: &str) -> Nfa {
        Nfa::compile(&Regex::parse_must(pat)).expect("classical regex")
    }

    #[test]
    fn literal() {
        let n = nfa("abc");
        assert!(n.matches(b"abc"));
        assert!(!n.matches(b"ab"));
        assert!(!n.matches(b"abcd"));
    }

    #[test]
    fn alternation_and_star() {
        let n = nfa("(ab|cd)*");
        assert!(n.matches(b""));
        assert!(n.matches(b"abcdab"));
        assert!(!n.matches(b"abc"));
    }

    #[test]
    fn classes() {
        let n = nfa("[0-9a-f]+");
        assert!(n.matches(b"deadbeef42"));
        assert!(!n.matches(b"xyz"));
        assert!(!n.matches(b""));
    }

    #[test]
    fn empty_language_nfa() {
        let n = Nfa::compile(&Regex::Empty).unwrap();
        assert!(!n.matches(b""));
        assert!(!n.matches(b"a"));
    }

    #[test]
    fn extended_rejected() {
        let r = Regex::lit("a").complement();
        assert!(matches!(Nfa::compile(&r), Err(UnsupportedExtended)));
        let a = Regex::lit("a").intersect(&Regex::any_line());
        assert!(Nfa::compile(&a).is_err());
    }

    #[test]
    fn eps_closure_transitive() {
        let n = nfa("a*b*");
        let cl = n.eps_closure(&[n.start]);
        // The closure from start must reach the accept state (both stars
        // are skippable).
        assert!(cl.contains(&n.accept));
    }

    #[test]
    fn agrees_with_derivatives_on_samples() {
        for pat in [
            "(a|b)*abb",
            "x?y?z?",
            "[a-c]{2,3}",
            "a(bc)*d",
            "(0|1(01*0)*1)*",
        ] {
            let r = Regex::parse_must(pat);
            let n = Nfa::compile(&r).unwrap();
            for input in [
                "", "a", "abb", "aabb", "xz", "ad", "abcbcd", "11011", "0", "abc", "aa", "ccc",
            ] {
                assert_eq!(
                    n.matches(input.as_bytes()),
                    r.matches(input.as_bytes()),
                    "pattern {pat:?} on {input:?}"
                );
            }
        }
    }
}
