//! Hash-consed term ids and bounded memo tables for the decision
//! procedures.
//!
//! The analyzer asks the same questions about the same languages over
//! and over: every explored world re-checks the same spec
//! preconditions, and every `rm` operand is re-classified against the
//! same danger patterns. Each such question used to recompile a DFA
//! from scratch. This module makes repeats O(1):
//!
//! * **Interning** ([`intern`]): a thread-local hash-consing table maps
//!   each structurally-canonical [`Regex`] to a dense [`TermId`]. Two
//!   structurally equal terms (the smart constructors canonicalize, so
//!   equal-by-construction terms are structurally equal) get the same
//!   id.
//! * **Memo tables**: DFA compilation plus the four decision procedures
//!   (emptiness, containment, equivalence, disjointness / emptiness of
//!   intersection) and witness extraction are cached keyed on term ids.
//!
//! Correctness invariants:
//!
//! * **Approximation replay.** A decision computed under the DFA state
//!   cap may record [`ApproxReason`] events (the analysis driver turns
//!   them into "analysis incomplete" report notes). The memo stores the
//!   events recorded during the original computation and **replays them
//!   on every hit** — a cached ⊤-approximation must not silently lose
//!   its incompleteness mark.
//! * **Cap-aware invalidation.** Cached answers are only valid for the
//!   state cap they were computed under; every memo operation compares
//!   the thread's current [`crate::dfa::dfa_state_cap`] against the cap
//!   the tables were built with and flushes everything on change.
//! * **Bounded.** The interner and each table have fixed caps; on
//!   overflow everything is flushed (the simple eviction policy keeps
//!   hit/miss behavior deterministic — no LRU clock state).
//!
//! All state is thread-local, so concurrent analyses (the parallel scan
//! pool) stay independent; the cached *answers* are pure functions of
//! the terms, so results never depend on which thread (or how warm a
//! cache) computed them.
//!
//! Observability: `relang.memo_hit`, `relang.memo_miss`, and
//! `relang.memo_evict` counters via `shoal-obs`.

use crate::ast::Regex;
use crate::dfa::{ApproxReason, Dfa};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Dense id of an interned term (thread-local scope).
pub type TermId = u32;

/// Interner capacity: beyond this many distinct live terms, all memo
/// state is flushed. Large enough for any realistic script corpus
/// (thousands of distinct constraints), small enough to bound memory.
/// Public so regression tests can drive the interner exactly to the
/// overflow boundary (see `tests/props.rs`,
/// `memo_flush_must_retire_ids_with_the_terms`).
pub const INTERN_CAP: usize = 16 * 1024;
/// Per-table decision cache capacity.
const DECISION_CAP: usize = 16 * 1024;
/// Compiled-DFA cache capacity (DFAs are the heavyweight entries).
const COMPILE_CAP: usize = 2 * 1024;

/// A cached answer plus the approximation events its computation
/// recorded (replayed on every hit).
struct Cached<T> {
    value: T,
    approx: Vec<ApproxReason>,
}

struct Memo {
    enabled: bool,
    /// The DFA state cap the tables were built under.
    cap: usize,
    /// Interner generation, bumped on every [`Memo::flush`]. Ids are
    /// only comparable within one epoch: a flush retires every id, so
    /// a key whose terms were interned across a flush (the interner
    /// overflowed between the two `intern` calls of a binary key, or
    /// a decision's own computation reentered the memo and flushed)
    /// must not be used to insert — the same `(TermId, TermId)` pair
    /// will later address *different* terms.
    epoch: u64,
    interner: HashMap<Regex, TermId>,
    next_id: TermId,
    empty: HashMap<TermId, Cached<bool>>,
    subset: HashMap<(TermId, TermId), Cached<bool>>,
    equiv: HashMap<(TermId, TermId), Cached<bool>>,
    disjoint: HashMap<(TermId, TermId), Cached<bool>>,
    witness: HashMap<TermId, Cached<Option<Vec<u8>>>>,
    compile: HashMap<TermId, Cached<Arc<Dfa>>>,
}

impl Memo {
    fn new() -> Memo {
        Memo {
            enabled: true,
            cap: crate::dfa::dfa_state_cap(),
            epoch: 0,
            interner: HashMap::new(),
            next_id: 0,
            empty: HashMap::new(),
            subset: HashMap::new(),
            equiv: HashMap::new(),
            disjoint: HashMap::new(),
            witness: HashMap::new(),
            compile: HashMap::new(),
        }
    }

    fn flush(&mut self) {
        self.epoch += 1;
        self.interner.clear();
        self.next_id = 0;
        self.empty.clear();
        self.subset.clear();
        self.equiv.clear();
        self.disjoint.clear();
        self.witness.clear();
        self.compile.clear();
        shoal_obs::counter_add("relang.memo_evict", 1);
    }

    /// Flushes stale answers when the thread's DFA state cap changed
    /// since the tables were built (a cached ⊤ under a small cap would
    /// be wrong under a larger one, and vice versa).
    fn validate_cap(&mut self) {
        let current = crate::dfa::dfa_state_cap();
        if current != self.cap {
            self.flush();
            self.cap = current;
        }
    }

    /// Interns `r`, flushing everything first if the interner is full
    /// (ids must stay dense and live tables must not reference retired
    /// ids).
    fn intern(&mut self, r: &Regex) -> TermId {
        if let Some(&id) = self.interner.get(r) {
            return id;
        }
        if self.interner.len() >= INTERN_CAP {
            self.flush();
        }
        let id = self.next_id;
        self.next_id += 1;
        self.interner.insert(r.clone(), id);
        id
    }
}

thread_local! {
    static MEMO: RefCell<Memo> = RefCell::new(Memo::new());
}

/// Enables or disables memoization on this thread (tests compare
/// memoized against freshly-computed answers). Disabling flushes.
pub fn set_memo_enabled(enabled: bool) {
    MEMO.with(|m| {
        let mut m = m.borrow_mut();
        m.enabled = enabled;
        if !enabled {
            m.flush();
        }
    });
}

/// Drops all memoized state on this thread.
pub fn memo_flush() {
    MEMO.with(|m| m.borrow_mut().flush());
}

/// The interned id of `r` on this thread (hash-consing handle —
/// structurally equal terms get equal ids).
pub fn intern(r: &Regex) -> TermId {
    MEMO.with(|m| {
        let mut m = m.borrow_mut();
        m.validate_cap();
        m.intern(r)
    })
}

/// Runs `compute`, capturing the approximation events it records so
/// they can be replayed on later cache hits. The live events stay in
/// the thread's approx-hit buffer exactly as they would uncached.
fn compute_capturing<T>(compute: impl FnOnce() -> T) -> Cached<T> {
    let mark = crate::dfa::approx_hits_len();
    let value = compute();
    let approx = crate::dfa::approx_hits_since(mark);
    Cached { value, approx }
}

/// Generic memoized unary/binary decision. `table` projects the table
/// out of the memo, `key` the lookup key; `compute` runs uncached.
macro_rules! memoized {
    ($table:ident, $key:expr, $compute:expr) => {{
        let enabled_key = MEMO.with(|m| {
            let mut m = m.borrow_mut();
            if !m.enabled {
                return None;
            }
            m.validate_cap();
            let epoch = m.epoch;
            let key = $key(&mut *m);
            if m.epoch != epoch {
                // The interner overflowed while interning this key's
                // terms, retiring ids minted before the flush.
                // Re-intern: the interner was just emptied, so a
                // second flush within one key is impossible and the
                // recomputed key is whole.
                Some(($key(&mut *m), m.epoch))
            } else {
                Some((key, epoch))
            }
        });
        let Some((key, epoch)) = enabled_key else {
            // Memoization off: compute fresh (events record live).
            return $compute();
        };
        let hit = MEMO.with(|m| {
            let m = m.borrow();
            m.$table.get(&key).map(|c| {
                crate::dfa::replay_approx_hits(&c.approx);
                c.value.clone()
            })
        });
        if let Some(v) = hit {
            shoal_obs::counter_add("relang.memo_hit", 1);
            return v;
        }
        shoal_obs::counter_add("relang.memo_miss", 1);
        // Compute WITHOUT holding the borrow: decision procedures
        // reenter the memo (emptiness → compile).
        let cached = compute_capturing($compute);
        let value = cached.value.clone();
        MEMO.with(|m| {
            let mut m = m.borrow_mut();
            // The computation itself reenters the memo (difference,
            // intersection, emptiness all intern sub-terms) and may
            // have flushed; the key's ids are then retired and caching
            // under them would poison a future epoch's terms.
            if m.epoch != epoch {
                return;
            }
            if m.$table.len() >= table_cap(stringify!($table)) {
                m.$table.clear();
                shoal_obs::counter_add("relang.memo_evict", 1);
            }
            m.$table.insert(key, cached);
        });
        value
    }};
}

fn table_cap(table: &str) -> usize {
    if table == "compile" {
        COMPILE_CAP
    } else {
        DECISION_CAP
    }
}

/// Memoized language emptiness of `r`.
///
/// An `And` term is decomposed: each conjunct compiles to its own
/// (individually memoized, typically small and already-cached) DFA and
/// the lazy n-way intersection search answers without ever compiling
/// the conjunction into one derivative automaton — the common
/// `a.difference(b).is_empty()` call pattern never materializes `a\b`.
pub fn is_empty(r: &Regex) -> bool {
    let _t = shoal_obs::trace::phase_timer("relang");
    memoized!(empty, |m: &mut Memo| m.intern(r), || {
        match r {
            Regex::And(parts) => {
                let dfas: Vec<Arc<Dfa>> = parts.iter().map(compile_shared).collect();
                let refs: Vec<&Dfa> = dfas.iter().map(|d| &**d).collect();
                crate::lazy::intersection_empty(&refs)
            }
            _ => compile_shared(r).is_empty_lang(),
        }
    })
}

/// Memoized containment `a ⊆ b`: lazy pair search over the operands'
/// (individually cached) DFAs, early-exiting at the first string in
/// `a` but not `b`.
pub fn is_subset_of(a: &Regex, b: &Regex) -> bool {
    let _t = shoal_obs::trace::phase_timer("relang");
    memoized!(subset, |m: &mut Memo| (m.intern(a), m.intern(b)), || {
        crate::lazy::subset(&compile_shared(a), &compile_shared(b))
    })
}

/// Memoized language equivalence: one lazy symmetric-difference search
/// (the eager pipeline ran two full containment checks).
pub fn equiv(a: &Regex, b: &Regex) -> bool {
    let _t = shoal_obs::trace::phase_timer("relang");
    memoized!(equiv, |m: &mut Memo| (m.intern(a), m.intern(b)), || {
        crate::lazy::equiv(&compile_shared(a), &compile_shared(b))
    })
}

/// Memoized disjointness (emptiness of intersection): lazy pair
/// search, early-exiting at the first common string.
pub fn disjoint(a: &Regex, b: &Regex) -> bool {
    let _t = shoal_obs::trace::phase_timer("relang");
    memoized!(disjoint, |m: &mut Memo| (m.intern(a), m.intern(b)), || {
        crate::lazy::disjoint(&compile_shared(a), &compile_shared(b))
    })
}

/// Memoized shortest-witness extraction. Stays compile-based (not a
/// lazy pair search): witness byte strings reach diagnostics, and the
/// canonical minimal DFA pins their exact rendering.
pub fn witness(r: &Regex) -> Option<Vec<u8>> {
    let _t = shoal_obs::trace::phase_timer("relang");
    memoized!(witness, |m: &mut Memo| m.intern(r), || {
        compile_shared(r).witness()
    })
}

/// Memoized DFA compilation, sharing the cached `Arc` (no clone of the
/// transition tables). The lazy decision procedures go through this so
/// a hot operand pair costs two table lookups before the search.
pub(crate) fn compile_shared(r: &Regex) -> Arc<Dfa> {
    memoized!(compile, |m: &mut Memo| m.intern(r), || {
        Arc::new(Dfa::from_regex_uncached(r))
    })
}

/// Memoized DFA compilation (the [`Dfa::from_regex`] entry point).
/// Returns a clone of the cached automaton; the cached `Arc` keeps the
/// heavy tables shared until a caller actually mutates them.
///
/// Decision procedures and compilation charge their wall time to the
/// `relang` trace phase ([`shoal_obs::trace::phase_timer`]) — a
/// sub-slice of the engine's `symexec` phase. The timer is inert (one
/// thread-local read, no clock) unless a request trace is active, and
/// nested calls charge only at the outermost entry point.
pub fn compile(r: &Regex) -> Dfa {
    let _t = shoal_obs::trace::phase_timer("relang");
    (*compile_shared(r)).clone()
}

/// The eager reference pipeline, retained verbatim for differential
/// testing: every decision compiles the *combined* term with the
/// (uncached) derivative construction and asks a reachability question
/// of the materialized automaton — exactly what the decision
/// procedures did before the lazy rebuild. `tests/props.rs` pins
/// lazy-vs-eager verdict equality on random regex pairs; nothing on a
/// production path should call these.
pub mod eager {
    use super::*;

    /// Eager emptiness: compile `r`, check reachability.
    pub fn is_empty(r: &Regex) -> bool {
        Dfa::from_regex_uncached(r).is_empty_lang()
    }

    /// Eager containment via the materialized difference automaton.
    pub fn is_subset_of(a: &Regex, b: &Regex) -> bool {
        is_empty(&a.difference(b))
    }

    /// Eager equivalence: two full containment checks.
    pub fn equiv(a: &Regex, b: &Regex) -> bool {
        is_subset_of(a, b) && is_subset_of(b, a)
    }

    /// Eager disjointness via the materialized intersection.
    pub fn disjoint(a: &Regex, b: &Regex) -> bool {
        is_empty(&a.intersect(b))
    }

    /// Eager witness from the compiled automaton.
    pub fn witness(r: &Regex) -> Option<Vec<u8>> {
        Dfa::from_regex_uncached(r).witness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::{set_dfa_state_cap, take_approx_hits, DEFAULT_DFA_STATE_CAP};

    #[test]
    fn repeated_decisions_agree_with_fresh() {
        memo_flush();
        let a = Regex::parse_must("[0-9]+");
        let b = Regex::parse_must("[0-9a-f]+");
        for _ in 0..3 {
            assert!(is_subset_of(&a, &b));
            assert!(!is_subset_of(&b, &a));
            assert!(!equiv(&a, &b));
            assert!(disjoint(&a, &Regex::lit("x")));
            assert!(!is_empty(&a));
            assert_eq!(witness(&Regex::lit("ok")), Some(b"ok".to_vec()));
        }
    }

    #[test]
    fn interning_is_structural() {
        memo_flush();
        let a1 = Regex::lit("abc").then(&Regex::any_line());
        let a2 = Regex::lit("abc").then(&Regex::any_line());
        assert_eq!(intern(&a1), intern(&a2));
        assert_ne!(intern(&a1), intern(&Regex::lit("abc")));
    }

    #[test]
    fn approx_hits_replay_on_memo_hits() {
        memo_flush();
        let _ = take_approx_hits();
        // A pattern whose derivative construction blows a tiny cap.
        set_dfa_state_cap(2);
        let r = Regex::parse_must("(a|b)*abab(a|b)*");
        assert!(!is_empty(&r));
        let first = take_approx_hits();
        assert!(
            !first.is_empty(),
            "tiny cap must record an approximation on the miss"
        );
        // Second call is a cache hit — the approximation must replay.
        assert!(!is_empty(&r));
        let second = take_approx_hits();
        assert_eq!(
            first.len(),
            second.len(),
            "cache hits must replay the recorded approx events"
        );
        set_dfa_state_cap(DEFAULT_DFA_STATE_CAP);
        memo_flush();
        let _ = take_approx_hits();
    }

    #[test]
    fn cap_change_invalidates() {
        memo_flush();
        let _ = take_approx_hits();
        let r = Regex::parse_must("(a|b)*abab(a|b)*");
        assert!(!is_empty(&r));
        assert!(take_approx_hits().is_empty(), "full cap: exact");
        // Under a tiny cap the same term must be *recomputed* (the
        // cached exact answer was built under a different cap).
        set_dfa_state_cap(2);
        assert!(!is_empty(&r));
        assert!(
            !take_approx_hits().is_empty(),
            "cap change must invalidate the cached exact answer"
        );
        set_dfa_state_cap(DEFAULT_DFA_STATE_CAP);
        memo_flush();
        let _ = take_approx_hits();
    }
}
