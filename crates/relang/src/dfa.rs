//! Deterministic finite automata: construction, minimization, products,
//! and the decision procedures built on them.
//!
//! A [`Dfa`] here is always *complete* (every state has a transition for
//! every byte, via a sink state when necessary) and works over a
//! byte-class-compressed alphabet: bytes are first mapped to one of a
//! small number of equivalence classes, and transitions are tabulated per
//! class. Completeness makes complement a bit-flip and makes the product
//! constructions total.
//!
//! Two construction routes are provided:
//!
//! * [`Dfa::from_regex`] — Brzozowski-derivative construction, which
//!   handles the full extended syntax including `And` and `Not`;
//! * [`Dfa::from_nfa`] — classical subset construction from a Thompson
//!   NFA, for the classical fragment.
//!
//! The two are cross-checked against each other in the test suite.
//!
//! Minimization is Hopcroft's worklist algorithm over the compressed
//! alphabet (O(n·k·log n)); the old Moore refinement is kept as
//! [`Dfa::minimize_moore`] purely as a differential-testing oracle. The
//! binary decision procedures ([`Dfa::is_subset_of`], [`Dfa::equiv`],
//! [`Dfa::disjoint`]) do **not** materialize product automata — they
//! run the lazy pair search in [`crate::lazy`] and stop at the first
//! counterexample.

use crate::ast::Regex;
use crate::class::ByteClass;
use crate::deriv::{deriv, local_classes};
use crate::nfa::Nfa;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};

/// Default per-thread bound on states materialized by any one DFA
/// construction (derivative interning, subset construction, products).
/// Every automaton the analyzer builds in practice is far below this;
/// the cap exists so a pathological regex degrades to an honest
/// top-approximation instead of exhausting memory.
pub const DEFAULT_DFA_STATE_CAP: usize = 4096;

/// Why a DFA is an *approximation* of the requested language rather
/// than an exact automaton (machine-readable; surfaced in analysis
/// reports as a cap hit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxReason {
    /// A construction worklist exceeded the per-thread state cap; the
    /// result is ⊤ (accepts every byte string).
    StateCap {
        /// Which construction or search hit the cap (`from_regex`,
        /// `from_nfa`, `product`, `union_of_states`, `left_quotient`,
        /// `right_quotient`, or a `lazy_*` pair search).
        site: &'static str,
        /// The cap that was in effect.
        cap: usize,
    },
}

impl ApproxReason {
    /// The construction site that gave up.
    pub fn site(self) -> &'static str {
        match self {
            ApproxReason::StateCap { site, .. } => site,
        }
    }
}

thread_local! {
    static STATE_CAP: Cell<usize> = const { Cell::new(DEFAULT_DFA_STATE_CAP) };
    static APPROX_HITS: RefCell<Vec<ApproxReason>> = const { RefCell::new(Vec::new()) };
}

/// The DFA state cap in effect on this thread.
pub fn dfa_state_cap() -> usize {
    STATE_CAP.with(Cell::get)
}

/// Sets this thread's DFA state cap (engines run single-threaded, so a
/// thread-local keeps concurrent analyses independent). A cap of 0 is
/// treated as 1.
pub fn set_dfa_state_cap(cap: usize) {
    STATE_CAP.with(|c| c.set(cap.max(1)));
}

/// Drains the approximation events recorded on this thread since the
/// last call. The analysis driver turns these into report cap hits so
/// an approximated answer is never silent.
pub fn take_approx_hits() -> Vec<ApproxReason> {
    APPROX_HITS.with(|h| std::mem::take(&mut *h.borrow_mut()))
}

/// Number of approximation events currently buffered on this thread
/// (a capture mark for the memo layer).
pub(crate) fn approx_hits_len() -> usize {
    APPROX_HITS.with(|h| h.borrow().len())
}

/// The approximation events recorded after capture mark `mark`.
pub(crate) fn approx_hits_since(mark: usize) -> Vec<ApproxReason> {
    APPROX_HITS.with(|h| h.borrow().get(mark..).unwrap_or_default().to_vec())
}

/// Re-records previously captured approximation events, as a memo hit
/// must replay the incompleteness marks of the computation it reuses.
pub(crate) fn replay_approx_hits(hits: &[ApproxReason]) {
    if hits.is_empty() {
        return;
    }
    APPROX_HITS.with(|h| h.borrow_mut().extend_from_slice(hits));
}

/// Records a state-cap hit at `site` (approx-hit buffer, counter,
/// event) and returns the reason. Shared by the eager constructions
/// (which wrap the reason in a ⊤ automaton) and the lazy pair searches
/// in [`crate::lazy`] (which degrade to a conservative verdict instead
/// of building anything).
pub(crate) fn record_cap(site: &'static str) -> ApproxReason {
    let cap = dfa_state_cap();
    let reason = ApproxReason::StateCap { site, cap };
    APPROX_HITS.with(|h| h.borrow_mut().push(reason));
    shoal_obs::counter_add("relang.dfa_state_cap", 1);
    shoal_obs::event!("dfa_state_cap", site = site, cap = cap as u64);
    reason
}

/// A complete DFA over a byte-class-compressed alphabet.
///
/// Fields are `pub(crate)` so the lazy pair-search engine
/// ([`crate::lazy`]) can walk transitions without per-step accessor
/// overhead; outside the crate the automaton is opaque.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// Alphabet partition: disjoint classes covering all 256 bytes.
    pub(crate) classes: Vec<ByteClass>,
    /// Byte → class index.
    pub(crate) byte_map: Vec<u16>,
    /// `trans[state][class]` → next state.
    pub(crate) trans: Vec<Vec<u32>>,
    /// Accepting flags per state.
    pub(crate) accept: Vec<bool>,
    /// Start state.
    pub(crate) start: u32,
    /// Set when this automaton is an approximation (state cap hit
    /// somewhere in its construction history).
    pub(crate) approx: Option<ApproxReason>,
}

/// Intermediate sparse automaton used by both construction routes.
struct Sparse {
    trans: Vec<Vec<(ByteClass, u32)>>,
    accept: Vec<bool>,
    start: u32,
}

impl Dfa {
    // ---------------------------------------------------------------
    // Construction
    // ---------------------------------------------------------------

    /// The ⊤ automaton (accepts every byte string), carrying the reason
    /// it stands in for an exact result. Accepting-everything is the
    /// honest fallback: emptiness checks stay sound (never claims a
    /// language empty) and containment proofs fail conservatively.
    fn top(reason: ApproxReason) -> Dfa {
        Dfa {
            classes: vec![ByteClass::ALL],
            byte_map: vec![0u16; 256],
            trans: vec![vec![0]],
            accept: vec![true],
            start: 0,
            approx: Some(reason),
        }
    }

    /// Records a state-cap hit at `site` and returns the ⊤ fallback.
    fn cap_blown(site: &'static str) -> Dfa {
        Dfa::top(record_cap(site))
    }

    /// `Some` when this automaton over-approximates the requested
    /// language because a construction hit the state cap.
    pub fn approx_reason(&self) -> Option<ApproxReason> {
        self.approx
    }

    /// Is this automaton an approximation rather than an exact result?
    pub fn is_approx(&self) -> bool {
        self.approx.is_some()
    }

    /// Builds a DFA from any (possibly extended) regex via Brzozowski
    /// derivatives, then minimizes it. Compilation is memoized per
    /// interned term (see [`crate::memo`]); this entry point returns a
    /// cheap clone of the cached automaton on repeats.
    pub fn from_regex(r: &Regex) -> Dfa {
        crate::memo::compile(r)
    }

    /// The uncached derivative construction behind [`Dfa::from_regex`].
    pub(crate) fn from_regex_uncached(r: &Regex) -> Dfa {
        shoal_obs::counter_add("relang.dfa_compile", 1);
        let mut ids: HashMap<Regex, u32> = HashMap::new();
        let mut order: Vec<Regex> = Vec::new();
        let mut trans: Vec<Vec<(ByteClass, u32)>> = Vec::new();
        let mut work: VecDeque<u32> = VecDeque::new();

        let intern = |r: Regex,
                      order: &mut Vec<Regex>,
                      trans: &mut Vec<Vec<(ByteClass, u32)>>,
                      work: &mut VecDeque<u32>,
                      ids: &mut HashMap<Regex, u32>| {
            if let Some(&id) = ids.get(&r) {
                return id;
            }
            let id = order.len() as u32;
            ids.insert(r.clone(), id);
            order.push(r);
            trans.push(Vec::new());
            work.push_back(id);
            id
        };

        let start = intern(r.clone(), &mut order, &mut trans, &mut work, &mut ids);
        let cap = dfa_state_cap();
        while let Some(id) = work.pop_front() {
            if order.len() > cap {
                return Dfa::cap_blown("from_regex");
            }
            let state = order[id as usize].clone();
            for block in local_classes(&state) {
                // Partition blocks are non-empty by construction; skip
                // defensively rather than panic (densify adds the sink).
                let Some(rep) = block.min_byte() else { continue };
                let d = deriv(&state, rep);
                let to = intern(d, &mut order, &mut trans, &mut work, &mut ids);
                trans[id as usize].push((block, to));
            }
        }

        let accept = order.iter().map(Regex::nullable).collect();
        Dfa::densify(Sparse {
            trans,
            accept,
            start,
        })
        .minimize()
    }

    /// Builds a DFA from a Thompson NFA via subset construction, then
    /// minimizes it.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        let mut ids: HashMap<Vec<usize>, u32> = HashMap::new();
        let mut order: Vec<Vec<usize>> = Vec::new();
        let mut trans: Vec<Vec<(ByteClass, u32)>> = Vec::new();
        let mut work: VecDeque<u32> = VecDeque::new();

        let start_set = nfa.eps_closure(&[nfa.start]);
        ids.insert(start_set.clone(), 0);
        order.push(start_set);
        trans.push(Vec::new());
        work.push_back(0);

        let cap = dfa_state_cap();
        while let Some(id) = work.pop_front() {
            if order.len() > cap {
                return Dfa::cap_blown("from_nfa");
            }
            let set = order[id as usize].clone();
            // Alphabet compression: step once per local transition
            // class instead of once per byte.
            for block in nfa.local_classes(&set) {
                let Some(rep) = block.min_byte() else { continue };
                let mut next: Vec<usize> = Vec::new();
                for &s in &set {
                    for t in &nfa.states[s].trans {
                        if t.on.contains(rep) {
                            next.push(t.to);
                        }
                    }
                }
                if next.is_empty() {
                    continue; // Densify adds the sink.
                }
                let closed = nfa.eps_closure(&next);
                let to = match ids.get(&closed) {
                    Some(&to) => to,
                    None => {
                        let to = order.len() as u32;
                        ids.insert(closed.clone(), to);
                        order.push(closed);
                        trans.push(Vec::new());
                        work.push_back(to);
                        to
                    }
                };
                trans[id as usize].push((block, to));
            }
        }

        let accept = order.iter().map(|set| set.contains(&nfa.accept)).collect();
        Dfa::densify(Sparse {
            trans,
            accept,
            start: 0,
        })
        .minimize()
    }

    /// Converts a sparse automaton into a complete, class-compressed DFA,
    /// adding a sink state where transitions are missing.
    fn densify(sparse: Sparse) -> Dfa {
        // Global alphabet partition: refine ALL by every class used.
        let mut partition = vec![ByteClass::ALL];
        for row in &sparse.trans {
            for (c, _) in row {
                crate::class::refine_partition(&mut partition, c);
            }
        }
        let mut byte_map = vec![0u16; 256];
        for (i, block) in partition.iter().enumerate() {
            for b in block.iter() {
                byte_map[b as usize] = i as u16;
            }
        }

        let n = sparse.trans.len();
        let sink = n as u32;
        let mut trans = Vec::with_capacity(n + 1);
        let mut used_sink = false;
        for row in &sparse.trans {
            let mut dense = vec![sink; partition.len()];
            for (ci, block) in partition.iter().enumerate() {
                let Some(rep) = block.min_byte() else {
                    used_sink = true;
                    continue;
                };
                for (c, to) in row {
                    if c.contains(rep) {
                        dense[ci] = *to;
                        break;
                    }
                }
                if dense[ci] == sink {
                    used_sink = true;
                }
            }
            trans.push(dense);
        }
        let mut accept = sparse.accept;
        if used_sink {
            trans.push(vec![sink; partition.len()]);
            accept.push(false);
        }
        Dfa {
            classes: partition,
            byte_map,
            trans,
            accept,
            start: sparse.start,
            approx: None,
        }
    }

    // ---------------------------------------------------------------
    // Minimization (Hopcroft's algorithm)
    // ---------------------------------------------------------------

    /// Restricts to the reachable subautomaton: returns the kept
    /// original state ids (in ascending order) and the old → new map
    /// (`usize::MAX` for dropped states).
    fn reachable_states(&self) -> (Vec<usize>, Vec<usize>) {
        let n = self.trans.len();
        let mut reach = vec![false; n];
        let mut stack = vec![self.start as usize];
        reach[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            for &t in &self.trans[s] {
                if !reach[t as usize] {
                    reach[t as usize] = true;
                    stack.push(t as usize);
                }
            }
        }
        let mut remap = vec![usize::MAX; n];
        let mut kept = Vec::new();
        for s in 0..n {
            if reach[s] {
                remap[s] = kept.len();
                kept.push(s);
            }
        }
        (kept, remap)
    }

    /// Returns the minimal equivalent DFA (unreachable states removed,
    /// equivalent states merged) via Hopcroft's worklist algorithm:
    /// O(n·k·log n) over the compressed alphabet classes, versus the
    /// old Moore refinement's O(n²·k) worst case.
    ///
    /// The resulting state numbering is canonical — blocks are numbered
    /// by first occurrence in the input's state order, exactly the
    /// numbering Moore refinement produced — so everything downstream
    /// of `minimize` (including [`Dfa::to_regex`], whose output is
    /// state-order-sensitive and reaches user-facing diagnostics) is
    /// byte-identical to the pre-Hopcroft pipeline.
    pub fn minimize(&self) -> Dfa {
        // 1. Drop unreachable states; work over the dense remnant.
        let (kept, remap) = self.reachable_states();
        let m = kept.len();
        let k = self.classes.len();
        // t[i*k + c]: transition table of the kept subautomaton.
        let mut t = vec![0u32; m * k];
        for (i, &s) in kept.iter().enumerate() {
            for (c, &to) in self.trans[s].iter().enumerate() {
                t[i * k + c] = remap[to as usize] as u32;
            }
        }

        // 2. Per-class inverse transitions in CSR form:
        //    inv[c] = (offsets, preds) with preds[offsets[s]..offsets[s+1]]
        //    the states stepping to `s` on class c.
        let mut inv: Vec<(Vec<u32>, Vec<u32>)> = Vec::with_capacity(k);
        for c in 0..k {
            let mut offsets = vec![0u32; m + 1];
            for i in 0..m {
                offsets[t[i * k + c] as usize + 1] += 1;
            }
            for s in 0..m {
                offsets[s + 1] += offsets[s];
            }
            let mut fill = offsets.clone();
            let mut preds = vec![0u32; m];
            for i in 0..m {
                let tgt = t[i * k + c] as usize;
                preds[fill[tgt] as usize] = i as u32;
                fill[tgt] += 1;
            }
            inv.push((offsets, preds));
        }

        // 3. Initial partition {accepting, non-accepting} (skipping an
        //    empty side) and the worklist seeded with the smaller side
        //    for every class.
        let mut blocks: Vec<Vec<u32>> = Vec::new();
        let mut block_of: Vec<u32> = vec![0; m];
        let mut acc_states: Vec<u32> = Vec::new();
        let mut rej_states: Vec<u32> = Vec::new();
        for (i, &s) in kept.iter().enumerate() {
            if self.accept[s] {
                acc_states.push(i as u32);
            } else {
                rej_states.push(i as u32);
            }
        }
        let mut work: VecDeque<(u32, u32)> = VecDeque::new();
        let seed = if acc_states.is_empty() || rej_states.is_empty() {
            // One block: all states share acceptance, so (the DFA being
            // complete) they are all equivalent; nothing to refine.
            None
        } else {
            Some(usize::from(acc_states.len() > rej_states.len()))
        };
        for states in [acc_states, rej_states] {
            if !states.is_empty() {
                let id = blocks.len() as u32;
                for &s in &states {
                    block_of[s as usize] = id;
                }
                blocks.push(states);
            }
        }
        let mut in_work = vec![false; blocks.len() * k];
        if let Some(seed) = seed {
            for c in 0..k {
                in_work[seed * k + c] = true;
                work.push_back((seed as u32, c as u32));
            }
        }

        // 4. Refine: process (splitter block, class) pairs, splitting
        //    every block with both marked (stepping into the splitter)
        //    and unmarked members; re-enqueue the smaller half.
        let mut state_marked = vec![false; m];
        let mut marked: Vec<Vec<u32>> = vec![Vec::new(); blocks.len()];
        let mut touched: Vec<u32> = Vec::new();
        while let Some((b, c)) = work.pop_front() {
            in_work[b as usize * k + c as usize] = false;
            // Snapshot: the splitter itself may be among the split.
            let splitter = blocks[b as usize].clone();
            let (offsets, preds) = &inv[c as usize];
            for &tstate in &splitter {
                let lo = offsets[tstate as usize] as usize;
                let hi = offsets[tstate as usize + 1] as usize;
                for &p in &preds[lo..hi] {
                    if !state_marked[p as usize] {
                        state_marked[p as usize] = true;
                        let d = block_of[p as usize];
                        if marked[d as usize].is_empty() {
                            touched.push(d);
                        }
                        marked[d as usize].push(p);
                    }
                }
            }
            for &d in &touched {
                let du = d as usize;
                if marked[du].len() == blocks[du].len() {
                    // Every member marked: no split.
                    for &s in &marked[du] {
                        state_marked[s as usize] = false;
                    }
                    marked[du].clear();
                    continue;
                }
                // Proper split: marked members move to a new block.
                let new_id = blocks.len() as u32;
                blocks[du].retain(|s| !state_marked[*s as usize]);
                let moved = std::mem::take(&mut marked[du]);
                for &s in &moved {
                    block_of[s as usize] = new_id;
                    state_marked[s as usize] = false;
                }
                blocks.push(moved);
                marked.push(Vec::new());
                in_work.resize(blocks.len() * k, false);
                for cc in 0..k {
                    if in_work[du * k + cc] {
                        // (d, cc) is already queued: both halves must
                        // be processed to keep the refinement exact.
                        in_work[new_id as usize * k + cc] = true;
                        work.push_back((new_id, cc as u32));
                    } else {
                        // Hopcroft's trick: the smaller half suffices.
                        let smaller = if blocks[du].len() <= blocks[new_id as usize].len() {
                            du as u32
                        } else {
                            new_id
                        };
                        let idx = smaller as usize * k + cc;
                        if !in_work[idx] {
                            in_work[idx] = true;
                            work.push_back((smaller, cc as u32));
                        }
                    }
                }
            }
            touched.clear();
        }

        // 5. Renumber blocks by first occurrence in state order (the
        //    Moore numbering) and emit one row per block.
        let mut new_id = vec![u32::MAX; blocks.len()];
        let mut reps: Vec<u32> = Vec::new();
        for (i, &bo) in block_of.iter().enumerate().take(m) {
            let b = bo as usize;
            if new_id[b] == u32::MAX {
                new_id[b] = reps.len() as u32;
                reps.push(i as u32);
            }
        }
        let mut trans = Vec::with_capacity(reps.len());
        let mut accept = Vec::with_capacity(reps.len());
        for &rep in &reps {
            let row: Vec<u32> = (0..k)
                .map(|c| new_id[block_of[t[rep as usize * k + c] as usize] as usize])
                .collect();
            trans.push(row);
            accept.push(self.accept[kept[rep as usize]]);
        }
        Dfa {
            classes: self.classes.clone(),
            byte_map: self.byte_map.clone(),
            trans,
            accept,
            start: new_id[block_of[remap[self.start as usize]] as usize],
            approx: self.approx,
        }
    }

    /// The pre-Hopcroft Moore partition refinement, kept verbatim as a
    /// differential-testing oracle: `tests/props.rs` asserts that
    /// [`Dfa::minimize`] produces *structurally identical* output.
    /// Quadratic; do not use on hot paths.
    #[doc(hidden)]
    pub fn minimize_moore(&self) -> Dfa {
        let (kept, remap) = self.reachable_states();
        let m = kept.len();

        let mut block = vec![0usize; m];
        for (i, &s) in kept.iter().enumerate() {
            block[i] = usize::from(self.accept[s]);
        }
        loop {
            let mut sig_ids: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
            let mut next_block = vec![0usize; m];
            for (i, &s) in kept.iter().enumerate() {
                let sig: Vec<usize> = self.trans[s]
                    .iter()
                    .map(|&t| block[remap[t as usize]])
                    .collect();
                let key = (block[i], sig);
                let next_id = sig_ids.len();
                let id = *sig_ids.entry(key).or_insert(next_id);
                next_block[i] = id;
            }
            let stable = next_block == block;
            block = next_block;
            if stable {
                break;
            }
        }

        let num_blocks = block.iter().copied().max().map_or(0, |b| b + 1);
        let mut trans = vec![Vec::new(); num_blocks];
        let mut accept = vec![false; num_blocks];
        let mut filled = vec![false; num_blocks];
        for (i, &s) in kept.iter().enumerate() {
            let b = block[i];
            if !filled[b] {
                trans[b] = self.trans[s]
                    .iter()
                    .map(|&t| block[remap[t as usize]] as u32)
                    .collect();
                accept[b] = self.accept[s];
                filled[b] = true;
            }
        }
        Dfa {
            classes: self.classes.clone(),
            byte_map: self.byte_map.clone(),
            trans,
            accept,
            start: block[remap[self.start as usize]] as u32,
            approx: self.approx,
        }
    }

    /// Structural (not just language) equality: same classes, byte map,
    /// transitions, acceptance, and start state. Exposed for the
    /// Hopcroft-vs-Moore differential tests, which pin the canonical
    /// state numbering (to_regex output is numbering-sensitive).
    #[doc(hidden)]
    pub fn structurally_equal(&self, other: &Dfa) -> bool {
        self.classes == other.classes
            && self.byte_map == other.byte_map
            && self.trans == other.trans
            && self.accept == other.accept
            && self.start == other.start
    }

    // ---------------------------------------------------------------
    // Products and complement
    // ---------------------------------------------------------------

    /// Product construction combining acceptance with `op`. Eager —
    /// materializes (then minimizes) the reachable product; callers
    /// that only need a verdict should use the lazy searches instead
    /// ([`Dfa::is_subset_of`] etc. already do).
    pub fn product(&self, other: &Dfa, op: impl Fn(bool, bool) -> bool) -> Dfa {
        shoal_obs::counter_add("relang.dfa_product", 1);
        let alpha = crate::lazy::PairAlphabet::new(self, other);
        self.product_with_alphabet(other, op, &alpha).minimize()
    }

    /// The unminimized reachable product over a precomputed combined
    /// alphabet. `#[doc(hidden)]` pub: the property suite uses it to
    /// manufacture non-minimal automata for minimization oracles.
    #[doc(hidden)]
    pub fn product_raw(&self, other: &Dfa, op: impl Fn(bool, bool) -> bool) -> Dfa {
        let alpha = crate::lazy::PairAlphabet::new(self, other);
        self.product_with_alphabet(other, op, &alpha)
    }

    fn product_with_alphabet(
        &self,
        other: &Dfa,
        op: impl Fn(bool, bool) -> bool,
        alpha: &crate::lazy::PairAlphabet,
    ) -> Dfa {
        let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
        let mut order: Vec<(u32, u32)> = Vec::new();
        let mut trans: Vec<Vec<u32>> = Vec::new();
        let mut work = VecDeque::new();

        let start_pair = (self.start, other.start);
        ids.insert(start_pair, 0);
        order.push(start_pair);
        work.push_back(0u32);

        let cap = dfa_state_cap();
        while let Some(id) = work.pop_front() {
            if order.len() > cap {
                return Dfa::cap_blown("product");
            }
            let (a, b) = order[id as usize];
            let mut row = Vec::with_capacity(alpha.pairs.len());
            // Step directly on class indices — no representative bytes.
            for &(ca, cb) in &alpha.pairs {
                let na = self.trans[a as usize][ca as usize];
                let nb = other.trans[b as usize][cb as usize];
                let to = match ids.get(&(na, nb)) {
                    Some(&to) => to,
                    None => {
                        let to = order.len() as u32;
                        ids.insert((na, nb), to);
                        order.push((na, nb));
                        work.push_back(to);
                        to
                    }
                };
                row.push(to);
            }
            if trans.len() <= id as usize {
                trans.resize(id as usize + 1, Vec::new());
            }
            trans[id as usize] = row;
        }
        let accept = order
            .iter()
            .map(|&(a, b)| op(self.accept[a as usize], other.accept[b as usize]))
            .collect();
        Dfa {
            classes: alpha.classes.clone(),
            byte_map: alpha.byte_map.clone(),
            trans,
            accept,
            start: 0,
            approx: self.approx.or(other.approx),
        }
    }

    /// Language intersection.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Language union.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// Language difference.
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && !b)
    }

    /// Language complement (flips acceptance; the DFA is complete).
    pub fn complement(&self) -> Dfa {
        let mut d = self.clone();
        for a in d.accept.iter_mut() {
            *a = !*a;
        }
        d.minimize()
    }

    // ---------------------------------------------------------------
    // Decision procedures
    // ---------------------------------------------------------------

    /// Single transition step on byte `b`.
    fn step(&self, state: u32, b: u8) -> u32 {
        self.trans[state as usize][self.byte_map[b as usize] as usize]
    }

    /// Runs the DFA on `input` (exact match).
    pub fn matches(&self, input: &[u8]) -> bool {
        let mut s = self.start;
        for &b in input {
            s = self.step(s, b);
        }
        self.accept[s as usize]
    }

    /// Is the recognized language empty? Early-exit reachability: stops
    /// at the first accepting state, no path bookkeeping.
    pub fn is_empty_lang(&self) -> bool {
        let n = self.trans.len();
        let mut seen = vec![false; n];
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            if self.accept[s as usize] {
                return false;
            }
            for &t in &self.trans[s as usize] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// Is `self ⊆ other` as languages? Lazy: explores product pairs
    /// on the fly and stops at the first counterexample instead of
    /// materializing `self \ other`.
    pub fn is_subset_of(&self, other: &Dfa) -> bool {
        crate::lazy::subset(self, other)
    }

    /// Do the two automata accept the same language? Lazy symmetric-
    /// difference search (one pass, not two containment checks).
    pub fn equiv(&self, other: &Dfa) -> bool {
        crate::lazy::equiv(self, other)
    }

    /// Are the two languages disjoint? Lazy intersection search.
    pub fn disjoint(&self, other: &Dfa) -> bool {
        crate::lazy::disjoint(self, other)
    }

    /// A shortest accepted byte string, if one exists. Prefers printable
    /// representative bytes so diagnostics read well.
    pub fn witness(&self) -> Option<Vec<u8>> {
        let n = self.trans.len();
        let mut prev: Vec<Option<(u32, u8)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[self.start as usize] = true;
        queue.push_back(self.start);
        let mut hit: Option<u32> = None;
        if self.accept[self.start as usize] {
            hit = Some(self.start);
        }
        'bfs: while let Some(s) = queue.pop_front() {
            if hit.is_some() {
                break;
            }
            for (ci, &t) in self.trans[s as usize].iter().enumerate() {
                if !seen[t as usize] {
                    // An empty class labels no byte; skip the edge
                    // rather than panic (classes are non-empty for all
                    // in-crate constructions, but stay total).
                    let Some(rep) = self.classes[ci].representative() else {
                        continue;
                    };
                    seen[t as usize] = true;
                    prev[t as usize] = Some((s, rep));
                    if self.accept[t as usize] {
                        hit = Some(t);
                        break 'bfs;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut cur = hit?;
        let mut out = Vec::new();
        while let Some((p, b)) = prev[cur as usize] {
            out.push(b);
            cur = p;
        }
        out.reverse();
        Some(out)
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// Number of alphabet classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfa(pat: &str) -> Dfa {
        Dfa::from_regex(&Regex::parse_must(pat))
    }

    #[test]
    fn literal_dfa() {
        let d = dfa("abc");
        assert!(d.matches(b"abc"));
        assert!(!d.matches(b"ab"));
        assert!(!d.matches(b"abcd"));
        // Minimal DFA for "abc": 4 live states + sink.
        assert_eq!(d.num_states(), 5);
    }

    #[test]
    fn construction_routes_agree() {
        for pat in ["(a|b)*abb", "[0-9]+(\\.[0-9]+)?", "x{2,4}y*", "(ab|a)(b|)"] {
            let r = Regex::parse_must(pat);
            let via_deriv = Dfa::from_regex(&r);
            let via_nfa = Dfa::from_nfa(&Nfa::compile(&r).unwrap());
            assert!(via_deriv.equiv(&via_nfa), "backends disagree on {pat:?}");
            assert_eq!(
                via_deriv.num_states(),
                via_nfa.num_states(),
                "minimal sizes differ for {pat:?}"
            );
        }
    }

    #[test]
    fn intersection_emptiness() {
        let a = dfa("desc.*");
        let b = dfa("(Distributor ID|Description|Release|Codename):.*");
        assert!(a.intersect(&b).is_empty_lang());
        let c = dfa("Desc.*");
        assert!(!c.intersect(&b).is_empty_lang());
    }

    #[test]
    fn union_and_difference() {
        let a = dfa("aa*");
        let b = dfa("bb*");
        let u = a.union(&b);
        assert!(u.matches(b"aaa"));
        assert!(u.matches(b"b"));
        assert!(!u.matches(b"ab"));
        let d = u.difference(&a);
        assert!(d.matches(b"b"));
        assert!(!d.matches(b"a"));
    }

    #[test]
    fn complement_total() {
        let a = dfa("x");
        let c = a.complement();
        assert!(c.matches(b""));
        assert!(c.matches(b"xx"));
        assert!(!c.matches(b"x"));
        assert!(a.complement().complement().equiv(&a));
    }

    #[test]
    fn subset_checks() {
        assert!(dfa("abc").is_subset_of(&dfa("ab.*")));
        assert!(!dfa("ab.*").is_subset_of(&dfa("abc")));
        assert!(dfa("[0-9]+").is_subset_of(&dfa("[0-9a-f]+")));
    }

    #[test]
    fn witness_shortest() {
        assert_eq!(dfa("colou?r").witness().unwrap(), b"color".to_vec());
        assert_eq!(dfa("a|bb|ccc").witness().unwrap(), b"a".to_vec());
        assert!(dfa("a").intersect(&dfa("b")).witness().is_none());
    }

    #[test]
    fn minimize_idempotent() {
        let d = dfa("(a|b)*abb(a|b)*");
        let m = d.minimize();
        assert_eq!(d.num_states(), m.num_states());
        assert!(d.equiv(&m));
    }

    #[test]
    fn state_cap_degrades_to_top() {
        let saved = dfa_state_cap();
        let _ = take_approx_hits();
        set_dfa_state_cap(3);
        let d = dfa("(a|b)*abb(a|b)*aab");
        set_dfa_state_cap(saved);
        assert!(d.is_approx());
        assert!(matches!(
            d.approx_reason(),
            Some(ApproxReason::StateCap {
                site: "from_regex",
                cap: 3
            })
        ));
        // ⊤ fallback: sound for emptiness (never claims empty), total.
        assert!(!d.is_empty_lang());
        assert!(d.matches(b"anything at all"));
        let hits = take_approx_hits();
        assert_eq!(hits.len(), 1, "cap hit must be recorded for the report");
        // With the default cap the same pattern is exact.
        assert!(!dfa("(a|b)*abb(a|b)*aab").is_approx());
    }

    #[test]
    fn approx_marker_propagates_through_products() {
        let saved = dfa_state_cap();
        let _ = take_approx_hits();
        set_dfa_state_cap(3);
        let top = dfa("(a|b)*abb(a|b)*aab");
        set_dfa_state_cap(saved);
        let exact = dfa("xyz");
        assert!(top.intersect(&exact).is_approx());
        assert!(exact.union(&top).is_approx());
        assert!(top.minimize().is_approx());
        assert!(!exact.intersect(&exact).is_approx());
        let _ = take_approx_hits();
    }

    #[test]
    fn extended_regex_via_derivatives() {
        // (hex strings) minus (digit-only strings).
        let r = Regex::parse_must("[0-9a-f]+").difference(&Regex::parse_must("[0-9]+"));
        let d = Dfa::from_regex(&r);
        assert!(d.matches(b"a1"));
        assert!(!d.matches(b"11"));
        assert!(!d.matches(b""));
    }
}

// ---------------------------------------------------------------------
// Quotients and regex extraction
// ---------------------------------------------------------------------

impl Dfa {
    /// The language from `state` treated as the start state.
    /// `#[doc(hidden)]` pub: the property suite uses it to check
    /// pairwise state inequivalence of minimized automata.
    #[doc(hidden)]
    pub fn language_from(&self, state: u32) -> Dfa {
        let mut d = self.clone();
        d.start = state;
        d.minimize()
    }

    /// Right quotient `L(self) / L(k) = { u : ∃v ∈ L(k), u·v ∈ L(self) }`.
    ///
    /// Used for `${x%pat}`: the possible values after removing a suffix
    /// matching `pat` from a string in `L(self)`.
    ///
    /// One backward reachability pass over the (implicit) product with
    /// `k`, on the combined compressed alphabet: state `q` accepts in
    /// the quotient iff `(q, k.start)` can reach a pair accepting in
    /// both automata. The old implementation re-minimized a fresh
    /// product *per state*; this is the single-pass replacement. The
    /// full pair space is charged against the DFA state cap with the
    /// usual ⊤ degradation.
    pub fn right_quotient(&self, k: &Dfa) -> Dfa {
        let n = self.trans.len();
        let m = k.trans.len();
        if n.saturating_mul(m) > dfa_state_cap() {
            return Dfa::cap_blown("right_quotient");
        }
        let alpha = crate::lazy::PairAlphabet::new(self, k);
        let pc = alpha.pairs.len();
        let total = n * m;
        // Reverse product edges in CSR form (pair id = q*m + p).
        let mut offsets = vec![0u32; total + 1];
        let succ = |q: usize, p: usize, ca: u16, cb: u16| {
            self.trans[q][ca as usize] as usize * m + k.trans[p][cb as usize] as usize
        };
        for q in 0..n {
            for p in 0..m {
                for &(ca, cb) in &alpha.pairs {
                    offsets[succ(q, p, ca, cb) + 1] += 1;
                }
            }
        }
        for i in 0..total {
            offsets[i + 1] += offsets[i];
        }
        let mut fill = offsets.clone();
        let mut preds = vec![0u32; total * pc];
        for q in 0..n {
            for p in 0..m {
                for &(ca, cb) in &alpha.pairs {
                    let tgt = succ(q, p, ca, cb);
                    preds[fill[tgt] as usize] = (q * m + p) as u32;
                    fill[tgt] += 1;
                }
            }
        }
        // Backward BFS from pairs accepting in both automata.
        let mut good = vec![false; total];
        let mut queue: VecDeque<u32> = VecDeque::new();
        for q in 0..n {
            if !self.accept[q] {
                continue;
            }
            for p in 0..m {
                if k.accept[p] {
                    good[q * m + p] = true;
                    queue.push_back((q * m + p) as u32);
                }
            }
        }
        while let Some(pair) = queue.pop_front() {
            let lo = offsets[pair as usize] as usize;
            let hi = offsets[pair as usize + 1] as usize;
            for &pr in &preds[lo..hi] {
                if !good[pr as usize] {
                    good[pr as usize] = true;
                    queue.push_back(pr);
                }
            }
        }
        let mut d = self.clone();
        for q in 0..n {
            d.accept[q] = good[q * m + k.start as usize];
        }
        d.approx = self.approx.or(k.approx);
        d.minimize()
    }

    /// Left quotient `L(k) \ L(self) = { v : ∃u ∈ L(k), u·v ∈ L(self) }`.
    ///
    /// Used for `${x#pat}`: the possible values after removing a prefix
    /// matching `pat`.
    pub fn left_quotient(&self, k: &Dfa) -> Dfa {
        // States of `self` reachable by strings in L(k): run the product
        // with k and collect self-states paired with k-accepting states.
        let alpha = crate::lazy::PairAlphabet::new(self, k);
        let mut reached: Vec<bool> = vec![false; self.trans.len()];
        let mut seen = std::collections::HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back((self.start, k.start));
        seen.insert((self.start, k.start));
        let cap = dfa_state_cap();
        while let Some((a, b)) = queue.pop_front() {
            if seen.len() > cap {
                return Dfa::cap_blown("left_quotient");
            }
            if k.accept[b as usize] {
                reached[a as usize] = true;
            }
            // Joint step once per combined class, not once per byte.
            for &(ca, cb) in &alpha.pairs {
                let na = self.trans[a as usize][ca as usize];
                let nb = k.trans[b as usize][cb as usize];
                if seen.insert((na, nb)) {
                    queue.push_back((na, nb));
                }
            }
        }
        // Union of languages from all reached states: fresh start with
        // ε-moves is easiest via an NFA-like subset trick on this DFA.
        let starts: Vec<u32> = (0..self.trans.len() as u32)
            .filter(|q| reached[*q as usize])
            .collect();
        if starts.is_empty() {
            return Dfa::from_regex(&Regex::Empty);
        }
        self.union_of_states(&starts)
    }

    /// The union of the languages from several states, as one DFA.
    fn union_of_states(&self, starts: &[u32]) -> Dfa {
        let mut ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut order: Vec<Vec<u32>> = Vec::new();
        let mut trans: Vec<Vec<u32>> = Vec::new();
        let mut work = VecDeque::new();
        let mut s0: Vec<u32> = starts.to_vec();
        s0.sort_unstable();
        s0.dedup();
        ids.insert(s0.clone(), 0);
        order.push(s0);
        work.push_back(0u32);
        let cap = dfa_state_cap();
        while let Some(id) = work.pop_front() {
            if order.len() > cap {
                return Dfa::cap_blown("union_of_states");
            }
            let set = order[id as usize].clone();
            let mut row = Vec::with_capacity(self.classes.len());
            for ci in 0..self.classes.len() {
                // Step on the class index directly (no representative
                // byte, so empty classes cannot panic here).
                let mut next: Vec<u32> = set.iter().map(|&q| self.trans[q as usize][ci]).collect();
                next.sort_unstable();
                next.dedup();
                let to = match ids.get(&next) {
                    Some(&to) => to,
                    None => {
                        let to = order.len() as u32;
                        ids.insert(next.clone(), to);
                        order.push(next);
                        work.push_back(to);
                        to
                    }
                };
                row.push(to);
            }
            if trans.len() <= id as usize {
                trans.resize(id as usize + 1, Vec::new());
            }
            trans[id as usize] = row;
        }
        let accept = order
            .iter()
            .map(|set| set.iter().any(|&q| self.accept[q as usize]))
            .collect();
        Dfa {
            classes: self.classes.clone(),
            byte_map: self.byte_map.clone(),
            trans,
            accept,
            start: 0,
            approx: self.approx,
        }
        .minimize()
    }

    /// Extracts an equivalent [`Regex`] by state elimination (GNFA).
    /// The result can be verbose but is language-equal; callers that
    /// care about presentation should keep the original syntax where
    /// they have it.
    // Index-based loops are the clearest rendering of the GNFA update
    // rule; the iterator form clippy suggests obscures it.
    #[allow(clippy::needless_range_loop)]
    pub fn to_regex(&self) -> Regex {
        let n = self.trans.len();
        // GNFA edge matrix over n + 2 states (fresh start = n, accept =
        // n+1), entries are regexes (∅ = no edge).
        let total = n + 2;
        let gstart = n;
        let gaccept = n + 1;
        let mut edge: Vec<Vec<Regex>> = vec![vec![Regex::Empty; total]; total];
        for (q, row) in self.trans.iter().enumerate() {
            for (ci, &t) in row.iter().enumerate() {
                let class_re = Regex::class(self.classes[ci]);
                edge[q][t as usize] = edge[q][t as usize].or(&class_re);
            }
        }
        edge[gstart][self.start as usize] = Regex::Eps;
        for (q, &acc) in self.accept.iter().enumerate() {
            if acc {
                edge[q][gaccept] = Regex::Eps;
            }
        }
        // Eliminate original states one by one.
        for rip in 0..n {
            let self_loop = edge[rip][rip].clone();
            let loop_star = self_loop.star();
            for i in 0..total {
                if i == rip {
                    continue;
                }
                let in_edge = edge[i][rip].clone();
                if in_edge == Regex::Empty {
                    continue;
                }
                for j in 0..total {
                    if j == rip {
                        continue;
                    }
                    let out_edge = edge[rip][j].clone();
                    if out_edge == Regex::Empty {
                        continue;
                    }
                    let path = Regex::concat(vec![in_edge.clone(), loop_star.clone(), out_edge]);
                    edge[i][j] = edge[i][j].or(&path);
                }
            }
            for i in 0..total {
                edge[i][rip] = Regex::Empty;
                edge[rip][i] = Regex::Empty;
            }
        }
        edge[gstart][gaccept].clone()
    }
}

#[cfg(test)]
mod quotient_tests {
    use super::*;

    fn dfa(pat: &str) -> Dfa {
        Dfa::from_regex(&Regex::parse_must(pat))
    }

    #[test]
    fn to_regex_roundtrips() {
        for pat in ["abc", "(a|b)*abb", "[0-9]+(\\.[0-9]+)?", "x{2,3}y*", ""] {
            let d = dfa(pat);
            let r = d.to_regex();
            assert!(
                Dfa::from_regex(&r).equiv(&d),
                "state elimination changed the language of {pat:?}"
            );
        }
        assert_eq!(Dfa::from_regex(&Regex::Empty).to_regex(), Regex::Empty);
    }

    #[test]
    fn right_quotient_strips_suffixes() {
        // { u : ∃v ∈ /[^/]*, u·v ∈ /home/user/file } = { /home/user, … }
        let l = dfa("/home/user/file");
        let k = dfa("/[^/]*");
        let q = l.right_quotient(&k);
        assert!(q.matches(b"/home/user"));
        // v must start with '/', so stripping "e" alone is not allowed.
        assert!(!q.matches(b"/home/user/fil"));
        assert!(!q.matches(b"/home/user/file"));
        assert!(!q.matches(b"/home"));
    }

    #[test]
    fn right_quotient_dirnames() {
        // The `${0%/*}` image: paths with a slash, suffix `/<anything>`
        // removed (shortest/longest collapse in the quotient).
        let paths = dfa("/([^/]+/)*[^/]+");
        let slash_suffix = dfa("/(.|\\n)*");
        let q = paths.right_quotient(&slash_suffix);
        assert!(q.matches(b"")); // /file → ""
        assert!(q.matches(b"/home"));
        assert!(q.matches(b"/home/user"));
        assert!(!q.matches(b"noslash"));
    }

    #[test]
    fn left_quotient_strips_prefixes() {
        // ${x##*/}: remove longest prefix matching */ — i.e. keep what
        // follows some slash (or the whole string).
        let l = dfa("/usr/bin/env");
        let k = dfa("(.|\\n)*/");
        let q = l.left_quotient(&k);
        assert!(q.matches(b"env"));
        assert!(q.matches(b"bin/env"));
        assert!(q.matches(b"usr/bin/env"));
        assert!(!q.matches(b"/usr/bin/env"));
    }

    #[test]
    fn quotient_of_empty_is_empty() {
        let l = dfa("abc");
        let none = Dfa::from_regex(&Regex::Empty);
        assert!(l.right_quotient(&none).is_empty_lang());
        assert!(l.left_quotient(&none).is_empty_lang());
    }

    #[test]
    fn quotient_regex_roundtrip() {
        let l = dfa("(a|b)+c");
        let k = dfa("c");
        let q = l.right_quotient(&k);
        let r = q.to_regex();
        assert!(Dfa::from_regex(&r).equiv(&q));
        assert!(r.matches(b"ab"));
        assert!(!r.matches(b"abc"));
    }
}
