//! REVIEW SCRATCH — delete after review.
//! Tries to demonstrate stale-id key poisoning when the interner flushes
//! between the two intern() calls of a binary memoized decision.

use shoal_relang::{memo_flush, Regex};

const INTERN_CAP: usize = 16 * 1024;

fn lit_n(n: usize) -> Regex {
    Regex::lit(&format!("filler-{n}"))
}

#[test]
fn stale_id_poisoning_after_mid_key_flush() {
    memo_flush();
    // Fill the interner to CAP - 1 distinct terms.
    for n in 0..(INTERN_CAP - 1) {
        let _ = lit_n(n).term_id();
    }
    // a takes the last slot (id CAP-1); interning b overflows -> flush;
    // b gets id 0. The subset answer for (a, b) is inserted at key
    // (CAP-1, 0) where CAP-1 is a *retired* id.
    let a = Regex::lit("AAAA"); // "AAAA" ⊆ "[A]+" = true
    let b = Regex::parse_must("A+");
    assert!(a.is_subset_of(&b), "sanity: AAAA ⊆ A+");

    // Refill the interner so some unrelated term c lands on id CAP-1,
    // while b (re-interned right after the flush) keeps id 0.
    // After the flush: b has id 0, the difference/derivative terms from
    // the computation took a few more ids. Intern filler until next_id
    // reaches CAP-1, then c gets exactly id CAP-1.
    let mut c = None;
    for n in 0..(2 * INTERN_CAP) {
        let cand = Regex::lit(&format!("poison-{n}"));
        let id = cand.term_id();
        if id as usize == INTERN_CAP - 1 {
            c = Some(cand);
            break;
        }
    }
    let c = c.expect("some term reached the retired id");
    // c = "poison-N" is NOT a subset of A+, but the poisoned cache entry
    // at (CAP-1, 0) says true.
    let got = c.is_subset_of(&b);
    memo_flush();
    assert!(
        !got,
        "WRONG ANSWER: stale memo key (retired id reused) made {c:?} ⊆ A+ return true"
    );
}
