//! Property-based tests for the regular-language engine.
//!
//! The central invariant: the three execution backends (Brzozowski
//! derivatives, Thompson NFA simulation, compiled DFA) recognize exactly
//! the same language, and the Boolean algebra of languages agrees with
//! pointwise matching.

use proptest::prelude::*;
use shoal_relang::{ByteClass, Dfa, Nfa, Regex};

/// Strategy: random classical regexes over the alphabet {a, b, c}.
fn classical_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::eps()),
        Just(Regex::byte(b'a')),
        Just(Regex::byte(b'b')),
        Just(Regex::byte(b'c')),
        Just(Regex::class(ByteClass::from_bytes(b"ab"))),
        Just(Regex::class(ByteClass::from_bytes(b"bc"))),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::alt),
            inner.clone().prop_map(|r| r.star()),
            inner.prop_map(|r| r.opt()),
        ]
    })
}

/// Strategy: random inputs over the same alphabet.
fn input() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'd')],
        0..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn backends_agree(r in classical_regex(), s in input()) {
        let via_deriv = r.matches(&s);
        let nfa = Nfa::compile(&r).expect("classical");
        let via_nfa = nfa.matches(&s);
        let dfa = Dfa::from_regex(&r);
        let via_dfa = dfa.matches(&s);
        let via_subset = Dfa::from_nfa(&nfa).matches(&s);
        prop_assert_eq!(via_deriv, via_nfa);
        prop_assert_eq!(via_deriv, via_dfa);
        prop_assert_eq!(via_deriv, via_subset);
    }

    #[test]
    fn boolean_algebra_pointwise(a in classical_regex(), b in classical_regex(), s in input()) {
        prop_assert_eq!(a.or(&b).matches(&s), a.matches(&s) || b.matches(&s));
        prop_assert_eq!(a.intersect(&b).matches(&s), a.matches(&s) && b.matches(&s));
        prop_assert_eq!(a.complement().matches(&s), !a.matches(&s));
        prop_assert_eq!(a.difference(&b).matches(&s), a.matches(&s) && !b.matches(&s));
    }

    #[test]
    fn subset_laws(a in classical_regex(), b in classical_regex()) {
        prop_assert!(a.is_subset_of(&a.or(&b)));
        prop_assert!(a.intersect(&b).is_subset_of(&a));
        prop_assert!(a.is_subset_of(&a));
        prop_assert!(Regex::empty().is_subset_of(&a));
    }

    #[test]
    fn witness_is_member(r in classical_regex()) {
        match r.witness() {
            Some(w) => prop_assert!(r.matches(&w), "witness {w:?} not in language"),
            None => prop_assert!(r.is_empty()),
        }
    }

    #[test]
    fn witness_is_shortest(r in classical_regex()) {
        if let Some(w) = r.witness() {
            // No strictly shorter member exists: check all shorter strings
            // over the tiny alphabet when feasible.
            if w.len() >= 1 && w.len() <= 3 {
                let alphabet = [b'a', b'b', b'c', b'd'];
                let mut shorter_member = false;
                let mut stack: Vec<Vec<u8>> = vec![vec![]];
                while let Some(cand) = stack.pop() {
                    if cand.len() < w.len() {
                        if r.matches(&cand) {
                            shorter_member = true;
                            break;
                        }
                        for &c in &alphabet {
                            let mut next = cand.clone();
                            next.push(c);
                            stack.push(next);
                        }
                    }
                }
                prop_assert!(!shorter_member, "witness {w:?} is not shortest");
            }
        }
    }

    #[test]
    fn minimize_preserves_language(r in classical_regex(), s in input()) {
        let d = Dfa::from_regex(&r);
        let m = d.minimize();
        prop_assert_eq!(d.matches(&s), m.matches(&s));
        prop_assert!(d.equiv(&m));
    }

    #[test]
    fn display_roundtrip(r in classical_regex()) {
        let printed = r.to_string();
        let reparsed = Regex::parse(&printed)
            .unwrap_or_else(|e| panic!("printed {printed:?} failed to reparse: {e}"));
        prop_assert!(r.equiv(&reparsed), "{} reparsed to a different language", printed);
    }

    #[test]
    fn equivalence_is_congruence(a in classical_regex(), b in classical_regex()) {
        // a ∪ b ≡ b ∪ a, (a ∪ b) ∩ a ≡ a, and a \ a ≡ ∅.
        prop_assert!(a.or(&b).equiv(&b.or(&a)));
        prop_assert!(a.or(&b).intersect(&a).equiv(&a));
        prop_assert!(a.difference(&a).is_empty());
    }

    #[test]
    fn star_laws(a in classical_regex(), s in input()) {
        // a* a* ≡ a*, and s ∈ a ⇒ s ∈ a*.
        let star = a.star();
        prop_assert_eq!(star.then(&star).matches(&s), star.matches(&s));
        if a.matches(&s) {
            prop_assert!(star.matches(&s));
        }
    }

    #[test]
    fn grep_literal_is_substring_search(needle in "[a-c]{1,4}", hay in "[a-d]{0,10}") {
        let pat = Regex::grep_pattern(&needle).expect("literal pattern");
        let selected = pat.matches(hay.as_bytes());
        prop_assert_eq!(selected, hay.contains(&needle));
    }
}
