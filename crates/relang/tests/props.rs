//! Property-based tests for the regular-language engine, on the in-repo
//! seeded harness (`shoal_obs::prop`).
//!
//! The central invariant: the three execution backends (Brzozowski
//! derivatives, Thompson NFA simulation, compiled DFA) recognize exactly
//! the same language, and the Boolean algebra of languages agrees with
//! pointwise matching.

use shoal_obs::prop::{run_cases, Gen};
use shoal_relang::{ByteClass, Dfa, Nfa, Regex};

/// A random classical regex over the alphabet {a, b, c}, with bounded
/// depth (mirrors the old `prop_recursive(4, 24, 3, …)` strategy).
fn classical_regex(g: &mut Gen, depth: usize) -> Regex {
    if depth == 0 || g.ratio(0.3) {
        return match g.usize(0..6) {
            0 => Regex::eps(),
            1 => Regex::byte(b'a'),
            2 => Regex::byte(b'b'),
            3 => Regex::byte(b'c'),
            4 => Regex::class(ByteClass::from_bytes(b"ab")),
            _ => Regex::class(ByteClass::from_bytes(b"bc")),
        };
    }
    match g.usize(0..4) {
        0 => Regex::concat(g.vec_of(2..4, |g| classical_regex(g, depth - 1))),
        1 => Regex::alt(g.vec_of(2..4, |g| classical_regex(g, depth - 1))),
        2 => classical_regex(g, depth - 1).star(),
        _ => classical_regex(g, depth - 1).opt(),
    }
}

/// A random input over {a, b, c, d} (d exercises out-of-alphabet bytes).
fn input(g: &mut Gen) -> Vec<u8> {
    g.vec_of(0..10, |g| *g.pick(b"abcd"))
}

#[test]
fn backends_agree() {
    run_cases("backends_agree", 128, |g| {
        let r = classical_regex(g, 4);
        let s = input(g);
        let via_deriv = r.matches(&s);
        let nfa = Nfa::compile(&r).expect("classical");
        let via_nfa = nfa.matches(&s);
        let dfa = Dfa::from_regex(&r);
        let via_dfa = dfa.matches(&s);
        let via_subset = Dfa::from_nfa(&nfa).matches(&s);
        assert_eq!(via_deriv, via_nfa, "{r} on {s:?}");
        assert_eq!(via_deriv, via_dfa, "{r} on {s:?}");
        assert_eq!(via_deriv, via_subset, "{r} on {s:?}");
    });
}

#[test]
fn boolean_algebra_pointwise() {
    run_cases("boolean_algebra_pointwise", 128, |g| {
        let a = classical_regex(g, 3);
        let b = classical_regex(g, 3);
        let s = input(g);
        assert_eq!(a.or(&b).matches(&s), a.matches(&s) || b.matches(&s));
        assert_eq!(a.intersect(&b).matches(&s), a.matches(&s) && b.matches(&s));
        assert_eq!(a.complement().matches(&s), !a.matches(&s));
        assert_eq!(a.difference(&b).matches(&s), a.matches(&s) && !b.matches(&s));
    });
}

#[test]
fn subset_laws() {
    run_cases("subset_laws", 96, |g| {
        let a = classical_regex(g, 3);
        let b = classical_regex(g, 3);
        assert!(a.is_subset_of(&a.or(&b)));
        assert!(a.intersect(&b).is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(Regex::empty().is_subset_of(&a));
    });
}

#[test]
fn witness_is_member() {
    run_cases("witness_is_member", 128, |g| {
        let r = classical_regex(g, 4);
        match r.witness() {
            Some(w) => assert!(r.matches(&w), "witness {w:?} not in language of {r}"),
            None => assert!(r.is_empty()),
        }
    });
}

#[test]
fn witness_is_shortest() {
    run_cases("witness_is_shortest", 96, |g| {
        let r = classical_regex(g, 4);
        if let Some(w) = r.witness() {
            // No strictly shorter member exists: check all shorter strings
            // over the tiny alphabet when feasible.
            if !w.is_empty() && w.len() <= 3 {
                let alphabet = [b'a', b'b', b'c', b'd'];
                let mut shorter_member = false;
                let mut stack: Vec<Vec<u8>> = vec![vec![]];
                while let Some(cand) = stack.pop() {
                    if cand.len() < w.len() {
                        if r.matches(&cand) {
                            shorter_member = true;
                            break;
                        }
                        for &c in &alphabet {
                            let mut next = cand.clone();
                            next.push(c);
                            stack.push(next);
                        }
                    }
                }
                assert!(!shorter_member, "witness {w:?} of {r} is not shortest");
            }
        }
    });
}

#[test]
fn minimize_preserves_language() {
    run_cases("minimize_preserves_language", 96, |g| {
        let r = classical_regex(g, 3);
        let s = input(g);
        let d = Dfa::from_regex(&r);
        let m = d.minimize();
        assert_eq!(d.matches(&s), m.matches(&s));
        assert!(d.equiv(&m));
    });
}

#[test]
fn display_roundtrip() {
    run_cases("display_roundtrip", 128, |g| {
        let r = classical_regex(g, 3);
        let printed = r.to_string();
        let reparsed = Regex::parse(&printed)
            .unwrap_or_else(|e| panic!("printed {printed:?} failed to reparse: {e}"));
        assert!(r.equiv(&reparsed), "{printed} reparsed to a different language");
    });
}

#[test]
fn equivalence_is_congruence() {
    run_cases("equivalence_is_congruence", 96, |g| {
        let a = classical_regex(g, 3);
        let b = classical_regex(g, 3);
        // a ∪ b ≡ b ∪ a, (a ∪ b) ∩ a ≡ a, and a \ a ≡ ∅.
        assert!(a.or(&b).equiv(&b.or(&a)));
        assert!(a.or(&b).intersect(&a).equiv(&a));
        assert!(a.difference(&a).is_empty());
    });
}

#[test]
fn star_laws() {
    run_cases("star_laws", 96, |g| {
        let a = classical_regex(g, 3);
        let s = input(g);
        // a* a* ≡ a*, and s ∈ a ⇒ s ∈ a*.
        let star = a.star();
        assert_eq!(star.then(&star).matches(&s), star.matches(&s));
        if a.matches(&s) {
            assert!(star.matches(&s));
        }
    });
}

#[test]
fn grep_literal_is_substring_search() {
    run_cases("grep_literal_is_substring_search", 128, |g| {
        let needle = g.string_of("abc", 1..5);
        let hay = g.string_of("abcd", 0..11);
        let pat = Regex::grep_pattern(&needle).expect("literal pattern");
        let selected = pat.matches(hay.as_bytes());
        assert_eq!(selected, hay.contains(&needle), "needle {needle:?} hay {hay:?}");
    });
}

/// Memoization must be semantically invisible: every decision procedure
/// answers identically with caching on (warm *and* cold) and off.
#[test]
fn memoized_decisions_equal_fresh() {
    use shoal_relang::{memo_flush, set_memo_enabled};
    run_cases("memoized_decisions_equal_fresh", 96, |g| {
        let a = classical_regex(g, 3);
        let b = classical_regex(g, 3);
        set_memo_enabled(false);
        let fresh = (
            a.is_empty(),
            a.is_subset_of(&b),
            b.is_subset_of(&a),
            a.equiv(&b),
            a.disjoint(&b),
            a.witness(),
        );
        set_memo_enabled(true);
        memo_flush();
        // First pass populates the tables (misses), second pass hits.
        for pass in ["cold", "warm"] {
            let memoized = (
                a.is_empty(),
                a.is_subset_of(&b),
                b.is_subset_of(&a),
                a.equiv(&b),
                a.disjoint(&b),
                a.witness(),
            );
            assert_eq!(memoized, fresh, "{pass} memo answers diverge: {a} vs {b}");
        }
    });
    shoal_relang::memo_flush();
}

/// The lazy on-the-fly decision procedures must return exactly the
/// verdicts of the eager materialize-then-check pipeline whenever
/// neither side degraded to ⊤ — across caps and with memoization on
/// and off. When a side *does* cap, the contract is only conservatism,
/// so capped rounds are skipped.
#[test]
fn lazy_and_eager_verdicts_agree() {
    use shoal_relang::{
        dfa::{set_dfa_state_cap, take_approx_hits, DEFAULT_DFA_STATE_CAP},
        memo::{self, memo_flush, set_memo_enabled},
    };
    run_cases("lazy_and_eager_verdicts_agree", 48, |g| {
        let a = classical_regex(g, 3);
        let b = classical_regex(g, 3);
        // Ground truth at the default cap; these tiny automata never cap.
        set_dfa_state_cap(DEFAULT_DFA_STATE_CAP);
        set_memo_enabled(false);
        let _ = take_approx_hits();
        let truth = (
            a.is_empty(),
            a.is_subset_of(&b),
            a.equiv(&b),
            a.disjoint(&b),
            a.witness(),
        );
        assert!(
            take_approx_hits().is_empty(),
            "ground truth capped: {a} vs {b}"
        );
        for cap in [16usize, 4096] {
            for memo_on in [false, true] {
                set_dfa_state_cap(cap);
                set_memo_enabled(memo_on);
                if memo_on {
                    memo_flush();
                }
                let lazy = (
                    a.is_empty(),
                    a.is_subset_of(&b),
                    a.equiv(&b),
                    a.disjoint(&b),
                    a.witness(),
                );
                let lazy_capped = !take_approx_hits().is_empty();
                let eager = (
                    memo::eager::is_empty(&a),
                    memo::eager::is_subset_of(&a, &b),
                    memo::eager::equiv(&a, &b),
                    memo::eager::disjoint(&a, &b),
                    memo::eager::witness(&a),
                );
                let eager_capped = !take_approx_hits().is_empty();
                if !lazy_capped && !eager_capped {
                    assert_eq!(
                        lazy, eager,
                        "lazy vs eager diverge (cap {cap}, memo {memo_on}): {a} vs {b}"
                    );
                    assert_eq!(
                        lazy, truth,
                        "lazy vs ground truth diverge (cap {cap}, memo {memo_on}): {a} vs {b}"
                    );
                }
            }
        }
        set_dfa_state_cap(DEFAULT_DFA_STATE_CAP);
        set_memo_enabled(true);
        memo_flush();
    });
}

/// Hopcroft's worklist minimization must be observably identical to the
/// retained Moore reference: same structure (the canonical first-
/// occurrence numbering), same language, idempotent, and with no pair
/// of distinct states recognizing the same residual language.
#[test]
fn hopcroft_matches_moore() {
    run_cases("hopcroft_matches_moore", 64, |g| {
        let a = classical_regex(g, 3);
        let b = classical_regex(g, 3);
        // A raw (un-minimized) product gives Hopcroft real work to do.
        let raw = Dfa::from_regex(&a).product_raw(&Dfa::from_regex(&b), |x, y| x || y);
        let hop = raw.minimize();
        let moore = raw.minimize_moore();
        assert!(
            hop.structurally_equal(&moore),
            "Hopcroft and Moore disagree on {a} | {b}"
        );
        assert!(hop.equiv(&raw), "minimize changed the language of {a} | {b}");
        assert!(
            hop.minimize().structurally_equal(&hop),
            "minimize not idempotent on {a} | {b}"
        );
        // True minimality: every pair of distinct surviving states is
        // distinguishable by some suffix.
        let n = hop.num_states() as u32;
        for i in 0..n {
            for j in (i + 1)..n {
                assert!(
                    !hop.language_from(i).equiv(&hop.language_from(j)),
                    "states {i} and {j} of minimized {a} | {b} are equivalent"
                );
            }
        }
    });
}

/// Regression for the `expect("non-empty class")` panic paths: a regex
/// whose DFA needs all 256 byte classes (every byte maps to its own
/// class) must survive every combining operation. Before the rework,
/// product/witness looked up a representative byte per *combined*
/// class and panicked when refinement produced an empty intersection.
#[test]
fn dense_256_class_alphabet_survives_all_ops() {
    // ∪ over all 256 bytes of "bb" — each byte is its own class.
    let r = Regex::alt(
        (0u16..256)
            .map(|b| Regex::concat(vec![Regex::byte(b as u8), Regex::byte(b as u8)]))
            .collect(),
    );
    let d = Dfa::from_regex(&r);
    assert_eq!(d.num_classes(), 256, "expected a fully dense alphabet");
    let s = Dfa::from_regex(&Regex::parse_must("a[a-z]"));
    // Every operation that combines alphabets, on both operand orders.
    assert!(!d.is_subset_of(&s));
    assert!(!s.is_subset_of(&d));
    assert!(!d.equiv(&s));
    assert!(!d.disjoint(&s), "\"aa\" is in both languages");
    let inter = d.intersect(&s);
    assert!(inter.matches(b"aa"));
    assert!(!inter.matches(b"ab"));
    let uni = d.union(&s);
    assert!(uni.matches(b"\x00\x00") && uni.matches(b"az"));
    assert_eq!(d.witness().map(|w| w.len()), Some(2));
    // L(d)/L(s): only ε, since "aa" is the sole shared suffix.
    let quo = d.right_quotient(&s);
    assert!(quo.matches(b"") && !quo.matches(b"a"));
    let lq = d.left_quotient(&s);
    assert!(lq.matches(b"") && !lq.matches(b"b"));
}

/// Regression: interner overflow must retire term ids *together with*
/// their memoized decisions.
///
/// The failure mode this pins down: ids are dense and reused after a
/// flush, so a decision cached under `(id_a, id_b)` before the flush
/// would be served for a *different* pair of terms that landed on the
/// same ids afterwards — a silently wrong subset answer, not a perf
/// bug. The fix flushes every decision table whenever the interner
/// flushes; this test drives the interner exactly to the overflow
/// boundary and then re-lands an unrelated term on the retired id.
#[test]
fn memo_flush_must_retire_ids_with_the_terms() {
    use shoal_relang::{memo_flush, Regex, INTERN_CAP};
    memo_flush();
    // Fill the interner to CAP - 1 distinct terms.
    for n in 0..(INTERN_CAP - 1) {
        let _ = Regex::lit(&format!("filler-{n}")).term_id();
    }
    // `a` takes the last slot (id CAP-1); interning `b` overflows and
    // flushes; `b` re-lands on id 0. The subset answer for (a, b) is
    // keyed (CAP-1, 0) — and CAP-1 is now a *retired* id.
    let a = Regex::lit("AAAA");
    let b = Regex::parse_must("A+");
    assert!(a.is_subset_of(&b), "sanity: AAAA ⊆ A+");

    // Refill until some unrelated term `c` lands exactly on id CAP-1
    // while `b` keeps id 0.
    let mut c = None;
    for n in 0..(2 * INTERN_CAP) {
        let cand = Regex::lit(&format!("poison-{n}"));
        if cand.term_id() as usize == INTERN_CAP - 1 {
            c = Some(cand);
            break;
        }
    }
    let c = c.expect("some term reached the retired id");
    // `c` is NOT a subset of A+; a stale entry at (CAP-1, 0) would say
    // it is.
    let got = c.is_subset_of(&b);
    memo_flush();
    assert!(
        !got,
        "stale memo key (retired id reused) made {c:?} ⊆ A+ return true"
    );
}
