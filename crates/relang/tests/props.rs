//! Property-based tests for the regular-language engine, on the in-repo
//! seeded harness (`shoal_obs::prop`).
//!
//! The central invariant: the three execution backends (Brzozowski
//! derivatives, Thompson NFA simulation, compiled DFA) recognize exactly
//! the same language, and the Boolean algebra of languages agrees with
//! pointwise matching.

use shoal_obs::prop::{run_cases, Gen};
use shoal_relang::{ByteClass, Dfa, Nfa, Regex};

/// A random classical regex over the alphabet {a, b, c}, with bounded
/// depth (mirrors the old `prop_recursive(4, 24, 3, …)` strategy).
fn classical_regex(g: &mut Gen, depth: usize) -> Regex {
    if depth == 0 || g.ratio(0.3) {
        return match g.usize(0..6) {
            0 => Regex::eps(),
            1 => Regex::byte(b'a'),
            2 => Regex::byte(b'b'),
            3 => Regex::byte(b'c'),
            4 => Regex::class(ByteClass::from_bytes(b"ab")),
            _ => Regex::class(ByteClass::from_bytes(b"bc")),
        };
    }
    match g.usize(0..4) {
        0 => Regex::concat(g.vec_of(2..4, |g| classical_regex(g, depth - 1))),
        1 => Regex::alt(g.vec_of(2..4, |g| classical_regex(g, depth - 1))),
        2 => classical_regex(g, depth - 1).star(),
        _ => classical_regex(g, depth - 1).opt(),
    }
}

/// A random input over {a, b, c, d} (d exercises out-of-alphabet bytes).
fn input(g: &mut Gen) -> Vec<u8> {
    g.vec_of(0..10, |g| *g.pick(b"abcd"))
}

#[test]
fn backends_agree() {
    run_cases("backends_agree", 128, |g| {
        let r = classical_regex(g, 4);
        let s = input(g);
        let via_deriv = r.matches(&s);
        let nfa = Nfa::compile(&r).expect("classical");
        let via_nfa = nfa.matches(&s);
        let dfa = Dfa::from_regex(&r);
        let via_dfa = dfa.matches(&s);
        let via_subset = Dfa::from_nfa(&nfa).matches(&s);
        assert_eq!(via_deriv, via_nfa, "{r} on {s:?}");
        assert_eq!(via_deriv, via_dfa, "{r} on {s:?}");
        assert_eq!(via_deriv, via_subset, "{r} on {s:?}");
    });
}

#[test]
fn boolean_algebra_pointwise() {
    run_cases("boolean_algebra_pointwise", 128, |g| {
        let a = classical_regex(g, 3);
        let b = classical_regex(g, 3);
        let s = input(g);
        assert_eq!(a.or(&b).matches(&s), a.matches(&s) || b.matches(&s));
        assert_eq!(a.intersect(&b).matches(&s), a.matches(&s) && b.matches(&s));
        assert_eq!(a.complement().matches(&s), !a.matches(&s));
        assert_eq!(a.difference(&b).matches(&s), a.matches(&s) && !b.matches(&s));
    });
}

#[test]
fn subset_laws() {
    run_cases("subset_laws", 96, |g| {
        let a = classical_regex(g, 3);
        let b = classical_regex(g, 3);
        assert!(a.is_subset_of(&a.or(&b)));
        assert!(a.intersect(&b).is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(Regex::empty().is_subset_of(&a));
    });
}

#[test]
fn witness_is_member() {
    run_cases("witness_is_member", 128, |g| {
        let r = classical_regex(g, 4);
        match r.witness() {
            Some(w) => assert!(r.matches(&w), "witness {w:?} not in language of {r}"),
            None => assert!(r.is_empty()),
        }
    });
}

#[test]
fn witness_is_shortest() {
    run_cases("witness_is_shortest", 96, |g| {
        let r = classical_regex(g, 4);
        if let Some(w) = r.witness() {
            // No strictly shorter member exists: check all shorter strings
            // over the tiny alphabet when feasible.
            if !w.is_empty() && w.len() <= 3 {
                let alphabet = [b'a', b'b', b'c', b'd'];
                let mut shorter_member = false;
                let mut stack: Vec<Vec<u8>> = vec![vec![]];
                while let Some(cand) = stack.pop() {
                    if cand.len() < w.len() {
                        if r.matches(&cand) {
                            shorter_member = true;
                            break;
                        }
                        for &c in &alphabet {
                            let mut next = cand.clone();
                            next.push(c);
                            stack.push(next);
                        }
                    }
                }
                assert!(!shorter_member, "witness {w:?} of {r} is not shortest");
            }
        }
    });
}

#[test]
fn minimize_preserves_language() {
    run_cases("minimize_preserves_language", 96, |g| {
        let r = classical_regex(g, 3);
        let s = input(g);
        let d = Dfa::from_regex(&r);
        let m = d.minimize();
        assert_eq!(d.matches(&s), m.matches(&s));
        assert!(d.equiv(&m));
    });
}

#[test]
fn display_roundtrip() {
    run_cases("display_roundtrip", 128, |g| {
        let r = classical_regex(g, 3);
        let printed = r.to_string();
        let reparsed = Regex::parse(&printed)
            .unwrap_or_else(|e| panic!("printed {printed:?} failed to reparse: {e}"));
        assert!(r.equiv(&reparsed), "{printed} reparsed to a different language");
    });
}

#[test]
fn equivalence_is_congruence() {
    run_cases("equivalence_is_congruence", 96, |g| {
        let a = classical_regex(g, 3);
        let b = classical_regex(g, 3);
        // a ∪ b ≡ b ∪ a, (a ∪ b) ∩ a ≡ a, and a \ a ≡ ∅.
        assert!(a.or(&b).equiv(&b.or(&a)));
        assert!(a.or(&b).intersect(&a).equiv(&a));
        assert!(a.difference(&a).is_empty());
    });
}

#[test]
fn star_laws() {
    run_cases("star_laws", 96, |g| {
        let a = classical_regex(g, 3);
        let s = input(g);
        // a* a* ≡ a*, and s ∈ a ⇒ s ∈ a*.
        let star = a.star();
        assert_eq!(star.then(&star).matches(&s), star.matches(&s));
        if a.matches(&s) {
            assert!(star.matches(&s));
        }
    });
}

#[test]
fn grep_literal_is_substring_search() {
    run_cases("grep_literal_is_substring_search", 128, |g| {
        let needle = g.string_of("abc", 1..5);
        let hay = g.string_of("abcd", 0..11);
        let pat = Regex::grep_pattern(&needle).expect("literal pattern");
        let selected = pat.matches(hay.as_bytes());
        assert_eq!(selected, hay.contains(&needle), "needle {needle:?} hay {hay:?}");
    });
}

/// Memoization must be semantically invisible: every decision procedure
/// answers identically with caching on (warm *and* cold) and off.
#[test]
fn memoized_decisions_equal_fresh() {
    use shoal_relang::{memo_flush, set_memo_enabled};
    run_cases("memoized_decisions_equal_fresh", 96, |g| {
        let a = classical_regex(g, 3);
        let b = classical_regex(g, 3);
        set_memo_enabled(false);
        let fresh = (
            a.is_empty(),
            a.is_subset_of(&b),
            b.is_subset_of(&a),
            a.equiv(&b),
            a.disjoint(&b),
            a.witness(),
        );
        set_memo_enabled(true);
        memo_flush();
        // First pass populates the tables (misses), second pass hits.
        for pass in ["cold", "warm"] {
            let memoized = (
                a.is_empty(),
                a.is_subset_of(&b),
                b.is_subset_of(&a),
                a.equiv(&b),
                a.disjoint(&b),
                a.witness(),
            );
            assert_eq!(memoized, fresh, "{pass} memo answers diverge: {a} vs {b}");
        }
    });
    shoal_relang::memo_flush();
}

/// Regression: interner overflow must retire term ids *together with*
/// their memoized decisions.
///
/// The failure mode this pins down: ids are dense and reused after a
/// flush, so a decision cached under `(id_a, id_b)` before the flush
/// would be served for a *different* pair of terms that landed on the
/// same ids afterwards — a silently wrong subset answer, not a perf
/// bug. The fix flushes every decision table whenever the interner
/// flushes; this test drives the interner exactly to the overflow
/// boundary and then re-lands an unrelated term on the retired id.
#[test]
fn memo_flush_must_retire_ids_with_the_terms() {
    use shoal_relang::{memo_flush, Regex, INTERN_CAP};
    memo_flush();
    // Fill the interner to CAP - 1 distinct terms.
    for n in 0..(INTERN_CAP - 1) {
        let _ = Regex::lit(&format!("filler-{n}")).term_id();
    }
    // `a` takes the last slot (id CAP-1); interning `b` overflows and
    // flushes; `b` re-lands on id 0. The subset answer for (a, b) is
    // keyed (CAP-1, 0) — and CAP-1 is now a *retired* id.
    let a = Regex::lit("AAAA");
    let b = Regex::parse_must("A+");
    assert!(a.is_subset_of(&b), "sanity: AAAA ⊆ A+");

    // Refill until some unrelated term `c` lands exactly on id CAP-1
    // while `b` keeps id 0.
    let mut c = None;
    for n in 0..(2 * INTERN_CAP) {
        let cand = Regex::lit(&format!("poison-{n}"));
        if cand.term_id() as usize == INTERN_CAP - 1 {
            c = Some(cand);
            break;
        }
    }
    let c = c.expect("some term reached the retired id");
    // `c` is NOT a subset of A+; a stale entry at (CAP-1, 0) would say
    // it is.
    let got = c.is_subset_of(&b);
    memo_flush();
    assert!(
        !got,
        "stale memo key (retired id reused) made {c:?} ⊆ A+ return true"
    );
}
