//! Observability contract for the lazy decision engine: an adversarial
//! containment query whose materialized product would be huge, but
//! whose counterexample is two steps from the start pair, must be
//! answered after exploring a vanishing fraction of the pair space —
//! and the engine must say so through its counters.

use shoal_relang::{Dfa, Regex};

#[test]
fn lazy_search_early_exits_and_reports_counters() {
    shoal_obs::install();

    // A = ab | c(a^101)*, B = c(a^103)*. The full product has
    // lcm-scale structure (>10k pairs), but A ∖ B is witnessed by
    // "ab" at BFS depth 2.
    let ra = Regex::concat(vec![Regex::byte(b'a'), Regex::byte(b'b')])
        .or(&Regex::byte(b'c').then(&Regex::byte(b'a').repeat(101, Some(101)).star()));
    let rb = Regex::byte(b'c').then(&Regex::byte(b'a').repeat(103, Some(103)).star());
    let da = Dfa::from_regex(&ra);
    let db = Dfa::from_regex(&rb);
    let bound = (da.num_states() as u64) * (db.num_states() as u64);
    assert!(
        bound > 10_000,
        "adversarial pair too small: product bound {bound}"
    );

    assert!(!da.is_subset_of(&db), "\"ab\" ∈ A but ∉ B");

    let snap = shoal_obs::snapshot();
    let explored = snap
        .counter("relang.lazy_pairs_explored")
        .expect("pairs-explored counter missing");
    let early = snap
        .counter("relang.lazy_early_exit")
        .expect("early-exit counter missing");
    let reported_bound = snap
        .gauge("relang.lazy_product_bound")
        .expect("product-bound gauge missing");
    assert!(early >= 1, "the search did not report an early exit");
    assert!(explored >= 1, "no pairs were charged");
    assert!(
        explored * 100 <= reported_bound,
        "explored {explored} pairs of a {reported_bound} bound — not an early exit"
    );
    assert!(reported_bound > 10_000, "gauge under-reports the bound");

    shoal_obs::set_enabled(false);
}
