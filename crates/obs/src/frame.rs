//! Length-prefixed message framing for the JIT daemon's socket
//! protocol.
//!
//! One frame = a 4-byte big-endian payload length followed by exactly
//! that many payload bytes. The length prefix makes message boundaries
//! explicit on a stream socket (no sentinel scanning, binary-safe) and
//! lets the reader pre-size its buffer; [`MAX_FRAME`] bounds that
//! allocation so a corrupt or hostile peer cannot request gigabytes.

use std::io::{self, Read, Write};

/// Upper bound on one frame's payload (64 MiB — far above any real
/// script or report, far below an allocation-of-death).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads larger than [`MAX_FRAME`]
/// with [`io::ErrorKind::InvalidInput`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF
/// *before* the length prefix (the peer closed between messages);
/// an EOF mid-frame is an error.
///
/// # Errors
///
/// Propagates I/O errors; rejects lengths above [`MAX_FRAME`] with
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled read_exact for the prefix so that EOF-at-boundary is
    // distinguishable from EOF-mid-prefix.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame (length prefix)",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_frames_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0u8, 255, 10, 13]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![0u8, 255, 10, 13]);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"truncated payload").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
        // EOF mid-prefix too.
        let mut short = &[0u8, 0][..];
        assert!(read_frame(&mut short).is_err());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(b"x");
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
