//! shoal-audit: mergeable, byte-deterministic coverage and
//! precision-loss maps.
//!
//! The engine explores shell scripts symbolically and, at well-defined
//! points, *gives up precision*: a command with no spec gets ⊤ effects,
//! a capped DFA determinization degrades to the ⊤ automaton, a loop
//! body is widened, a fuel/deadline budget stops exploration early, a
//! parse error is bridged by recovery. Each such event is a
//! [`LossCause`] recorded at a stable site string. A [`CoverageMap`]
//! accumulates those events — plus per-command spec coverage and
//! per-checker firing counts — for one script, and `merge` folds
//! per-script maps into a fleet view.
//!
//! Invariants (tested in `tests/audit_props.rs` and relied on by the
//! scan/daemon aggregators):
//!
//! * **merge is a commutative monoid action**: every field is either a
//!   saturating sum or a key-unioned sum, so `merge` is associative and
//!   commutative with `CoverageMap::default()` as identity, and counts
//!   are exact (no sampling, no caps).
//! * **byte determinism**: all maps are `BTreeMap`s, so `to_json` /
//!   `summary_json` render byte-identically for equal maps regardless
//!   of insertion order (and therefore of `--jobs` scheduling).
//! * **no clocks, no ambient state**: this module never reads a clock
//!   or environment; an audit-off analysis constructs nothing from it.

use std::collections::BTreeMap;

use crate::json::Json;

/// Why the analysis lost precision at a site. The taxonomy is closed:
/// every ⊤-degradation in the pipeline maps to exactly one cause, so
/// per-cause counts sum to the total degradation count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LossCause {
    /// A command had no spec (and is not a builtin): its effects and
    /// exit status became unknown. Counted once per distinct call
    /// site, never per live world.
    NoSpec,
    /// A relang DFA construction hit the state cap and degraded to the
    /// ⊤ automaton.
    DfaCap,
    /// A loop body was widened (variables/filesystem havocked) instead
    /// of being unrolled to a fixpoint.
    LoopWiden,
    /// The fuel budget ran out; exploration stopped between statements.
    Fuel,
    /// The wall-clock deadline passed; exploration stopped between
    /// statements.
    Deadline,
    /// Parse recovery bridged a syntax error; statements in the gap
    /// were never analyzed.
    ParsePartial,
    /// The live-world cap dropped worlds at a fork site.
    WorldCap,
    /// The expansion-pair cap dropped glob/expansion alternatives.
    ExpansionCap,
}

impl LossCause {
    /// Every cause, in the canonical (= `Ord`) order.
    pub const ALL: [LossCause; 8] = [
        LossCause::NoSpec,
        LossCause::DfaCap,
        LossCause::LoopWiden,
        LossCause::Fuel,
        LossCause::Deadline,
        LossCause::ParsePartial,
        LossCause::WorldCap,
        LossCause::ExpansionCap,
    ];

    /// Stable machine-readable name (part of the `shoal-audit/v1`
    /// schema — do not rename).
    pub fn as_str(self) -> &'static str {
        match self {
            LossCause::NoSpec => "no-spec",
            LossCause::DfaCap => "dfa-cap",
            LossCause::LoopWiden => "loop-widen",
            LossCause::Fuel => "fuel",
            LossCause::Deadline => "deadline",
            LossCause::ParsePartial => "parse-partial",
            LossCause::WorldCap => "world-cap",
            LossCause::ExpansionCap => "expansion-cap",
        }
    }
}

/// Coverage for one command name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommandCov {
    /// Whether a spec (or builtin model) covered this command.
    pub has_spec: bool,
    /// Distinct call sites (deduped per line within a script, summed
    /// across scripts).
    pub sites: u64,
    /// Scripts that mention the command at least once.
    pub scripts: u64,
}

/// Firing statistics for one checker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckerCov {
    /// Diagnostics this checker emitted.
    pub fired: u64,
    /// Scripts where the analysis degraded (any [`LossCause`]) and
    /// this checker emitted nothing — an upper bound on findings the
    /// degradation may have suppressed.
    pub suppressed: u64,
}

/// A mergeable, byte-deterministic coverage/precision map. One per
/// analyzed script (`scripts == 1`), or a fleet-wide fold of many.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    /// Scripts folded into this map.
    pub scripts: u64,
    /// Scripts with at least one recorded precision loss.
    pub degraded_scripts: u64,
    /// Per-command coverage, keyed by command name.
    pub commands: BTreeMap<String, CommandCov>,
    /// Per-checker firing counts, keyed by checker id.
    pub checkers: BTreeMap<String, CheckerCov>,
    /// Precision losses: cause → site → count.
    pub losses: BTreeMap<LossCause, BTreeMap<String, u64>>,
}

impl CoverageMap {
    /// Folds `other` into `self`. Associative and commutative; counts
    /// are exact sums.
    pub fn merge(&mut self, other: &CoverageMap) {
        self.scripts = self.scripts.saturating_add(other.scripts);
        self.degraded_scripts = self.degraded_scripts.saturating_add(other.degraded_scripts);
        for (name, cov) in &other.commands {
            let e = self.commands.entry(name.clone()).or_default();
            e.has_spec |= cov.has_spec;
            e.sites = e.sites.saturating_add(cov.sites);
            e.scripts = e.scripts.saturating_add(cov.scripts);
        }
        for (id, cov) in &other.checkers {
            let e = self.checkers.entry(id.clone()).or_default();
            e.fired = e.fired.saturating_add(cov.fired);
            e.suppressed = e.suppressed.saturating_add(cov.suppressed);
        }
        for (cause, sites) in &other.losses {
            let bucket = self.losses.entry(*cause).or_default();
            for (site, n) in sites {
                let e = bucket.entry(site.clone()).or_insert(0);
                *e = e.saturating_add(*n);
            }
        }
    }

    /// Records `n` precision-loss events of `cause` at `site` on a
    /// single-script map, maintaining the per-script derived fields:
    /// the first loss marks the script degraded and flags every
    /// so-far-silent checker as possibly suppressed.
    pub fn add_loss(&mut self, cause: LossCause, site: &str, n: u64) {
        if n == 0 {
            return;
        }
        let e = self.losses.entry(cause).or_default().entry(site.to_string()).or_insert(0);
        *e = e.saturating_add(n);
        if self.scripts <= 1 && self.degraded_scripts == 0 {
            self.degraded_scripts = 1;
            for cov in self.checkers.values_mut() {
                if cov.fired == 0 {
                    cov.suppressed = 1;
                }
            }
        }
    }

    /// Per-cause loss totals (each cause's sites summed).
    pub fn loss_totals(&self) -> BTreeMap<LossCause, u64> {
        self.losses
            .iter()
            .map(|(cause, sites)| (*cause, sites.values().fold(0u64, |a, n| a.saturating_add(*n))))
            .collect()
    }

    /// Total precision-loss events across all causes. Equal to the sum
    /// of [`CoverageMap::loss_totals`] by construction.
    pub fn total_losses(&self) -> u64 {
        self.loss_totals().values().fold(0u64, |a, n| a.saturating_add(*n))
    }

    /// Commands with no spec, ranked by `scripts × sites` descending
    /// (then by name for determinism). The ranked work queue for spec
    /// mining.
    pub fn missing_specs(&self) -> Vec<(&str, &CommandCov, u64)> {
        let mut out: Vec<(&str, &CommandCov, u64)> = self
            .commands
            .iter()
            .filter(|(_, c)| !c.has_spec)
            .map(|(n, c)| (n.as_str(), c, c.scripts.saturating_mul(c.sites)))
            .collect();
        out.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(b.0)));
        out
    }

    /// Full deterministic JSON rendering.
    pub fn to_json(&self) -> Json {
        let commands = self
            .commands
            .iter()
            .map(|(name, c)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("has_spec".to_string(), Json::Bool(c.has_spec)),
                        ("sites".to_string(), Json::Num(c.sites as f64)),
                        ("scripts".to_string(), Json::Num(c.scripts as f64)),
                    ]),
                )
            })
            .collect();
        let losses = self
            .losses
            .iter()
            .map(|(cause, sites)| {
                (
                    cause.as_str().to_string(),
                    Json::Obj(
                        sites
                            .iter()
                            .map(|(site, n)| (site.clone(), Json::Num(*n as f64)))
                            .collect(),
                    ),
                )
            })
            .collect();
        Json::Obj(vec![
            ("scripts".to_string(), Json::Num(self.scripts as f64)),
            ("degraded_scripts".to_string(), Json::Num(self.degraded_scripts as f64)),
            ("commands".to_string(), Json::Obj(commands)),
            ("checkers".to_string(), Json::Obj(checkers_json(&self.checkers))),
            ("losses".to_string(), Json::Obj(losses)),
        ])
    }

    /// Compact fleet-health summary (the daemon's stats-plane shape):
    /// script counts, missing-spec ranking capped at `top_n`, per-cause
    /// loss totals, and checker firing counts.
    pub fn summary_json(&self, top_n: usize) -> Json {
        let missing = self.missing_specs();
        let top = missing
            .iter()
            .take(top_n)
            .map(|(name, c, score)| {
                Json::Obj(vec![
                    ("command".to_string(), Json::Str((*name).to_string())),
                    ("scripts".to_string(), Json::Num(c.scripts as f64)),
                    ("sites".to_string(), Json::Num(c.sites as f64)),
                    ("score".to_string(), Json::Num(*score as f64)),
                ])
            })
            .collect();
        let loss_totals = self
            .loss_totals()
            .iter()
            .map(|(cause, n)| (cause.as_str().to_string(), Json::Num(*n as f64)))
            .collect();
        Json::Obj(vec![
            ("analyzed_scripts".to_string(), Json::Num(self.scripts as f64)),
            ("degraded_scripts".to_string(), Json::Num(self.degraded_scripts as f64)),
            ("missing_spec_commands".to_string(), Json::Num(missing.len() as f64)),
            ("top_missing_specs".to_string(), Json::Arr(top)),
            ("losses".to_string(), Json::Obj(loss_totals)),
            ("checkers".to_string(), Json::Obj(checkers_json(&self.checkers))),
        ])
    }
}

fn checkers_json(checkers: &BTreeMap<String, CheckerCov>) -> Vec<(String, Json)> {
    checkers
        .iter()
        .map(|(id, c)| {
            (
                id.clone(),
                Json::Obj(vec![
                    ("fired".to_string(), Json::Num(c.fired as f64)),
                    ("suppressed".to_string(), Json::Num(c.suppressed as f64)),
                ]),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn script_map(cmd: &str, has_spec: bool, losses: &[(LossCause, &str)]) -> CoverageMap {
        let mut m = CoverageMap { scripts: 1, ..CoverageMap::default() };
        m.commands.insert(
            cmd.to_string(),
            CommandCov { has_spec, sites: 1, scripts: 1 },
        );
        m.checkers.insert("delete".to_string(), CheckerCov::default());
        for (cause, site) in losses {
            m.add_loss(*cause, site, 1);
        }
        m
    }

    #[test]
    fn merge_sums_exactly() {
        let a = script_map("curl", false, &[(LossCause::NoSpec, "curl:3")]);
        let b = script_map("curl", false, &[(LossCause::NoSpec, "curl:7")]);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.scripts, 2);
        assert_eq!(m.degraded_scripts, 2);
        assert_eq!(m.commands["curl"].sites, 2);
        assert_eq!(m.commands["curl"].scripts, 2);
        assert_eq!(m.total_losses(), 2);
        assert_eq!(m.checkers["delete"].suppressed, 2);
    }

    #[test]
    fn default_is_merge_identity() {
        let a = script_map("sed", true, &[(LossCause::LoopWiden, "line 4")]);
        let mut left = CoverageMap::default();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&CoverageMap::default());
        assert_eq!(left, a);
        assert_eq!(right, a);
    }

    #[test]
    fn add_loss_marks_degraded_and_suppressed_once() {
        let mut m = script_map("ls", true, &[]);
        assert_eq!(m.degraded_scripts, 0);
        m.add_loss(LossCause::Fuel, "statement budget", 1);
        m.add_loss(LossCause::DfaCap, "product", 3);
        assert_eq!(m.degraded_scripts, 1);
        assert_eq!(m.checkers["delete"].suppressed, 1);
        assert_eq!(m.total_losses(), 4);
    }

    #[test]
    fn missing_specs_ranked_by_score_then_name() {
        let mut m = CoverageMap { scripts: 3, ..CoverageMap::default() };
        m.commands.insert("b".into(), CommandCov { has_spec: false, sites: 2, scripts: 3 });
        m.commands.insert("a".into(), CommandCov { has_spec: false, sites: 3, scripts: 2 });
        m.commands.insert("z".into(), CommandCov { has_spec: true, sites: 9, scripts: 3 });
        let ranked = m.missing_specs();
        assert_eq!(
            ranked.iter().map(|(n, _, s)| (*n, *s)).collect::<Vec<_>>(),
            vec![("a", 6), ("b", 6)],
        );
    }

    #[test]
    fn json_is_deterministic_under_insertion_order() {
        let mut fwd = CoverageMap::default();
        let mut rev = CoverageMap::default();
        for (m, names) in [(&mut fwd, ["a", "b", "c"]), (&mut rev, ["c", "b", "a"])] {
            for n in names {
                m.commands.insert(n.to_string(), CommandCov { has_spec: false, sites: 1, scripts: 1 });
                m.add_loss(LossCause::NoSpec, &format!("{n}:1"), 1);
            }
        }
        assert_eq!(fwd.to_json().to_text(), rev.to_json().to_text());
        assert_eq!(fwd.summary_json(5).to_text(), rev.summary_json(5).to_text());
    }
}
