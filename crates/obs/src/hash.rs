//! Zero-dependency content hashing for cache keys.
//!
//! The offline build rules out `sha2`/`blake3`; the JIT daemon's
//! content-addressed cache only needs collision resistance against
//! *accidental* collisions (the cache maps a key back to a verdict for
//! the analyzer's own inputs — there is no adversary who profits from
//! forging a key, since a forged hit only mis-answers the forger).
//! A 128-bit composite of two independent FNV-1a streams over the same
//! bytes keeps accidental collisions out of reach for any realistic
//! corpus while staying ~10 lines of arithmetic.

/// FNV-1a 64-bit with the standard offset basis and prime.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(0xcbf2_9ce4_8422_2325, bytes)
}

/// FNV-1a 64-bit from an explicit offset basis (used to derive the
/// second independent stream of [`content_hash128`]).
pub fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A 128-bit content hash rendered as 32 lowercase hex digits.
///
/// Two FNV-1a streams: the standard one, and one seeded by the
/// length-perturbed complement of the standard offset basis. The
/// length folding means two inputs that collide on both streams must
/// also agree on length, which removes the classic FNV
/// extension-collision family.
pub fn content_hash128(bytes: &[u8]) -> String {
    let a = fnv1a64(bytes);
    let seed = (!0xcbf2_9ce4_8422_2325u64).wrapping_add((bytes.len() as u64).rotate_left(17));
    let b = fnv1a64_seeded(seed, bytes);
    format!("{a:016x}{b:016x}")
}

/// Folds several labeled parts into one 128-bit hex key. Each part is
/// framed as `label '=' len ':' bytes ';'` before hashing, so part
/// boundaries cannot alias (`("ab","c")` never collides with
/// `("a","bc")`).
pub fn keyed_hash128(parts: &[(&str, &[u8])]) -> String {
    let mut buf = Vec::new();
    for (label, bytes) in parts {
        buf.extend_from_slice(label.as_bytes());
        buf.push(b'=');
        buf.extend_from_slice(bytes.len().to_string().as_bytes());
        buf.push(b':');
        buf.extend_from_slice(bytes);
        buf.push(b';');
    }
    content_hash128(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hash_is_stable_and_hex() {
        let h = content_hash128(b"STEAMROOT=x\n");
        assert_eq!(h.len(), 32);
        assert!(h.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(h, content_hash128(b"STEAMROOT=x\n"));
        assert_ne!(h, content_hash128(b"STEAMROOT=y\n"));
    }

    #[test]
    fn keyed_parts_do_not_alias() {
        let ab_c = keyed_hash128(&[("x", b"ab"), ("y", b"c")]);
        let a_bc = keyed_hash128(&[("x", b"a"), ("y", b"bc")]);
        assert_ne!(ab_c, a_bc);
        // Label participates too.
        assert_ne!(
            keyed_hash128(&[("x", b"a")]),
            keyed_hash128(&[("y", b"a")])
        );
    }
}
