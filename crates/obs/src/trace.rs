//! Request-scoped tracing: trace IDs, per-phase breakdowns, and a
//! bounded ring of completed traces.
//!
//! The JIT daemon turns the analyzer into a service, and a service
//! without per-request attribution is a black box: a frame enters the
//! socket, an answer leaves, and nobody can say whether the time went
//! to decoding, the cache, the parser, or symbolic execution. This
//! module is the measurement substrate:
//!
//! * **trace IDs** ([`mint_trace_id`]) — minted by the *client*,
//!   propagated in `shoal-jit/v1` frames, echoed back in the response,
//!   so one ID names the request on both sides of the socket.
//! * **phase accumulation** ([`begin`]/[`phase_add`]/[`phase_timer`]/
//!   [`end`]) — a thread-local accumulator active only while a request
//!   is being served. Instrumentation sites (the engine's parse /
//!   symexec / report phases, relang's decision procedures) charge
//!   time to named phases; when no trace is active every site costs
//!   one thread-local flag read and **no clock read** — the same
//!   zero-cost-when-disabled discipline as the recorder.
//! * **[`Trace`]** — one completed request: ID, endpoint, outcome,
//!   total duration, and the phase breakdown, with a deterministic
//!   text rendering (stable field order, no wall-clock timestamps —
//!   only the measured durations) and a JSON form for the JSONL
//!   export.
//! * **[`TraceRing`]** — a bounded in-memory ring of recent traces
//!   plus a retained worst-by-duration list (the slow-request log), so
//!   `shoal daemon top` can show *which* requests were slow and where
//!   their time went without unbounded memory.

use crate::json::Json;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Trace IDs

static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Mints a 16-hex-digit trace ID: unique per process (atomic sequence)
/// and across processes (pid + startup nanos folded in). Minting never
/// reads the clock after the first call.
pub fn mint_trace_id() -> String {
    use std::sync::OnceLock;
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        crate::hash::fnv1a64_seeded(std::process::id() as u64, &nanos.to_le_bytes())
    });
    let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
    format!("{:016x}", seed.rotate_left(17) ^ seq.wrapping_mul(0x9e3779b97f4a7c15))
}

// ---------------------------------------------------------------------------
// Thread-local phase accumulation

thread_local! {
    static TRACE_ACTIVE: Cell<bool> = const { Cell::new(false) };
    static TIMER_DEPTH: Cell<u32> = const { Cell::new(0) };
    static PHASES: RefCell<Vec<(&'static str, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Is a trace active on this thread? One thread-local read — the
/// entire disabled-path cost of every phase site.
#[inline]
pub fn active() -> bool {
    TRACE_ACTIVE.with(|a| a.get())
}

/// Starts accumulating phases on this thread (clears any stale state).
pub fn begin() {
    PHASES.with(|p| p.borrow_mut().clear());
    TIMER_DEPTH.with(|d| d.set(0));
    TRACE_ACTIVE.with(|a| a.set(true));
}

/// Stops accumulating and returns the phases charged since [`begin`],
/// in first-charge order with repeated charges to one name summed.
pub fn end() -> Vec<(&'static str, u64)> {
    TRACE_ACTIVE.with(|a| a.set(false));
    PHASES.with(|p| std::mem::take(&mut *p.borrow_mut()))
}

/// Charges `us` microseconds to `name` iff a trace is active. Sites
/// that already measure their own duration (the engine's per-phase
/// timers) use this — no extra clock read either way.
#[inline]
pub fn phase_add(name: &'static str, us: u64) {
    if active() {
        phase_add_slow(name, us);
    }
}

fn phase_add_slow(name: &'static str, us: u64) {
    PHASES.with(|p| {
        let mut phases = p.borrow_mut();
        if let Some(entry) = phases.iter_mut().find(|(n, _)| *n == name) {
            entry.1 = entry.1.saturating_add(us);
        } else {
            phases.push((name, us));
        }
    });
}

/// A guard charging its scope's duration to a phase on drop. Inert (no
/// clock read) when no trace is active, and inert when *nested* inside
/// another live timer — relang's decision procedures call one another,
/// and only the outermost call should charge the "relang" phase.
#[must_use = "a phase timer charges on drop; binding it to _ drops immediately"]
pub struct PhaseTimer {
    inner: Option<(&'static str, Instant)>,
}

/// Opens a phase timer; see [`PhaseTimer`].
#[inline]
pub fn phase_timer(name: &'static str) -> PhaseTimer {
    if !active() {
        return PhaseTimer { inner: None };
    }
    let nested = TIMER_DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth > 0
    });
    PhaseTimer {
        inner: if nested {
            None
        } else {
            Some((name, Instant::now()))
        },
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if active() {
            TIMER_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
        if let Some((name, start)) = self.inner.take() {
            phase_add(name, start.elapsed().as_micros() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Completed traces

/// One completed, measured request.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The client-minted (or server-assigned) trace ID.
    pub trace_id: String,
    /// Protocol endpoint served (`analyze`, `status`, `stats`, …).
    pub endpoint: String,
    /// Outcome within the endpoint's taxonomy (`hit`, `miss`,
    /// `parse-error`, `panic`, `bad-request`, `ok`).
    pub outcome: String,
    /// End-to-end server-side duration, microseconds.
    pub total_us: u64,
    /// Phase breakdown, in first-charge order. Phases measure distinct
    /// wall-time slices except where documented (relang time is a
    /// sub-slice of symexec).
    pub phases: Vec<(String, u64)>,
}

impl Trace {
    /// The JSONL-export object. Field order is stable; the only
    /// temporal fields are the measured durations.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str("trace".into())),
            ("trace_id".into(), Json::Str(self.trace_id.clone())),
            ("endpoint".into(), Json::Str(self.endpoint.clone())),
            ("outcome".into(), Json::Str(self.outcome.clone())),
            ("total_us".into(), Json::Num(self.total_us as f64)),
            (
                "phases".into(),
                Json::Obj(
                    self.phases
                        .iter()
                        .map(|(n, us)| (n.clone(), Json::Num(*us as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a trace from its [`Trace::to_json`] form (`None` on
    /// shape mismatch).
    pub fn from_json(json: &Json) -> Option<Trace> {
        if json.get("kind").and_then(Json::as_str) != Some("trace") {
            return None;
        }
        let phases = match json.get("phases")? {
            Json::Obj(fields) => fields
                .iter()
                .map(|(n, v)| v.as_u64().map(|us| (n.clone(), us)))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(Trace {
            trace_id: json.get("trace_id")?.as_str()?.to_string(),
            endpoint: json.get("endpoint")?.as_str()?.to_string(),
            outcome: json.get("outcome")?.as_str()?.to_string(),
            total_us: json.get("total_us")?.as_u64()?,
            phases,
        })
    }

    /// Deterministic human rendering: one header line, one aligned row
    /// per phase with its share of the total. No wall-clock timestamps
    /// — byte-stable for a given trace (golden-file pinned).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} {} outcome={} total={}µs",
            self.trace_id, self.endpoint, self.outcome, self.total_us
        );
        let width = self
            .phases
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max(5);
        for (name, us) in &self.phases {
            let share = if self.total_us == 0 {
                0.0
            } else {
                *us as f64 * 100.0 / self.total_us as f64
            };
            let _ = writeln!(out, "  {name:<width$}  {us:>9}µs  {share:>5.1}%");
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The trace ring

/// How many worst-by-duration traces the ring retains regardless of
/// age.
pub const SLOW_RETAIN: usize = 8;

/// A bounded ring of recent traces plus a retained slow-request log.
#[derive(Debug, Default)]
pub struct TraceRing {
    recent: VecDeque<Trace>,
    capacity: usize,
    slow: Vec<Trace>,
    /// Lifetime count of traces pushed (survives ring eviction).
    pushed: u64,
}

impl TraceRing {
    /// A ring keeping the last `capacity` traces (and the
    /// [`SLOW_RETAIN`] slowest ever, separately).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            recent: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            slow: Vec::with_capacity(SLOW_RETAIN),
            pushed: 0,
        }
    }

    /// Appends a completed trace, evicting the oldest past capacity
    /// and updating the slow log. O(capacity) worst case, O(1)
    /// amortized for fast requests.
    pub fn push(&mut self, trace: Trace) {
        self.pushed += 1;
        // Slow log: keep the SLOW_RETAIN largest by (total_us, then
        // earlier-wins on ties, for determinism).
        let slower_than_floor = self.slow.len() < SLOW_RETAIN
            || trace.total_us > self.slow.last().map(|t| t.total_us).unwrap_or(0);
        if slower_than_floor {
            let at = self
                .slow
                .iter()
                .position(|t| t.total_us < trace.total_us)
                .unwrap_or(self.slow.len());
            self.slow.insert(at, trace.clone());
            self.slow.truncate(SLOW_RETAIN);
        }
        if self.recent.len() == self.capacity {
            self.recent.pop_front();
        }
        self.recent.push_back(trace);
    }

    /// Lifetime number of traces pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &Trace> {
        self.recent.iter()
    }

    /// The up-to-`k` slowest traces seen, slowest first.
    pub fn slowest(&self, k: usize) -> &[Trace] {
        &self.slow[..k.min(self.slow.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = mint_trace_id();
            assert_eq!(id.len(), 16);
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
            assert!(seen.insert(id), "trace IDs must not repeat");
        }
    }

    #[test]
    fn phases_accumulate_only_while_active() {
        phase_add("ignored", 99); // no trace begun → dropped
        begin();
        phase_add("parse", 10);
        phase_add("symexec", 30);
        phase_add("parse", 5); // summed into the existing entry
        let phases = end();
        assert_eq!(phases, vec![("parse", 15), ("symexec", 30)]);
        // After end() the thread is inactive again.
        phase_add("late", 1);
        begin();
        assert_eq!(end(), vec![], "stale phases must not leak across begins");
    }

    #[test]
    fn nested_phase_timers_charge_only_the_outermost() {
        begin();
        {
            let _outer = phase_timer("relang");
            {
                let _inner = phase_timer("relang");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let phases = end();
        assert_eq!(phases.len(), 1, "one merged relang charge: {phases:?}");
        assert_eq!(phases[0].0, "relang");
        assert!(phases[0].1 >= 1_000, "outer timer spans the sleep");
        // Disabled path: no trace active → timer is inert.
        let _t = phase_timer("relang");
    }

    #[test]
    fn trace_json_round_trips() {
        let t = Trace {
            trace_id: "00f1e2d3c4b5a697".into(),
            endpoint: "analyze".into(),
            outcome: "miss".into(),
            total_us: 1234,
            phases: vec![("decode".into(), 12), ("parse".into(), 200)],
        };
        let json = Json::parse(&t.to_json().to_text()).unwrap();
        assert_eq!(Trace::from_json(&json), Some(t));
        assert_eq!(Trace::from_json(&Json::Obj(vec![])), None);
    }

    #[test]
    fn ring_bounds_memory_and_retains_slowest() {
        let mk = |id: u64, us: u64| Trace {
            trace_id: format!("{id:016x}"),
            endpoint: "analyze".into(),
            outcome: "miss".into(),
            total_us: us,
            phases: vec![],
        };
        let mut ring = TraceRing::new(4);
        // One early, very slow request, then a flood of fast ones.
        ring.push(mk(0, 900_000));
        for i in 1..100u64 {
            ring.push(mk(i, i));
        }
        assert_eq!(ring.recent().count(), 4, "ring stays bounded");
        assert_eq!(ring.pushed(), 100);
        let slow = ring.slowest(3);
        assert_eq!(slow.len(), 3);
        assert_eq!(
            slow[0].total_us, 900_000,
            "the early slow request survives ring eviction"
        );
        assert!(slow[0].total_us >= slow[1].total_us);
        assert!(slow[1].total_us >= slow[2].total_us);
    }

    #[test]
    fn render_is_deterministic_and_clock_free() {
        let t = Trace {
            trace_id: "deadbeef00000001".into(),
            endpoint: "analyze".into(),
            outcome: "miss".into(),
            total_us: 1000,
            phases: vec![("decode".into(), 10), ("symexec".into(), 700)],
        };
        let a = t.render_text();
        let b = t.render_text();
        assert_eq!(a, b);
        assert!(a.contains("total=1000µs"));
        assert!(a.contains("70.0%"));
    }
}
