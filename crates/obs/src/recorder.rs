//! The process-global event recorder.
//!
//! Instrumentation sites call [`crate::event!`] / [`crate::span!`]; both
//! check one relaxed atomic load and do nothing further while recording
//! is disabled, which keeps the engine's hot loops at their uninstrumented
//! speed by default. A CLI run with `--trace`/`--stats`/`--profile` calls
//! [`install`] up front and [`take_events`]/[`crate::snapshot`] at the
//! end.

use crate::json::Json;
use crate::metrics;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl Value {
    fn to_json(&self) -> Json {
        match self {
            Value::U64(v) => Json::Num(*v as f64),
            Value::I64(v) => Json::Num(*v as f64),
            Value::F64(v) => Json::Num(*v),
            Value::Bool(v) => Json::Bool(*v),
            Value::Str(v) => Json::Str(v.clone()),
        }
    }
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since [`install`].
    pub t_us: u64,
    /// Event kind: `fork`, `prune`, `cap_hit`, `span`, ….
    pub kind: &'static str,
    /// Arbitrary structured fields, in call-site order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Renders the event as one JSON object (one JSONL line).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("t_us".to_string(), Json::Num(self.t_us as f64)),
            ("kind".to_string(), Json::Str(self.kind.to_string())),
        ];
        for (k, v) in &self.fields {
            obj.push((k.to_string(), v.to_json()));
        }
        Json::Obj(obj)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<RecorderState> = Mutex::new(RecorderState {
    epoch: None,
    events: Vec::new(),
});

struct RecorderState {
    epoch: Option<Instant>,
    events: Vec<Event>,
}

/// Is recording enabled? One relaxed atomic load — this is the entire
/// disabled-path cost of every instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Has [`install`] been called (and not yet torn down by [`set_enabled(false)`])?
pub fn is_installed() -> bool {
    enabled()
}

/// Enables recording, clearing any previous events and metrics.
pub fn install() {
    let mut st = STATE.lock().unwrap();
    st.epoch = Some(Instant::now());
    st.events.clear();
    metrics::reset();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Flips recording without clearing collected data.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Appends an event (called by the [`crate::event!`] macro after the
/// enabled check; callers may also use it directly).
pub fn record_event(kind: &'static str, fields: Vec<(&'static str, Value)>) {
    let mut st = STATE.lock().unwrap();
    let t_us = st
        .epoch
        .map(|e| e.elapsed().as_micros() as u64)
        .unwrap_or(0);
    st.events.push(Event { t_us, kind, fields });
}

/// Drains and returns all recorded events.
pub fn take_events() -> Vec<Event> {
    std::mem::take(&mut STATE.lock().unwrap().events)
}

/// A guard for a timed span; see [`crate::span!`].
#[must_use = "a span guard records on drop; binding it to _ drops immediately"]
pub struct SpanGuard {
    inner: Option<(&'static str, Instant)>,
}

/// Opens a span. Inert (None inside, no clock read) while disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        inner: if enabled() {
            Some((name, Instant::now()))
        } else {
            None
        },
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.inner.take() {
            let us = start.elapsed().as_micros() as u64;
            metrics::hist_record_name(format!("span.{name}.us"), us);
            record_event(
                "span",
                vec![("name", Value::Str(name.to_string())), ("duration_us", Value::U64(us))],
            );
        }
    }
}

/// Serializes events as JSON Lines: one object per line.
pub fn trace_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        e.to_json().write(&mut out);
        out.push('\n');
    }
    out
}

/// Parses a JSONL trace back into loosely-typed JSON objects (used by
/// round-trip tests and trace tooling).
pub fn parse_jsonl(text: &str) -> Result<Vec<Json>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).map_err(|e| format!("bad JSONL line {l:?}: {e}")))
        .collect()
}
