//! A micro-benchmark harness replacing `criterion` in the offline build.
//!
//! Bench targets stay `harness = false` binaries: their `main` calls
//! [`bench`] per case and prints `name ... ns/iter` lines. Sampling is
//! simple — warm up, auto-scale the iteration count to a target sample
//! duration, take the median of several samples — which is plenty to
//! spot order-of-magnitude regressions (the acceptance bar for the
//! instrumentation in this workspace is "< 2% when disabled", measured
//! over many iterations).
//!
//! `SHOAL_BENCH_FAST=1` shrinks sampling for smoke runs in CI.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

fn fast_mode() -> bool {
    std::env::var("SHOAL_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Times one sample of `iters` runs of `f`, returning ns/iter.
fn sample<F: FnMut()>(iters: u64, f: &mut F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The result of one benchmark case.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    pub ns_per_iter: f64,
    pub spread_ns: f64,
    pub iters_per_sample: u64,
}

/// Measures `f` without printing (used by overhead-comparison tests).
pub fn measure<F: FnMut()>(mut f: F) -> Measurement {
    let (target, samples) = if fast_mode() {
        (Duration::from_millis(10), 3)
    } else {
        (Duration::from_millis(60), 7)
    };
    // Warm-up and iteration scaling: grow until one sample ≥ target.
    let mut iters = 1u64;
    loop {
        let ns = sample(iters, &mut f);
        if ns * iters as f64 >= target.as_nanos() as f64 || iters >= 1 << 30 {
            break;
        }
        iters = (iters * 2).max((target.as_nanos() as f64 / ns.max(1.0)) as u64);
    }
    let mut runs: Vec<f64> = (0..samples).map(|_| sample(iters, &mut f)).collect();
    runs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = runs[runs.len() / 2];
    Measurement {
        ns_per_iter: median,
        spread_ns: runs[runs.len() - 1] - runs[0],
        iters_per_sample: iters,
    }
}

/// Runs and reports one benchmark case.
pub fn bench<F: FnMut()>(name: &str, f: F) -> Measurement {
    let m = measure(f);
    println!(
        "{name:<44} {:>12.1} ns/iter (±{:.1}, {} iters/sample)",
        m.ns_per_iter, m.spread_ns, m.iters_per_sample
    );
    m
}

/// Prints the standard header for a bench binary.
pub fn header(group: &str) {
    println!("== bench: {group} ==");
}
