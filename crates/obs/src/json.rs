//! A minimal JSON value, writer, and parser.
//!
//! The offline build rules out `serde`; traces and stats only need the
//! subset of JSON below (no surrogate-pair escapes on output — event
//! fields are produced by this codebase and are valid UTF-8).

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (duplicate keys are preserved as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0 && n.fract() == 0.0).map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes (compactly, no whitespace) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    pub fn to_text(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected , or ] in array, got {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected : after object key at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    other => return Err(format!("expected , or }} in object, got {other:?}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("expected {lit} at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("dangling escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        // No surrogate-pair recombination: the writer never
                        // emits surrogates, and lone ones map to U+FFFD.
                        let ch = char::from_u32(cp).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}
