//! A zero-dependency work-stealing thread pool for embarrassingly
//! parallel, order-preserving maps.
//!
//! [`map_indexed`] fans a fixed slice of independent tasks out over `N`
//! worker threads and returns the results **in input order**, so callers
//! that sort their inputs first (the scan driver sorts script paths)
//! produce byte-identical output at any parallelism level.
//!
//! Design notes:
//! * Scoped threads (`std::thread::scope`) — borrows the input slice and
//!   closure directly; no `'static` bounds, no channels.
//! * One `Mutex<VecDeque<usize>>` of task indices per worker, seeded in
//!   contiguous blocks. A worker pops from the *front* of its own queue
//!   and steals from the *back* of the busiest sibling, so stolen work
//!   is the work its owner would reach last.
//! * No task spawns further tasks, so "every queue empty" is a correct
//!   termination condition (in-flight tasks only *finish*; they never
//!   enqueue).
//! * Metrics: `pool.tasks` and `pool.steals` counters via [`crate::metrics`].
//!
//! Panic policy: the closure is expected to contain its own panics (the
//! scan driver wraps every script in `catch_unwind`). If a task panics
//! anyway, the scope propagates the panic after all threads finish —
//! fail loud rather than return a hole-y result vector.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Best-effort available hardware parallelism (1 if unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every element of `items` using up to `jobs` worker
/// threads and returns the results in input order.
///
/// `jobs <= 1` (or a single-element input) runs inline on the calling
/// thread with no pool at all, so the sequential path stays allocation-
/// and thread-free.
pub fn map_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Seed per-worker queues with contiguous blocks of indices: block
    // assignment keeps a worker's own work cache-adjacent and makes the
    // steal victim's *back* the work farthest from its current position.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| {
            Mutex::new(
                (0..items.len())
                    .filter(|i| i * jobs / items.len() == w)
                    .collect(),
            )
        })
        .collect();

    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..jobs {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                let mut steals = 0u64;
                let mut done = 0u64;
                loop {
                    // Own queue first (front), then steal (back).
                    let task = {
                        let own = queues[me]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .pop_front();
                        match own {
                            Some(i) => Some(i),
                            None => steal(queues, me).inspect(|_| steals += 1),
                        }
                    };
                    let Some(i) = task else { break };
                    let result = f(i, &items[i]);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                    done += 1;
                }
                if done > 0 {
                    crate::counter_add("pool.tasks", done);
                }
                if steals > 0 {
                    crate::counter_add("pool.steals", steals);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("pool invariant: every seeded task index ran exactly once")
        })
        .collect()
}

// ---------------------------------------------------------------------
// Persistent pool (the JIT daemon's request executor)
// ---------------------------------------------------------------------

/// A boxed unit of work for [`TaskPool`].
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct TaskPoolShared {
    /// One queue per worker; submissions round-robin, idle workers
    /// steal from the back of the fullest sibling (same discipline as
    /// [`map_indexed`]).
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep/wake coordination: `idle` guards nothing but pairs with
    /// the condvar; workers re-scan all queues after every wake.
    idle: Mutex<bool>,
    wake: std::sync::Condvar,
    shutdown: std::sync::atomic::AtomicBool,
}

/// A persistent work-stealing thread pool for dynamically arriving
/// tasks — the long-lived sibling of [`map_indexed`] (which fans out a
/// fixed batch and joins). The JIT daemon submits one job per accepted
/// connection; worker threads live for the pool's lifetime.
///
/// Dropping the pool signals shutdown, wakes every worker, and joins
/// them; jobs already queued are still drained first, so a daemon that
/// stops with requests in flight answers all of them.
pub struct TaskPool {
    shared: std::sync::Arc<TaskPoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next: std::sync::atomic::AtomicUsize,
}

impl TaskPool {
    /// Spawns a pool with `jobs` worker threads (`0` = available
    /// parallelism, minimum 1).
    pub fn new(jobs: usize) -> TaskPool {
        let jobs = if jobs == 0 {
            available_parallelism()
        } else {
            jobs
        }
        .max(1);
        let shared = std::sync::Arc::new(TaskPoolShared {
            queues: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(false),
            wake: std::sync::Condvar::new(),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        });
        let workers = (0..jobs)
            .map(|me| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, me))
            })
            .collect();
        TaskPool {
            shared,
            workers,
            next: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Enqueues one job (round-robin over worker queues) and wakes a
    /// worker. Jobs submitted after shutdown began are silently
    /// dropped (the daemon only shuts down after it stops accepting).
    pub fn submit(&self, job: Job) {
        if self.shared.shutdown.load(std::sync::atomic::Ordering::Acquire) {
            return;
        }
        let w = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            % self.shared.queues.len();
        self.shared.queues[w]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        crate::counter_add("pool.tasks", 1);
        let _guard = self.shared.idle.lock().unwrap_or_else(|e| e.into_inner());
        self.shared.wake.notify_one();
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shared
            .shutdown
            .store(true, std::sync::atomic::Ordering::Release);
        {
            let _guard = self.shared.idle.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.wake.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &TaskPoolShared, me: usize) {
    loop {
        // Own queue first, then steal from the fullest sibling.
        let job = {
            let own = shared.queues[me]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            match own {
                Some(j) => Some(j),
                None => steal_job(&shared.queues, me).inspect(|_| {
                    crate::counter_add("pool.steals", 1);
                }),
            }
        };
        match job {
            Some(job) => job(),
            None => {
                if shared.shutdown.load(std::sync::atomic::Ordering::Acquire) {
                    return;
                }
                // Park until a submit or shutdown; the timeout guards
                // against a lost wakeup racing the empty-queue scan.
                let guard = shared.idle.lock().unwrap_or_else(|e| e.into_inner());
                let _ = shared
                    .wake
                    .wait_timeout(guard, std::time::Duration::from_millis(50));
            }
        }
    }
}

/// Steals one job from the sibling with the longest queue.
fn steal_job(queues: &[Mutex<VecDeque<Job>>], me: usize) -> Option<Job> {
    let mut best: Option<(usize, usize)> = None;
    for (w, q) in queues.iter().enumerate() {
        if w == me {
            continue;
        }
        let len = q.lock().unwrap_or_else(|e| e.into_inner()).len();
        if len > 0 && best.map(|(_, l)| len > l).unwrap_or(true) {
            best = Some((w, len));
        }
    }
    let (victim, _) = best?;
    queues[victim]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_back()
}

/// Steals one task from the sibling with the longest queue.
fn steal(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    // Pick the currently longest victim queue so repeated steals spread
    // the remaining work instead of draining one neighbor.
    let mut best: Option<(usize, usize)> = None;
    for (w, q) in queues.iter().enumerate() {
        if w == me {
            continue;
        }
        let len = q.lock().unwrap_or_else(|e| e.into_inner()).len();
        if len > 0 && best.map(|(_, l)| len > l).unwrap_or(true) {
            best = Some((w, len));
        }
    }
    let (victim, _) = best?;
    queues[victim]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = map_indexed(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let out = map_indexed(4, &items, |_, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out, items);
    }

    #[test]
    fn sequential_and_degenerate_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_indexed(8, &empty, |_, &x| x).is_empty());
        let one = [42u8];
        assert_eq!(map_indexed(8, &one, |_, &x| x), vec![42]);
        let items: Vec<u8> = (0..10).collect();
        assert_eq!(map_indexed(1, &items, |_, &x| x), items);
        assert_eq!(map_indexed(0, &items, |_, &x| x), items);
    }

    #[test]
    fn task_pool_runs_every_submitted_job() {
        let pool = TaskPool::new(4);
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let c = std::sync::Arc::clone(&counter);
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        drop(pool); // joins workers; queued jobs drain first
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn task_pool_drains_queue_on_drop_even_with_slow_jobs() {
        let pool = TaskPool::new(2);
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let c = std::sync::Arc::clone(&counter);
            pool.submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn parallel_equals_sequential_with_uneven_work() {
        let items: Vec<u64> = (0..64).collect();
        let work = |_: usize, &x: &u64| {
            // Uneven spin so stealing actually happens.
            let mut acc = x;
            for _ in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        };
        let seq = map_indexed(1, &items, work);
        let par = map_indexed(8, &items, work);
        assert_eq!(seq, par);
    }
}
