//! A zero-dependency work-stealing thread pool for embarrassingly
//! parallel, order-preserving maps.
//!
//! [`map_indexed`] fans a fixed slice of independent tasks out over `N`
//! worker threads and returns the results **in input order**, so callers
//! that sort their inputs first (the scan driver sorts script paths)
//! produce byte-identical output at any parallelism level.
//!
//! Design notes:
//! * Scoped threads (`std::thread::scope`) — borrows the input slice and
//!   closure directly; no `'static` bounds, no channels.
//! * One `Mutex<VecDeque<usize>>` of task indices per worker, seeded in
//!   contiguous blocks. A worker pops from the *front* of its own queue
//!   and steals from the *back* of the busiest sibling, so stolen work
//!   is the work its owner would reach last.
//! * No task spawns further tasks, so "every queue empty" is a correct
//!   termination condition (in-flight tasks only *finish*; they never
//!   enqueue).
//! * Metrics: `pool.tasks` and `pool.steals` counters via [`crate::metrics`].
//!
//! Panic policy: the closure is expected to contain its own panics (the
//! scan driver wraps every script in `catch_unwind`). If a task panics
//! anyway, the scope propagates the panic after all threads finish —
//! fail loud rather than return a hole-y result vector.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Best-effort available hardware parallelism (1 if unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every element of `items` using up to `jobs` worker
/// threads and returns the results in input order.
///
/// `jobs <= 1` (or a single-element input) runs inline on the calling
/// thread with no pool at all, so the sequential path stays allocation-
/// and thread-free.
pub fn map_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Seed per-worker queues with contiguous blocks of indices: block
    // assignment keeps a worker's own work cache-adjacent and makes the
    // steal victim's *back* the work farthest from its current position.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| {
            Mutex::new(
                (0..items.len())
                    .filter(|i| i * jobs / items.len() == w)
                    .collect(),
            )
        })
        .collect();

    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..jobs {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                let mut steals = 0u64;
                let mut done = 0u64;
                loop {
                    // Own queue first (front), then steal (back).
                    let task = {
                        let own = queues[me]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .pop_front();
                        match own {
                            Some(i) => Some(i),
                            None => steal(queues, me).inspect(|_| steals += 1),
                        }
                    };
                    let Some(i) = task else { break };
                    let result = f(i, &items[i]);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                    done += 1;
                }
                if done > 0 {
                    crate::counter_add("pool.tasks", done);
                }
                if steals > 0 {
                    crate::counter_add("pool.steals", steals);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("pool invariant: every seeded task index ran exactly once")
        })
        .collect()
}

/// Steals one task from the sibling with the longest queue.
fn steal(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    // Pick the currently longest victim queue so repeated steals spread
    // the remaining work instead of draining one neighbor.
    let mut best: Option<(usize, usize)> = None;
    for (w, q) in queues.iter().enumerate() {
        if w == me {
            continue;
        }
        let len = q.lock().unwrap_or_else(|e| e.into_inner()).len();
        if len > 0 && best.map(|(_, l)| len > l).unwrap_or(true) {
            best = Some((w, len));
        }
    }
    let (victim, _) = best?;
    queues[victim]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = map_indexed(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let out = map_indexed(4, &items, |_, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out, items);
    }

    #[test]
    fn sequential_and_degenerate_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_indexed(8, &empty, |_, &x| x).is_empty());
        let one = [42u8];
        assert_eq!(map_indexed(8, &one, |_, &x| x), vec![42]);
        let items: Vec<u8> = (0..10).collect();
        assert_eq!(map_indexed(1, &items, |_, &x| x), items);
        assert_eq!(map_indexed(0, &items, |_, &x| x), items);
    }

    #[test]
    fn parallel_equals_sequential_with_uneven_work() {
        let items: Vec<u64> = (0..64).collect();
        let work = |_: usize, &x: &u64| {
            // Uneven spin so stealing actually happens.
            let mut acc = x;
            for _ in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        };
        let seq = map_indexed(1, &items, work);
        let par = map_indexed(8, &items, work);
        assert_eq!(seq, par);
    }
}
