//! Failpoints: deliberate fault injection for robustness tests.
//!
//! A failpoint is a named site in the analyzer (`engine::fork`,
//! `scan::analyze`, …) that normally does nothing. Tests — and the
//! `SHOAL_FAILPOINTS` environment variable — can arm a site with an
//! action, proving that every degradation path in the pipeline actually
//! degrades instead of being dead code:
//!
//! ```text
//! SHOAL_FAILPOINTS='engine::fork=panic' shoal scan corpus/
//! SHOAL_FAILPOINTS='engine::fork=panic@fig3,scan::analyze=sleep(50)'
//! ```
//!
//! The spec grammar is `name=action[@filter]`, comma-separated. Actions:
//!
//! * `panic` — panic at the site (exercises `catch_unwind` isolation);
//! * `sleep(MS)` — stall for `MS` milliseconds (exercises deadlines).
//!
//! The optional `@filter` arms the site only while the *context*
//! (a thread-local label, set by drivers per work unit — e.g. the
//! script path in `shoal scan`) contains the filter substring. This is
//! how a batch test makes exactly one script fail.
//!
//! Like the recorder, a disarmed failpoint costs one relaxed atomic
//! load; the site never allocates or locks unless some failpoint is
//! armed process-wide.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What an armed failpoint does when hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Panic with a recognizable message.
    Panic,
    /// Sleep for this many milliseconds.
    SleepMs(u64),
}

/// One armed site.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Failpoint {
    name: String,
    action: Action,
    /// Substring the thread-local context must contain, if any.
    filter: Option<String>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static CONFIG: Mutex<Vec<Failpoint>> = Mutex::new(Vec::new());

thread_local! {
    /// Current work-unit label (e.g. the script path under scan).
    static CONTEXT: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Is any failpoint armed process-wide? One relaxed atomic load.
#[inline]
pub fn active() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms failpoints from a spec string (`name=action[@filter],...`).
/// Replaces the previous configuration.
///
/// # Errors
///
/// Returns a description of the first malformed entry.
pub fn configure(spec: &str) -> Result<(), String> {
    let mut points = Vec::new();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (name, rhs) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint {entry:?}: expected NAME=ACTION"))?;
        let (action_text, filter) = match rhs.split_once('@') {
            Some((a, f)) => (a, Some(f.to_string())),
            None => (rhs, None),
        };
        let action = if action_text == "panic" {
            Action::Panic
        } else if let Some(ms) = action_text
            .strip_prefix("sleep(")
            .and_then(|s| s.strip_suffix(')'))
        {
            Action::SleepMs(
                ms.parse()
                    .map_err(|_| format!("failpoint {entry:?}: bad sleep millis {ms:?}"))?,
            )
        } else {
            return Err(format!(
                "failpoint {entry:?}: unknown action {action_text:?} (panic | sleep(MS))"
            ));
        };
        points.push(Failpoint {
            name: name.trim().to_string(),
            action,
            filter,
        });
    }
    let armed = !points.is_empty();
    *CONFIG.lock().unwrap_or_else(|e| e.into_inner()) = points;
    ARMED.store(armed, Ordering::Relaxed);
    Ok(())
}

/// Arms failpoints from `SHOAL_FAILPOINTS`, if set. Malformed specs are
/// reported on stderr rather than ignored silently.
pub fn init_from_env() {
    if let Ok(spec) = std::env::var("SHOAL_FAILPOINTS") {
        if let Err(e) = configure(&spec) {
            eprintln!("shoal: SHOAL_FAILPOINTS: {e}");
        }
    }
}

/// Disarms all failpoints.
pub fn clear() {
    CONFIG.lock().unwrap_or_else(|e| e.into_inner()).clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Sets the thread-local context label matched by `@filter` specs.
pub fn set_context(ctx: &str) {
    CONTEXT.with(|c| *c.borrow_mut() = ctx.to_string());
}

/// Is `name` armed for the current context? A non-firing query for
/// sites whose fault action is structural (e.g. "truncate this
/// response frame") rather than panic/sleep — the caller asks, then
/// performs the corruption itself. Same cost model as [`hit`]: one
/// relaxed load when nothing is armed.
pub fn armed(name: &str) -> bool {
    if !active() {
        return false;
    }
    let config = CONFIG.lock().unwrap_or_else(|e| e.into_inner());
    config.iter().any(|f| {
        f.name == name
            && match &f.filter {
                None => true,
                Some(needle) => CONTEXT.with(|c| c.borrow().contains(needle.as_str())),
            }
    })
}

/// Fires the failpoint `name` if armed (and its filter matches the
/// current context). Panics when the armed action is `panic` — callers
/// that must survive wrap the work in `catch_unwind`.
pub fn hit(name: &str) {
    if !active() {
        return;
    }
    let action = {
        let config = CONFIG.lock().unwrap_or_else(|e| e.into_inner());
        let ctx_match = |f: &Failpoint| match &f.filter {
            None => true,
            Some(needle) => CONTEXT.with(|c| c.borrow().contains(needle.as_str())),
        };
        config
            .iter()
            .find(|f| f.name == name && ctx_match(f))
            .map(|f| f.action.clone())
    };
    match action {
        None => {}
        Some(Action::Panic) => panic!("failpoint {name} triggered"),
        Some(Action::SleepMs(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoint state is process-global; these tests run under one lock
    // and restore the disarmed state before returning.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_is_free_and_inert() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        assert!(!active());
        hit("engine::fork"); // must not panic
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(configure("no-equals-sign").is_err());
        assert!(configure("x=explode").is_err());
        assert!(configure("x=sleep(abc)").is_err());
    }

    #[test]
    fn panic_action_fires_and_filter_gates() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        configure("engine::fork=panic@fig3").expect("valid spec");
        set_context("corpus/fig1.sh");
        hit("engine::fork"); // filter does not match: inert
        set_context("corpus/fig3.sh");
        let r = std::panic::catch_unwind(|| hit("engine::fork"));
        clear();
        set_context("");
        assert!(r.is_err(), "armed failpoint with matching filter must fire");
    }

    #[test]
    fn armed_queries_without_firing() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        assert!(!armed("daemon::truncate-response"));
        configure("daemon::truncate-response=panic@figX").expect("valid spec");
        set_context("corpus/other.sh");
        assert!(!armed("daemon::truncate-response"), "filter must gate");
        set_context("corpus/figX.sh");
        // `armed` reports without executing the action (no panic here).
        assert!(armed("daemon::truncate-response"));
        clear();
        set_context("");
        assert!(!armed("daemon::truncate-response"));
    }

    #[test]
    fn sleep_action_parses() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        configure("scan::analyze=sleep(1)").expect("valid spec");
        let t = std::time::Instant::now();
        set_context("");
        hit("scan::analyze");
        clear();
        assert!(t.elapsed() >= std::time::Duration::from_millis(1));
    }
}
