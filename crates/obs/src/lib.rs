//! Zero-dependency observability for the shoal analysis pipeline.
//!
//! The paper's engine explores many symbolic executions; this crate makes
//! that exploration *visible* without making it slower. Three layers:
//!
//! * **spans and events** ([`recorder`]) — structured records (`fork`,
//!   `prune`, `cap_hit`, timed spans) collected into a process-global
//!   recorder. When recording is disabled (the default) every
//!   instrumentation site costs one relaxed atomic load and constructs
//!   nothing.
//! * **metrics** ([`metrics`]) — named counters, high-watermark gauges,
//!   and power-of-two-bucket histograms, snapshotted for the `--stats`
//!   table or JSONL export.
//! * **request tracing** ([`trace`], [`hist`]) — client-minted trace
//!   IDs, thread-local per-phase accounting, a bounded ring of
//!   completed request traces, and log-bucketed latency histograms
//!   with exact percentile extraction — the daemon's telemetry plane.
//! * **audit** ([`audit`]) — mergeable, byte-deterministic coverage
//!   maps and a typed precision-loss taxonomy: which commands lack
//!   specs, which checkers fired, and where the analysis degraded to ⊤
//!   and why — the fleet precision-health plane.
//! * **export** ([`json`], [`stats`]) — a hand-rolled JSON writer/parser
//!   (the build environment has no registry access, so no `serde`) and a
//!   human-readable table renderer.
//!
//! The crate also hosts the tiny in-repo stand-ins for the external dev
//! tools the offline build cannot fetch: [`rng`] (xorshift64* instead of
//! `rand`), [`prop`] (a seeded property-test harness instead of
//! `proptest`), and [`bench`] (a ns/iter micro-benchmark harness instead
//! of `criterion`) — plus the shared performance infrastructure the
//! pipeline crates build on: [`share`] (copy-on-write and persistent
//! containers for O(1) symbolic-state forks, instead of `im`) and
//! [`pool`] (a work-stealing scoped thread pool for the parallel scan
//! driver, instead of `rayon`).

pub mod audit;
pub mod bench;
pub mod failpoint;
pub mod frame;
pub mod hash;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod prop;
pub mod recorder;
pub mod rng;
pub mod share;
pub mod stats;
pub mod trace;

pub use audit::{CheckerCov, CommandCov, CoverageMap, LossCause};
pub use hist::LogHistogram;
pub use metrics::{counter_add, gauge_max, hist_record, snapshot, MetricsSnapshot};
pub use trace::{Trace, TraceRing};
pub use recorder::{
    enabled, install, is_installed, parse_jsonl, record_event, set_enabled, span, take_events,
    trace_to_jsonl, Event, SpanGuard, Value,
};
pub use rng::XorShift64;
pub use share::{CowList, CowMap, CowVec, Pmap};

/// Records a structured event iff recording is enabled.
///
/// ```
/// shoal_obs::event!("fork", site = "exec_if", live = 3u64);
/// ```
///
/// Field values are converted with [`Value::from`]; when the recorder is
/// disabled the field expressions are **not evaluated**, so call sites
/// may format freely.
#[macro_export]
macro_rules! event {
    ($kind:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::record_event(
                $kind,
                vec![$((stringify!($key), $crate::Value::from($val))),*],
            );
        }
    };
}

/// Fires a failpoint iff one is armed for this site (fault injection for
/// robustness tests; see [`failpoint`]). Disarmed cost: one relaxed
/// atomic load.
///
/// ```
/// shoal_obs::failpoint!("engine::fork");
/// ```
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        if $crate::failpoint::active() {
            $crate::failpoint::hit($name);
        }
    };
}

/// Opens a timed span; the returned guard records a `span` event (with
/// `duration_us`) and a duration histogram sample when dropped. Inert
/// (no clock read) while recording is disabled.
///
/// ```
/// let _g = shoal_obs::span!("exec_items");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}
