//! A small seeded property-test harness replacing `proptest` in the
//! offline build.
//!
//! No shrinking — instead every case's seed is derived deterministically
//! from the suite name and case index, and a failure message prints the
//! reproduction environment variables:
//!
//! ```text
//! SHOAL_PROP_SEED=0x1234abcd cargo test -p shoal-relang backends_agree
//! ```
//!
//! `SHOAL_PROP_CASES` scales the case count globally (CI can crank it
//! up; `SHOAL_PROP_CASES=10` smoke-tests quickly).

use crate::rng::{splitmix64, XorShift64};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A source of random test data, handed to each property case.
pub struct Gen {
    rng: XorShift64,
}

impl Gen {
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: XorShift64::seed_from_u64(seed),
        }
    }

    /// Uniform in `[range.start, range.end)`.
    pub fn usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.rng.random_range(range)
    }

    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// `true` with probability `p`.
    pub fn ratio(&mut self, p: f64) -> bool {
        self.rng.random_bool(p)
    }

    /// A uniform element of `xs`.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        self.rng.choose(xs)
    }

    /// An index into `weights`, chosen proportionally (replaces
    /// `prop_oneof!` weighting).
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "all weights zero");
        let mut roll = self.rng.next_u64() % total;
        for (i, &w) in weights.iter().enumerate() {
            if roll < w as u64 {
                return i;
            }
            roll -= w as u64;
        }
        weights.len() - 1
    }

    /// A string of `len ∈ range` chars drawn from `alphabet`.
    pub fn string_of(&mut self, alphabet: &str, range: std::ops::Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let n = self.usize(range);
        (0..n).map(|_| *self.pick(&chars)).collect()
    }

    /// A vector of `len ∈ range` elements built by `f`.
    pub fn vec_of<T>(
        &mut self,
        range: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize(range);
        (0..n).map(|_| f(self)).collect()
    }

    /// A random subsequence of `xs` (each element kept with p=1/2).
    pub fn subsequence<T: Clone>(&mut self, xs: &[T]) -> Vec<T> {
        xs.iter().filter(|_| self.bool()).cloned().collect()
    }

    /// `Some(f(g))` with probability `p`.
    pub fn option<T>(&mut self, p: f64, f: impl FnOnce(&mut Gen) -> T) -> Option<T> {
        if self.ratio(p) {
            Some(f(self))
        } else {
            None
        }
    }
}

fn case_count(default: u32) -> u32 {
    std::env::var("SHOAL_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_seed(text: &str) -> Option<u64> {
    let t = text.trim();
    t.strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .or_else(|| t.parse().ok())
}

/// Runs `property` against `cases` deterministic seeds. Panics (failing
/// the enclosing `#[test]`) on the first failing case, printing a
/// `SHOAL_PROP_SEED` reproduction line.
pub fn run_cases(name: &str, cases: u32, property: impl Fn(&mut Gen)) {
    // Explicit seed: reproduce exactly one case.
    if let Some(seed) = std::env::var("SHOAL_PROP_SEED").ok().and_then(|v| parse_seed(&v)) {
        let mut g = Gen::from_seed(seed);
        property(&mut g);
        return;
    }
    let base = splitmix64(name.bytes().fold(0u64, |h, b| {
        splitmix64(h ^ b as u64)
    }));
    for i in 0..case_count(cases) {
        let seed = splitmix64(base ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen::from_seed(seed);
            property(&mut g);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property {name} failed on case {i}/{cases}: {msg}\n\
                 reproduce with: SHOAL_PROP_SEED=0x{seed:x} cargo test {name}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0u32;
        let counter = std::sync::Mutex::new(&mut n);
        run_cases("smoke", 16, |g| {
            let x = g.usize(0..100);
            assert!(x < 100);
            **counter.lock().unwrap() += 1;
        });
        assert_eq!(n, 16);
    }

    #[test]
    fn failing_property_reports_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_cases("always-fails", 4, |_| panic!("boom"));
        }));
        let msg = match result {
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("SHOAL_PROP_SEED=0x"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let mut g = Gen::from_seed(9);
        for _ in 0..200 {
            let i = g.weighted(&[0, 3, 1]);
            assert!(i == 1 || i == 2);
        }
    }
}
