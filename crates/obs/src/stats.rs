//! Human-readable rendering of metric snapshots for `--stats`.

use crate::metrics::MetricsSnapshot;

/// Renders aligned `key  value` rows under a title.
pub fn render_table(title: &str, rows: &[(String, String)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        out.push_str(&format!("  {k:<width$}  {v}\n"));
    }
    out
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2} s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

/// Renders the full `--stats` view of a snapshot: counters, gauges, and
/// histogram summaries (count / mean / p50 / p99 / max).
pub fn render_snapshot(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        let rows: Vec<(String, String)> = snap
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        out.push_str(&render_table("counters", &rows));
    }
    if !snap.gauges.is_empty() {
        let rows: Vec<(String, String)> = snap
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        out.push_str(&render_table("gauges (high-water marks)", &rows));
    }
    if !snap.histograms.is_empty() {
        let rows: Vec<(String, String)> = snap
            .histograms
            .iter()
            .map(|(k, h)| {
                let summary = if k.ends_with("us") || k.ends_with(".us") {
                    format!(
                        "n={} mean={} p50={} p99={} max={}",
                        h.count,
                        fmt_us(h.mean() as u64),
                        fmt_us(h.quantile(0.5)),
                        fmt_us(h.quantile(0.99)),
                        fmt_us(h.max),
                    )
                } else {
                    format!(
                        "n={} mean={:.1} p50={} p99={} max={}",
                        h.count,
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.99),
                        h.max,
                    )
                };
                (k.clone(), summary)
            })
            .collect();
        out.push_str(&render_table("histograms", &rows));
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}
