//! Named counters, high-watermark gauges, and power-of-two-bucket
//! histograms.
//!
//! All helpers early-return on the recorder's disabled flag, so the
//! instrumented hot paths (regex operations, monitor lines, fixpoint
//! iterations) cost one relaxed atomic load when observability is off.
//! When on, each update takes the global mutex — acceptable for
//! profiling runs, which are explicitly opt-in.

use crate::recorder::enabled;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// log2 bucket count: values up to 2^63 land in the last bucket.
pub const BUCKETS: usize = 64;

/// An exponential (power-of-two) histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }
}

impl Histogram {
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let bucket = (64 - v.leading_zeros()) as usize; // v=0 → 0, 1 → 1, 2..3 → 2, …
        self.buckets[bucket.min(BUCKETS - 1)] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile from the bucket midpoints (upper bound of the
    /// containing bucket) — good enough for order-of-magnitude profiling.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 0 } else { (1u64 << i).saturating_sub(1) };
            }
        }
        self.max
    }
}

#[derive(Default)]
struct Store {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

static STORE: Mutex<Option<Store>> = Mutex::new(None);

fn with_store(f: impl FnOnce(&mut Store)) {
    let mut guard = STORE.lock().unwrap();
    f(guard.get_or_insert_with(Store::default));
}

/// Clears all metrics (called by [`crate::install`]).
pub fn reset() {
    *STORE.lock().unwrap() = None;
}

/// Adds to a named counter. No-op while recording is disabled.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if enabled() {
        with_store(|s| *s.counters.entry(name.to_string()).or_insert(0) += n);
    }
}

/// Raises a named high-watermark gauge. No-op while disabled.
#[inline]
pub fn gauge_max(name: &'static str, v: u64) {
    if enabled() {
        with_store(|s| {
            let g = s.gauges.entry(name.to_string()).or_insert(0);
            *g = (*g).max(v);
        });
    }
}

/// Records a histogram sample. No-op while disabled.
#[inline]
pub fn hist_record(name: &'static str, v: u64) {
    if enabled() {
        hist_record_name(name.to_string(), v);
    }
}

/// Like [`hist_record`] for dynamically-built names (callers must have
/// checked `enabled()` or accept the allocation).
pub fn hist_record_name(name: String, v: u64) {
    with_store(|s| s.histograms.entry(name).or_default().record(v));
}

/// A point-in-time copy of every metric.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The value of a named counter, if it was ever touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of a named high-watermark gauge, if it was ever raised.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The histogram recorded under `name`, if any samples exist.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

/// Snapshots all metrics without clearing them.
pub fn snapshot() -> MetricsSnapshot {
    let guard = STORE.lock().unwrap();
    match guard.as_ref() {
        None => MetricsSnapshot::default(),
        Some(s) => MetricsSnapshot {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            histograms: s.histograms.clone(),
        },
    }
}
