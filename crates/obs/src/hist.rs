//! Log-bucketed latency histograms with exact percentile extraction.
//!
//! The power-of-two [`crate::metrics::Histogram`] answers "what order
//! of magnitude" — good enough for profiling tables, useless for a
//! latency SLO: between 1 ms and 2 ms it has exactly one bucket, so
//! p50 and p99 collapse. [`LogHistogram`] keeps the log-scale range
//! (values up to 2^63 fit) but splits every octave into
//! [`SUB_BUCKETS`] linear sub-buckets, bounding the relative
//! quantization error at 1/[`SUB_BUCKETS`] (6.25%) while the whole
//! table stays a flat 8 KiB array — no allocation per sample, O(1)
//! record, mergeable across threads by bucket-wise addition.
//!
//! "Exact" percentile extraction means: `percentile(q)` returns the
//! upper bound of the bucket containing the sample of rank
//! `ceil(q * count)` — a value `v` such that at least `q` of the
//! recorded samples are ≤ `v`, and `v` exceeds the true rank-`q`
//! sample by at most one sub-bucket width. Values below
//! [`SUB_BUCKETS`] are represented exactly (their bucket is a single
//! integer wide), which the unit tests exploit.

use crate::json::Json;

/// Linear sub-buckets per power-of-two octave. 16 sub-buckets bound
/// the relative error of any reported quantile at 6.25%.
pub const SUB_BUCKETS: usize = 16;

/// log2 of [`SUB_BUCKETS`].
const SUB_SHIFT: u32 = SUB_BUCKETS.trailing_zeros();

/// Total bucket count: the direct run for values < [`SUB_BUCKETS`]
/// plus one linear run per sub-bucketed octave (msb positions
/// [`SUB_SHIFT`]..=63 → 64 − [`SUB_SHIFT`] octaves).
const TOTAL_BUCKETS: usize = (64 - SUB_SHIFT as usize + 1) * SUB_BUCKETS;

/// A log-bucketed histogram over `u64` samples (typically
/// microseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    buckets: Vec<u64>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; TOTAL_BUCKETS],
        }
    }
}

/// The flat index of the bucket holding `v`.
///
/// Values below `SUB_BUCKETS` index directly (one integer per bucket,
/// exact). Above, the top [`SUB_SHIFT`]+1 significant bits select
/// (octave, sub-bucket), so each octave `[2^k, 2^(k+1))` is split into
/// [`SUB_BUCKETS`] equal runs.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // position of the highest set bit
    let octave = msb - SUB_SHIFT; // 0 for the first sub-bucketed octave
    let sub = (v >> octave) as usize & (SUB_BUCKETS - 1);
    ((octave as usize) + 1) * SUB_BUCKETS + sub
}

/// The *inclusive upper bound* of bucket `i` — the value
/// [`LogHistogram::percentile`] reports for samples in that bucket.
fn bucket_upper(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let octave = (i / SUB_BUCKETS - 1) as u32;
    let sub = (i % SUB_BUCKETS) as u64;
    // The bucket covers [base + sub*width, base + (sub+1)*width).
    let base = (SUB_BUCKETS as u64) << octave;
    let width = 1u64 << octave;
    base.saturating_add(width.saturating_mul(sub + 1))
        .saturating_sub(1)
}

impl LogHistogram {
    /// Records one sample. O(1), no allocation.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Bucket-wise merge of another histogram (for per-thread
    /// collection joined at the end).
    pub fn merge(&mut self, other: &LogHistogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (`0.0 ..= 1.0`): the upper bound of
    /// the bucket containing the sample of rank `ceil(q * count)`,
    /// clamped to the recorded `max`. 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// The stats-plane summary object: count / sum / min / max / mean
    /// plus the three SLO percentiles. Field order is part of the
    /// `shoal-stats/v1` schema — stable, alphabetically grouped by
    /// role.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Num(self.sum as f64)),
            (
                "min".into(),
                Json::Num(if self.count == 0 { 0.0 } else { self.min as f64 }),
            ),
            ("max".into(), Json::Num(self.max as f64)),
            ("mean".into(), Json::Num((self.mean() * 10.0).round() / 10.0)),
            ("p50".into(), Json::Num(self.p50() as f64)),
            ("p95".into(), Json::Num(self.p95() as f64)),
            ("p99".into(), Json::Num(self.p99() as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        // Every value below SUB_BUCKETS has its own bucket, so the
        // percentile extraction is *exact* there: record 0..=15 once
        // each and every quantile lands on the true order statistic.
        let mut h = LogHistogram::default();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count, 16);
        // rank(0.5) = ceil(16*0.5) = 8 → the 8th smallest = value 7.
        assert_eq!(h.p50(), 7);
        // rank(0.95) = ceil(15.2) = 16 → value 15.
        assert_eq!(h.p95(), 15);
        assert_eq!(h.p99(), 15);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 15);
    }

    #[test]
    fn exact_p50_p95_p99_on_a_known_distribution() {
        // 100 samples: 1..=100 µs... but large values quantize. Use a
        // distribution inside the exact range scaled by bucket-aligned
        // values: 90 samples of 2, 5 of 10, 4 of 14, 1 of 15.
        let mut h = LogHistogram::default();
        for _ in 0..90 {
            h.record(2);
        }
        for _ in 0..5 {
            h.record(10);
        }
        for _ in 0..4 {
            h.record(14);
        }
        h.record(15);
        assert_eq!(h.count, 100);
        assert_eq!(h.p50(), 2); // rank 50 ≤ 90 → 2
        assert_eq!(h.p95(), 10); // rank 95 → the 95th sample is 10
        assert_eq!(h.p99(), 14); // rank 99 → 14
        assert_eq!(h.percentile(1.0), 15);
        assert_eq!(h.min, 2);
        assert_eq!(h.max, 15);
    }

    #[test]
    fn large_values_have_bounded_relative_error() {
        let mut h = LogHistogram::default();
        for v in [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000] {
            h.record(v);
            let got = h.percentile(1.0);
            assert!(got >= v, "upper bound must not undershoot: {got} < {v}");
            assert!(
                (got - v) as f64 <= v as f64 / SUB_BUCKETS as f64 + 1.0,
                "relative error above 1/{SUB_BUCKETS}: {v} → {got}"
            );
        }
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let mut h = LogHistogram::default();
        let mut x = 7u64;
        for _ in 0..500 {
            // Deterministic pseudo-random spread over several octaves.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.record(x % 1_000_000);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0];
        for w in qs.windows(2) {
            assert!(
                h.percentile(w[0]) <= h.percentile(w[1]),
                "percentile must be monotone: q={} > q={}",
                w[0],
                w[1]
            );
        }
        assert!(h.percentile(1.0) <= h.max);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        let mut whole = LogHistogram::default();
        for v in 0..64u64 {
            if v % 2 == 0 {
                a.record(v * 100);
            } else {
                b.record(v * 100);
            }
            whole.record(v * 100);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LogHistogram::default();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
        let json = h.to_json();
        assert_eq!(json.get("count"), Some(&Json::Num(0.0)));
        assert_eq!(json.get("min"), Some(&Json::Num(0.0)));
    }

    #[test]
    fn bucket_index_and_upper_agree() {
        // Every value maps to a bucket whose [.., upper] range
        // contains it.
        let mut vals: Vec<u64> = (0..200).collect();
        vals.extend([1 << 20, (1 << 20) + 12345, u32::MAX as u64, 1 << 40]);
        for v in vals {
            let i = bucket_index(v);
            assert!(
                bucket_upper(i) >= v,
                "bucket upper bound below the value: v={v} i={i} upper={}",
                bucket_upper(i)
            );
            if i > 0 {
                assert!(
                    bucket_upper(i - 1) < v,
                    "value belongs in an earlier bucket: v={v} i={i}"
                );
            }
        }
    }
}
