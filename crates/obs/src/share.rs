//! Structurally-shared containers for O(1) state forks.
//!
//! The symbolic engine forks one `World` per explored path; with eagerly
//! cloned `BTreeMap`/`Vec` fields a fork costs O(state), which makes
//! long straight-line scripts quadratic. The containers here make a fork
//! an `Arc` refcount bump and defer copying until a *shared* value is
//! mutated:
//!
//! * [`CowMap`] / [`CowVec`] — `Arc<BTreeMap>` / `Arc<Vec>` with
//!   [`Arc::make_mut`] copy-on-write. Clone is O(1); the first mutation
//!   after a fork copies the whole container. Right for small maps and
//!   for vectors that are mutated rarely relative to forks.
//! * [`CowList`] — a persistent singly-linked list (newest first) with
//!   O(1) push *even while shared*. Right for append-mostly logs (the
//!   execution trail, assumption lists) that grow at every statement in
//!   every world: a CowVec would re-copy the whole log after each fork.
//! * [`Pmap`] — a persistent ordered map (a treap with deterministic
//!   key-hash priorities) with O(log n) path-copying insert/remove even
//!   while shared. Right for the symbolic file-system map, which both
//!   grows with script length and is written by every world between
//!   forks — `make_mut` alone would still copy the whole map once per
//!   fork, keeping straight-line scripts quadratic.
//!
//! All containers are deterministic: iteration order depends only on the
//! contents (key order for [`Pmap`], insertion order for the rest), never
//! on sharing history, so analysis output is byte-identical whether or
//! not forks happened to share structure.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// CowVec
// ---------------------------------------------------------------------------

/// An `Arc<Vec<T>>` with copy-on-write mutation. Clone is O(1); the
/// first mutation of a shared value copies the vector.
pub struct CowVec<T> {
    inner: Arc<Vec<T>>,
}

impl<T> CowVec<T> {
    /// An empty vector (allocates nothing until first push).
    pub fn new() -> Self {
        CowVec {
            inner: Arc::new(Vec::new()),
        }
    }
}

impl<T: Clone> CowVec<T> {
    /// Mutable access to the underlying vector, copying it first if it is
    /// shared with another `CowVec`.
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        Arc::make_mut(&mut self.inner)
    }

    /// Appends an element (copy-on-write).
    pub fn push(&mut self, value: T) {
        self.to_mut().push(value);
    }
}

impl<T> Deref for CowVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.inner
    }
}

impl<T> Clone for CowVec<T> {
    fn clone(&self) -> Self {
        CowVec {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for CowVec<T> {
    fn default() -> Self {
        CowVec::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for CowVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: PartialEq> PartialEq for CowVec<T> {
    fn eq(&self, other: &Self) -> bool {
        *self.inner == *other.inner
    }
}

impl<T: Eq> Eq for CowVec<T> {}

impl<T> From<Vec<T>> for CowVec<T> {
    fn from(v: Vec<T>) -> Self {
        CowVec { inner: Arc::new(v) }
    }
}

impl<T> FromIterator<T> for CowVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        CowVec {
            inner: Arc::new(iter.into_iter().collect()),
        }
    }
}

impl<'a, T> IntoIterator for &'a CowVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

// ---------------------------------------------------------------------------
// CowMap
// ---------------------------------------------------------------------------

/// An `Arc<BTreeMap<K, V>>` with copy-on-write mutation. Clone is O(1);
/// the first mutation of a shared value copies the map. Use for small
/// maps mutated rarely relative to forks (variable bindings, function
/// definitions); use [`Pmap`] when the map itself grows with input size.
pub struct CowMap<K, V> {
    inner: Arc<BTreeMap<K, V>>,
}

impl<K: Ord, V> CowMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        CowMap {
            inner: Arc::new(BTreeMap::new()),
        }
    }
}

impl<K: Ord + Clone, V: Clone> CowMap<K, V> {
    /// Mutable access to the underlying map, copying it first if shared.
    pub fn to_mut(&mut self) -> &mut BTreeMap<K, V> {
        Arc::make_mut(&mut self.inner)
    }

    /// Inserts a binding (copy-on-write).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.to_mut().insert(key, value)
    }

    /// Removes a binding (copy-on-write). Borrowed-key lookups go through
    /// [`Deref`]; removal takes `&K` to keep the COW path simple.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.to_mut().remove(key)
    }
}

impl<K, V> Deref for CowMap<K, V> {
    type Target = BTreeMap<K, V>;
    fn deref(&self) -> &BTreeMap<K, V> {
        &self.inner
    }
}

impl<K, V> Clone for CowMap<K, V> {
    fn clone(&self) -> Self {
        CowMap {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<K: Ord, V> Default for CowMap<K, V> {
    fn default() -> Self {
        CowMap::new()
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for CowMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<K: PartialEq, V: PartialEq> PartialEq for CowMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        *self.inner == *other.inner
    }
}

impl<K: Eq, V: Eq> Eq for CowMap<K, V> {}

impl<K: Ord, V> From<BTreeMap<K, V>> for CowMap<K, V> {
    fn from(m: BTreeMap<K, V>) -> Self {
        CowMap { inner: Arc::new(m) }
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for CowMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        CowMap {
            inner: Arc::new(iter.into_iter().collect()),
        }
    }
}

// ---------------------------------------------------------------------------
// CowList
// ---------------------------------------------------------------------------

/// A persistent singly-linked list with O(1) shared push.
///
/// Elements are stored newest-first internally; [`CowList::iter`]
/// presents them oldest-first (chronological order), which costs one
/// O(n) pointer walk per traversal — acceptable for logs that are read
/// only when a finding is rendered. [`CowList::last`] (the newest
/// element) and [`CowList::len`] are O(1).
pub struct CowList<T> {
    head: Option<Arc<ListNode<T>>>,
    len: usize,
}

struct ListNode<T> {
    value: T,
    prev: Option<Arc<ListNode<T>>>,
}

impl<T> CowList<T> {
    /// An empty list.
    pub fn new() -> Self {
        CowList { head: None, len: 0 }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The most recently pushed element, O(1).
    pub fn last(&self) -> Option<&T> {
        self.head.as_deref().map(|n| &n.value)
    }

    /// Appends an element in O(1) regardless of sharing: the new node
    /// points at the old head, which other clones keep referencing.
    pub fn push(&mut self, value: T) {
        self.head = Some(Arc::new(ListNode {
            value,
            prev: self.head.take(),
        }));
        self.len += 1;
    }

    /// Iterates oldest-first. Collects the spine (O(n)) before yielding.
    pub fn iter(&self) -> CowListIter<'_, T> {
        let mut items = Vec::with_capacity(self.len);
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            items.push(&node.value);
            cur = node.prev.as_deref();
        }
        items.reverse();
        CowListIter {
            inner: items.into_iter(),
        }
    }
}

/// Chronological (oldest-first) iterator over a [`CowList`].
pub struct CowListIter<'a, T> {
    inner: std::vec::IntoIter<&'a T>,
}

impl<'a, T> Iterator for CowListIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        self.inner.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, T> ExactSizeIterator for CowListIter<'a, T> {}

impl<'a, T> IntoIterator for &'a CowList<T> {
    type Item = &'a T;
    type IntoIter = CowListIter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T> Clone for CowList<T> {
    fn clone(&self) -> Self {
        CowList {
            head: self.head.clone(),
            len: self.len,
        }
    }
}

impl<T> Default for CowList<T> {
    fn default() -> Self {
        CowList::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for CowList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for CowList<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq> Eq for CowList<T> {}

impl<T> FromIterator<T> for CowList<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut list = CowList::new();
        for item in iter {
            list.push(item);
        }
        list
    }
}

impl<T> Drop for CowList<T> {
    // Default recursive drop of a long uniquely-owned spine could
    // overflow the stack; unlink iteratively, stopping at the first
    // shared node (a sibling clone still owns the rest).
    fn drop(&mut self) {
        let mut cur = self.head.take();
        while let Some(node) = cur {
            match Arc::try_unwrap(node) {
                Ok(mut inner) => cur = inner.prev.take(),
                Err(_) => break,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pmap: persistent ordered map (treap)
// ---------------------------------------------------------------------------

/// A persistent ordered map: clone is O(1) and insert/remove path-copy
/// only O(log n) nodes even while shared.
///
/// Implemented as a treap whose priorities are derived from a hash of
/// the key, so the tree shape is a deterministic function of the key
/// *set* — independent of insertion order and of sharing history.
/// Iteration is in key order, like `BTreeMap`.
pub struct Pmap<K, V> {
    root: Link<K, V>,
    len: usize,
}

type Link<K, V> = Option<Arc<PNode<K, V>>>;

struct PNode<K, V> {
    key: K,
    value: V,
    prio: u64,
    left: Link<K, V>,
    right: Link<K, V>,
}

/// Deterministic per-key treap priority (SipHash then a splitmix64
/// finalizer to decorrelate from key ordering).
fn prio_of<K: Hash>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    let mut z = h.finish().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<K, V> Pmap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Pmap { root: None, len: 0 }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<K: Ord, V> Pmap<K, V> {
    /// Looks up a binding.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root.as_deref();
        while let Some(node) = cur {
            match key.cmp(&node.key) {
                std::cmp::Ordering::Less => cur = node.left.as_deref(),
                std::cmp::Ordering::Greater => cur = node.right.as_deref(),
                std::cmp::Ordering::Equal => return Some(&node.value),
            }
        }
        None
    }

    /// Does the map contain `key`?
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// In-order (key-order) iterator over all bindings.
    pub fn iter(&self) -> PmapIter<'_, K, V> {
        let mut iter = PmapIter { stack: Vec::new() };
        iter.push_left_spine(self.root.as_deref());
        iter
    }

    /// In-order iterator over bindings with keys `>= from` (the treap
    /// analogue of `BTreeMap::range(from..)`).
    pub fn iter_from<'a>(&'a self, from: &K) -> PmapIter<'a, K, V> {
        let mut stack = Vec::new();
        let mut cur = self.root.as_deref();
        while let Some(node) = cur {
            match from.cmp(&node.key) {
                std::cmp::Ordering::Less => {
                    stack.push(node);
                    cur = node.left.as_deref();
                }
                std::cmp::Ordering::Greater => cur = node.right.as_deref(),
                std::cmp::Ordering::Equal => {
                    stack.push(node);
                    break;
                }
            }
        }
        PmapIter { stack }
    }

    /// Key-order iterator over keys.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }
}

impl<K: Ord + Clone + Hash, V: Clone> Pmap<K, V> {
    /// Inserts a binding, path-copying O(log n) nodes. Returns the
    /// previous value, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (less, eq, greater) = split(self.root.take(), &key);
        let prio = prio_of(&key);
        let node = Some(Arc::new(PNode {
            key,
            value,
            prio,
            left: None,
            right: None,
        }));
        self.root = merge(merge(less, node), greater);
        match eq {
            Some(old) => Some(old),
            None => {
                self.len += 1;
                None
            }
        }
    }

    /// Removes a binding, path-copying O(log n) nodes.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (less, eq, greater) = split(self.root.take(), key);
        self.root = merge(less, greater);
        if eq.is_some() {
            self.len -= 1;
        }
        eq
    }
}

/// Splits `t` into (keys < k, value at k, keys > k), path-copying.
#[allow(clippy::type_complexity)]
fn split<K: Ord + Clone, V: Clone>(t: Link<K, V>, k: &K) -> (Link<K, V>, Option<V>, Link<K, V>) {
    let Some(node) = t else {
        return (None, None, None);
    };
    match k.cmp(&node.key) {
        std::cmp::Ordering::Less => {
            let (ll, eq, lr) = split(node.left.clone(), k);
            let right = Some(new_node(&node, lr, node.right.clone()));
            (ll, eq, right)
        }
        std::cmp::Ordering::Greater => {
            let (rl, eq, rr) = split(node.right.clone(), k);
            let left = Some(new_node(&node, node.left.clone(), rl));
            (left, eq, rr)
        }
        std::cmp::Ordering::Equal => (node.left.clone(), Some(node.value.clone()), node.right.clone()),
    }
}

/// Merges two treaps where every key in `a` < every key in `b`.
fn merge<K: Ord + Clone, V: Clone>(a: Link<K, V>, b: Link<K, V>) -> Link<K, V> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(a), Some(b)) => {
            if a.prio >= b.prio {
                let right = merge(a.right.clone(), Some(b));
                Some(new_node(&a, a.left.clone(), right))
            } else {
                let left = merge(Some(a), b.left.clone());
                Some(new_node(&b, left, b.right.clone()))
            }
        }
    }
}

fn new_node<K: Clone, V: Clone>(src: &PNode<K, V>, left: Link<K, V>, right: Link<K, V>) -> Arc<PNode<K, V>> {
    Arc::new(PNode {
        key: src.key.clone(),
        value: src.value.clone(),
        prio: src.prio,
        left,
        right,
    })
}

/// Key-order iterator over a [`Pmap`].
pub struct PmapIter<'a, K, V> {
    stack: Vec<&'a PNode<K, V>>,
}

impl<'a, K, V> PmapIter<'a, K, V> {
    fn push_left_spine(&mut self, mut cur: Option<&'a PNode<K, V>>) {
        while let Some(node) = cur {
            self.stack.push(node);
            cur = node.left.as_deref();
        }
    }
}

impl<'a, K, V> Iterator for PmapIter<'a, K, V> {
    type Item = (&'a K, &'a V);
    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        let node = self.stack.pop()?;
        self.push_left_spine(node.right.as_deref());
        Some((&node.key, &node.value))
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a Pmap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = PmapIter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<K, V> Clone for Pmap<K, V> {
    fn clone(&self) -> Self {
        Pmap {
            root: self.root.clone(),
            len: self.len,
        }
    }
}

impl<K, V> Default for Pmap<K, V> {
    fn default() -> Self {
        Pmap::new()
    }
}

impl<K: Ord + fmt::Debug, V: fmt::Debug> fmt::Debug for Pmap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + PartialEq, V: PartialEq> PartialEq for Pmap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<K: Ord + Eq, V: Eq> Eq for Pmap<K, V> {}

impl<K: Ord + Clone + Hash, V: Clone> FromIterator<(K, V)> for Pmap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = Pmap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift64;
    use std::collections::BTreeMap;

    #[test]
    fn cowvec_cow_isolation() {
        let mut a: CowVec<i32> = vec![1, 2, 3].into();
        let b = a.clone();
        a.push(4);
        assert_eq!(&*a, &[1, 2, 3, 4]);
        assert_eq!(&*b, &[1, 2, 3]);
    }

    #[test]
    fn cowmap_cow_isolation() {
        let mut a: CowMap<String, i32> = CowMap::new();
        a.insert("x".into(), 1);
        let mut b = a.clone();
        b.insert("y".into(), 2);
        a.to_mut().insert("x".into(), 10);
        assert_eq!(a.get("x"), Some(&10));
        assert_eq!(a.get("y"), None);
        assert_eq!(b.get("x"), Some(&1));
        assert_eq!(b.get("y"), Some(&2));
    }

    #[test]
    fn cowlist_push_is_shared_and_isolated() {
        let mut a: CowList<i32> = CowList::new();
        a.push(1);
        a.push(2);
        let mut b = a.clone();
        a.push(3);
        b.push(30);
        assert_eq!(a.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![1, 2, 30]);
        assert_eq!(a.last(), Some(&3));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn cowlist_deep_drop_no_overflow() {
        let mut l: CowList<u64> = CowList::new();
        for i in 0..200_000 {
            l.push(i);
        }
        drop(l);
    }

    #[test]
    fn pmap_matches_btreemap_under_random_ops() {
        let mut rng = XorShift64::seed_from_u64(0xC0FFEE);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut map: Pmap<u64, u64> = Pmap::new();
        for step in 0..4000u64 {
            let k = rng.next_u64() % 257;
            if rng.next_u64().is_multiple_of(4) {
                assert_eq!(map.remove(&k), model.remove(&k));
            } else {
                assert_eq!(map.insert(k, step), model.insert(k, step));
            }
            assert_eq!(map.len(), model.len());
        }
        let got: Vec<_> = map.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<_> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
        // range-from agrees too
        for lo in [0u64, 1, 100, 256, 300] {
            let got: Vec<_> = map.iter_from(&lo).map(|(k, _)| *k).collect();
            let want: Vec<_> = model.range(lo..).map(|(k, _)| *k).collect();
            assert_eq!(got, want, "iter_from({lo})");
        }
    }

    #[test]
    fn pmap_fork_isolation() {
        let mut a: Pmap<u32, &'static str> = Pmap::new();
        for k in 0..100 {
            a.insert(k, "base");
        }
        let mut b = a.clone();
        b.insert(7, "child");
        b.remove(&50);
        a.insert(200, "parent");
        assert_eq!(a.get(&7), Some(&"base"));
        assert_eq!(a.get(&50), Some(&"base"));
        assert_eq!(b.get(&7), Some(&"child"));
        assert_eq!(b.get(&50), None);
        assert_eq!(b.get(&200), None);
    }

    #[test]
    fn pmap_shape_is_insertion_order_independent() {
        let mut a: Pmap<u32, u32> = Pmap::new();
        let mut b: Pmap<u32, u32> = Pmap::new();
        for k in 0..64 {
            a.insert(k, k);
        }
        for k in (0..64).rev() {
            b.insert(k, k);
        }
        assert_eq!(a, b);
        let av: Vec<_> = a.iter().map(|(k, _)| *k).collect();
        let bv: Vec<_> = b.iter().map(|(k, _)| *k).collect();
        assert_eq!(av, bv);
    }
}
