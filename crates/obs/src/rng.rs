//! A tiny deterministic PRNG (xorshift64* seeded through splitmix64),
//! replacing the `rand` dependency the offline build cannot fetch.
//!
//! Not cryptographic; used only for corpus generation, doc-mining noise
//! models, and property-test case generation, all of which need
//! *reproducibility* (fixed seed → fixed sequence) more than quality.

/// xorshift64* with a splitmix64-mixed seed.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

/// One round of splitmix64 — used to spread weak seeds (0, 1, 2, …)
/// across the whole state space.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl XorShift64 {
    /// Seeds the generator; any seed (including 0) is fine.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mixed = splitmix64(seed);
        XorShift64 {
            state: if mixed == 0 { 0x9e3779b97f4a7c15 } else { mixed },
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// A uniform `usize` in `[range.start, range.end)`; mirrors
    /// `rand::Rng::random_range` for the call sites ported off `rand`.
    pub fn random_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift mapping; bias is < 2^-53 for the tiny spans used
        // here, and determinism is what actually matters.
        range.start + ((self.next_u64() >> 11) % span) as usize
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// A uniform element of `slice` (panics on empty input).
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.random_range(0..slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift64::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift64::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = XorShift64::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = XorShift64::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut r = XorShift64::seed_from_u64(1);
        assert!(r.random_bool(1.0));
        assert!(!r.random_bool(0.0));
        let hits = (0..10_000).filter(|_| r.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }
}
