//! Events of every value shape must survive the JSONL export: one
//! valid JSON object per line, fields and types preserved, including
//! strings that need escaping.
//!
//! Single-test binary: the recorder is process-global.

use shoal_obs::{install, parse_jsonl, set_enabled, take_events, trace_to_jsonl};

#[test]
fn every_value_shape_survives_the_jsonl_round_trip() {
    install();
    shoal_obs::event!(
        "kitchen_sink",
        unsigned = 42u64,
        signed = -7i64,
        float = 2.5f64,
        truth = true,
        text = "quote \" backslash \\ newline \n tab \t unicode ✓",
        empty = ""
    );
    shoal_obs::event!("fork", site = "if", line = 3u64, new_worlds = 1u64);
    {
        let _span = shoal_obs::span!("phase");
    }
    let events = take_events();
    set_enabled(false);
    assert_eq!(events.len(), 3);

    let jsonl = trace_to_jsonl(&events);
    let parsed = parse_jsonl(&jsonl).expect("exported trace parses");
    assert_eq!(parsed.len(), 3);

    let sink = &parsed[0];
    assert_eq!(sink.get("kind").and_then(|v| v.as_str()), Some("kitchen_sink"));
    assert_eq!(sink.get("unsigned").and_then(|v| v.as_u64()), Some(42));
    assert_eq!(sink.get("signed").and_then(|v| v.as_f64()), Some(-7.0));
    assert_eq!(sink.get("float").and_then(|v| v.as_f64()), Some(2.5));
    assert_eq!(
        sink.get("text").and_then(|v| v.as_str()),
        Some("quote \" backslash \\ newline \n tab \t unicode ✓")
    );
    assert_eq!(sink.get("empty").and_then(|v| v.as_str()), Some(""));

    let fork = &parsed[1];
    assert_eq!(fork.get("kind").and_then(|v| v.as_str()), Some("fork"));
    assert_eq!(fork.get("line").and_then(|v| v.as_u64()), Some(3));

    let span = &parsed[2];
    assert_eq!(span.get("kind").and_then(|v| v.as_str()), Some("span"));
    assert_eq!(span.get("name").and_then(|v| v.as_str()), Some("phase"));
    assert!(span.get("duration_us").and_then(|v| v.as_u64()).is_some());

    // Timestamps are monotone non-decreasing across the trace.
    let stamps: Vec<u64> = parsed
        .iter()
        .map(|e| e.get("t_us").and_then(|v| v.as_u64()).unwrap())
        .collect();
    assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
}
