//! Property tests for [`shoal_obs::audit::CoverageMap`]: `merge` must
//! be a commutative monoid action with exact counts, because the scan
//! aggregator folds per-script maps in whatever order the worker pool
//! finishes them and still promises byte-identical reports at any
//! `--jobs` level.

use shoal_obs::audit::{CheckerCov, CommandCov, CoverageMap, LossCause};
use shoal_obs::prop::{run_cases, Gen};

const COMMANDS: [&str; 6] = ["awk", "curl", "frobnicate", "jq", "munge", "tar"];
const CHECKERS: [&str; 5] = ["delete", "idempotence", "platform", "rm", "streamty"];
const SITES: [&str; 5] = ["line 1", "line 7", "line 12", "line 40", "line 99"];

/// An arbitrary coverage map — not necessarily one the engine could
/// produce, on purpose: `merge` must be lawful on the whole type.
fn arbitrary_map(g: &mut Gen) -> CoverageMap {
    let mut map = CoverageMap {
        scripts: g.usize(0..4) as u64,
        degraded_scripts: g.usize(0..3) as u64,
        ..CoverageMap::default()
    };
    for name in g.subsequence(&COMMANDS) {
        map.commands.insert(
            name.to_string(),
            CommandCov {
                has_spec: g.bool(),
                sites: g.usize(0..10) as u64,
                scripts: g.usize(0..5) as u64,
            },
        );
    }
    for id in g.subsequence(&CHECKERS) {
        map.checkers.insert(
            id.to_string(),
            CheckerCov {
                fired: g.usize(0..6) as u64,
                suppressed: g.usize(0..3) as u64,
            },
        );
    }
    for cause in g.subsequence(&LossCause::ALL) {
        let sites = map.losses.entry(cause).or_default();
        for site in g.subsequence(&SITES) {
            sites.insert(site.to_string(), g.usize(1..8) as u64);
        }
    }
    map
}

fn merged(a: &CoverageMap, b: &CoverageMap) -> CoverageMap {
    let mut out = a.clone();
    out.merge(b);
    out
}

#[test]
fn merge_is_commutative_and_associative_with_identity() {
    run_cases("audit_merge_monoid", 64, |g| {
        let (a, b, c) = (arbitrary_map(g), arbitrary_map(g), arbitrary_map(g));

        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(
            ab.to_json().to_text(),
            ba.to_json().to_text(),
            "equal maps must serialize byte-identically"
        );

        assert_eq!(
            merged(&ab, &c),
            merged(&a, &merged(&b, &c)),
            "merge must be associative"
        );

        let id = CoverageMap::default();
        assert_eq!(merged(&id, &a), a, "default is a left identity");
        assert_eq!(merged(&a, &id), a, "default is a right identity");
    });
}

#[test]
fn merge_counts_are_exact_sums() {
    run_cases("audit_merge_exact", 64, |g| {
        let (a, b) = (arbitrary_map(g), arbitrary_map(g));
        let ab = merged(&a, &b);

        assert_eq!(ab.scripts, a.scripts + b.scripts);
        assert_eq!(ab.degraded_scripts, a.degraded_scripts + b.degraded_scripts);
        assert_eq!(ab.total_losses(), a.total_losses() + b.total_losses());
        for cause in LossCause::ALL {
            assert_eq!(
                ab.loss_totals().get(&cause).copied().unwrap_or(0),
                a.loss_totals().get(&cause).copied().unwrap_or(0)
                    + b.loss_totals().get(&cause).copied().unwrap_or(0),
                "per-cause totals must sum exactly for {}",
                cause.as_str()
            );
        }
        for (name, cov) in &ab.commands {
            let (sa, sb) = (a.commands.get(name), b.commands.get(name));
            let sites = |c: Option<&CommandCov>| c.map_or(0, |c| c.sites);
            let scripts = |c: Option<&CommandCov>| c.map_or(0, |c| c.scripts);
            assert_eq!(cov.sites, sites(sa) + sites(sb), "{name}");
            assert_eq!(cov.scripts, scripts(sa) + scripts(sb), "{name}");
            assert_eq!(
                cov.has_spec,
                sa.is_some_and(|c| c.has_spec) || sb.is_some_and(|c| c.has_spec),
                "{name}: has_spec is an OR, never forgotten"
            );
        }
    });
}

#[test]
fn fold_order_never_changes_the_bytes() {
    // The scan pool folds worker results in input order, but the audit
    // contract is stronger: ANY fold order yields the same bytes.
    run_cases("audit_fold_order", 32, |g| {
        let maps = g.vec_of(2..6, arbitrary_map);
        let forward = maps
            .iter()
            .fold(CoverageMap::default(), |acc, m| merged(&acc, m));
        let reverse = maps
            .iter()
            .rev()
            .fold(CoverageMap::default(), |acc, m| merged(&acc, m));
        assert_eq!(
            forward.to_json().to_text(),
            reverse.to_json().to_text(),
            "fleet fold must be order-independent"
        );
        assert_eq!(
            forward.summary_json(3).to_text(),
            reverse.summary_json(3).to_text()
        );
    });
}
