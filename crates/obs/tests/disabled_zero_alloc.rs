//! The whole point of the recorder design: when recording is disabled
//! (the default), instrumentation must cost one relaxed atomic load —
//! in particular it must never allocate, or the engine's hot loops
//! would pay for observability nobody asked for.
//!
//! A counting global allocator makes "never allocates" testable. This
//! file must stay a single-test binary: the allocator and the recorder
//! are both process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn disabled_instrumentation_does_not_allocate() {
    assert!(!shoal_obs::enabled(), "recording must start disabled");

    // Events: field expressions must not even be evaluated — building
    // the String here would allocate, so the count proves the macro
    // short-circuits.
    let n = allocations(|| {
        for i in 0..100u64 {
            shoal_obs::event!(
                "fork",
                site = "test",
                line = i,
                label = format!("world {i}")
            );
        }
    });
    assert_eq!(n, 0, "disabled event! allocated {n} time(s)");

    // Metrics.
    let n = allocations(|| {
        for i in 0..100u64 {
            shoal_obs::counter_add("test.counter", i);
            shoal_obs::gauge_max("test.gauge", i);
            shoal_obs::hist_record("test.hist", i);
        }
    });
    assert_eq!(n, 0, "disabled metrics allocated {n} time(s)");

    // Spans.
    let n = allocations(|| {
        for _ in 0..100 {
            let _span = shoal_obs::span!("test_span");
        }
    });
    assert_eq!(n, 0, "disabled span! allocated {n} time(s)");

    // And once enabled, the same calls DO record (sanity check that the
    // zero above measured the disabled path, not broken plumbing).
    shoal_obs::install();
    shoal_obs::counter_add("test.counter", 7);
    shoal_obs::event!("fork", site = "test", line = 1u64);
    shoal_obs::set_enabled(false);
    let snap = shoal_obs::snapshot();
    assert_eq!(snap.counter("test.counter"), Some(7));
    assert_eq!(shoal_obs::take_events().len(), 1);
}
